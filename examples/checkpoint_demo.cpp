// Crash-safe training demo: train a small GRU with checkpointing enabled,
// then run Fit again against the same directory to show the resume path.
//
//   $ ./build/examples/example_checkpoint_demo [checkpoint-dir]
//
// Inspect the result without C++:
//   $ tools/inspect_checkpoint.py <checkpoint-dir>
//
// See docs/ROBUSTNESS.md for the file format and the resume guarantees.

#include <cstdio>

#include "baselines/gru_forecaster.h"
#include "data/dataset_registry.h"
#include "train/trainer.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace conformer;

  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/conformer_checkpoint_demo";

  data::TimeSeries series = data::MakeDataset("etth1", 0.08, /*seed=*/7).value();
  data::WindowConfig window{.input_len = 32, .label_len = 16, .pred_len = 16};
  data::DatasetSplits splits = data::MakeSplits(series, window);

  train::TrainConfig config;
  config.epochs = 2;
  config.learning_rate = 2e-3f;
  config.max_train_batches = 20;
  config.max_eval_batches = 5;
  config.checkpoint_dir = dir;
  config.checkpoint_every_n_steps = 8;
  config.checkpoint_keep_last = 3;
  config.verbose = true;

  SeedGlobalRng(7);
  models::GruForecaster model(window, series.dims(), /*hidden=*/16);
  train::FitResult first = train::Trainer(config).Fit(
      &model, splits.train, splits.val);
  std::printf("first run: %lld epochs, best val MSE %.4f, checkpoints in %s\n",
              static_cast<long long>(first.epochs_run), first.best_val_mse,
              dir.c_str());

  // A second Fit against the same directory restores the finished run and
  // returns immediately with identical results -- the same path a real
  // crash-and-restart takes.
  SeedGlobalRng(7);
  models::GruForecaster restarted(window, series.dims(), /*hidden=*/16);
  train::FitResult second = train::Trainer(config).Fit(
      &restarted, splits.train, splits.val);
  std::printf("restart:   resumed=%s, best val MSE %.4f (%s)\n",
              second.resumed ? "yes" : "no", second.best_val_mse,
              second.best_val_mse == first.best_val_mse
                  ? "bitwise identical"
                  : "MISMATCH");
  return second.resumed && second.best_val_mse == first.best_val_mse ? 0 : 1;
}
