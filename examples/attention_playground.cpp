// Attention playground: visualizes what each attention mechanism "sees" —
// for one query position, which key positions receive weight — and measures
// forward cost. A hands-on tour of the src/attention library.
//
//   $ ./build/examples/example_attention_playground

#include <chrono>
#include <cmath>
#include <cstdio>

#include "attention/attention.h"

int main() {
  using namespace conformer;
  using attention::AttentionKind;

  const int64_t length = 48;
  const int64_t d = 16;
  Rng rng(5);
  // A periodic query/key stream so auto-correlation has structure to find.
  std::vector<float> values(length * d);
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t j = 0; j < d; ++j) {
      values[t * d + j] =
          std::sin(2.0f * 3.14159265f * (t + j) / 12.0f) +
          0.1f * static_cast<float>(rng.Normal());
    }
  }
  Tensor x = Tensor::FromVector(values, {1, length, d});

  const std::vector<AttentionKind> kinds = {
      AttentionKind::kFull,      AttentionKind::kSlidingWindow,
      AttentionKind::kProbSparse, AttentionKind::kLogSparse,
      AttentionKind::kLsh,       AttentionKind::kAutoCorrelation,
  };

  for (AttentionKind kind : kinds) {
    attention::AttentionConfig config;
    config.window = 4;
    config.lsh_chunk = 8;
    auto mech = attention::MakeAttention(kind, config);

    // Influence probe: gradient of one output position w.r.t. the values
    // shows exactly which key positions the mechanism consulted.
    Tensor v = x.Clone().set_requires_grad(true);
    Tensor out = mech->Forward(x, x, v, /*causal=*/false);
    const int64_t probe = length / 2;
    Sum(Slice(out, 1, probe, probe + 1)).Backward();
    Tensor g = v.grad();

    std::printf("%-18s query %lld attends: |", mech->name(),
                static_cast<long long>(probe));
    for (int64_t t = 0; t < length; ++t) {
      double mass = 0.0;
      for (int64_t j = 0; j < d; ++j) mass += std::fabs(g.at({0, t, j}));
      std::printf("%c", mass > 1e-6 ? (t == probe ? 'Q' : '#') : '.');
    }
    std::printf("|\n");

    // Forward cost.
    NoGradGuard guard;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 50; ++i) {
      Tensor y = mech->Forward(x, x, x, false);
    }
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf("%-18s forward: %.3f ms\n\n", "", elapsed / 50.0);
  }

  std::printf(
      "reading the maps: full = every position; sliding window = a narrow "
      "band; prob-sparse = all keys for active queries (mean fallback "
      "otherwise); log-sparse = exponentially spaced history; lsh = same-"
      "bucket positions; auto-correlation = periodic shifts of the whole "
      "series.\n");
  return 0;
}
