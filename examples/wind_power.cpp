// Wind-power supply planning — the application motivating the paper's
// abstract. Trains Conformer on the Wind dataset stand-in, produces a
// day-ahead forecast with uncertainty bands, and derives a conservative
// supply commitment from the lower band (the planning decision an operator
// would actually make).
//
//   $ ./build/examples/example_wind_power

#include <algorithm>
#include <cstdio>

#include "core/conformer_model.h"
#include "data/dataset_registry.h"
#include "train/trainer.h"

int main() {
  using namespace conformer;

  // Wind power: 15-minute intervals, bounded below by zero, regime
  // switching between calm and gusty periods.
  data::TimeSeries series = data::MakeDataset("wind", 0.06, /*seed=*/17).value();
  const int64_t target = series.target_column();
  std::printf("wind farm series: %lld points, target '%s'\n",
              static_cast<long long>(series.num_points()),
              series.column_names()[target].c_str());

  // Day-ahead planning at 15-minute resolution, scaled: forecast 24 steps
  // (6 hours) from 48 steps (12 hours) of context.
  data::WindowConfig window{.input_len = 48, .label_len = 24, .pred_len = 24};
  data::DatasetSplits splits = data::MakeSplits(series, window);

  core::ConformerConfig config;
  config.d_model = 16;
  config.n_heads = 2;
  config.lambda = 0.7f;  // weight the flow: planning wants honest bands
  core::ConformerModel model(config, window, series.dims());

  train::TrainConfig tc;
  tc.epochs = 3;
  tc.learning_rate = 1.5e-3f;
  tc.max_train_batches = 50;
  tc.max_eval_batches = 10;
  train::Trainer trainer(tc);
  trainer.Fit(&model, splits.train, splits.val);
  train::EvalMetrics m = trainer.Evaluate(&model, splits.test);
  std::printf("test MSE %.4f MAE %.4f (standardized)\n", m.mse, m.mae);

  // Forecast one window with an 80% band and plan against the lower bound.
  data::Batch batch = splits.test.GetRange(splits.test.size() / 2, 1);
  flow::UncertaintyBand band = model.PredictWithUncertainty(batch, 32, 0.8);

  std::printf("\nday-ahead plan (values in MW-equivalent, de-standardized):\n");
  std::printf("  step   expected   safe_commit   reserve_needed\n");
  double total_commit = 0.0;
  for (int64_t t = 0; t < window.pred_len; ++t) {
    const float mean =
        splits.scaler.InverseValue(band.mean.at({0, t, target}), target);
    const float lower =
        splits.scaler.InverseValue(band.lower.at({0, t, target}), target);
    // Commit the lower band (never promise power the wind may not deliver);
    // the gap to the expectation is covered by reserves.
    const double commit = std::max(0.0f, lower);
    const double reserve = std::max(0.0, mean - commit);
    total_commit += commit;
    std::printf("  %4lld   %8.3f   %11.3f   %14.3f\n",
                static_cast<long long>(t), mean, commit, reserve);
  }
  std::printf("total committed energy over the horizon: %.2f MW-steps\n",
              total_commit);
  return 0;
}
