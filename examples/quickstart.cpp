// Quickstart: train Conformer on a synthetic hourly series and print a
// forecast with uncertainty bands.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API: dataset -> splits -> model -> trainer
// -> point forecast -> uncertainty-aware forecast.

#include <cstdio>

#include "core/conformer_model.h"
#include "data/dataset_registry.h"
#include "train/trainer.h"

int main() {
  using namespace conformer;

  // 1. Data: a synthetic stand-in for the ETTh1 electricity-transformer
  //    benchmark (hourly, 7 variables, daily + weekly cycles).
  data::TimeSeries series = data::MakeDataset("etth1", 0.08, /*seed=*/7).value();
  std::printf("dataset %s: %lld points x %lld variables\n",
              series.name().c_str(),
              static_cast<long long>(series.num_points()),
              static_cast<long long>(series.dims()));

  // 2. Windowing: input 32 steps, forecast 16, with a 16-step label section
  //    for the decoder (the paper's input-96-predict-Ly scheme, scaled).
  data::WindowConfig window{.input_len = 32, .label_len = 16, .pred_len = 16};
  data::DatasetSplits splits = data::MakeSplits(series, window);

  // 3. Model: Conformer with paper defaults scaled to laptop size.
  core::ConformerConfig config;
  config.d_model = 16;
  config.n_heads = 2;
  core::ConformerModel model(config, window, series.dims());
  std::printf("Conformer with %lld parameters\n",
              static_cast<long long>(model.NumParameters()));

  // 4. Training: Adam + early stopping (Section V-A3).
  train::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.learning_rate = 2e-3f;
  train_config.max_train_batches = 60;
  train_config.max_eval_batches = 10;
  train_config.verbose = true;
  train::Trainer trainer(train_config);
  trainer.Fit(&model, splits.train, splits.val);

  train::EvalMetrics test = trainer.Evaluate(&model, splits.test);
  std::printf("test MSE %.4f  MAE %.4f (standardized)\n", test.mse, test.mae);

  // 5. Uncertainty-aware forecast on one window (Fig. 6 of the paper).
  data::Batch batch = splits.test.GetRange(0, 1);
  flow::UncertaintyBand band = model.PredictWithUncertainty(batch, 32, 0.9);
  const int64_t target = series.target_column();
  std::printf("\nforecast for '%s' (90%% band):\n  step  lower   mean   upper\n",
              series.column_names()[target].c_str());
  for (int64_t t = 0; t < window.pred_len; ++t) {
    std::printf("  %4lld  %6.3f %6.3f %6.3f\n", static_cast<long long>(t),
                band.lower.at({0, t, target}), band.mean.at({0, t, target}),
                band.upper.at({0, t, target}));
  }
  return 0;
}
