// Forecasting your own data: writes a small CSV (standing in for a file you
// bring, e.g. ETTh1.csv), loads it with the CSV loader, trains Conformer,
// saves a checkpoint, reloads it, and forecasts — the full
// bring-your-own-data workflow.
//
//   $ ./build/examples/example_csv_forecasting [path/to/your.csv]

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numbers>

#include "core/conformer_model.h"
#include "data/csv_loader.h"
#include "nn/serialize.h"
#include "train/trainer.h"
#include "util/civil_time.h"

namespace {

// Creates a demo CSV (hourly, two coupled variables) when the user did not
// pass their own file.
std::string WriteDemoCsv() {
  const std::string path = "/tmp/conformer_demo_series.csv";
  std::ofstream out(path);
  out << "date,load,temperature\n";
  conformer::Rng rng(3);
  for (int64_t i = 0; i < 1600; ++i) {
    const int64_t ts = 1577836800 + i * 3600;
    const double daily = std::sin(2.0 * std::numbers::pi * i / 24.0);
    const double load = 10.0 + 3.0 * daily + rng.Normal(0.0, 0.4);
    const double temp = 15.0 - 4.0 * daily + rng.Normal(0.0, 0.6);
    out << conformer::FormatTimestamp(ts) << "," << load << "," << temp << "\n";
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace conformer;

  const std::string csv_path = argc > 1 ? argv[1] : WriteDemoCsv();
  Result<data::TimeSeries> loaded = data::LoadCsv(csv_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "failed to load %s: %s\n", csv_path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  data::TimeSeries series = std::move(loaded).value();
  std::printf("loaded %s: %lld rows x %lld columns (target '%s')\n",
              csv_path.c_str(), static_cast<long long>(series.num_points()),
              static_cast<long long>(series.dims()),
              series.column_names()[series.target_column()].c_str());

  data::WindowConfig window{.input_len = 48, .label_len = 24, .pred_len = 24};
  data::DatasetSplits splits = data::MakeSplits(series, window);

  core::ConformerConfig config;
  config.d_model = 16;
  config.n_heads = 2;
  core::ConformerModel model(config, window, series.dims());

  train::TrainConfig tc;
  tc.epochs = 3;
  tc.learning_rate = 1.5e-3f;
  tc.max_train_batches = 40;
  tc.max_eval_batches = 8;
  train::Trainer trainer(tc);
  trainer.Fit(&model, splits.train, splits.val);
  train::EvalMetrics m = trainer.Evaluate(&model, splits.test);
  std::printf("test MSE %.4f MAE %.4f (standardized)\n", m.mse, m.mae);

  // Checkpoint round trip: the deployment workflow.
  const std::string ckpt = "/tmp/conformer_demo_model.bin";
  Status saved = nn::SaveModule(model, ckpt);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  core::ConformerModel deployed(config, window, series.dims());
  Status restored = nn::LoadModule(&deployed, ckpt);
  if (!restored.ok()) {
    std::fprintf(stderr, "load failed: %s\n", restored.ToString().c_str());
    return 1;
  }
  deployed.SetTraining(false);

  // Forecast the most recent window, in original units.
  NoGradGuard guard;
  data::Batch batch = splits.test.GetRange(splits.test.size() - 1, 1);
  Tensor pred = deployed.Forward(batch);
  const int64_t target = series.target_column();
  std::printf("\nnext %lld hours of '%s':\n",
              static_cast<long long>(window.pred_len),
              series.column_names()[target].c_str());
  for (int64_t t = 0; t < window.pred_len; ++t) {
    std::printf("  t+%-3lld %8.3f\n", static_cast<long long>(t + 1),
                splits.scaler.InverseValue(pred.at({0, t, target}), target));
  }
  return 0;
}
