// Backtest report: compares Conformer against the closed-form Linear/VAR
// baseline with a rolling-origin backtest, printing how the error grows
// along the forecast horizon — the operational view behind the paper's
// "Conformer degrades slowest as the horizon grows" claim.
//
//   $ ./build/examples/example_backtest_report

#include <cstdio>

#include "baselines/linear_forecaster.h"
#include "core/conformer_model.h"
#include "data/dataset_registry.h"
#include "train/backtest.h"
#include "train/trainer.h"

int main() {
  using namespace conformer;

  data::TimeSeries series = data::MakeDataset("etth1", 0.07, /*seed=*/29).value();
  data::WindowConfig window{.input_len = 48, .label_len = 24, .pred_len = 24};
  data::DatasetSplits splits = data::MakeSplits(series, window);

  // Conformer: gradient-trained.
  core::ConformerConfig config;
  config.d_model = 16;
  config.n_heads = 2;
  config.ma_kernel = 13;
  core::ConformerModel conformer(config, window, series.dims());
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.learning_rate = 2e-3f;
  tc.max_train_batches = 40;
  tc.max_eval_batches = 8;
  train::Trainer trainer(tc);
  trainer.Fit(&conformer, splits.train, splits.val);

  // Linear/VAR: one closed-form ridge fit, no gradients at all.
  models::LinearForecaster linear(window, series.dims());
  Status fitted = linear.FitLeastSquares(splits.train);
  if (!fitted.ok()) {
    std::fprintf(stderr, "linear fit failed: %s\n", fitted.ToString().c_str());
    return 1;
  }

  const train::BacktestResult conformer_bt =
      train::Backtest(&conformer, splits.test, /*stride=*/2, /*max_windows=*/60);
  const train::BacktestResult linear_bt =
      train::Backtest(&linear, splits.test, /*stride=*/2, /*max_windows=*/60);

  std::printf("rolling-origin backtest over %lld windows (test split)\n",
              static_cast<long long>(conformer_bt.windows));
  std::printf("aggregate: Conformer MSE %.4f | Linear(VAR) MSE %.4f\n\n",
              conformer_bt.mse, linear_bt.mse);
  std::printf("error growth along the horizon (per-step MSE):\n");
  std::printf("  step   Conformer   Linear(VAR)\n");
  for (int64_t t = 0; t < window.pred_len; t += 3) {
    std::printf("  %4lld   %9.4f   %11.4f\n", static_cast<long long>(t + 1),
                conformer_bt.per_step_mse[t], linear_bt.per_step_mse[t]);
  }
  std::printf(
      "\nreading: both profiles rise with the horizon; the flatter profile "
      "degrades more gracefully on long-term forecasts.\n");
  return 0;
}
