// Electricity-consumption model bake-off: trains every registered
// forecaster on the ECL stand-in and prints a ranked comparison — the
// smallest useful version of the paper's Table II workflow, showing how to
// use the model registry and the shared Forecaster interface.
//
//   $ ./build/examples/example_model_comparison

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/registry.h"
#include "data/dataset_registry.h"
#include "train/trainer.h"

int main() {
  using namespace conformer;

  data::TimeSeries series = data::MakeDataset("ecl", 0.06, /*seed=*/23).value();
  data::WindowConfig window{.input_len = 48, .label_len = 24, .pred_len = 24};
  data::DatasetSplits splits = data::MakeSplits(series, window);
  std::printf("ECL stand-in: %lld clients, %lld hourly points\n",
              static_cast<long long>(series.dims()),
              static_cast<long long>(series.num_points()));

  train::TrainConfig tc;
  tc.epochs = 2;
  tc.learning_rate = 1.5e-3f;
  tc.max_train_batches = 30;
  tc.max_eval_batches = 8;
  train::Trainer trainer(tc);

  struct Entry {
    std::string name;
    double mse;
    double mae;
    int64_t params;
  };
  std::vector<Entry> results;
  for (const std::string& name : models::AvailableModels()) {
    if (name == "ts2vec") continue;  // univariate-only baseline (Table IV)
    models::ModelHyperParams params;
    params.d_model = 16;
    params.n_heads = 2;
    params.hidden = 16;
    auto model = models::MakeForecaster(name, window, series.dims(), params);
    if (!model.ok()) {
      std::printf("skipping %s: %s\n", name.c_str(),
                  model.status().ToString().c_str());
      continue;
    }
    trainer.Fit(model.value().get(), splits.train, splits.val);
    train::EvalMetrics m = trainer.Evaluate(model.value().get(), splits.test);
    results.push_back({model.value()->name(), m.mse, m.mae,
                       model.value()->NumParameters()});
    std::printf("  trained %-12s mse %.4f\n", model.value()->name().c_str(),
                m.mse);
  }

  std::sort(results.begin(), results.end(),
            [](const Entry& a, const Entry& b) { return a.mse < b.mse; });
  std::printf("\nranking (test MSE, standardized):\n");
  std::printf("  %-14s %-10s %-10s %s\n", "model", "MSE", "MAE", "#params");
  for (const Entry& e : results) {
    std::printf("  %-14s %-10.4f %-10.4f %lld\n", e.name.c_str(), e.mse, e.mae,
                static_cast<long long>(e.params));
  }
  return 0;
}
