// LogTrans' LogSparse attention (Li et al., 2019): each position attends to
// itself and to previous positions at exponentially growing step sizes
// (i-1, i-2, i-4, i-8, ...), so every position sees O(log L) keys.

#ifndef CONFORMER_ATTENTION_LOG_SPARSE_ATTENTION_H_
#define CONFORMER_ATTENTION_LOG_SPARSE_ATTENTION_H_

#include "attention/attention.h"

namespace conformer::attention {

class LogSparseAttention : public AttentionMechanism {
 public:
  /// `sub_len` adds that many immediately preceding neighbours on top of the
  /// exponential taps (the paper's baselines use sub_len = 1).
  explicit LogSparseAttention(int64_t sub_len = 1);

  Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                 bool causal) const override;
  bool SupportsCrossAttention() const override { return false; }
  const char* name() const override { return "log_sparse"; }

 private:
  int64_t sub_len_;
};

}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_LOG_SPARSE_ATTENTION_H_
