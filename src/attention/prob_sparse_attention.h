// Informer's ProbSparse self-attention (Zhou et al., AAAI 2021): only the
// top-u queries by the sparsity measurement M(q, K) = max_j(s_qj) -
// mean_j(s_qj) attend; the rest output the mean of V. O(L log L).

#ifndef CONFORMER_ATTENTION_PROB_SPARSE_ATTENTION_H_
#define CONFORMER_ATTENTION_PROB_SPARSE_ATTENTION_H_

#include "attention/attention.h"

namespace conformer::attention {

class ProbSparseAttention : public AttentionMechanism {
 public:
  /// `factor` scales the number of active queries: u = factor * ceil(ln Lq).
  explicit ProbSparseAttention(int64_t factor, uint64_t seed);

  Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                 bool causal) const override;
  const char* name() const override { return "prob_sparse"; }

 private:
  /// The actual computation; Forward wraps it as one opaque capture step
  /// because the top-u query selection is data-dependent host logic.
  Tensor ForwardEager(const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal) const;

  int64_t factor_;
  uint64_t seed_;
};

}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_PROB_SPARSE_ATTENTION_H_
