#include "attention/full_attention.h"

#include <cmath>
#include "util/profiler.h"

namespace conformer::attention {

namespace internal {

Tensor DenseAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal) {
  const int64_t dk = q.size(-1);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  Tensor scores = MulScalar(MatMul(q, Transpose(k, -1, -2)), scale);
  if (causal) {
    const int64_t lq = q.size(1);
    const int64_t lk = k.size(1);
    // Additive mask: -1e9 above the (shifted) diagonal. Queries are aligned
    // to the end of the key sequence when lengths differ.
    std::vector<float> mask(lq * lk, 0.0f);
    const int64_t offset = lk - lq;
    for (int64_t i = 0; i < lq; ++i) {
      for (int64_t j = i + offset + 1; j < lk; ++j) mask[i * lk + j] = -1e9f;
    }
    scores = Add(scores, Tensor::FromVector(std::move(mask), {lq, lk}));
  }
  Tensor weights = Softmax(scores, -1);
  return MatMul(weights, v);
}

}  // namespace internal

Tensor FullAttention::Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                              bool causal) const {
  CONFORMER_PROFILE_SCOPE_CAT("attention", "full");
  return internal::DenseAttention(q, k, v, causal);
}

}  // namespace conformer::attention
