// Autoformer's auto-correlation mechanism (Wu et al., NeurIPS 2021): instead
// of point-wise attention, series-level periodic dependencies are found via
// the auto-correlation of q against k, and V is aggregated across the top-k
// time-delayed copies.
//
// Candidate lags are selected with the FFT (no gradient); the per-lag scores
// and the delay aggregation are recomputed differentiably in the time domain
// so training matches the original operator (see DESIGN.md §2).

#ifndef CONFORMER_ATTENTION_AUTO_CORRELATION_H_
#define CONFORMER_ATTENTION_AUTO_CORRELATION_H_

#include "attention/attention.h"

namespace conformer::attention {

class AutoCorrelationAttention : public AttentionMechanism {
 public:
  /// top-k lags with k = factor * ceil(log L).
  explicit AutoCorrelationAttention(int64_t factor);

  Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                 bool causal) const override;
  const char* name() const override { return "auto_correlation"; }

 private:
  /// The actual computation; Forward wraps it as one opaque capture step
  /// because the FFT top-k lag selection is data-dependent host logic.
  Tensor ForwardEager(const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal) const;

  int64_t factor_;
};

}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_AUTO_CORRELATION_H_
