// Conformer's sliding-window attention (Section IV-B1): each point attends
// to w/2 neighbours on each side, giving O(w L) time and memory. Implemented
// with a differentiable banded gather rather than a dense mask so the linear
// complexity is real, not simulated.

#ifndef CONFORMER_ATTENTION_SLIDING_WINDOW_ATTENTION_H_
#define CONFORMER_ATTENTION_SLIDING_WINDOW_ATTENTION_H_

#include "attention/attention.h"

namespace conformer::attention {

class SlidingWindowAttention : public AttentionMechanism {
 public:
  /// `window` is the total width w; each side sees w/2 neighbours
  /// (plus the point itself).
  explicit SlidingWindowAttention(int64_t window);

  Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                 bool causal) const override;
  const char* name() const override { return "sliding_window"; }

 private:
  int64_t window_;
};

}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_SLIDING_WINDOW_ATTENTION_H_
