#include "attention/sliding_window_attention.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"
#include "util/profiler.h"

namespace conformer::attention {

SlidingWindowAttention::SlidingWindowAttention(int64_t window)
    : window_(window) {
  CONFORMER_CHECK_GE(window, 1);
}

Tensor SlidingWindowAttention::Forward(const Tensor& q, const Tensor& k,
                                       const Tensor& v, bool causal) const {
  CONFORMER_PROFILE_SCOPE_CAT("attention", "sliding_window");
  const int64_t bh = q.size(0);
  const int64_t lq = q.size(1);
  const int64_t lk = k.size(1);
  const int64_t dk = q.size(2);
  const int64_t dv = v.size(2);
  const int64_t half = window_ / 2;
  const int64_t width = 2 * half + 1;  // neighbours per side + self

  // Per-query key positions: centre c(i) maps query i onto the key axis
  // (identity for self-attention); out-of-range or causally-masked taps are
  // clamped and neutralized with a -1e9 additive mask.
  std::vector<int64_t> taps(lq * width);
  std::vector<float> mask(lq * width, 0.0f);
  // Each query writes its own tap row; the heavy lifting below happens in
  // the already-threaded gather/softmax/reduce kernels.
  ParallelFor(0, lq, /*grain=*/256, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t centre = lq == lk ? i : (i * lk) / lq;
      for (int64_t j = 0; j < width; ++j) {
        int64_t pos = centre - half + j;
        const bool out_of_range = pos < 0 || pos >= lk;
        const bool masked = causal && pos > centre;
        pos = std::clamp<int64_t>(pos, 0, lk - 1);
        taps[i * width + j] = pos;
        if (out_of_range || masked) mask[i * width + j] = -1e9f;
      }
    }
  });

  // Gather banded keys / values: [BH, Lq*W, d] -> [BH, Lq, W, d].
  Tensor k_band = Reshape(IndexSelect(k, 1, taps), {bh, lq, width, dk});
  Tensor v_band = Reshape(IndexSelect(v, 1, taps), {bh, lq, width, dv});

  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  Tensor q_exp = Reshape(q, {bh, lq, 1, dk});
  // scores [BH, Lq, W]
  Tensor scores = MulScalar(Sum(Mul(q_exp, k_band), {-1}), scale);
  scores = Add(scores, Tensor::FromVector(std::move(mask), {1, lq, width}));
  Tensor weights = Softmax(scores, -1);  // [BH, Lq, W]
  // out [BH, Lq, dv]
  return Sum(Mul(Reshape(weights, {bh, lq, width, 1}), v_band), {2});
}

}  // namespace conformer::attention
