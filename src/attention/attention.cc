#include "attention/attention.h"

#include "attention/auto_correlation.h"
#include "attention/full_attention.h"
#include "attention/log_sparse_attention.h"
#include "attention/lsh_attention.h"
#include "attention/prob_sparse_attention.h"
#include "attention/sliding_window_attention.h"

namespace conformer::attention {

const char* AttentionKindName(AttentionKind kind) {
  switch (kind) {
    case AttentionKind::kFull:
      return "full";
    case AttentionKind::kSlidingWindow:
      return "sliding_window";
    case AttentionKind::kProbSparse:
      return "prob_sparse";
    case AttentionKind::kLogSparse:
      return "log_sparse";
    case AttentionKind::kLsh:
      return "lsh";
    case AttentionKind::kAutoCorrelation:
      return "auto_correlation";
  }
  return "?";
}

std::unique_ptr<AttentionMechanism> MakeAttention(AttentionKind kind,
                                                  const AttentionConfig& config) {
  switch (kind) {
    case AttentionKind::kFull:
      return std::make_unique<FullAttention>();
    case AttentionKind::kSlidingWindow:
      return std::make_unique<SlidingWindowAttention>(config.window);
    case AttentionKind::kProbSparse:
      return std::make_unique<ProbSparseAttention>(config.factor, config.seed);
    case AttentionKind::kLogSparse:
      return std::make_unique<LogSparseAttention>();
    case AttentionKind::kLsh:
      return std::make_unique<LshAttention>(config.lsh_buckets,
                                            config.lsh_chunk, config.seed);
    case AttentionKind::kAutoCorrelation:
      return std::make_unique<AutoCorrelationAttention>(config.factor);
  }
  CONFORMER_CHECK(false) << "unknown attention kind";
  return nullptr;
}

}  // namespace conformer::attention
