#include "attention/multi_head_attention.h"

#include "attention/full_attention.h"
#include "util/profiler.h"

namespace conformer::attention {

MultiHeadAttention::MultiHeadAttention(int64_t d_model, int64_t n_heads,
                                       AttentionKind kind,
                                       const AttentionConfig& config)
    : d_model_(d_model), n_heads_(n_heads) {
  CONFORMER_CHECK_EQ(d_model % n_heads, 0)
      << "d_model must be divisible by n_heads";
  wq_ = RegisterModule("wq", std::make_shared<nn::Linear>(d_model, d_model));
  wk_ = RegisterModule("wk", std::make_shared<nn::Linear>(d_model, d_model));
  wv_ = RegisterModule("wv", std::make_shared<nn::Linear>(d_model, d_model));
  wo_ = RegisterModule("wo", std::make_shared<nn::Linear>(d_model, d_model));
  mechanism_ = MakeAttention(kind, config);
  cross_fallback_ = std::make_unique<FullAttention>();
}

Tensor MultiHeadAttention::SplitHeads(const Tensor& x) const {
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);
  const int64_t dh = d_model_ / n_heads_;
  Tensor reshaped = Reshape(x, {batch, length, n_heads_, dh});
  return Reshape(Permute(reshaped, {0, 2, 1, 3}), {batch * n_heads_, length, dh});
}

Tensor MultiHeadAttention::MergeHeads(const Tensor& x, int64_t batch) const {
  const int64_t length = x.size(1);
  const int64_t dh = d_model_ / n_heads_;
  Tensor reshaped = Reshape(x, {batch, n_heads_, length, dh});
  return Reshape(Permute(reshaped, {0, 2, 1, 3}), {batch, length, d_model_});
}

Tensor MultiHeadAttention::Forward(const Tensor& q, const Tensor& k,
                                   const Tensor& v, bool causal) const {
  CONFORMER_PROFILE_SCOPE_CAT("attention", "multi_head");
  // Heads are folded into the leading batch dimension by SplitHeads, so
  // per-head parallelism comes for free from the batched tensor kernels
  // (MatMul over batches, row-parallel Softmax, threaded gathers) — no
  // head loop is spawned here.
  const int64_t batch = q.size(0);
  Tensor qh = SplitHeads(wq_->Forward(q));
  Tensor kh = SplitHeads(wk_->Forward(k));
  Tensor vh = SplitHeads(wv_->Forward(v));
  const bool cross = q.size(1) != k.size(1);
  const AttentionMechanism& mech =
      cross && !mechanism_->SupportsCrossAttention() ? *cross_fallback_
                                                     : *mechanism_;
  Tensor out = mech.Forward(qh, kh, vh, causal);
  return wo_->Forward(MergeHeads(out, batch));
}

}  // namespace conformer::attention
