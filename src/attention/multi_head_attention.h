// Multi-head wrapper (Eq. 7): projects q/k/v, splits heads, delegates the
// score-and-aggregate step to an AttentionMechanism, then concatenates heads
// and applies the output projection.

#ifndef CONFORMER_ATTENTION_MULTI_HEAD_ATTENTION_H_
#define CONFORMER_ATTENTION_MULTI_HEAD_ATTENTION_H_

#include <memory>

#include "attention/attention.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace conformer::attention {

class MultiHeadAttention : public nn::Module {
 public:
  /// `d_model` must be divisible by `n_heads`.
  MultiHeadAttention(int64_t d_model, int64_t n_heads, AttentionKind kind,
                     const AttentionConfig& config = {});

  /// q/k/v: [B, L, d_model]; returns [B, Lq, d_model]. Falls back to full
  /// attention for cross shapes the mechanism does not support.
  Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                 bool causal = false) const;

  /// Self-attention convenience.
  Tensor Forward(const Tensor& x, bool causal = false) const {
    return Forward(x, x, x, causal);
  }

  const AttentionMechanism& mechanism() const { return *mechanism_; }

 private:
  Tensor SplitHeads(const Tensor& x) const;   // [B, L, d] -> [B*H, L, d/H]
  Tensor MergeHeads(const Tensor& x, int64_t batch) const;

  int64_t d_model_;
  int64_t n_heads_;
  std::shared_ptr<nn::Linear> wq_;
  std::shared_ptr<nn::Linear> wk_;
  std::shared_ptr<nn::Linear> wv_;
  std::shared_ptr<nn::Linear> wo_;
  std::unique_ptr<AttentionMechanism> mechanism_;
  std::unique_ptr<AttentionMechanism> cross_fallback_;
};

}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_MULTI_HEAD_ATTENTION_H_
