// Attention mechanism interface and factory. All of the paper's comparison
// points (Table VI, Fig. 5) are implemented behind one interface:
//
//   kFull            standard softmax attention, O(L^2)            [26]
//   kSlidingWindow   Conformer's banded attention, O(w L)          (ours)
//   kProbSparse      Informer's query-sparsity attention, O(L logL)[15]
//   kLogSparse       LogTrans' exponential-step attention          [14]
//   kLsh             Reformer's locality-sensitive hashing         [12]
//   kAutoCorrelation Autoformer's lag-aggregation operator         [13]
//
// Mechanisms consume per-head tensors [B*H, L, d] produced by
// MultiHeadAttention.

#ifndef CONFORMER_ATTENTION_ATTENTION_H_
#define CONFORMER_ATTENTION_ATTENTION_H_

#include <memory>
#include <string>

#include "tensor/ops.h"

namespace conformer::attention {

enum class AttentionKind {
  kFull,
  kSlidingWindow,
  kProbSparse,
  kLogSparse,
  kLsh,
  kAutoCorrelation,
};

/// Human-readable mechanism name ("full", "sliding_window", ...).
const char* AttentionKindName(AttentionKind kind);

/// \brief Tuning knobs shared across mechanisms (each reads what it needs).
struct AttentionConfig {
  int64_t window = 2;        ///< Sliding-window width (paper default w = 2).
  int64_t factor = 1;        ///< Sparsity factor (ProbSparse / AutoCorrelation).
  int64_t lsh_buckets = 8;   ///< Number of hash buckets (Reformer).
  int64_t lsh_chunk = 16;    ///< Chunk length for bucketed attention.
  uint64_t seed = 7;         ///< Seed for stochastic mechanisms (LSH).
};

/// \brief Strategy interface for the score-and-aggregate step.
class AttentionMechanism {
 public:
  virtual ~AttentionMechanism() = default;

  /// q [BH, Lq, dk], k [BH, Lk, dk], v [BH, Lk, dv] -> [BH, Lq, dv].
  /// `causal` masks attention to future positions where the mechanism
  /// supports it (full, sliding-window, log-sparse).
  virtual Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                         bool causal) const = 0;

  /// False for mechanisms that require Lq == Lk (self-attention only).
  virtual bool SupportsCrossAttention() const { return true; }

  virtual const char* name() const = 0;
};

/// Creates a mechanism of the given kind.
std::unique_ptr<AttentionMechanism> MakeAttention(AttentionKind kind,
                                                  const AttentionConfig& config);

namespace internal {

/// Dense softmax(q k^T / sqrt(dk)) v with optional causal mask — shared by
/// full attention and the within-bucket step of LSH.
Tensor DenseAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal);

}  // namespace internal
}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_ATTENTION_H_
