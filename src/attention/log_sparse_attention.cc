#include "attention/log_sparse_attention.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"
#include "util/profiler.h"

namespace conformer::attention {

LogSparseAttention::LogSparseAttention(int64_t sub_len) : sub_len_(sub_len) {
  CONFORMER_CHECK_GE(sub_len, 0);
}

Tensor LogSparseAttention::Forward(const Tensor& q, const Tensor& k,
                                   const Tensor& v, bool causal) const {
  CONFORMER_PROFILE_SCOPE_CAT("attention", "log_sparse");
  (void)causal;  // The log-sparse pattern is causal by construction.
  CONFORMER_CHECK_EQ(q.size(1), k.size(1))
      << "log-sparse attention is self-attention only";
  const int64_t bh = q.size(0);
  const int64_t length = q.size(1);
  const int64_t dk = q.size(2);
  const int64_t dv = v.size(2);

  // Tap pattern per position: self, sub_len neighbours, exponential steps.
  const int64_t log_taps = static_cast<int64_t>(
                               std::floor(std::log2(std::max<int64_t>(1, length)))) +
                           1;
  const int64_t width = 1 + sub_len_ + log_taps;
  std::vector<int64_t> taps(length * width);
  std::vector<float> mask(length * width, 0.0f);
  // Tap rows are independent per position.
  ParallelFor(0, length, /*grain=*/256, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      int64_t w = 0;
      auto add_tap = [&](int64_t pos) {
        const bool invalid = pos < 0;
        taps[i * width + w] = std::max<int64_t>(pos, 0);
        if (invalid) mask[i * width + w] = -1e9f;
        ++w;
      };
      add_tap(i);
      for (int64_t s = 1; s <= sub_len_; ++s) add_tap(i - s);
      for (int64_t step = sub_len_ + 1, t = 0; t < log_taps; ++t, step <<= 1) {
        add_tap(i - step);
      }
    }
  });

  Tensor k_band = Reshape(IndexSelect(k, 1, taps), {bh, length, width, dk});
  Tensor v_band = Reshape(IndexSelect(v, 1, taps), {bh, length, width, dv});

  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  Tensor q_exp = Reshape(q, {bh, length, 1, dk});
  Tensor scores = MulScalar(Sum(Mul(q_exp, k_band), {-1}), scale);
  scores = Add(scores, Tensor::FromVector(std::move(mask), {1, length, width}));
  Tensor weights = Softmax(scores, -1);
  return Sum(Mul(Reshape(weights, {bh, length, width, 1}), v_band), {2});
}

}  // namespace conformer::attention
