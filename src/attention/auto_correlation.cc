#include "attention/auto_correlation.h"

#include <algorithm>
#include <cmath>

#include "fft/autocorrelation.h"
#include "tensor/capture.h"
#include "util/profiler.h"

namespace conformer::attention {

AutoCorrelationAttention::AutoCorrelationAttention(int64_t factor)
    : factor_(factor) {
  CONFORMER_CHECK_GE(factor, 1);
}

Tensor AutoCorrelationAttention::Forward(const Tensor& q, const Tensor& k_in,
                                         const Tensor& v_in,
                                         bool causal) const {
  // The FFT lag selection is data-dependent host logic; the static runtime
  // replays the whole call as one opaque step.
  return conformer::internal::CaptureOpaque(
      "AutoCorrelationAttention", {q, k_in, v_in},
      [this, causal](const std::vector<Tensor>& in) {
        return ForwardEager(in[0], in[1], in[2], causal);
      });
}

Tensor AutoCorrelationAttention::ForwardEager(const Tensor& q,
                                              const Tensor& k_in,
                                              const Tensor& v_in,
                                              bool causal) const {
  CONFORMER_PROFILE_SCOPE_CAT("attention", "auto_correlation");
  (void)causal;  // The operator aggregates rolled series; masking does not apply.
  const int64_t bh = q.size(0);
  const int64_t lq = q.size(1);
  const int64_t lk = k_in.size(1);
  const int64_t dk = q.size(2);

  // Autoformer convention for cross attention: truncate or zero-pad keys and
  // values to the query length.
  Tensor k = k_in;
  Tensor v = v_in;
  if (lk > lq) {
    k = Slice(k, 1, 0, lq);
    v = Slice(v, 1, 0, lq);
  } else if (lk < lq) {
    k = Pad(k, 1, 0, lq - lk, 0.0f);
    v = Pad(v, 1, 0, lq - lk, 0.0f);
  }
  const int64_t length = lq;

  // --- Candidate lags from the FFT of the batch-averaged correlation. ---
  // fft::CrossCorrelation is exact and O(L log L) at any query length (it
  // folds the padded linear correlation back to circular), so non-power-of-
  // two decoder lengths no longer fall back to a direct O(L^2) scan.
  const int64_t top_k = std::min<int64_t>(
      length - 1,
      factor_ * static_cast<int64_t>(
                    std::ceil(std::log(std::max<int64_t>(2, length)))));
  std::vector<int64_t> lags;
  {
    NoGradGuard guard;
    const float* qd = q.data();
    const float* kd = k.data();
    // Average q/k over batch and channels into two 1-D series.
    std::vector<double> q_series(length, 0.0);
    std::vector<double> k_series(length, 0.0);
    for (int64_t b = 0; b < bh; ++b) {
      for (int64_t t = 0; t < length; ++t) {
        double qacc = 0.0;
        double kacc = 0.0;
        for (int64_t d = 0; d < dk; ++d) {
          qacc += qd[(b * length + t) * dk + d];
          kacc += kd[(b * length + t) * dk + d];
        }
        q_series[t] += qacc;
        k_series[t] += kacc;
      }
    }
    std::vector<double> corr = fft::CrossCorrelation(q_series, k_series);
    lags = fft::TopKLags(corr, top_k);
  }
  CONFORMER_CHECK(!lags.empty());

  // --- Differentiable per-lag scores and delay aggregation. ---
  std::vector<Tensor> scores;  // each [BH, 1]
  std::vector<Tensor> rolled_v;
  scores.reserve(lags.size());
  rolled_v.reserve(lags.size());
  for (int64_t lag : lags) {
    // R(lag) = mean_t,d ( q_t . k_{t+lag} ): roll k backwards by lag.
    Tensor k_shift = Roll(k, 1, -lag);
    scores.push_back(Mean(Mul(q, k_shift), {1, 2}, /*keepdim=*/false));
    rolled_v.push_back(Roll(v, 1, -lag));
  }
  Tensor score_mat = StackTensors(scores, /*dim=*/1);       // [BH, n_lags]
  Tensor weights = Softmax(score_mat, -1);                  // [BH, n_lags]
  Tensor out = Tensor::Zeros({bh, length, v.size(2)});
  for (size_t i = 0; i < lags.size(); ++i) {
    Tensor w = Reshape(Slice(weights, 1, static_cast<int64_t>(i),
                             static_cast<int64_t>(i) + 1),
                       {bh, 1, 1});
    out = Add(out, Mul(w, rolled_v[i]));
  }
  return out;
}

}  // namespace conformer::attention
