// Standard scaled dot-product attention (Vaswani et al.), O(L^2).

#ifndef CONFORMER_ATTENTION_FULL_ATTENTION_H_
#define CONFORMER_ATTENTION_FULL_ATTENTION_H_

#include "attention/attention.h"

namespace conformer::attention {

class FullAttention : public AttentionMechanism {
 public:
  Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                 bool causal) const override;
  const char* name() const override { return "full"; }
};

}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_FULL_ATTENTION_H_
