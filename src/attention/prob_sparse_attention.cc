#include "attention/prob_sparse_attention.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "attention/full_attention.h"
#include "tensor/capture.h"
#include "util/thread_pool.h"
#include "util/profiler.h"

namespace conformer::attention {

ProbSparseAttention::ProbSparseAttention(int64_t factor, uint64_t seed)
    : factor_(factor), seed_(seed) {
  CONFORMER_CHECK_GE(factor, 1);
}

Tensor ProbSparseAttention::Forward(const Tensor& q, const Tensor& k,
                                    const Tensor& v, bool causal) const {
  // Deterministic given (q, k, v): sampling uses a fresh Rng(seed_) per
  // call, so the static runtime may replay this as one opaque step.
  return conformer::internal::CaptureOpaque(
      "ProbSparseAttention", {q, k, v},
      [this, causal](const std::vector<Tensor>& in) {
        return ForwardEager(in[0], in[1], in[2], causal);
      });
}

Tensor ProbSparseAttention::ForwardEager(const Tensor& q, const Tensor& k,
                                         const Tensor& v, bool causal) const {
  CONFORMER_PROFILE_SCOPE_CAT("attention", "prob_sparse");
  const int64_t bh = q.size(0);
  const int64_t lq = q.size(1);
  const int64_t lk = k.size(1);
  const int64_t dk = q.size(2);

  const int64_t log_lq = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::log(static_cast<double>(lq)))));
  const int64_t log_lk = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(std::log(static_cast<double>(lk)))));
  const int64_t u = std::min(lq, factor_ * log_lq);        // active queries
  const int64_t sample = std::min(lk, factor_ * 5 * log_lk);  // sampled keys

  // --- Selection (no gradient): sparsity measurement on sampled keys. ---
  std::vector<int64_t> top_queries(bh * u);
  {
    NoGradGuard guard;
    Rng rng(seed_);
    std::vector<int64_t> key_sample(sample);
    for (int64_t s = 0; s < sample; ++s) key_sample[s] = rng.UniformInt(lk);
    const float* qd = q.data();
    const float* kd = k.data();
    // The key sample is drawn once above, so each batch's sparsity
    // measurement is independent — batch-parallel with per-batch scratch.
    ParallelFor(0, bh, /*grain=*/1, [&](int64_t b0, int64_t b1) {
      std::vector<float> m(lq);
      std::vector<int64_t> order(lq);
      for (int64_t b = b0; b < b1; ++b) {
        for (int64_t i = 0; i < lq; ++i) {
          const float* qrow = qd + (b * lq + i) * dk;
          float mx = -1e30f;
          float mean = 0.0f;
          for (int64_t s = 0; s < sample; ++s) {
            const float* krow = kd + (b * lk + key_sample[s]) * dk;
            float dot = 0.0f;
            for (int64_t d = 0; d < dk; ++d) dot += qrow[d] * krow[d];
            mx = std::max(mx, dot);
            mean += dot;
          }
          m[i] = mx - mean / static_cast<float>(sample);
        }
        std::iota(order.begin(), order.end(), 0);
        std::partial_sort(order.begin(), order.begin() + u, order.end(),
                          [&](int64_t a, int64_t c) { return m[a] > m[c]; });
        std::copy(order.begin(), order.begin() + u,
                  top_queries.begin() + b * u);
      }
    });
  }

  // --- Differentiable aggregation. ---
  // Active queries gathered per batch, full attention over all keys.
  Tensor q_sel = BatchedIndexSelect(q, top_queries, u);  // [BH, u, dk]
  Tensor attended = internal::DenseAttention(q_sel, k, v, /*causal=*/false);

  // Lazy queries output mean(V); active rows are overwritten via a one-hot
  // scatter (differentiable through both paths).
  Tensor base = BroadcastTo(Mean(v, {1}, /*keepdim=*/true),
                            {bh, lq, v.size(2)});
  std::vector<float> scatter(bh * lq * u, 0.0f);
  std::vector<float> keep(bh * lq, 1.0f);
  for (int64_t b = 0; b < bh; ++b) {
    for (int64_t c = 0; c < u; ++c) {
      const int64_t row = top_queries[b * u + c];
      scatter[(b * lq + row) * u + c] = 1.0f;
      keep[b * lq + row] = 0.0f;
    }
  }
  Tensor scatter_t = Tensor::FromVector(std::move(scatter), {bh, lq, u});
  Tensor keep_t = Tensor::FromVector(std::move(keep), {bh, lq, 1});
  (void)causal;  // Informer-style decoder masking is approximated by the
                 // mean-of-V fallback; see DESIGN.md.
  return Add(Mul(base, keep_t), MatMul(scatter_t, attended));
}

}  // namespace conformer::attention
