#include "attention/lsh_attention.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/capture.h"
#include "util/thread_pool.h"
#include "util/profiler.h"

namespace conformer::attention {

LshAttention::LshAttention(int64_t buckets, int64_t chunk, uint64_t seed)
    : buckets_(buckets), chunk_(chunk), seed_(seed) {
  CONFORMER_CHECK_GE(buckets, 2);
  CONFORMER_CHECK_GE(chunk, 1);
}

Tensor LshAttention::Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                             bool causal) const {
  // Deterministic given (q, k, v): hashing draws from a fresh Rng(seed_)
  // per call, so the static runtime may replay this as one opaque step.
  return conformer::internal::CaptureOpaque(
      "LshAttention", {q, k, v}, [this, causal](const std::vector<Tensor>& in) {
        return ForwardEager(in[0], in[1], in[2], causal);
      });
}

Tensor LshAttention::ForwardEager(const Tensor& q, const Tensor& k,
                                  const Tensor& v, bool causal) const {
  CONFORMER_PROFILE_SCOPE_CAT("attention", "lsh");
  (void)causal;  // Bucketed chunks approximate locality; causal masking is
                 // not modelled (matches this repo's encoder-only usage).
  CONFORMER_CHECK_EQ(q.size(1), k.size(1))
      << "LSH attention is self-attention only";
  const int64_t bh = q.size(0);
  const int64_t length = q.size(1);
  const int64_t dk = q.size(2);
  const int64_t dv = v.size(2);

  // --- Bucket assignment and sorted order (no gradient). ---
  // Hash on q + k (Reformer shares QK; we approximate with the sum so both
  // projections influence the buckets).
  std::vector<int64_t> order(bh * length);
  {
    NoGradGuard guard;
    Rng rng(seed_);
    const int64_t half = buckets_ / 2;
    std::vector<float> rotation(dk * half);
    for (float& r : rotation) r = static_cast<float>(rng.Normal());
    const float* qd = q.data();
    const float* kd = k.data();
    // The shared rotation is drawn once above; each batch buckets and sorts
    // independently with its own scratch.
    ParallelFor(0, bh, /*grain=*/1, [&](int64_t b0, int64_t b1) {
      std::vector<int64_t> bucket(length);
      for (int64_t b = b0; b < b1; ++b) {
        for (int64_t i = 0; i < length; ++i) {
          const float* qrow = qd + (b * length + i) * dk;
          const float* krow = kd + (b * length + i) * dk;
          float best = -1e30f;
          int64_t arg = 0;
          for (int64_t h = 0; h < half; ++h) {
            float proj = 0.0f;
            for (int64_t d = 0; d < dk; ++d) {
              proj += (qrow[d] + krow[d]) * rotation[d * half + h];
            }
            if (proj > best) {
              best = proj;
              arg = h;
            }
            if (-proj > best) {
              best = -proj;
              arg = h + half;
            }
          }
          bucket[i] = arg;
        }
        int64_t* ord = order.data() + b * length;
        std::iota(ord, ord + length, 0);
        // Stable sort keeps temporal order within a bucket.
        std::stable_sort(ord, ord + length, [&](int64_t x, int64_t y) {
          return bucket[x] < bucket[y];
        });
      }
    });
  }

  // --- Differentiable bucketed attention. ---
  // Sort q/k/v into bucket order, chunk, attend within chunk + previous
  // chunk, then scatter back through the inverse permutation.
  const int64_t num_chunks = (length + chunk_ - 1) / chunk_;
  const int64_t padded = num_chunks * chunk_;

  // Gather in sorted order, padding the tail by repeating the last position
  // with a mask.
  std::vector<int64_t> gather(bh * padded);
  std::vector<float> pad_mask(padded, 0.0f);
  for (int64_t b = 0; b < bh; ++b) {
    for (int64_t i = 0; i < padded; ++i) {
      gather[b * padded + i] = i < length ? order[b * length + i] : order[b * length + length - 1];
    }
  }
  for (int64_t i = length; i < padded; ++i) pad_mask[i] = -1e9f;

  Tensor q_sorted = BatchedIndexSelect(q, gather, padded);
  Tensor k_sorted = BatchedIndexSelect(k, gather, padded);
  Tensor v_sorted = BatchedIndexSelect(v, gather, padded);

  // Chunked views: [BH * num_chunks, chunk, d].
  Tensor q_chunks = Reshape(q_sorted, {bh * num_chunks, chunk_, dk});
  // Keys/values include the previous chunk (the standard Reformer trick):
  // prev(v_sorted) shifted by one chunk, first chunk sees itself twice —
  // masked below via scores on identical positions being natural.
  Tensor k_prev = Roll(k_sorted, 1, chunk_);
  Tensor v_prev = Roll(v_sorted, 1, chunk_);
  Tensor k_cat = Concat({Reshape(k_sorted, {bh * num_chunks, chunk_, dk}),
                         Reshape(k_prev, {bh * num_chunks, chunk_, dk})},
                        1);  // [BH*C, 2*chunk, dk]
  Tensor v_cat = Concat({Reshape(v_sorted, {bh * num_chunks, chunk_, dv}),
                         Reshape(v_prev, {bh * num_chunks, chunk_, dv})},
                        1);

  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  Tensor scores = MulScalar(MatMul(q_chunks, Transpose(k_cat, -1, -2)), scale);
  // Mask padded key slots (present in the final chunk and its successor).
  std::vector<float> key_mask(num_chunks * 2 * chunk_, 0.0f);
  for (int64_t c = 0; c < num_chunks; ++c) {
    for (int64_t j = 0; j < chunk_; ++j) {
      const int64_t self_pos = c * chunk_ + j;
      if (pad_mask[self_pos] != 0.0f) key_mask[(c * 2) * chunk_ + j] = -1e9f;
      const int64_t prev_pos =
          ((c + num_chunks - 1) % num_chunks) * chunk_ + j;
      if (pad_mask[prev_pos] != 0.0f) {
        key_mask[(c * 2 + 1) * chunk_ + j] = -1e9f;
      }
    }
  }
  Tensor key_mask_t = Reshape(
      Tensor::FromVector(std::move(key_mask), {num_chunks, 1, 2 * chunk_}),
      {num_chunks, 1, 2 * chunk_});
  key_mask_t = Tile(key_mask_t, {bh, 1, 1});  // [BH*C, 1, 2*chunk]
  scores = Add(scores, key_mask_t);
  Tensor weights = Softmax(scores, -1);
  Tensor attended = MatMul(weights, v_cat);  // [BH*C, chunk, dv]
  attended = Reshape(attended, {bh, padded, dv});

  // Inverse permutation back to temporal order (drops padding).
  std::vector<int64_t> inverse(bh * length);
  for (int64_t b = 0; b < bh; ++b) {
    for (int64_t i = 0; i < length; ++i) {
      inverse[b * length + order[b * length + i]] = i;
    }
  }
  return BatchedIndexSelect(attended, inverse, length);
}

}  // namespace conformer::attention
