// Reformer's LSH attention (Kitaev et al., ICLR 2020): queries/keys are
// bucketed by random-rotation locality-sensitive hashing; attention runs
// within sorted, fixed-size chunks (each chunk also looks back one chunk).

#ifndef CONFORMER_ATTENTION_LSH_ATTENTION_H_
#define CONFORMER_ATTENTION_LSH_ATTENTION_H_

#include "attention/attention.h"

namespace conformer::attention {

class LshAttention : public AttentionMechanism {
 public:
  LshAttention(int64_t buckets, int64_t chunk, uint64_t seed);

  Tensor Forward(const Tensor& q, const Tensor& k, const Tensor& v,
                 bool causal) const override;
  bool SupportsCrossAttention() const override { return false; }
  const char* name() const override { return "lsh"; }

 private:
  /// The actual computation; Forward wraps it as one opaque capture step
  /// because bucket hashing/sorting is data-dependent host logic.
  Tensor ForwardEager(const Tensor& q, const Tensor& k, const Tensor& v,
                      bool causal) const;

  int64_t buckets_;
  int64_t chunk_;
  uint64_t seed_;
};

}  // namespace conformer::attention

#endif  // CONFORMER_ATTENTION_LSH_ATTENTION_H_
