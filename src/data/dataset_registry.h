// Name-based access to the seven paper datasets (synthetic stand-ins) used
// by the bench harness and the examples.

#ifndef CONFORMER_DATA_DATASET_REGISTRY_H_
#define CONFORMER_DATA_DATASET_REGISTRY_H_

#include <string>
#include <vector>

#include "data/time_series.h"
#include "util/status.h"

namespace conformer::data {

/// Dataset names in the paper's Table I order.
std::vector<std::string> AvailableDatasets();

/// Builds the synthetic stand-in for `name` ("ecl", "weather", "exchange",
/// "etth1", "ettm1", "wind", "airdelay"). `scale` in (0, 1] shrinks the
/// series for CPU benches (see data/synthetic.h).
Result<TimeSeries> MakeDataset(const std::string& name, double scale = 0.1,
                               uint64_t seed = 1);

}  // namespace conformer::data

#endif  // CONFORMER_DATA_DATASET_REGISTRY_H_
