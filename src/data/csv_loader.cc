#include "data/csv_loader.h"

#include <fstream>
#include <sstream>

#include "util/civil_time.h"
#include "util/string_util.h"

namespace conformer::data {

namespace {

// Diagnostic prefix in the compiler-style "file:line[:column]:" form, with
// 1-based lines (the header is line 1) and 1-based field columns.
std::string At(const std::string& name, int64_t line) {
  return name + ":" + std::to_string(line);
}

std::string At(const std::string& name, int64_t line, int64_t column) {
  return At(name, line) + ":" + std::to_string(column);
}

}  // namespace

Result<TimeSeries> ParseCsv(const std::string& text, const std::string& name,
                            const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || Strip(line).empty()) {
    return Status::InvalidArgument(At(name, 1) +
                                   ": empty CSV (no header row)");
  }

  const std::vector<std::string> header = Split(Strip(line), options.separator);
  int64_t date_col = -1;
  std::vector<std::string> columns;
  std::vector<int64_t> value_cols;
  for (int64_t i = 0; i < static_cast<int64_t>(header.size()); ++i) {
    const std::string col = Strip(header[i]);
    if (date_col < 0 && ToLower(col) == ToLower(options.date_column)) {
      date_col = i;
    } else {
      columns.push_back(col);
      value_cols.push_back(i);
    }
  }
  if (columns.empty()) {
    return Status::InvalidArgument(At(name, 1) + ": CSV has no value columns");
  }

  std::vector<int64_t> timestamps;
  std::vector<float> values;
  int64_t row_index = 0;
  int64_t line_number = 1;  // The header was line 1.
  while (std::getline(in, line)) {
    ++line_number;
    const std::string stripped = Strip(line);
    if (stripped.empty()) continue;
    const std::vector<std::string> fields = Split(stripped, options.separator);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          At(name, line_number) + ": ragged row: " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(header.size()));
    }
    if (date_col >= 0) {
      Result<int64_t> ts = ParseTimestamp(Strip(fields[date_col]));
      if (!ts.ok()) {
        return Status::InvalidArgument(At(name, line_number, date_col + 1) +
                                       ": bad timestamp: " +
                                       ts.status().message());
      }
      timestamps.push_back(ts.value());
    } else {
      timestamps.push_back(options.start_unix +
                           row_index * options.interval_seconds);
    }
    for (size_t c = 0; c < value_cols.size(); ++c) {
      const int64_t col = value_cols[c];
      Result<double> v = ParseDouble(fields[col]);
      if (!v.ok()) {
        return Status::InvalidArgument(
            At(name, line_number, col + 1) + ": non-numeric field in column '" +
            columns[c] + "': " + v.status().message());
      }
      values.push_back(static_cast<float>(v.value()));
    }
    ++row_index;
  }
  if (timestamps.empty()) {
    return Status::InvalidArgument(At(name, line_number) +
                                   ": CSV has no data rows");
  }
  const int64_t dims = static_cast<int64_t>(columns.size());
  return TimeSeries(name, std::move(timestamps), std::move(values), dims,
                    std::move(columns));
}

Status SaveCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << "date";
  for (const std::string& name : series.column_names()) out << "," << name;
  out << "\n";
  out.precision(9);
  for (int64_t i = 0; i < series.num_points(); ++i) {
    out << FormatTimestamp(series.timestamps()[i]);
    for (int64_t d = 0; d < series.dims(); ++d) {
      out << "," << series.value(i, d);
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<TimeSeries> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), path, options);
}

}  // namespace conformer::data
