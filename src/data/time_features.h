// Calendar time features for the multiscale-dynamics embedding (Eq. 3-4)
// and the timestamp embedding of the Transformer baselines. Each timestamp
// yields one feature per temporal resolution (minute, hour, day-of-week,
// day-of-month, day-of-year), scaled into [-0.5, 0.5] — the Informer "timeF"
// convention the paper's baselines share.

#ifndef CONFORMER_DATA_TIME_FEATURES_H_
#define CONFORMER_DATA_TIME_FEATURES_H_

#include <cstdint>
#include <vector>

namespace conformer::data {

/// Number of features produced per timestamp.
inline constexpr int64_t kNumTimeFeatures = 5;

/// Row-major [timestamps.size(), kNumTimeFeatures] feature matrix.
std::vector<float> ExtractTimeFeatures(const std::vector<int64_t>& timestamps);

/// Features of one timestamp (minute, hour, weekday, monthday, yearday).
void TimeFeaturesOf(int64_t unix_seconds, float* out);

}  // namespace conformer::data

#endif  // CONFORMER_DATA_TIME_FEATURES_H_
