// Synthetic stand-ins for the paper's seven datasets (Table I). We cannot
// ship ECL / Weather / Exchange / ETT / Wind / AirDelay here, so each
// generator reproduces the statistical character the paper's analysis relies
// on — dimensionality, sampling interval, periodicity (or its absence),
// trend, regime switching, heavy tails, and irregular sampling. See
// DESIGN.md §2 for the substitution argument. Real CSVs can be loaded with
// data/csv_loader.h instead.

#ifndef CONFORMER_DATA_SYNTHETIC_H_
#define CONFORMER_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/time_series.h"

namespace conformer::data {

/// \brief One sinusoidal rhythm shared (with per-variable phase/amplitude
/// jitter) across the series.
struct SeasonalComponent {
  double period_steps = 24;  ///< Period in sampling steps.
  double amplitude = 1.0;
};

/// \brief Full description of a synthetic dataset.
struct SyntheticConfig {
  std::string name = "synthetic";
  int64_t dims = 7;
  int64_t points = 3000;
  int64_t interval_seconds = 3600;
  int64_t start_unix = 1577836800;  ///< 2020-01-01 00:00:00 UTC.
  std::vector<SeasonalComponent> seasonal;
  /// How strongly the shared latent modulates seasonal amplitudes — real
  /// load/weather cycles wax and wane, so the rhythm is conditional on the
  /// recent past rather than memorizable.
  double amplitude_modulation = 0.4;
  /// Std-dev of the per-variable random-walk phase drift (radians/step).
  double phase_drift = 0.01;
  double trend_slope = 0.0;      ///< Linear trend per 1000 steps.
  double noise_std = 0.2;
  double ar_coeff = 0.5;         ///< AR(1) coefficient of the noise.
  bool random_walk = false;      ///< Exchange-style integrated noise.
  double heavy_tail_dof = 0.0;   ///< >0 draws Student-t noise (AirDelay).
  bool irregular_intervals = false;  ///< Random gaps between samples.
  bool regime_switching = false;     ///< Two-state amplitude regimes (Wind).
  bool non_negative = false;         ///< Clamp at zero (wind power).
  double cross_coupling = 0.5;   ///< How strongly variables share signal.
  uint64_t seed = 1;
};

/// Generates a series according to `config`.
TimeSeries GenerateSynthetic(const SyntheticConfig& config);

/// Paper-dataset stand-ins. `scale` in (0, 1] shrinks point count and (for
/// ECL) dimensionality so the CPU benches stay tractable; scale = 1 matches
/// Table I sizes.
SyntheticConfig EclConfig(double scale, uint64_t seed);
SyntheticConfig WeatherConfig(double scale, uint64_t seed);
SyntheticConfig ExchangeConfig(double scale, uint64_t seed);
SyntheticConfig Etth1Config(double scale, uint64_t seed);
SyntheticConfig Ettm1Config(double scale, uint64_t seed);
SyntheticConfig WindConfig(double scale, uint64_t seed);
SyntheticConfig AirDelayConfig(double scale, uint64_t seed);

}  // namespace conformer::data

#endif  // CONFORMER_DATA_SYNTHETIC_H_
