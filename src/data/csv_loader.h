// CSV loader for the real benchmark files (ETTh1.csv etc.): a header row
// with a leading date column, then one float column per variable.

#ifndef CONFORMER_DATA_CSV_LOADER_H_
#define CONFORMER_DATA_CSV_LOADER_H_

#include <string>

#include "data/time_series.h"
#include "util/status.h"

namespace conformer::data {

/// \brief Parsing options.
struct CsvOptions {
  char separator = ',';
  /// Name of the timestamp column (matched case-insensitively); when the
  /// file has no such column, rows are stamped `interval_seconds` apart.
  std::string date_column = "date";
  int64_t interval_seconds = 3600;
  int64_t start_unix = 1577836800;
};

/// Loads `path` into a TimeSeries; every non-date column becomes a variable.
/// Malformed input (ragged rows, non-numeric fields, bad timestamps, empty
/// files) fails with a compiler-style `file:line[:column]:` diagnostic
/// instead of a best-effort parse.
Result<TimeSeries> LoadCsv(const std::string& path,
                           const CsvOptions& options = {});

/// Parses CSV text directly (used by tests).
Result<TimeSeries> ParseCsv(const std::string& text, const std::string& name,
                            const CsvOptions& options = {});

/// Writes `series` to `path` in the same date,value... format LoadCsv
/// reads (round-trip safe up to float formatting).
Status SaveCsv(const TimeSeries& series, const std::string& path);

}  // namespace conformer::data

#endif  // CONFORMER_DATA_CSV_LOADER_H_
