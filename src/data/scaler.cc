#include "data/scaler.h"

#include <cmath>

#include "util/logging.h"

namespace conformer::data {

void StandardScaler::Fit(const TimeSeries& series) {
  const int64_t n = series.num_points();
  const int64_t dims = series.dims();
  CONFORMER_CHECK_GT(n, 0);
  mean_.assign(dims, 0.0f);
  std_.assign(dims, 0.0f);
  for (int64_t d = 0; d < dims; ++d) {
    double acc = 0.0;
    for (int64_t i = 0; i < n; ++i) acc += series.value(i, d);
    mean_[d] = static_cast<float>(acc / static_cast<double>(n));
    double var = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double diff = series.value(i, d) - mean_[d];
      var += diff * diff;
    }
    std_[d] = static_cast<float>(
        std::max(std::sqrt(var / static_cast<double>(n)), 1e-8));
  }
}

TimeSeries StandardScaler::Transform(const TimeSeries& series) const {
  CONFORMER_CHECK(fitted()) << "Transform before Fit";
  CONFORMER_CHECK_EQ(series.dims(), static_cast<int64_t>(mean_.size()));
  TimeSeries out = series;
  for (int64_t i = 0; i < out.num_points(); ++i) {
    for (int64_t d = 0; d < out.dims(); ++d) {
      out.set_value(i, d, (out.value(i, d) - mean_[d]) / std_[d]);
    }
  }
  return out;
}

float StandardScaler::InverseValue(float standardized, int64_t dim) const {
  CONFORMER_CHECK(fitted());
  return standardized * std_[dim] + mean_[dim];
}

void StandardScaler::InverseInPlace(std::vector<float>* values) const {
  CONFORMER_CHECK(fitted());
  const int64_t dims = static_cast<int64_t>(mean_.size());
  CONFORMER_CHECK_EQ(static_cast<int64_t>(values->size()) % dims, 0);
  for (size_t i = 0; i < values->size(); ++i) {
    const int64_t d = static_cast<int64_t>(i) % dims;
    (*values)[i] = (*values)[i] * std_[d] + mean_[d];
  }
}

}  // namespace conformer::data
