// Rolling-window forecasting dataset (input-Lx-predict-Ly with stride one,
// Section V-A3) plus chronological train/val/test splitting and batching.
//
// Samples follow the Informer convention shared by all baselines: the
// decoder target block covers label_len known steps followed by pred_len
// steps to forecast.

#ifndef CONFORMER_DATA_WINDOW_DATASET_H_
#define CONFORMER_DATA_WINDOW_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/scaler.h"
#include "data/time_series.h"
#include "tensor/tensor.h"
#include "util/random.h"

namespace conformer::data {

/// \brief One minibatch of windowed samples.
struct Batch {
  Tensor x;       ///< [B, input_len, D] encoder input (standardized).
  Tensor x_mark;  ///< [B, input_len, F] calendar features.
  Tensor y;       ///< [B, label_len + pred_len, D] decoder block.
  Tensor y_mark;  ///< [B, label_len + pred_len, F].
  int64_t size() const { return x.defined() ? x.size(0) : 0; }
};

/// \brief Window geometry.
struct WindowConfig {
  int64_t input_len = 96;
  int64_t label_len = 48;
  int64_t pred_len = 96;
};

/// \brief Windowed view over a (standardized) TimeSeries.
class WindowDataset {
 public:
  WindowDataset(TimeSeries series, WindowConfig config);

  /// Number of complete windows.
  int64_t size() const;

  const WindowConfig& config() const { return config_; }
  int64_t dims() const { return series_.dims(); }
  const TimeSeries& series() const { return series_; }

  /// Materializes the samples at `indices` into one batch.
  Batch GetBatch(const std::vector<int64_t>& indices) const;

  /// Sequential batch [first, first+count).
  Batch GetRange(int64_t first, int64_t count) const;

 private:
  TimeSeries series_;
  WindowConfig config_;
  std::vector<float> marks_;  // [N, kNumTimeFeatures]
};

/// \brief The three chronological splits, standardized with train statistics.
struct DatasetSplits {
  WindowDataset train;
  WindowDataset val;
  WindowDataset test;
  StandardScaler scaler;
};

/// Splits by fractions (default 0.7 / 0.1 / 0.2). Val/test segments keep
/// `input_len` context rows from the preceding split so their first windows
/// exist (the Informer border convention).
DatasetSplits MakeSplits(const TimeSeries& series, const WindowConfig& config,
                         double train_frac = 0.7, double val_frac = 0.1);

/// Splits at explicit calendar boundaries (Unix seconds): rows with
/// timestamp < val_start train, < test_start validate, the rest test —
/// the "train/val/test is 12/2/2 months" convention of Table I. Fails when
/// any split is too short to hold one window.
Result<DatasetSplits> MakeSplitsByDate(const TimeSeries& series,
                                       const WindowConfig& config,
                                       int64_t val_start, int64_t test_start);

/// \brief Iterates a dataset in shuffled minibatches.
class BatchIterator {
 public:
  BatchIterator(const WindowDataset& dataset, int64_t batch_size, bool shuffle,
                Rng* rng = nullptr);

  /// Next minibatch; false when the epoch is exhausted.
  bool Next(Batch* batch);

  /// Advances past `n` batches without materializing them (checkpoint
  /// resume: re-shuffle, then skip the batches the interrupted run already
  /// consumed).
  void Skip(int64_t n);

  /// Restarts the epoch (reshuffling when enabled).
  void Reset();

  int64_t num_batches() const;

 private:
  const WindowDataset& dataset_;
  int64_t batch_size_;
  bool shuffle_;
  Rng* rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace conformer::data

#endif  // CONFORMER_DATA_WINDOW_DATASET_H_
