// Multivariate time-series container: a timestamp column plus a dense
// row-major value matrix [num_points, dims].

#ifndef CONFORMER_DATA_TIME_SERIES_H_
#define CONFORMER_DATA_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace conformer::data {

class TimeSeries {
 public:
  TimeSeries() = default;
  /// `values` is row-major [num_points, dims]; timestamps are Unix seconds.
  TimeSeries(std::string name, std::vector<int64_t> timestamps,
             std::vector<float> values, int64_t dims,
             std::vector<std::string> column_names = {});

  const std::string& name() const { return name_; }
  int64_t num_points() const { return static_cast<int64_t>(timestamps_.size()); }
  int64_t dims() const { return dims_; }

  const std::vector<int64_t>& timestamps() const { return timestamps_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }
  const std::vector<std::string>& column_names() const { return column_names_; }

  float value(int64_t point, int64_t dim) const {
    return values_[point * dims_ + dim];
  }
  void set_value(int64_t point, int64_t dim, float v) {
    values_[point * dims_ + dim] = v;
  }

  /// The column forecast under the univariate setting (default: last).
  int64_t target_column() const { return target_column_; }
  void set_target_column(int64_t column);

  /// Rows [begin, end) as a new TimeSeries.
  TimeSeries Slice(int64_t begin, int64_t end) const;

  /// A single column as a univariate TimeSeries.
  TimeSeries Column(int64_t dim) const;

  /// Pearson correlation between two columns (Fig. 2 support).
  double ColumnCorrelation(int64_t a, int64_t b) const;

  /// Reduces temporal resolution by `factor`: keeps every factor-th
  /// timestamp; values are block means when `average`, else point samples.
  /// (E.g. factor 4 turns the 15-minute ETTm1 grid into ETTh1's hourly one.)
  TimeSeries Downsample(int64_t factor, bool average = true) const;

 private:
  std::string name_;
  std::vector<int64_t> timestamps_;
  std::vector<float> values_;
  int64_t dims_ = 0;
  int64_t target_column_ = 0;
  std::vector<std::string> column_names_;
};

}  // namespace conformer::data

#endif  // CONFORMER_DATA_TIME_SERIES_H_
