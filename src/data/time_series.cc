#include "data/time_series.h"

#include <cmath>

#include "util/logging.h"

namespace conformer::data {

TimeSeries::TimeSeries(std::string name, std::vector<int64_t> timestamps,
                       std::vector<float> values, int64_t dims,
                       std::vector<std::string> column_names)
    : name_(std::move(name)),
      timestamps_(std::move(timestamps)),
      values_(std::move(values)),
      dims_(dims),
      column_names_(std::move(column_names)) {
  CONFORMER_CHECK_GT(dims_, 0);
  CONFORMER_CHECK_EQ(static_cast<int64_t>(values_.size()),
                     static_cast<int64_t>(timestamps_.size()) * dims_)
      << "value matrix does not match timestamps x dims";
  if (column_names_.empty()) {
    for (int64_t d = 0; d < dims_; ++d) {
      column_names_.push_back("col" + std::to_string(d));
    }
  }
  CONFORMER_CHECK_EQ(static_cast<int64_t>(column_names_.size()), dims_);
  target_column_ = dims_ - 1;
}

void TimeSeries::set_target_column(int64_t column) {
  CONFORMER_CHECK(column >= 0 && column < dims_);
  target_column_ = column;
}

TimeSeries TimeSeries::Slice(int64_t begin, int64_t end) const {
  CONFORMER_CHECK(begin >= 0 && end <= num_points() && begin < end)
      << "bad slice [" << begin << ", " << end << ")";
  std::vector<int64_t> ts(timestamps_.begin() + begin, timestamps_.begin() + end);
  std::vector<float> vals(values_.begin() + begin * dims_,
                          values_.begin() + end * dims_);
  TimeSeries out(name_, std::move(ts), std::move(vals), dims_, column_names_);
  out.target_column_ = target_column_;
  return out;
}

TimeSeries TimeSeries::Column(int64_t dim) const {
  CONFORMER_CHECK(dim >= 0 && dim < dims_);
  std::vector<float> vals(num_points());
  for (int64_t i = 0; i < num_points(); ++i) vals[i] = value(i, dim);
  TimeSeries out(name_ + "/" + column_names_[dim], timestamps_, std::move(vals),
                 1, {column_names_[dim]});
  return out;
}

TimeSeries TimeSeries::Downsample(int64_t factor, bool average) const {
  CONFORMER_CHECK_GE(factor, 1);
  const int64_t n = num_points() / factor;
  CONFORMER_CHECK_GT(n, 0) << "factor larger than the series";
  std::vector<int64_t> ts(n);
  std::vector<float> vals(n * dims_);
  for (int64_t i = 0; i < n; ++i) {
    ts[i] = timestamps_[i * factor];
    for (int64_t d = 0; d < dims_; ++d) {
      if (average) {
        double acc = 0.0;
        for (int64_t k = 0; k < factor; ++k) acc += value(i * factor + k, d);
        vals[i * dims_ + d] = static_cast<float>(acc / factor);
      } else {
        vals[i * dims_ + d] = value(i * factor, d);
      }
    }
  }
  TimeSeries out(name_ + "/x" + std::to_string(factor), std::move(ts),
                 std::move(vals), dims_, column_names_);
  out.target_column_ = target_column_;
  return out;
}

double TimeSeries::ColumnCorrelation(int64_t a, int64_t b) const {
  const int64_t n = num_points();
  CONFORMER_CHECK_GT(n, 1);
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    mean_a += value(i, a);
    mean_b += value(i, b);
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double da = value(i, a) - mean_a;
    const double db = value(i, b) - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  const double denom = std::sqrt(var_a * var_b);
  return denom > 0.0 ? cov / denom : 0.0;
}

}  // namespace conformer::data
