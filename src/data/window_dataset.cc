#include "data/window_dataset.h"

#include <algorithm>

#include "data/time_features.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace conformer::data {

WindowDataset::WindowDataset(TimeSeries series, WindowConfig config)
    : series_(std::move(series)), config_(config) {
  CONFORMER_CHECK_GT(config_.input_len, 0);
  CONFORMER_CHECK_GE(config_.label_len, 0);
  CONFORMER_CHECK_GT(config_.pred_len, 0);
  CONFORMER_CHECK_LE(config_.label_len, config_.input_len)
      << "label section is a suffix of the encoder input";
  marks_ = ExtractTimeFeatures(series_.timestamps());
  CONFORMER_CHECK_GT(size(), 0)
      << "series of " << series_.num_points() << " points has no window of "
      << config_.input_len << "+" << config_.pred_len;
}

int64_t WindowDataset::size() const {
  return series_.num_points() - config_.input_len - config_.pred_len + 1;
}

Batch WindowDataset::GetBatch(const std::vector<int64_t>& indices) const {
  const int64_t batch = static_cast<int64_t>(indices.size());
  CONFORMER_CHECK_GT(batch, 0);
  const int64_t lx = config_.input_len;
  const int64_t ly = config_.label_len + config_.pred_len;
  const int64_t dims = series_.dims();
  const int64_t f = kNumTimeFeatures;

  std::vector<float> x(batch * lx * dims);
  std::vector<float> xm(batch * lx * f);
  std::vector<float> y(batch * ly * dims);
  std::vector<float> ym(batch * ly * f);

  const std::vector<float>& vals = series_.values();
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t start = indices[b];
    CONFORMER_CHECK(start >= 0 && start < size()) << "window index out of range";
    const int64_t y_start = start + lx - config_.label_len;
    std::copy(vals.begin() + start * dims, vals.begin() + (start + lx) * dims,
              x.begin() + b * lx * dims);
    std::copy(marks_.begin() + start * f, marks_.begin() + (start + lx) * f,
              xm.begin() + b * lx * f);
    std::copy(vals.begin() + y_start * dims,
              vals.begin() + (y_start + ly) * dims, y.begin() + b * ly * dims);
    std::copy(marks_.begin() + y_start * f, marks_.begin() + (y_start + ly) * f,
              ym.begin() + b * ly * f);
  }

  Batch out;
  out.x = Tensor::FromVector(std::move(x), {batch, lx, dims});
  out.x_mark = Tensor::FromVector(std::move(xm), {batch, lx, f});
  out.y = Tensor::FromVector(std::move(y), {batch, ly, dims});
  out.y_mark = Tensor::FromVector(std::move(ym), {batch, ly, f});
  return out;
}

Batch WindowDataset::GetRange(int64_t first, int64_t count) const {
  std::vector<int64_t> indices(count);
  for (int64_t i = 0; i < count; ++i) indices[i] = first + i;
  return GetBatch(indices);
}

DatasetSplits MakeSplits(const TimeSeries& series, const WindowConfig& config,
                         double train_frac, double val_frac) {
  const int64_t n = series.num_points();
  const int64_t train_end = static_cast<int64_t>(n * train_frac);
  const int64_t val_end = static_cast<int64_t>(n * (train_frac + val_frac));
  CONFORMER_CHECK(train_end > config.input_len + config.pred_len)
      << "train split too small";
  CONFORMER_CHECK(val_end > train_end && n > val_end) << "degenerate splits";

  StandardScaler scaler;
  scaler.Fit(series.Slice(0, train_end));
  const TimeSeries scaled = scaler.Transform(series);

  // Val / test keep input_len rows of context from the previous split.
  const int64_t val_begin = std::max<int64_t>(0, train_end - config.input_len);
  const int64_t test_begin = std::max<int64_t>(0, val_end - config.input_len);
  return DatasetSplits{
      WindowDataset(scaled.Slice(0, train_end), config),
      WindowDataset(scaled.Slice(val_begin, val_end), config),
      WindowDataset(scaled.Slice(test_begin, n), config),
      scaler,
  };
}

Result<DatasetSplits> MakeSplitsByDate(const TimeSeries& series,
                                       const WindowConfig& config,
                                       int64_t val_start, int64_t test_start) {
  if (val_start >= test_start) {
    return Status::InvalidArgument("val_start must precede test_start");
  }
  const std::vector<int64_t>& ts = series.timestamps();
  const int64_t n = series.num_points();
  const auto first_at_or_after = [&](int64_t stamp) {
    return static_cast<int64_t>(
        std::lower_bound(ts.begin(), ts.end(), stamp) - ts.begin());
  };
  const int64_t train_end = first_at_or_after(val_start);
  const int64_t val_end = first_at_or_after(test_start);

  const int64_t min_rows = config.input_len + config.pred_len;
  if (train_end < min_rows) {
    return Status::InvalidArgument("train split shorter than one window");
  }
  if (val_end - std::max<int64_t>(0, train_end - config.input_len) < min_rows ||
      n - std::max<int64_t>(0, val_end - config.input_len) < min_rows) {
    return Status::InvalidArgument("val/test split shorter than one window");
  }

  StandardScaler scaler;
  scaler.Fit(series.Slice(0, train_end));
  const TimeSeries scaled = scaler.Transform(series);
  const int64_t val_begin = std::max<int64_t>(0, train_end - config.input_len);
  const int64_t test_begin = std::max<int64_t>(0, val_end - config.input_len);
  return DatasetSplits{
      WindowDataset(scaled.Slice(0, train_end), config),
      WindowDataset(scaled.Slice(val_begin, val_end), config),
      WindowDataset(scaled.Slice(test_begin, n), config),
      scaler,
  };
}

BatchIterator::BatchIterator(const WindowDataset& dataset, int64_t batch_size,
                             bool shuffle, Rng* rng)
    : dataset_(dataset), batch_size_(batch_size), shuffle_(shuffle), rng_(rng) {
  CONFORMER_CHECK_GT(batch_size, 0);
  order_.resize(dataset.size());
  Reset();
}

void BatchIterator::Reset() {
  cursor_ = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(order_.size()); ++i) order_[i] = i;
  if (shuffle_) {
    Rng& rng = rng_ != nullptr ? *rng_ : GlobalRng();
    order_ = rng.Permutation(static_cast<int64_t>(order_.size()));
  }
}

bool BatchIterator::Next(Batch* batch) {
  CONFORMER_PROFILE_SCOPE_CAT("data", "batch_next");
  if (cursor_ >= static_cast<int64_t>(order_.size())) return false;
  const int64_t end = std::min<int64_t>(cursor_ + batch_size_,
                                        static_cast<int64_t>(order_.size()));
  std::vector<int64_t> indices(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  *batch = dataset_.GetBatch(indices);
  return true;
}

void BatchIterator::Skip(int64_t n) {
  CONFORMER_CHECK_GE(n, 0);
  cursor_ = std::min<int64_t>(cursor_ + n * batch_size_,
                              static_cast<int64_t>(order_.size()));
}

int64_t BatchIterator::num_batches() const {
  return (static_cast<int64_t>(order_.size()) + batch_size_ - 1) / batch_size_;
}

}  // namespace conformer::data
