#include "data/dataset_registry.h"

#include "data/synthetic.h"
#include "util/string_util.h"

namespace conformer::data {

std::vector<std::string> AvailableDatasets() {
  return {"ecl", "weather", "exchange", "etth1", "ettm1", "wind", "airdelay"};
}

Result<TimeSeries> MakeDataset(const std::string& name, double scale,
                               uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const std::string key = ToLower(name);
  SyntheticConfig config;
  if (key == "ecl") {
    config = EclConfig(scale, seed);
  } else if (key == "weather") {
    config = WeatherConfig(scale, seed);
  } else if (key == "exchange") {
    config = ExchangeConfig(scale, seed);
  } else if (key == "etth1") {
    config = Etth1Config(scale, seed);
  } else if (key == "ettm1") {
    config = Ettm1Config(scale, seed);
  } else if (key == "wind") {
    config = WindConfig(scale, seed);
  } else if (key == "airdelay") {
    config = AirDelayConfig(scale, seed);
  } else {
    return Status::NotFound("unknown dataset '" + name + "'");
  }
  return GenerateSynthetic(config);
}

}  // namespace conformer::data
