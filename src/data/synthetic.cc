#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/logging.h"
#include "util/random.h"

namespace conformer::data {

TimeSeries GenerateSynthetic(const SyntheticConfig& config) {
  CONFORMER_CHECK_GT(config.dims, 0);
  CONFORMER_CHECK_GT(config.points, 1);
  Rng rng(config.seed);

  const int64_t n = config.points;
  const int64_t dims = config.dims;

  // Timestamps: regular grid, optionally with random gaps (AirDelay's
  // varying interval).
  std::vector<int64_t> timestamps(n);
  {
    int64_t t = config.start_unix;
    for (int64_t i = 0; i < n; ++i) {
      timestamps[i] = t;
      int64_t step = config.interval_seconds;
      if (config.irregular_intervals) {
        step = std::max<int64_t>(
            1, static_cast<int64_t>(step * rng.Uniform(0.2, 2.5)));
      }
      t += step;
    }
  }

  // Per-variable rhythm parameters: phase offsets, amplitude jitter, and a
  // variable-specific mix against the shared latent signal.
  std::vector<double> phase(dims * config.seasonal.size());
  std::vector<double> amp(dims * config.seasonal.size());
  for (auto& p : phase) p = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  for (auto& a : amp) a = rng.Uniform(0.6, 1.4);

  // Two-state regime chain (calm / gusty) for wind-style data.
  std::vector<double> regime(n, 1.0);
  if (config.regime_switching) {
    double level = 1.0;
    for (int64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.01)) level = level > 1.5 ? 0.6 : 2.2;  // ramp
      regime[i] = level;
    }
  }

  // Shared latent AR(1) process that couples the variables.
  std::vector<double> latent(n);
  {
    double state = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      state = 0.9 * state + rng.Normal(0.0, 0.3);
      latent[i] = state;
    }
  }

  std::vector<float> values(n * dims);
  std::vector<double> ar_state(dims, 0.0);
  std::vector<double> walk(dims, 0.0);
  std::vector<double> drift(dims, 0.0);  // slow per-variable phase drift
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t d = 0; d < dims; ++d) {
      if (config.phase_drift > 0.0) {
        drift[d] += rng.Normal(0.0, config.phase_drift);
      }
      // Seasonal amplitude waxes and wanes with the shared latent state, so
      // the cycle must be inferred from the window, not memorized.
      const double modulation =
          1.0 + config.amplitude_modulation * std::tanh(latent[i]);
      double v = 0.0;
      for (size_t s = 0; s < config.seasonal.size(); ++s) {
        const SeasonalComponent& comp = config.seasonal[s];
        v += comp.amplitude * amp[d * config.seasonal.size() + s] * modulation *
             std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                          comp.period_steps +
                      phase[d * config.seasonal.size() + s] + drift[d]);
      }
      v += config.trend_slope * static_cast<double>(i) / 1000.0;
      v += config.cross_coupling * latent[i];
      double noise = config.heavy_tail_dof > 0.0
                         ? rng.StudentT(config.heavy_tail_dof) * config.noise_std
                         : rng.Normal(0.0, config.noise_std);
      ar_state[d] = config.ar_coeff * ar_state[d] + noise;
      if (config.random_walk) {
        walk[d] += ar_state[d] * 0.1;
        v += walk[d];
      } else {
        v += ar_state[d];
      }
      v *= regime[i];
      if (config.non_negative) v = std::max(v + 2.0, 0.0);  // shifted, clipped
      values[i * dims + d] = static_cast<float>(v);
    }
  }

  std::vector<std::string> names(dims);
  for (int64_t d = 0; d < dims; ++d) names[d] = "var" + std::to_string(d);
  names.back() = "target";
  return TimeSeries(config.name, std::move(timestamps), std::move(values),
                    dims, std::move(names));
}

namespace {
int64_t Scaled(int64_t full, double scale, int64_t minimum) {
  return std::max<int64_t>(minimum,
                           static_cast<int64_t>(full * std::min(scale, 1.0)));
}
}  // namespace

SyntheticConfig EclConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "ecl";
  c.dims = Scaled(321, scale, 8);            // 321 clients at full scale
  c.points = Scaled(26304, scale, 1200);
  c.interval_seconds = 3600;
  c.seasonal = {{24, 1.0}, {168, 0.6}};      // daily + weekly consumption
  c.trend_slope = 0.05;
  c.noise_std = 0.25;
  c.ar_coeff = 0.4;
  c.cross_coupling = 0.7;                    // strong grid-level coupling
  c.seed = seed;
  return c;
}

SyntheticConfig WeatherConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "weather";
  c.dims = 21;
  c.points = Scaled(36761, scale, 1200);
  c.interval_seconds = 600;
  c.seasonal = {{144, 1.0}, {1008, 0.4}};    // daily + weekly at 10-min steps
  c.trend_slope = 0.02;
  c.noise_std = 0.2;
  c.ar_coeff = 0.7;                          // smooth meteorological noise
  c.cross_coupling = 0.5;
  c.seed = seed;
  return c;
}

SyntheticConfig ExchangeConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "exchange";
  c.dims = 8;
  c.points = Scaled(7588, scale, 1200);
  c.interval_seconds = 86400;
  c.seasonal = {};                           // no periodicity (paper, §V-B)
  c.random_walk = true;
  c.noise_std = 0.15;
  c.ar_coeff = 0.1;
  c.cross_coupling = 0.3;
  c.seed = seed;
  return c;
}

SyntheticConfig Etth1Config(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "etth1";
  c.dims = 7;
  c.points = Scaled(17420, scale, 1200);
  c.interval_seconds = 3600;
  c.seasonal = {{24, 1.0}, {168, 0.5}};      // transformer load cycles
  c.trend_slope = -0.03;
  c.noise_std = 0.3;
  c.ar_coeff = 0.5;
  c.cross_coupling = 0.6;
  c.seed = seed;
  return c;
}

SyntheticConfig Ettm1Config(double scale, uint64_t seed) {
  SyntheticConfig c = Etth1Config(scale, seed);
  c.name = "ettm1";
  c.points = Scaled(69680, scale, 1600);
  c.interval_seconds = 900;
  c.seasonal = {{96, 1.0}, {672, 0.5}};      // same cycles at 15-min steps
  return c;
}

SyntheticConfig WindConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "wind";
  c.dims = 7;
  c.points = Scaled(45550, scale, 1400);
  c.interval_seconds = 900;
  c.seasonal = {{96, 0.5}};                  // weak diurnal signal
  c.noise_std = 0.5;
  c.ar_coeff = 0.8;                          // persistent wind regimes
  c.regime_switching = true;
  c.non_negative = true;                     // generated power >= 0
  c.cross_coupling = 0.6;
  c.seed = seed;
  return c;
}

SyntheticConfig AirDelayConfig(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "airdelay";
  c.dims = 6;
  c.points = Scaled(54451, scale, 1400);
  c.interval_seconds = 49;                   // ~54k arrivals in one month
  c.seasonal = {{1200, 0.4}};                // weak daily congestion wave
  c.noise_std = 0.6;
  c.ar_coeff = 0.2;
  c.heavy_tail_dof = 3.0;                    // heavy-tailed delays
  c.irregular_intervals = true;              // varying time between flights
  c.cross_coupling = 0.4;
  c.seed = seed;
  return c;
}

}  // namespace conformer::data
