// Per-column standardization fitted on the training split, applied to all
// splits (the evaluation convention of Informer/Autoformer that the paper
// follows).

#ifndef CONFORMER_DATA_SCALER_H_
#define CONFORMER_DATA_SCALER_H_

#include <vector>

#include "data/time_series.h"

namespace conformer::data {

class StandardScaler {
 public:
  /// Estimates per-column mean/std from `series` (std floors at 1e-8).
  void Fit(const TimeSeries& series);

  /// Returns a standardized copy.
  TimeSeries Transform(const TimeSeries& series) const;

  /// Undoes the transform for column `dim` of a scalar value.
  float InverseValue(float standardized, int64_t dim) const;

  /// Undoes the transform in-place for a [.., dims] flat buffer.
  void InverseInPlace(std::vector<float>* values) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& std() const { return std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

}  // namespace conformer::data

#endif  // CONFORMER_DATA_SCALER_H_
