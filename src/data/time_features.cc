#include "data/time_features.h"

#include "util/civil_time.h"

namespace conformer::data {

void TimeFeaturesOf(int64_t unix_seconds, float* out) {
  const CivilTime ct = CivilFromUnixSeconds(unix_seconds);
  out[0] = static_cast<float>(ct.minute) / 59.0f - 0.5f;
  out[1] = static_cast<float>(ct.hour) / 23.0f - 0.5f;
  out[2] = static_cast<float>(DayOfWeek(unix_seconds)) / 6.0f - 0.5f;
  out[3] = static_cast<float>(ct.day - 1) / 30.0f - 0.5f;
  out[4] = static_cast<float>(DayOfYear(unix_seconds) - 1) / 365.0f - 0.5f;
}

std::vector<float> ExtractTimeFeatures(const std::vector<int64_t>& timestamps) {
  std::vector<float> out(timestamps.size() * kNumTimeFeatures);
  for (size_t i = 0; i < timestamps.size(); ++i) {
    TimeFeaturesOf(timestamps[i], out.data() + i * kNumTimeFeatures);
  }
  return out;
}

}  // namespace conformer::data
