#include "data/time_features.h"

#include "util/civil_time.h"

namespace conformer::data {

void TimeFeaturesOf(int64_t unix_seconds, float* out) {
  const CivilTime ct = CivilFromUnixSeconds(unix_seconds);
  out[0] = static_cast<float>(ct.minute) / 59.0f - 0.5f;
  out[1] = static_cast<float>(ct.hour) / 23.0f - 0.5f;
  out[2] = static_cast<float>(DayOfWeek(unix_seconds)) / 6.0f - 0.5f;
  out[3] = static_cast<float>(ct.day - 1) / 30.0f - 0.5f;
  // Normalize by the actual year length: a fixed 365 pushed day 366 of leap
  // years past the documented [-0.5, 0.5] range. Like the other features,
  // the divisor is cardinality - 1 so Jan 1 -> -0.5 and Dec 31 -> +0.5 in
  // every year.
  const int days_in_year = IsLeapYear(ct.year) ? 366 : 365;
  out[4] = static_cast<float>(DayOfYear(unix_seconds) - 1) /
               static_cast<float>(days_in_year - 1) -
           0.5f;
}

std::vector<float> ExtractTimeFeatures(const std::vector<int64_t>& timestamps) {
  std::vector<float> out(timestamps.size() * kNumTimeFeatures);
  for (size_t i = 0; i < timestamps.size(); ++i) {
    TimeFeaturesOf(timestamps[i], out.data() + i * kNumTimeFeatures);
  }
  return out;
}

}  // namespace conformer::data
