// LSTM baseline — the classic recurrent forecaster the paper's related
// work builds on (Hochreiter & Schmidhuber [20]); included as a library
// extension beyond the paper's Table II baseline set.

#ifndef CONFORMER_BASELINES_LSTM_FORECASTER_H_
#define CONFORMER_BASELINES_LSTM_FORECASTER_H_

#include <memory>

#include "baselines/forecaster.h"
#include "nn/linear.h"
#include "nn/lstm.h"

namespace conformer::models {

class LstmForecaster : public Forecaster {
 public:
  LstmForecaster(data::WindowConfig window, int64_t dims, int64_t hidden = 32,
                 int64_t layers = 2);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "LSTM"; }

 private:
  std::shared_ptr<nn::Linear> embed_;
  std::shared_ptr<nn::Lstm> lstm_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_LSTM_FORECASTER_H_
