// DeepAR-style probabilistic forecaster (Salinas et al. [9] in the paper's
// related work): a GRU encoder with a Gaussian output head per horizon
// step, trained by negative log-likelihood. Included as a library extension
// beyond the paper's baseline set — it gives a second uncertainty-aware
// model to compare the normalizing flow against.

#ifndef CONFORMER_BASELINES_DEEPAR_H_
#define CONFORMER_BASELINES_DEEPAR_H_

#include <memory>

#include "baselines/forecaster.h"
#include "flow/gaussian_head.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace conformer::models {

class DeepAr : public Forecaster {
 public:
  DeepAr(data::WindowConfig window, int64_t dims, int64_t hidden = 32,
         int64_t layers = 2, uint64_t seed = 19);

  /// Point prediction = the Gaussian mean.
  Tensor Forward(const data::Batch& batch) const override;

  /// Gaussian negative log-likelihood of the target block.
  Tensor Loss(const data::Batch& batch) override;

  std::string name() const override { return "DeepAR"; }

  /// Draws `num_samples` trajectories and summarizes them into a band.
  flow::UncertaintyBand PredictWithUncertainty(const data::Batch& batch,
                                               int64_t num_samples,
                                               double coverage);

 private:
  /// (mu, sigma), each [B, pred_len, dims]; sigma > 0 via softplus.
  std::pair<Tensor, Tensor> Distribution(const data::Batch& batch) const;

  std::shared_ptr<nn::Linear> embed_;
  std::shared_ptr<nn::Gru> gru_;
  std::shared_ptr<nn::Linear> mu_head_;
  std::shared_ptr<nn::Linear> sigma_head_;
  mutable Rng rng_;  // Ancestral sampling; mutated by const Forward.
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_DEEPAR_H_
