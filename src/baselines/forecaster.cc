#include "baselines/forecaster.h"

namespace conformer::models {

Tensor Forecaster::Loss(const data::Batch& batch) {
  return MseLoss(Forward(batch), TargetBlock(batch));
}

Tensor Forecaster::Predict(const data::Batch& batch) const {
  CONFORMER_CHECK(!training())
      << name() << ": Predict() requires eval() mode";
  NoGradGuard no_grad;
  return Forward(batch);
}

Tensor Forecaster::TargetBlock(const data::Batch& batch) const {
  const int64_t total = batch.y.size(1);
  return Slice(batch.y, 1, total - window_.pred_len, total);
}

Tensor Forecaster::DecoderInput(const data::Batch& batch) const {
  if (window_.label_len == 0) {
    return Tensor::Zeros({batch.size(), window_.pred_len, dims_});
  }
  Tensor label = Slice(batch.y, 1, 0, window_.label_len).Detach();
  return Pad(label, 1, 0, window_.pred_len, 0.0f);
}

}  // namespace conformer::models
