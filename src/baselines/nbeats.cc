#include "baselines/nbeats.h"

namespace conformer::models {

NBeatsBlock::NBeatsBlock(int64_t input_size, int64_t forecast_size,
                         int64_t hidden) {
  int64_t in = input_size;
  for (int64_t i = 0; i < 4; ++i) {
    trunk_.push_back(RegisterModule("fc" + std::to_string(i),
                                    std::make_shared<nn::Linear>(in, hidden)));
    in = hidden;
  }
  backcast_ = RegisterModule("backcast",
                             std::make_shared<nn::Linear>(hidden, input_size));
  forecast_ = RegisterModule(
      "forecast", std::make_shared<nn::Linear>(hidden, forecast_size));
}

std::pair<Tensor, Tensor> NBeatsBlock::Forward(const Tensor& x) const {
  Tensor h = x;
  for (const auto& fc : trunk_) h = Relu(fc->Forward(h));
  return {backcast_->Forward(h), forecast_->Forward(h)};
}

NBeats::NBeats(data::WindowConfig window, int64_t dims, int64_t blocks,
               int64_t hidden)
    : Forecaster(window, dims) {
  const int64_t input_size = window.input_len * dims;
  const int64_t forecast_size = window.pred_len * dims;
  for (int64_t i = 0; i < blocks; ++i) {
    blocks_.push_back(RegisterModule(
        "block" + std::to_string(i),
        std::make_shared<NBeatsBlock>(input_size, forecast_size, hidden)));
  }
}

Tensor NBeats::Forward(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.size(0);
  Tensor residual = Reshape(batch.x, {batch_size, -1});
  Tensor forecast;
  for (const auto& block : blocks_) {
    auto [backcast, partial] = block->Forward(residual);
    residual = Sub(residual, backcast);
    forecast = forecast.defined() ? Add(forecast, partial) : partial;
  }
  return Reshape(forecast, {batch_size, window_.pred_len, dims_});
}

}  // namespace conformer::models
