#include "baselines/registry.h"

#include "baselines/deepar.h"
#include "baselines/gru_forecaster.h"
#include "baselines/linear_forecaster.h"
#include "baselines/lstm_forecaster.h"
#include "baselines/lstnet.h"
#include "baselines/naive.h"
#include "baselines/nbeats.h"
#include "baselines/timesnet_lite.h"
#include "baselines/transformer_forecaster.h"
#include "baselines/ts2vec.h"
#include "core/conformer_model.h"
#include "util/string_util.h"

namespace conformer::models {

std::vector<std::string> AvailableModels() {
  return {"conformer", "longformer", "autoformer", "informer",
          "reformer",  "logtrans",   "transformer", "gru",
          "lstm",      "lstnet",     "nbeats",      "ts2vec",
          "deepar",    "timesnet",   "linear",      "naive",
          "seasonal_naive"};
}

Result<std::unique_ptr<Forecaster>> MakeForecaster(
    const std::string& name, data::WindowConfig window, int64_t dims,
    const ModelHyperParams& params) {
  const std::string key = ToLower(name);

  if (key == "conformer") {
    core::ConformerConfig config;
    config.d_model = params.d_model;
    config.n_heads = params.n_heads;
    config.ma_kernel = params.ma_kernel;
    config.dropout = params.dropout;
    config.seed = params.seed;
    if (params.univariate) config.dec_rnn_layers = 1;
    return std::unique_ptr<Forecaster>(
        std::make_unique<core::ConformerModel>(config, window, dims));
  }

  auto make_transformer =
      [&](TransformerConfig config) -> std::unique_ptr<Forecaster> {
    config.d_model = params.d_model;
    config.n_heads = params.n_heads;
    config.d_ff = 2 * params.d_model;
    config.ma_kernel = params.ma_kernel;
    config.dropout = params.dropout;
    config.attn.seed = params.seed;
    return std::make_unique<TransformerForecaster>(config, window, dims);
  };

  if (key == "longformer") return make_transformer(LongformerConfig());
  if (key == "informer") return make_transformer(InformerConfig());
  if (key == "autoformer") return make_transformer(AutoformerConfig());
  if (key == "reformer") return make_transformer(ReformerConfig());
  if (key == "logtrans") return make_transformer(LogTransConfig());
  if (key == "transformer") {
    return make_transformer(VanillaTransformerConfig());
  }

  if (key == "gru") {
    return std::unique_ptr<Forecaster>(
        std::make_unique<GruForecaster>(window, dims, params.hidden));
  }
  if (key == "lstm") {
    return std::unique_ptr<Forecaster>(
        std::make_unique<LstmForecaster>(window, dims, params.hidden));
  }
  if (key == "deepar") {
    return std::unique_ptr<Forecaster>(std::make_unique<DeepAr>(
        window, dims, params.hidden, /*layers=*/2, params.seed));
  }
  if (key == "linear") {
    return std::unique_ptr<Forecaster>(
        std::make_unique<LinearForecaster>(window, dims));
  }
  if (key == "naive") {
    return std::unique_ptr<Forecaster>(
        std::make_unique<NaiveForecaster>(window, dims));
  }
  if (key == "seasonal_naive") {
    return std::unique_ptr<Forecaster>(std::make_unique<SeasonalNaiveForecaster>(
        window, dims, params.seasonal_period));
  }
  if (key == "lstnet") {
    return std::unique_ptr<Forecaster>(std::make_unique<LstNet>(
        window, dims, params.hidden, /*kernel=*/6, params.hidden,
        params.dropout));
  }
  if (key == "nbeats") {
    return std::unique_ptr<Forecaster>(
        std::make_unique<NBeats>(window, dims, /*blocks=*/3,
                                 2 * params.hidden));
  }
  if (key == "ts2vec") {
    return std::unique_ptr<Forecaster>(
        std::make_unique<Ts2Vec>(window, dims, params.hidden));
  }
  if (key == "timesnet") {
    return std::unique_ptr<Forecaster>(std::make_unique<TimesNetLite>(
        window, dims, params.d_model, /*top_k=*/3));
  }

  return Status::NotFound("unknown model '" + name + "'");
}

}  // namespace conformer::models
