// Parameter-free reference forecasters: the last-value ("naive") and
// last-period ("seasonal naive") predictors every forecasting study is
// sanity-checked against. A learned model that cannot beat these on a
// periodic dataset is not learning.

#ifndef CONFORMER_BASELINES_NAIVE_H_
#define CONFORMER_BASELINES_NAIVE_H_

#include "baselines/forecaster.h"

namespace conformer::models {

/// \brief Repeats the final observed value across the horizon.
class NaiveForecaster : public Forecaster {
 public:
  NaiveForecaster(data::WindowConfig window, int64_t dims)
      : Forecaster(window, dims) {}

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "Naive"; }
};

/// \brief Repeats the value one season back: y_{t+h} = x_{t+h-period}
/// (wrapping within the input window when the horizon exceeds the period).
class SeasonalNaiveForecaster : public Forecaster {
 public:
  /// `period` is clamped to the input length.
  SeasonalNaiveForecaster(data::WindowConfig window, int64_t dims,
                          int64_t period);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "SeasonalNaive"; }

  int64_t period() const { return period_; }

 private:
  int64_t period_;
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_NAIVE_H_
