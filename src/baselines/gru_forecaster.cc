#include "baselines/gru_forecaster.h"

namespace conformer::models {

GruForecaster::GruForecaster(data::WindowConfig window, int64_t dims,
                             int64_t hidden, int64_t layers)
    : Forecaster(window, dims) {
  embed_ = RegisterModule("embed", std::make_shared<nn::Linear>(dims, hidden));
  gru_ = RegisterModule("gru", std::make_shared<nn::Gru>(hidden, hidden, layers));
  head_ = RegisterModule(
      "head", std::make_shared<nn::Linear>(hidden, window.pred_len * dims));
}

Tensor GruForecaster::Forward(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.size(0);
  nn::GruOutput out = gru_->Forward(embed_->Forward(batch.x));
  // Final top-layer state summarizes the window.
  Tensor last = Squeeze(Slice(out.last_hidden, 0, gru_->num_layers() - 1,
                              gru_->num_layers()),
                        0);
  return Reshape(head_->Forward(last), {batch_size, window_.pred_len, dims_});
}

}  // namespace conformer::models
