// N-BEATS baseline (Oreshkin et al., ICLR 2020): a deep stack of fully
// connected blocks with backward (backcast) and forward residual links,
// generic (identity) basis. Extended to the multivariate setting by
// flattening the variable axis, as Section V-A2 prescribes.

#ifndef CONFORMER_BASELINES_NBEATS_H_
#define CONFORMER_BASELINES_NBEATS_H_

#include <memory>
#include <vector>

#include "baselines/forecaster.h"
#include "nn/linear.h"

namespace conformer::models {

/// \brief One generic N-BEATS block: 4-layer FC trunk feeding backcast and
/// forecast heads.
class NBeatsBlock : public nn::Module {
 public:
  NBeatsBlock(int64_t input_size, int64_t forecast_size, int64_t hidden);

  /// x [B, input_size] -> (backcast [B, input_size], forecast [B, fcst]).
  std::pair<Tensor, Tensor> Forward(const Tensor& x) const;

 private:
  std::vector<std::shared_ptr<nn::Linear>> trunk_;
  std::shared_ptr<nn::Linear> backcast_;
  std::shared_ptr<nn::Linear> forecast_;
};

class NBeats : public Forecaster {
 public:
  NBeats(data::WindowConfig window, int64_t dims, int64_t blocks = 3,
         int64_t hidden = 64);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "N-Beats"; }

 private:
  std::vector<std::shared_ptr<NBeatsBlock>> blocks_;
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_NBEATS_H_
