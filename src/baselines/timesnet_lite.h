// TimesNet-lite baseline (Wu et al., ICLR 2023 recipe, grounding the
// frequency-decomposition related-work line of MMFNet / TFDNet): select the
// top-k dominant periods of the input from its real-FFT amplitude spectrum,
// fold the embedded series into a (cycles x period) grid per period, run a
// small 2-D conv block over each grid, and recombine the per-period branches
// with softmax amplitude weights plus a residual.
//
// Two deliberate deviations from the reference implementation, both
// documented in DESIGN.md:
//   * Period selection is per series (per batch row), not batch-mean: a
//     row's forecast is a pure function of that row, so the serving layer's
//     batched-vs-single bitwise-transparency contract holds.
//   * The non-differentiable frequency index selection happens on the host
//     (an internal::CaptureOpaque site, so static-plan replay stays legal);
//     the amplitude weights are then recomputed differentiably by projecting
//     the channel-mean series onto the selected cos/sin basis, keeping them
//     on the autograd tape exactly as the exemplars' topk-amplitude softmax.

#ifndef CONFORMER_BASELINES_TIMESNET_LITE_H_
#define CONFORMER_BASELINES_TIMESNET_LITE_H_

#include <memory>
#include <vector>

#include "baselines/forecaster.h"
#include "fft/autocorrelation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace conformer::models {

class TimesNetLite : public Forecaster {
 public:
  TimesNetLite(data::WindowConfig window, int64_t dims, int64_t d_model = 32,
               int64_t top_k = 3);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "TimesNet-lite"; }

  /// Dominant periods of one embedded row [1, L, M] — exposed for tests.
  std::vector<fft::PeriodCandidate> SelectPeriods(const Tensor& row) const;

 private:
  /// The period-adaptive block over [B, L, M] (the CaptureOpaque body).
  Tensor BlockEager(const Tensor& x) const;
  /// One row [1, L, M]: fold / conv / recombine with residual.
  Tensor RowEager(const Tensor& row) const;

  int64_t top_k_;
  std::shared_ptr<nn::Linear> embed_;      // D -> M
  std::shared_ptr<nn::Conv2dLayer> conv1_; // M -> M over (cycles, period)
  std::shared_ptr<nn::Conv2dLayer> conv2_; // M -> M
  std::shared_ptr<nn::Linear> time_head_;  // L -> pred_len
  std::shared_ptr<nn::Linear> proj_;       // M -> D
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_TIMESNET_LITE_H_
