#include "baselines/lstm_forecaster.h"

namespace conformer::models {

LstmForecaster::LstmForecaster(data::WindowConfig window, int64_t dims,
                               int64_t hidden, int64_t layers)
    : Forecaster(window, dims) {
  embed_ = RegisterModule("embed", std::make_shared<nn::Linear>(dims, hidden));
  lstm_ = RegisterModule("lstm",
                         std::make_shared<nn::Lstm>(hidden, hidden, layers));
  head_ = RegisterModule(
      "head", std::make_shared<nn::Linear>(hidden, window.pred_len * dims));
}

Tensor LstmForecaster::Forward(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.size(0);
  nn::LstmOutput out = lstm_->Forward(embed_->Forward(batch.x));
  Tensor last = Squeeze(Slice(out.last_hidden, 0, lstm_->num_layers() - 1,
                              lstm_->num_layers()),
                        0);
  return Reshape(head_->Forward(last), {batch_size, window_.pred_len, dims_});
}

}  // namespace conformer::models
