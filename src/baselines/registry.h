// Name-based model factory used by the bench harness and examples.

#ifndef CONFORMER_BASELINES_REGISTRY_H_
#define CONFORMER_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "util/status.h"

namespace conformer::models {

/// \brief Size knobs shared across models so comparisons stay fair.
struct ModelHyperParams {
  int64_t d_model = 32;
  int64_t n_heads = 4;
  int64_t hidden = 32;   ///< RNN / FC hidden size for non-Transformer models.
  /// Moving-average width of the series decompositions (Conformer SIRN and
  /// Autoformer); should stay well below the window length.
  int64_t ma_kernel = 25;
  float dropout = 0.05f;
  uint64_t seed = 7;
  bool univariate = false;  ///< Selects the univariate Conformer RNN depths.
  int64_t seasonal_period = 24;  ///< Season length for "seasonal_naive".
};

/// Model names accepted by MakeForecaster.
std::vector<std::string> AvailableModels();

/// Builds a model by name: "conformer", "longformer", "autoformer",
/// "informer", "reformer", "logtrans", "transformer", "gru", "lstnet",
/// "nbeats", "ts2vec", "timesnet".
Result<std::unique_ptr<Forecaster>> MakeForecaster(
    const std::string& name, data::WindowConfig window, int64_t dims,
    const ModelHyperParams& params = {});

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_REGISTRY_H_
