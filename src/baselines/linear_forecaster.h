// Direct linear forecaster — the VAR-family statistical baseline the
// paper's related work opens with (§II-A): the forecast block is a single
// linear map of the flattened input window. Trainable by gradient descent
// through the common Forecaster interface, or fitted in closed form by
// ridge least squares (the classical estimator).

#ifndef CONFORMER_BASELINES_LINEAR_FORECASTER_H_
#define CONFORMER_BASELINES_LINEAR_FORECASTER_H_

#include <memory>

#include "baselines/forecaster.h"
#include "nn/linear.h"
#include "util/status.h"

namespace conformer::models {

class LinearForecaster : public Forecaster {
 public:
  LinearForecaster(data::WindowConfig window, int64_t dims);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "Linear(VAR)"; }

  /// Closed-form ridge fit on every window of `dataset` (replaces the
  /// current weights). This is the classical VAR estimator; after it, no
  /// gradient training is needed.
  Status FitLeastSquares(const data::WindowDataset& dataset,
                         double ridge = 1e-3, int64_t max_windows = 4096);

 private:
  std::shared_ptr<nn::Linear> head_;  // [input_len*dims -> pred_len*dims]
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_LINEAR_FORECASTER_H_
