#include "baselines/lstnet.h"

namespace conformer::models {

LstNet::LstNet(data::WindowConfig window, int64_t dims, int64_t channels,
               int64_t kernel, int64_t hidden, float dropout)
    : Forecaster(window, dims) {
  // Valid convolution shortens the sequence by kernel-1; the GRU consumes
  // the resulting feature sequence.
  CONFORMER_CHECK_GT(window.input_len, kernel);
  conv_ = RegisterModule(
      "conv", std::make_shared<nn::Conv1dLayer>(dims, channels, kernel,
                                                /*padding=*/0));
  gru_ = RegisterModule("gru", std::make_shared<nn::Gru>(channels, hidden, 1));
  dropout_ = RegisterModule("dropout", std::make_shared<nn::Dropout>(dropout));
  head_ = RegisterModule(
      "head", std::make_shared<nn::Linear>(hidden, window.pred_len * dims));
}

Tensor LstNet::Forward(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.size(0);
  // [B, L, D] -> [B, D, L] -> conv -> [B, C, L'] -> [B, L', C]
  Tensor features = Relu(conv_->Forward(Permute(batch.x, {0, 2, 1})));
  features = dropout_->Forward(Permute(features, {0, 2, 1}));
  nn::GruOutput out = gru_->Forward(features);
  Tensor last = Squeeze(Slice(out.last_hidden, 0, 0, 1), 0);
  return Reshape(head_->Forward(last), {batch_size, window_.pred_len, dims_});
}

}  // namespace conformer::models
