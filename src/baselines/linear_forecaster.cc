#include "baselines/linear_forecaster.h"

#include <algorithm>

#include "util/linalg.h"

namespace conformer::models {

LinearForecaster::LinearForecaster(data::WindowConfig window, int64_t dims)
    : Forecaster(window, dims) {
  head_ = RegisterModule(
      "head", std::make_shared<nn::Linear>(window.input_len * dims,
                                           window.pred_len * dims));
}

Tensor LinearForecaster::Forward(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.size(0);
  Tensor flat = Reshape(batch.x, {batch_size, -1});
  return Reshape(head_->Forward(flat), {batch_size, window_.pred_len, dims_});
}

Status LinearForecaster::FitLeastSquares(const data::WindowDataset& dataset,
                                         double ridge, int64_t max_windows) {
  const int64_t features = window_.input_len * dims_ + 1;  // +1 for bias
  const int64_t outputs = window_.pred_len * dims_;
  const int64_t rows = std::min<int64_t>(dataset.size(), max_windows);
  if (rows < 2) return Status::InvalidArgument("not enough windows to fit");

  // Assemble the design matrix (with a bias column) and targets.
  std::vector<double> x(rows * features);
  std::vector<double> y(rows * outputs);
  // Spread the sampled origins evenly across the dataset.
  const int64_t stride = std::max<int64_t>(1, dataset.size() / rows);
  for (int64_t r = 0; r < rows; ++r) {
    data::Batch batch = dataset.GetRange(r * stride, 1);
    const float* in = batch.x.data();
    for (int64_t i = 0; i < features - 1; ++i) {
      x[r * features + i] = in[i];
    }
    x[r * features + features - 1] = 1.0;  // bias
    const int64_t total = batch.y.size(1);
    Tensor target = Slice(batch.y, 1, total - window_.pred_len, total);
    const float* out = target.data();
    for (int64_t i = 0; i < outputs; ++i) y[r * outputs + i] = out[i];
  }

  Result<std::vector<double>> solved =
      RidgeLeastSquares(x, rows, features, y, outputs, ridge);
  if (!solved.ok()) return solved.status();
  const std::vector<double>& w = solved.value();

  // Write back into the Linear layer (weight [in, out] + bias [out]).
  std::vector<Tensor> params = head_->Parameters();
  Tensor weight = params[0];
  Tensor bias = params[1];
  for (int64_t i = 0; i < features - 1; ++i) {
    for (int64_t o = 0; o < outputs; ++o) {
      weight.data()[i * outputs + o] = static_cast<float>(w[i * outputs + o]);
    }
  }
  for (int64_t o = 0; o < outputs; ++o) {
    bias.data()[o] = static_cast<float>(w[(features - 1) * outputs + o]);
  }
  return Status::OK();
}

}  // namespace conformer::models
