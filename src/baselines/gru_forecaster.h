// GRU baseline (Table II "GRU [21]"): a stacked GRU over the input window
// whose final state is projected onto the whole forecast horizon at once
// (the one-step / direct multi-horizon strategy all baselines share).

#ifndef CONFORMER_BASELINES_GRU_FORECASTER_H_
#define CONFORMER_BASELINES_GRU_FORECASTER_H_

#include <memory>

#include "baselines/forecaster.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace conformer::models {

class GruForecaster : public Forecaster {
 public:
  /// Paper setting: 2-layer GRU, hidden size from {16, 24, 32, 64}.
  GruForecaster(data::WindowConfig window, int64_t dims, int64_t hidden = 32,
                int64_t layers = 2);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "GRU"; }

 private:
  std::shared_ptr<nn::Linear> embed_;
  std::shared_ptr<nn::Gru> gru_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_GRU_FORECASTER_H_
