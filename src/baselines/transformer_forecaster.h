// Generic encoder-decoder Transformer forecaster parameterized by the
// attention mechanism — instantiating the paper's Transformer baselines:
//
//   Longformer  = sliding-window attention (wide window)        [16]
//   Informer    = ProbSparse attention + distilling encoder     [15]
//   Autoformer  = auto-correlation + series decomposition,
//                 no positional encoding                        [13]
//   Reformer    = LSH attention                                 [12]
//   LogTrans    = LogSparse causal convolution attention        [14]
//   Transformer = full attention                                [26]

#ifndef CONFORMER_BASELINES_TRANSFORMER_FORECASTER_H_
#define CONFORMER_BASELINES_TRANSFORMER_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "attention/multi_head_attention.h"
#include "baselines/forecaster.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"

namespace conformer::models {

/// \brief Hyper-parameters of the generic Transformer forecaster.
struct TransformerConfig {
  std::string display_name = "Transformer";
  int64_t d_model = 32;
  int64_t n_heads = 4;
  int64_t enc_layers = 2;
  int64_t dec_layers = 1;
  int64_t d_ff = 64;
  attention::AttentionKind kind = attention::AttentionKind::kFull;
  attention::AttentionConfig attn;
  float dropout = 0.05f;
  bool distill = false;        ///< Informer's self-attention distilling.
  bool decomposition = false;  ///< Autoformer's seasonal-trend wiring.
  int64_t ma_kernel = 25;      ///< Decomposition window when enabled.
  bool positional = true;      ///< Autoformer omits the positional term.
};

/// \brief One encoder layer: self attention + feed-forward (optionally
/// seasonal-trend decomposed).
class TransformerEncoderLayer : public nn::Module {
 public:
  explicit TransformerEncoderLayer(const TransformerConfig& config);
  Tensor Forward(const Tensor& x) const;

 private:
  const bool decomposition_;
  const int64_t ma_kernel_;
  std::shared_ptr<attention::MultiHeadAttention> self_;
  std::shared_ptr<nn::Linear> ff1_;
  std::shared_ptr<nn::Linear> ff2_;
  std::shared_ptr<nn::LayerNorm> norm1_;
  std::shared_ptr<nn::LayerNorm> norm2_;
  std::shared_ptr<nn::Dropout> dropout_;
};

/// \brief One decoder layer: causal self attention, cross attention to the
/// encoder memory, feed-forward; accumulates the trend stream when
/// decomposition is enabled.
class TransformerDecoderLayer : public nn::Module {
 public:
  explicit TransformerDecoderLayer(const TransformerConfig& config);

  /// Returns the seasonal stream; adds any distilled trend into `*trend`.
  Tensor Forward(const Tensor& x, const Tensor& memory, Tensor* trend) const;

 private:
  const bool decomposition_;
  const int64_t ma_kernel_;
  std::shared_ptr<attention::MultiHeadAttention> self_;
  std::shared_ptr<attention::MultiHeadAttention> cross_;
  std::shared_ptr<nn::Linear> ff1_;
  std::shared_ptr<nn::Linear> ff2_;
  std::shared_ptr<nn::LayerNorm> norm1_;
  std::shared_ptr<nn::LayerNorm> norm2_;
  std::shared_ptr<nn::LayerNorm> norm3_;
  std::shared_ptr<nn::Dropout> dropout_;
};

class TransformerForecaster : public Forecaster {
 public:
  TransformerForecaster(const TransformerConfig& config,
                        data::WindowConfig window, int64_t dims);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return config_.display_name; }

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  std::shared_ptr<nn::DataEmbedding> enc_embed_;
  std::shared_ptr<nn::DataEmbedding> dec_embed_;
  std::vector<std::shared_ptr<TransformerEncoderLayer>> enc_layers_;
  std::vector<std::shared_ptr<nn::Conv1dLayer>> distill_convs_;
  std::vector<std::shared_ptr<TransformerDecoderLayer>> dec_layers_;
  std::shared_ptr<nn::Linear> out_proj_;
  std::shared_ptr<nn::Linear> trend_proj_;
};

/// Ready-made configs for the named baselines.
TransformerConfig LongformerConfig();
TransformerConfig InformerConfig();
TransformerConfig AutoformerConfig();
TransformerConfig ReformerConfig();
TransformerConfig LogTransConfig();
TransformerConfig VanillaTransformerConfig();

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_TRANSFORMER_FORECASTER_H_
