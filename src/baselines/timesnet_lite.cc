#include "baselines/timesnet_lite.h"

#include <cmath>
#include <complex>

#include "fft/fft.h"
#include "tensor/capture.h"
#include "util/profiler.h"

namespace conformer::models {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

TimesNetLite::TimesNetLite(data::WindowConfig window, int64_t dims,
                           int64_t d_model, int64_t top_k)
    : Forecaster(window, dims), top_k_(top_k) {
  CONFORMER_CHECK_GE(top_k, 1);
  CONFORMER_CHECK_GE(window.input_len, 2)
      << "TimesNet-lite needs at least one non-DC frequency bin";
  embed_ = RegisterModule("embed", std::make_shared<nn::Linear>(dims, d_model));
  conv1_ = RegisterModule(
      "conv1", std::make_shared<nn::Conv2dLayer>(d_model, d_model, 3, 3,
                                                 /*padding=*/1));
  conv2_ = RegisterModule(
      "conv2", std::make_shared<nn::Conv2dLayer>(d_model, d_model, 3, 3,
                                                 /*padding=*/1));
  time_head_ = RegisterModule(
      "time_head",
      std::make_shared<nn::Linear>(window.input_len, window.pred_len));
  proj_ = RegisterModule("proj", std::make_shared<nn::Linear>(d_model, dims));
}

Tensor TimesNetLite::Forward(const data::Batch& batch) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "timesnet_lite");
  Tensor emb = embed_->Forward(batch.x);  // [B, L, M]
  // The FFT period selection is data-dependent host logic; the static
  // runtime replays the whole block as one opaque step (the same idiom as
  // AutoCorrelationAttention and InputRepresentation::MultivariateWeights).
  Tensor mixed = conformer::internal::CaptureOpaque(
      "TimesNetLiteBlock", {emb},
      [this](const std::vector<Tensor>& in) { return BlockEager(in[0]); });
  Tensor h = Permute(mixed, {0, 2, 1});  // [B, M, L]
  h = time_head_->Forward(h);            // [B, M, pred_len]
  h = Permute(h, {0, 2, 1});             // [B, pred_len, M]
  return proj_->Forward(h);              // [B, pred_len, D]
}

std::vector<fft::PeriodCandidate> TimesNetLite::SelectPeriods(
    const Tensor& row) const {
  // Host-side index selection over raw values; nothing here is on the tape.
  NoGradGuard guard;
  const int64_t length = row.size(1);
  const int64_t channels = row.size(2);
  const float* xd = row.data();
  std::vector<double> series(length, 0.0);
  for (int64_t t = 0; t < length; ++t) {
    double acc = 0.0;
    for (int64_t m = 0; m < channels; ++m) acc += xd[t * channels + m];
    series[t] = acc / static_cast<double>(channels);
  }
  const std::vector<std::complex<double>> spectrum = fft::RealFft(series);
  std::vector<double> amplitude(length / 2 + 1);
  for (size_t f = 0; f < amplitude.size(); ++f) {
    amplitude[f] = std::abs(spectrum[f]);
  }
  return fft::TopKPeriods(amplitude, length, top_k_);
}

Tensor TimesNetLite::BlockEager(const Tensor& x) const {
  const int64_t batch = x.size(0);
  // Per-series period selection (not the reference implementation's
  // batch-mean): each row's periods depend only on that row, so every
  // row's output is bitwise independent of its batch-mates and the serving
  // layer's batched-vs-single transparency contract holds.
  std::vector<Tensor> rows;
  rows.reserve(batch);
  for (int64_t b = 0; b < batch; ++b) {
    rows.push_back(RowEager(Slice(x, 0, b, b + 1)));
  }
  return batch == 1 ? rows.front() : Concat(rows, 0);
}

Tensor TimesNetLite::RowEager(const Tensor& row) const {
  const int64_t length = row.size(1);
  const int64_t channels = row.size(2);
  const std::vector<fft::PeriodCandidate> periods = SelectPeriods(row);
  if (periods.empty()) return row;  // No non-DC bin: pass through.
  const int64_t n = static_cast<int64_t>(periods.size());

  // Differentiable amplitude weights for the selected frequencies: project
  // the channel-mean series onto constant cos/sin basis vectors and take
  // |X[f]| = sqrt(re^2 + im^2). Only the indices came from the opaque FFT;
  // these amplitudes (and their softmax) stay on the autograd tape.
  std::vector<float> cos_basis(length * n);
  std::vector<float> sin_basis(length * n);
  for (int64_t t = 0; t < length; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      const double angle =
          kTwoPi * static_cast<double>(periods[i].frequency) * t / length;
      cos_basis[t * n + i] = static_cast<float>(std::cos(angle));
      sin_basis[t * n + i] = static_cast<float>(std::sin(angle));
    }
  }
  Tensor bc = Tensor::FromVector(std::move(cos_basis), {length, n});
  Tensor bs = Tensor::FromVector(std::move(sin_basis), {length, n});
  Tensor xm = Mean(row, {2});  // [1, L] channel-mean series
  Tensor re = MatMul(xm, bc);  // [1, n]
  Tensor im = MatMul(xm, bs);  // [1, n]
  Tensor amp = Sqrt(AddScalar(Add(Mul(re, re), Mul(im, im)), 1e-12f));
  Tensor weights = Softmax(amp, -1);  // [1, n]

  Tensor grid_in = Permute(row, {0, 2, 1});  // [1, M, L]
  Tensor acc;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t period = periods[i].period;
    const int64_t cycles = (length + period - 1) / period;
    // Ragged tail: zero-pad to a whole number of cycles when the period
    // does not divide the window.
    Tensor padded = grid_in;
    if (cycles * period != length) {
      padded = Pad(grid_in, /*dim=*/2, 0, cycles * period - length);
    }
    Tensor grid = Reshape(padded, {1, channels, cycles, period});
    Tensor g = conv2_->Forward(Gelu(conv1_->Forward(grid)));
    Tensor flat = Reshape(g, {1, channels, cycles * period});
    if (cycles * period != length) flat = Slice(flat, 2, 0, length);
    Tensor branch = Permute(flat, {0, 2, 1});  // [1, L, M]
    Tensor w = Reshape(Slice(weights, 1, i, i + 1), {1, 1, 1});
    Tensor term = Mul(w, branch);
    acc = acc.defined() ? Add(acc, term) : term;
  }
  return Add(row, acc);  // Residual around the period-adaptive mix.
}

}  // namespace conformer::models
