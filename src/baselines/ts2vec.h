// TS2Vec-lite baseline (Yue et al., AAAI 2022), used for univariate LTTF in
// Table IV: a dilated-convolution encoder trained with an instance +
// temporal contrastive objective over two stochastically masked views, and
// a linear forecasting head on the final-timestep representation (standing
// in for the original's ridge regression — see DESIGN.md §2).

#ifndef CONFORMER_BASELINES_TS2VEC_H_
#define CONFORMER_BASELINES_TS2VEC_H_

#include <memory>
#include <vector>

#include "baselines/forecaster.h"
#include "nn/conv1d.h"
#include "nn/linear.h"

namespace conformer::models {

class Ts2Vec : public Forecaster {
 public:
  Ts2Vec(data::WindowConfig window, int64_t dims, int64_t hidden = 32,
         float mask_prob = 0.15f, float contrastive_weight = 0.5f);

  Tensor Forward(const data::Batch& batch) const override;

  /// Contrastive objective + forecasting MSE (the head learns from a
  /// detached representation to mimic the two-stage protocol).
  Tensor Loss(const data::Batch& batch) override;

  std::string name() const override { return "TS2Vec"; }

 private:
  /// Per-timestep representation [B, L, hidden]; `mask` drops random
  /// timesteps before encoding (training augmentation).
  Tensor Encode(const Tensor& x, bool mask) const;

  int64_t hidden_;
  float mask_prob_;
  float contrastive_weight_;
  std::shared_ptr<nn::Linear> input_proj_;
  std::vector<std::shared_ptr<nn::Conv1dLayer>> dilated_;  // dilations 1,2,4
  std::shared_ptr<nn::Linear> head_;
  mutable Rng rng_;  // Timestamp masking; mutated by const Encode.
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_TS2VEC_H_
