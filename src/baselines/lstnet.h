// LSTNet baseline (Lai et al., SIGIR 2018): convolution over the input
// window for short-term cross-variable patterns, a GRU for longer trends,
// and a direct multi-horizon head. Matching Section V-A2, the skip-recurrent
// and highway components are omitted.

#ifndef CONFORMER_BASELINES_LSTNET_H_
#define CONFORMER_BASELINES_LSTNET_H_

#include <memory>

#include "baselines/forecaster.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace conformer::models {

class LstNet : public Forecaster {
 public:
  LstNet(data::WindowConfig window, int64_t dims, int64_t channels = 32,
         int64_t kernel = 6, int64_t hidden = 32, float dropout = 0.1f);

  Tensor Forward(const data::Batch& batch) const override;
  std::string name() const override { return "LSTNet"; }

 private:
  std::shared_ptr<nn::Conv1dLayer> conv_;
  std::shared_ptr<nn::Gru> gru_;
  std::shared_ptr<nn::Dropout> dropout_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_LSTNET_H_
