#include "baselines/deepar.h"

#include <cmath>
#include <numbers>

namespace conformer::models {

DeepAr::DeepAr(data::WindowConfig window, int64_t dims, int64_t hidden,
               int64_t layers, uint64_t seed)
    : Forecaster(window, dims), rng_(seed) {
  embed_ = RegisterModule("embed", std::make_shared<nn::Linear>(dims, hidden));
  gru_ = RegisterModule("gru", std::make_shared<nn::Gru>(hidden, hidden, layers));
  mu_head_ = RegisterModule(
      "mu_head", std::make_shared<nn::Linear>(hidden, window.pred_len * dims));
  sigma_head_ = RegisterModule(
      "sigma_head",
      std::make_shared<nn::Linear>(hidden, window.pred_len * dims));
}

std::pair<Tensor, Tensor> DeepAr::Distribution(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.size(0);
  nn::GruOutput out = gru_->Forward(embed_->Forward(batch.x));
  Tensor last = Squeeze(Slice(out.last_hidden, 0, gru_->num_layers() - 1,
                              gru_->num_layers()),
                        0);
  const Shape shape{batch_size, window_.pred_len, dims_};
  Tensor mu = Reshape(mu_head_->Forward(last), shape);
  // Softplus keeps sigma positive; the +1e-3 floor avoids NLL blow-ups.
  Tensor sigma = AddScalar(Softplus(Reshape(sigma_head_->Forward(last), shape)),
                           1e-3f);
  return {mu, sigma};
}

Tensor DeepAr::Forward(const data::Batch& batch) const {
  return Distribution(batch).first;
}

Tensor DeepAr::Loss(const data::Batch& batch) {
  auto [mu, sigma] = Distribution(batch);
  Tensor target = TargetBlock(batch).Detach();
  // NLL = 0.5 * ((y - mu) / sigma)^2 + log(sigma) + 0.5 log(2 pi)
  Tensor z = Div(Sub(target, mu), sigma);
  Tensor nll = Add(MulScalar(Mul(z, z), 0.5f), Log(sigma));
  constexpr float kHalfLog2Pi =
      0.5f * 1.8378770664093453f;  // 0.5 * log(2*pi)
  return AddScalar(Mean(nll), kHalfLog2Pi);
}

flow::UncertaintyBand DeepAr::PredictWithUncertainty(const data::Batch& batch,
                                                     int64_t num_samples,
                                                     double coverage) {
  NoGradGuard guard;
  SetTraining(false);
  auto [mu, sigma] = Distribution(batch);
  std::vector<Tensor> samples;
  samples.reserve(num_samples);
  for (int64_t s = 0; s < num_samples; ++s) {
    Tensor eps = Tensor::Randn(mu.shape(), &rng_);
    samples.push_back(Add(mu, Mul(sigma, eps)));
  }
  return flow::SummarizeSamples(samples, coverage);
}

}  // namespace conformer::models
