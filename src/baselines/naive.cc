#include "baselines/naive.h"

#include <algorithm>

namespace conformer::models {

Tensor NaiveForecaster::Forward(const data::Batch& batch) const {
  const int64_t lx = batch.x.size(1);
  Tensor last = Slice(batch.x, 1, lx - 1, lx);  // [B, 1, D]
  std::vector<int64_t> reps = {1, window_.pred_len, 1};
  return Tile(last.Detach(), reps);
}

SeasonalNaiveForecaster::SeasonalNaiveForecaster(data::WindowConfig window,
                                                 int64_t dims, int64_t period)
    : Forecaster(window, dims),
      period_(std::clamp<int64_t>(period, 1, window.input_len)) {}

Tensor SeasonalNaiveForecaster::Forward(const data::Batch& batch) const {
  const int64_t lx = batch.x.size(1);
  // Step h (0-based) copies x[lx - period + (h mod period)].
  std::vector<int64_t> taps(window_.pred_len);
  for (int64_t h = 0; h < window_.pred_len; ++h) {
    taps[h] = lx - period_ + (h % period_);
  }
  return IndexSelect(batch.x.Detach(), 1, taps);
}

}  // namespace conformer::models
