#include "baselines/transformer_forecaster.h"

#include "core/series_decomposition.h"
#include "data/time_features.h"

namespace conformer::models {

namespace {

// Seasonal part of x when decomposition is on, else x unchanged; the trend
// is accumulated into *trend when provided.
Tensor KeepSeasonal(const Tensor& x, bool decomposition, int64_t ma_kernel,
                    Tensor* trend) {
  if (!decomposition) return x;
  core::Decomposition d = core::DecomposeSeries(x, ma_kernel);
  if (trend != nullptr) {
    *trend = trend->defined() ? Add(*trend, d.trend) : d.trend;
  }
  return d.seasonal;
}

}  // namespace

TransformerEncoderLayer::TransformerEncoderLayer(const TransformerConfig& config)
    : decomposition_(config.decomposition), ma_kernel_(config.ma_kernel) {
  self_ = RegisterModule("self",
                         std::make_shared<attention::MultiHeadAttention>(
                             config.d_model, config.n_heads, config.kind,
                             config.attn));
  ff1_ = RegisterModule(
      "ff1", std::make_shared<nn::Linear>(config.d_model, config.d_ff));
  ff2_ = RegisterModule(
      "ff2", std::make_shared<nn::Linear>(config.d_ff, config.d_model));
  norm1_ = RegisterModule("norm1",
                          std::make_shared<nn::LayerNorm>(config.d_model));
  norm2_ = RegisterModule("norm2",
                          std::make_shared<nn::LayerNorm>(config.d_model));
  dropout_ = RegisterModule("dropout",
                            std::make_shared<nn::Dropout>(config.dropout));
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x) const {
  Tensor attended = dropout_->Forward(self_->Forward(x));
  Tensor h = Add(x, attended);
  h = KeepSeasonal(h, decomposition_, ma_kernel_, nullptr);
  h = norm1_->Forward(h);
  Tensor ff = ff2_->Forward(Gelu(ff1_->Forward(h)));
  Tensor out = Add(h, dropout_->Forward(ff));
  out = KeepSeasonal(out, decomposition_, ma_kernel_, nullptr);
  return norm2_->Forward(out);
}

TransformerDecoderLayer::TransformerDecoderLayer(const TransformerConfig& config)
    : decomposition_(config.decomposition), ma_kernel_(config.ma_kernel) {
  self_ = RegisterModule("self",
                         std::make_shared<attention::MultiHeadAttention>(
                             config.d_model, config.n_heads, config.kind,
                             config.attn));
  cross_ = RegisterModule("cross",
                          std::make_shared<attention::MultiHeadAttention>(
                              config.d_model, config.n_heads,
                              attention::AttentionKind::kFull));
  ff1_ = RegisterModule(
      "ff1", std::make_shared<nn::Linear>(config.d_model, config.d_ff));
  ff2_ = RegisterModule(
      "ff2", std::make_shared<nn::Linear>(config.d_ff, config.d_model));
  norm1_ = RegisterModule("norm1",
                          std::make_shared<nn::LayerNorm>(config.d_model));
  norm2_ = RegisterModule("norm2",
                          std::make_shared<nn::LayerNorm>(config.d_model));
  norm3_ = RegisterModule("norm3",
                          std::make_shared<nn::LayerNorm>(config.d_model));
  dropout_ = RegisterModule("dropout",
                            std::make_shared<nn::Dropout>(config.dropout));
}

Tensor TransformerDecoderLayer::Forward(const Tensor& x, const Tensor& memory,
                                        Tensor* trend) const {
  Tensor h = Add(x, dropout_->Forward(self_->Forward(x, /*causal=*/true)));
  h = KeepSeasonal(h, decomposition_, ma_kernel_, trend);
  h = norm1_->Forward(h);
  Tensor attended =
      dropout_->Forward(cross_->Forward(h, memory, memory, /*causal=*/false));
  h = Add(h, attended);
  h = KeepSeasonal(h, decomposition_, ma_kernel_, trend);
  h = norm2_->Forward(h);
  Tensor ff = ff2_->Forward(Gelu(ff1_->Forward(h)));
  Tensor out = Add(h, dropout_->Forward(ff));
  out = KeepSeasonal(out, decomposition_, ma_kernel_, trend);
  return norm3_->Forward(out);
}

TransformerForecaster::TransformerForecaster(const TransformerConfig& config,
                                             data::WindowConfig window,
                                             int64_t dims)
    : Forecaster(window, dims), config_(config) {
  enc_embed_ = RegisterModule(
      "enc_embed",
      std::make_shared<nn::DataEmbedding>(dims, data::kNumTimeFeatures,
                                          config.d_model, config.dropout,
                                          config.positional));
  dec_embed_ = RegisterModule(
      "dec_embed",
      std::make_shared<nn::DataEmbedding>(dims, data::kNumTimeFeatures,
                                          config.d_model, config.dropout,
                                          config.positional));
  for (int64_t i = 0; i < config.enc_layers; ++i) {
    enc_layers_.push_back(
        RegisterModule("enc" + std::to_string(i),
                       std::make_shared<TransformerEncoderLayer>(config)));
    if (config.distill && i + 1 < config.enc_layers) {
      distill_convs_.push_back(RegisterModule(
          "distill" + std::to_string(i),
          std::make_shared<nn::Conv1dLayer>(config.d_model, config.d_model,
                                            /*kernel=*/3, /*padding=*/1,
                                            PadMode::kCircular)));
    }
  }
  for (int64_t i = 0; i < config.dec_layers; ++i) {
    dec_layers_.push_back(
        RegisterModule("dec" + std::to_string(i),
                       std::make_shared<TransformerDecoderLayer>(config)));
  }
  out_proj_ = RegisterModule(
      "out_proj", std::make_shared<nn::Linear>(config.d_model, dims));
  if (config.decomposition) {
    trend_proj_ = RegisterModule(
        "trend_proj", std::make_shared<nn::Linear>(config.d_model, dims));
  }
}

Tensor TransformerForecaster::Forward(const data::Batch& batch) const {
  Tensor memory = enc_embed_->Forward(batch.x, batch.x_mark);
  size_t distill_idx = 0;
  for (size_t i = 0; i < enc_layers_.size(); ++i) {
    memory = enc_layers_[i]->Forward(memory);
    if (config_.distill && i + 1 < enc_layers_.size()) {
      // Informer's distilling: convolve, activate, max-pool to halve the
      // sequence length.
      Tensor t = Permute(memory, {0, 2, 1});
      t = Gelu(distill_convs_[distill_idx++]->Forward(t));
      t = MaxPool1d(t, /*kernel=*/2, /*stride=*/2);
      memory = Permute(t, {0, 2, 1});
    }
  }

  Tensor dec_in = DecoderInput(batch);
  Tensor h = dec_embed_->Forward(dec_in, batch.y_mark);
  Tensor trend;
  for (const auto& layer : dec_layers_) {
    h = layer->Forward(h, memory, &trend);
  }
  Tensor series = out_proj_->Forward(h);
  if (config_.decomposition && trend.defined()) {
    series = Add(series, trend_proj_->Forward(trend));
  }
  const int64_t total = series.size(1);
  return Slice(series, 1, total - window_.pred_len, total);
}

TransformerConfig LongformerConfig() {
  TransformerConfig c;
  c.display_name = "Longformer";
  c.kind = attention::AttentionKind::kSlidingWindow;
  c.attn.window = 16;  // Longformer uses a wide local window.
  return c;
}

TransformerConfig InformerConfig() {
  TransformerConfig c;
  c.display_name = "Informer";
  c.kind = attention::AttentionKind::kProbSparse;
  c.attn.factor = 1;  // Paper: sampling factor 1 for Informer/Autoformer.
  c.distill = true;
  return c;
}

TransformerConfig AutoformerConfig() {
  TransformerConfig c;
  c.display_name = "Autoformer";
  c.kind = attention::AttentionKind::kAutoCorrelation;
  c.attn.factor = 1;
  c.decomposition = true;
  c.positional = false;  // Section V-A2: positional embedding omitted.
  return c;
}

TransformerConfig ReformerConfig() {
  TransformerConfig c;
  c.display_name = "Reformer";
  c.kind = attention::AttentionKind::kLsh;
  c.attn.lsh_buckets = 8;
  c.attn.lsh_chunk = 24;  // Paper: bucket length 24.
  return c;
}

TransformerConfig LogTransConfig() {
  TransformerConfig c;
  c.display_name = "LogTrans";
  c.kind = attention::AttentionKind::kLogSparse;
  c.enc_layers = 2;  // Paper: 2 LogTransformer blocks, sub_len 1.
  return c;
}

TransformerConfig VanillaTransformerConfig() {
  TransformerConfig c;
  c.display_name = "Transformer";
  c.kind = attention::AttentionKind::kFull;
  return c;
}

}  // namespace conformer::models
