#include "baselines/ts2vec.h"

namespace conformer::models {

Ts2Vec::Ts2Vec(data::WindowConfig window, int64_t dims, int64_t hidden,
               float mask_prob, float contrastive_weight)
    : Forecaster(window, dims),
      hidden_(hidden),
      mask_prob_(mask_prob),
      contrastive_weight_(contrastive_weight),
      rng_(13) {
  input_proj_ = RegisterModule("input_proj",
                               std::make_shared<nn::Linear>(dims, hidden));
  // Dilated convolution stack (dilations 1, 2, 4), as in the original
  // TS2Vec encoder; "same" padding keeps the sequence length.
  for (int64_t i = 0; i < 3; ++i) {
    const int64_t dilation = int64_t{1} << i;
    dilated_.push_back(RegisterModule(
        "conv" + std::to_string(i),
        std::make_shared<nn::Conv1dLayer>(hidden, hidden, /*kernel=*/3,
                                          /*padding=*/dilation,
                                          PadMode::kReplicate, /*bias=*/true,
                                          dilation)));
  }
  head_ = RegisterModule(
      "head", std::make_shared<nn::Linear>(hidden, window.pred_len * dims));
}

Tensor Ts2Vec::Encode(const Tensor& x, bool mask) const {
  Tensor h = input_proj_->Forward(x);
  if (mask && training()) {
    // Timestep masking: zero whole positions with probability mask_prob.
    const int64_t batch = h.size(0);
    const int64_t length = h.size(1);
    std::vector<float> keep(batch * length);
    for (float& v : keep) v = rng_.Bernoulli(mask_prob_) ? 0.0f : 1.0f;
    h = Mul(h, Tensor::FromVector(std::move(keep), {batch, length, 1}));
  }
  for (const auto& conv : dilated_) {
    Tensor c = Permute(conv->Forward(Permute(h, {0, 2, 1})), {0, 2, 1});
    h = Add(h, Gelu(c));  // residual conv block
  }
  return h;
}

Tensor Ts2Vec::Forward(const data::Batch& batch) const {
  const int64_t batch_size = batch.x.size(0);
  Tensor repr = Encode(batch.x, /*mask=*/false);
  Tensor last = Squeeze(Slice(repr, 1, repr.size(1) - 1, repr.size(1)), 1);
  return Reshape(head_->Forward(last), {batch_size, window_.pred_len, dims_});
}

Tensor Ts2Vec::Loss(const data::Batch& batch) {
  const int64_t batch_size = batch.x.size(0);
  const int64_t length = batch.x.size(1);

  // Two stochastically masked views.
  Tensor z1 = Encode(batch.x, /*mask=*/true);
  Tensor z2 = Encode(batch.x, /*mask=*/true);

  // Temporal contrast on a handful of sampled timesteps: the same timestep
  // across views is the positive, other sampled timesteps are negatives.
  const int64_t samples = std::min<int64_t>(8, length);
  std::vector<int64_t> steps(samples);
  for (int64_t i = 0; i < samples; ++i) steps[i] = rng_.UniformInt(length);
  Tensor a = IndexSelect(z1, 1, steps);  // [B, S, h]
  Tensor b = IndexSelect(z2, 1, steps);
  const float temperature = 10.0f / static_cast<float>(hidden_);
  Tensor logits = MulScalar(MatMul(a, Transpose(b, -1, -2)), temperature);
  Tensor log_probs = LogSoftmax(logits, -1);  // [B, S, S]
  Tensor diag_mask = Tile(Unsqueeze(Tensor::Eye(samples), 0), {batch_size, 1, 1});
  Tensor contrastive = Neg(Mean(Sum(Mul(log_probs, diag_mask), {-1})));

  // Forecast head trained on detached representations (two-stage protocol).
  Tensor repr = Encode(batch.x, /*mask=*/false).Detach();
  Tensor last = Squeeze(Slice(repr, 1, length - 1, length), 1);
  Tensor pred =
      Reshape(head_->Forward(last), {batch_size, window_.pred_len, dims_});
  Tensor mse = MseLoss(pred, TargetBlock(batch));

  return Add(MulScalar(contrastive, contrastive_weight_),
             MulScalar(mse, 1.0f - contrastive_weight_));
}

}  // namespace conformer::models
