// The common interface every forecasting model implements — Conformer, the
// Transformer baselines, and the RNN / deep baselines alike — so the trainer
// and the bench harness treat them uniformly.

#ifndef CONFORMER_BASELINES_FORECASTER_H_
#define CONFORMER_BASELINES_FORECASTER_H_

#include <string>

#include "data/window_dataset.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::models {

/// \brief Base forecaster: maps a windowed batch to a [B, pred_len, D]
/// prediction of the standardized series.
class Forecaster : public nn::Module {
 public:
  Forecaster(data::WindowConfig window, int64_t dims)
      : window_(window), dims_(dims) {}

  /// Point prediction for the batch: [B, pred_len, dims].
  virtual Tensor Forward(const data::Batch& batch) const = 0;

  /// Inference entry point: requires eval() mode, disables autograd
  /// recording, and returns Forward(batch). The serving layer calls this.
  Tensor Predict(const data::Batch& batch) const;

  /// Training objective; the default is MSE against the target block.
  /// Conformer overrides this with the mixed loss of Eq. (18).
  virtual Tensor Loss(const data::Batch& batch);

  virtual std::string name() const = 0;

  const data::WindowConfig& window() const { return window_; }
  int64_t dims() const { return dims_; }

 protected:
  /// Ground-truth block to forecast: last pred_len rows of batch.y.
  Tensor TargetBlock(const data::Batch& batch) const;

  /// Informer-style decoder input: the label section of batch.y followed by
  /// zeros over the prediction horizon. [B, label+pred, dims].
  Tensor DecoderInput(const data::Batch& batch) const;

  data::WindowConfig window_;
  int64_t dims_;
};

}  // namespace conformer::models

#endif  // CONFORMER_BASELINES_FORECASTER_H_
