#include "serve/fleet_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::serve {

namespace {

FleetConfig Sanitize(FleetConfig config) {
  config.num_dispatchers = std::max<int64_t>(1, config.num_dispatchers);
  return config;
}

}  // namespace

FleetServer::FleetServer(FleetConfig config) : config_(Sanitize(config)) {
  dispatchers_.reserve(config_.num_dispatchers);
  for (int64_t i = 0; i < config_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
}

FleetServer::~FleetServer() { Shutdown(); }

Status FleetServer::AddTenant(const std::string& key, const TenantSpec& spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Unavailable("fleet is shut down; tenant \"" + key +
                                 "\" not added");
    }
  }
  // The registry owns the key contract and duplicate rejection; concurrent
  // AddTenant calls for one key race here and exactly one wins.
  Status registered = registry_.Register(key, spec.session, spec.checkpoint);
  if (!registered.ok()) return registered;
  InferenceSession* session = registry_.Find(key);

  // The wake hook must not run under the tenant's queue lock (TenantQueue
  // guarantees this) so taking mu_ here is cycle-free: Submit releases the
  // queue lock, then wakes the shards.
  auto queue = std::make_unique<TenantQueue>(session, spec.queue, key, [this] {
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  });

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    // Shutdown won the race after the registry insert: the queue is empty,
    // so refusing submissions keeps every guarantee intact even though the
    // shards may already be gone.
    queue->BeginShutdown();
  }
  Tenant& tenant = tenants_[key];
  tenant.queue = std::move(queue);
  tenant.weight = std::max<int64_t>(1, spec.weight);
  return Status::OK();
}

std::future<Result<Forecast>> FleetServer::Submit(const std::string& key,
                                                  data::Batch request,
                                                  RequestOptions options) {
  TenantQueue* queue = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(key);
    if (it != tenants_.end()) queue = it->second.queue.get();
  }
  if (queue == nullptr) {
    std::promise<Result<Forecast>> promise;
    promise.set_value(Result<Forecast>(
        Status::NotFound("tenant \"" + key + "\" is not registered")));
    return promise.get_future();
  }
  // Queue pointers are stable: tenants are never removed, and destruction
  // happens only after Shutdown() joined every shard.
  return queue->Submit(std::move(request), options);
}

Status FleetServer::Reload(const std::string& key,
                           const std::string& checkpoint) {
  return registry_.Reload(key, checkpoint);
}

void FleetServer::Shutdown() {
  std::vector<TenantQueue*> queues;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    queues.reserve(tenants_.size());
    for (auto& [key, tenant] : tenants_) queues.push_back(tenant.queue.get());
  }
  // BeginShutdown fires the wake hook, which takes mu_ — so outside the lock.
  for (TenantQueue* queue : queues) queue->BeginShutdown();
  cv_.notify_all();
  std::call_once(join_once_, [this] {
    for (std::thread& shard : dispatchers_) {
      if (shard.joinable()) shard.join();
    }
  });
}

bool FleetServer::circuit_open(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(key);
  return it != tenants_.end() && it->second.queue->circuit_open();
}

Status FleetServer::ResetCircuitBreaker(const std::string& key) {
  TenantQueue* queue = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(key);
    if (it != tenants_.end()) queue = it->second.queue.get();
  }
  if (queue == nullptr) {
    return Status::NotFound("tenant \"" + key + "\" is not registered");
  }
  // Outside mu_: the reset wakes the shards through the hook above.
  queue->ResetCircuitBreaker();
  return Status::OK();
}

int64_t FleetServer::pending(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(key);
  return it == tenants_.end() ? 0 : it->second.queue->pending();
}

FleetServer::Tenant* FleetServer::ClaimTenantLocked(int64_t now_ns, bool drain,
                                                    int64_t* next_ripe_ns) {
  *next_ripe_ns = 0;
  Tenant* best = nullptr;
  int64_t total_weight = 0;
  for (auto& [key, tenant] : tenants_) {
    if (tenant.in_service) continue;  // Claimed by another shard.
    const TenantQueue::DispatchState state = tenant.queue->Peek();
    if (!state.has_work) continue;
    if (!drain && state.ripe_at_ns > now_ns) {
      if (*next_ripe_ns == 0 || state.ripe_at_ns < *next_ripe_ns) {
        *next_ripe_ns = state.ripe_at_ns;
      }
      continue;
    }
    // Smooth weighted round-robin (nginx): every ripe candidate earns its
    // weight in credit, the richest is picked and pays the round's total
    // back — over time each backlogged tenant is served in proportion to
    // its weight, with maximally interleaved (never bursty) pick order.
    tenant.wrr_credit += tenant.weight;
    total_weight += tenant.weight;
    if (best == nullptr || tenant.wrr_credit > best->wrr_credit) {
      best = &tenant;
    }
  }
  if (best != nullptr) {
    best->wrr_credit -= total_weight;
    best->in_service = true;
    static metrics::Counter& dispatches =
        metrics::Registry::Global().GetCounter("serve.fleet.dispatches");
    dispatches.Increment();
  }
  return best;
}

void FleetServer::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const bool drain = shutdown_;
    int64_t next_ripe_ns = 0;
    Tenant* claimed =
        ClaimTenantLocked(prof::internal::NowNs(), drain, &next_ripe_ns);
    if (claimed != nullptr) {
      TenantQueue* queue = claimed->queue.get();
      lock.unlock();
      queue->ServeOnce(drain);
      lock.lock();
      claimed->in_service = false;
      // The tenant may still be backlogged, and the shutdown path below
      // waits on in_service draining — either way the other shards need a
      // look.
      cv_.notify_all();
      continue;
    }
    if (drain) {
      // Exit once nothing is claimable AND no shard is mid-batch (a serving
      // shard's tenant may still hold queued work this shard must not
      // abandon). In-service shards notify when they finish.
      const bool busy = std::any_of(
          tenants_.begin(), tenants_.end(),
          [](const auto& entry) { return entry.second.in_service; });
      if (!busy) return;
      cv_.wait(lock);
      continue;
    }
    if (next_ripe_ns == 0) {
      cv_.wait(lock);  // Idle: Submit/BeginShutdown/reset wake us.
      continue;
    }
    // Everything pending is coalescing; sleep until the earliest batch
    // ripens (or a Submit tops one up to full and wakes us early).
    const int64_t now_ns = prof::internal::NowNs();
    if (next_ripe_ns > now_ns) {
      cv_.wait_for(lock, std::chrono::nanoseconds(next_ripe_ns - now_ns));
    }
  }
}

}  // namespace conformer::serve
