// Inference entry point for trained models (docs/SERVING.md).
//
// An InferenceSession owns one eval-mode Forecaster restored from a PR-3
// checkpoint (model section only, every CRC validated) and answers
// Predict() calls under InferenceModeGuard: no autograd tape, and op
// outputs drawn from the calling thread's activation-buffer pool, so a
// warm session allocates almost nothing per request. Results are bitwise
// identical to an eval-mode training forward (see serve_test.cc).
//
// Sessions also hot-reload: Reload(checkpoint) stages a fresh parameter
// set off the serving lock, then atomically swaps it in under the same
// mutex Predict() holds, so in-flight requests finish on the old model and
// later ones see the new one — and a corrupt or wrong-architecture
// checkpoint is rejected with the old model bitwise undisturbed (see
// serve_resilience_test.cc).

#ifndef CONFORMER_SERVE_INFERENCE_SESSION_H_
#define CONFORMER_SERVE_INFERENCE_SESSION_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "baselines/registry.h"
#include "data/window_dataset.h"
#include "runtime/static_runtime.h"
#include "util/status.h"

namespace conformer::serve {

/// \brief Everything needed to rebuild the architecture a checkpoint was
/// trained with; the checkpoint supplies only parameter values.
struct SessionConfig {
  std::string model_name = "conformer";  ///< models::MakeForecaster name.
  data::WindowConfig window;
  int64_t dims = 7;
  models::ModelHyperParams hyper;
  /// >0 draws this many flow samples per Predict to attach a quantile band
  /// (Conformer only; other models serve point forecasts regardless).
  int64_t quantile_samples = 0;
  double coverage = 0.9;  ///< Band coverage when quantile_samples > 0.
  /// Serve point forecasts through the static runtime (docs/STATIC_RUNTIME.md):
  /// the first Predict for each batch geometry traces the model into an
  /// AOT-planned replay program; later calls with the same geometry replay it
  /// with zero per-op dispatch. Models the tracer cannot plan (and geometries
  /// that fail to trace) fall back to the eager path permanently.
  bool use_static_plan = false;
  /// Debug: re-run the eager model on every plan hit and CHECK that replay
  /// matches bitwise per node. Serving cost doubles; off in production.
  bool static_parity_check = false;
  /// Label compared against FaultInjector::Config::scope: a scoped chaos
  /// drill (CONFORMER_SERVE_FAULTS="...,scope=KEY") faults only sessions
  /// carrying the matching label. The fleet's ModelRegistry stamps each
  /// tenant's key here; empty means "unlabeled" (still hit by unscoped
  /// injectors, ignored by scoped ones).
  std::string fault_scope;
};

/// \brief One forecast: point prediction plus an optional quantile band.
struct Forecast {
  Tensor point;  ///< [B, pred_len, D]
  Tensor lower;  ///< Defined only when the session samples quantiles.
  Tensor upper;
};

/// \brief A loaded model serving forecasts. Predict() and Reload() are
/// thread-safe: both serialize on the session mutex (the BatchingQueue's
/// dispatcher is the only hot-path Predict caller, so the lock is
/// uncontended in steady state).
class InferenceSession {
 public:
  /// Builds the model from `config` and restores parameters from
  /// `checkpoint`: a .ckpt file, or a checkpoint directory whose MANIFEST
  /// is walked newest-first. An empty path serves the freshly initialized
  /// model (benchmarks, smoke tests).
  static Result<std::unique_ptr<InferenceSession>> Open(
      const SessionConfig& config, const std::string& checkpoint);

  /// Serves a pre-built model (already restored / programmatically
  /// constructed; fault-containment tests inject throwing forecasters this
  /// way). The model is switched to eval mode; `config`'s architecture
  /// fields are trusted to describe it.
  static Result<std::unique_ptr<InferenceSession>> Open(
      const SessionConfig& config,
      std::unique_ptr<models::Forecaster> model);

  /// Forecasts one batch. Bumps serve.predicts and observes
  /// serve.predict_seconds; quantile sampling (when enabled) draws from the
  /// session's own RNG and does not perturb the point forecast.
  Forecast Predict(const data::Batch& batch);

  /// Hot-swaps parameters from `checkpoint` (file or MANIFEST directory,
  /// like Open): a fresh architecture is built and restored *off* the
  /// serving lock, then swapped in atomically under it, invalidating the
  /// static-plan cache. On any failure — corrupt file (CRC), wrong
  /// architecture, injected mid-swap fault — the serving model is bitwise
  /// untouched and keeps answering. Bumps serve.reloads /
  /// serve.reload_failures.
  Status Reload(const std::string& checkpoint);

  const models::Forecaster& model() const { return *model_; }
  const SessionConfig& config() const { return config_; }

  /// The cached plan for `batch`'s geometry, or nullptr when none exists yet
  /// (or tracing failed). Test/bench introspection ONLY — never a serving
  /// dependency. The returned pointer is owned by the plan cache and is
  /// invalidated by Reload() (which clears the cache); do not hold it
  /// across a Reload() or dereference it while reloads may run
  /// concurrently.
  const runtime::Plan* plan_for(const data::Batch& batch) const;

 private:
  InferenceSession(SessionConfig config,
                   std::unique_ptr<models::Forecaster> model);

  /// Point forecast through the plan cache: hit -> replay, miss -> trace and
  /// cache (the traced output is the response), failed trace -> eager with a
  /// negative-cache entry so the geometry is not re-traced every call.
  Tensor PredictPoint(const data::Batch& batch);

  SessionConfig config_;
  /// Serializes Predict() against Reload()'s pointer swap (and concurrent
  /// Predict callers against each other, which also protects the plan
  /// cache). Reload stages its expensive work before taking this.
  mutable std::mutex mu_;
  std::unique_ptr<models::Forecaster> model_;
  /// Geometry-keyed plan cache; guarded by mu_, invalidated on Reload.
  std::unordered_map<std::string, std::unique_ptr<runtime::PlanExecutor>>
      plans_;
  std::unordered_set<std::string> failed_geometries_;
};

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_INFERENCE_SESSION_H_
