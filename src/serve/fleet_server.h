// Multi-tenant model-fleet server (docs/SERVING.md, "The model fleet").
//
// One FleetServer serves many (model, horizon) tenants concurrently:
//
//   clients ──▶ Submit(key, batch) ──▶ per-tenant TenantQueue ──┐
//                                      per-tenant TenantQueue ──┤ WRR
//                                      per-tenant TenantQueue ──┘  │
//                                            shared dispatcher shards
//                                            (num_dispatchers threads)
//                                                   │ one Predict per
//                                                   ▼ micro-batch
//                                      per-tenant InferenceSession
//                                      (ModelRegistry, hot-reloadable)
//
// Design points:
//   - Every tenant keeps its OWN TenantQueue, so admission bounds,
//     deadlines, and the circuit breaker are per-tenant policy: one broken
//     or overloaded tenant rejects/sheds its own traffic and nothing else.
//   - Dispatcher threads are a small shared pool ("shards") instead of one
//     thread per tenant: N tenants cost num_dispatchers threads, and a
//     shard picks the next ripe tenant by smooth weighted round-robin
//     (nginx-style), so a slow tenant holds at most the shards currently
//     inside its Predict while every other shard keeps serving the rest —
//     a tenant with weight 2 gets twice the dispatch share of a weight-1
//     tenant when both are backlogged.
//   - A tenant is claimed by at most one shard at a time (the TenantQueue
//     single-dispatcher contract), so per-tenant FIFO order is preserved
//     and two shards never serialize on one session mutex.
//   - Model forwards from different shards share the process-wide kernel
//     ThreadPool (its dispatch mutex serializes parallel regions); shards
//     are plain std::threads for the same reason the single-tenant
//     dispatcher is — a blocked pool worker would deadlock nested kernels.
//
// Metrics: every tenant publishes serve.tenant.<key>.{requests, rejected,
// shed_expired, batches, batch_failures, circuit_opens, queue_depth,
// request_latency_seconds} next to the process-wide serve.* aggregates,
// plus serve.fleet.{tenants, dispatches} (docs/OBSERVABILITY.md).

#ifndef CONFORMER_SERVE_FLEET_SERVER_H_
#define CONFORMER_SERVE_FLEET_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/batching_queue.h"
#include "serve/model_registry.h"

namespace conformer::serve {

/// \brief Fleet-wide knobs.
struct FleetConfig {
  /// Dispatcher shard threads shared by all tenants. More shards = more
  /// tenants served truly concurrently (bounded by cores); the default
  /// keeps one shard free while another sits inside a slow Predict.
  int64_t num_dispatchers = 2;
};

/// \brief Everything needed to stand up one tenant.
struct TenantSpec {
  SessionConfig session;
  /// Checkpoint file/directory for the initial parameters ("" = fresh).
  std::string checkpoint;
  QueueConfig queue;
  /// Weighted-round-robin share when multiple tenants are ripe; clamped
  /// to >= 1.
  int64_t weight = 1;
};

/// \brief Serves a fleet of tenants. Thread-safe; destruction drains every
/// tenant's queue.
class FleetServer {
 public:
  explicit FleetServer(FleetConfig config = {});
  /// Calls Shutdown().
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Registers a tenant (ModelRegistry::Register: key contract, duplicate
  /// rejection, fault_scope stamping) and starts queueing for it. Tenants
  /// may be added while the fleet is live; AddTenant after Shutdown() is
  /// refused with Unavailable.
  Status AddTenant(const std::string& key, const TenantSpec& spec);

  /// Routes one request to `key`'s queue. Unknown keys resolve the future
  /// immediately with NotFound; everything else behaves exactly like the
  /// single-tenant TenantQueue::Submit (admission, deadlines, breaker).
  std::future<Result<Forecast>> Submit(const std::string& key,
                                       data::Batch request,
                                       RequestOptions options = {});

  /// Hot-reloads one tenant's parameters; every other tenant is untouched
  /// by construction (per-session Reload). NotFound for unknown keys.
  Status Reload(const std::string& key, const std::string& checkpoint);

  /// Drains every tenant's queue, then stops the dispatcher shards.
  /// Idempotent and safe to call concurrently; accepted requests complete,
  /// Submit() afterwards is refused.
  void Shutdown();

  /// Per-tenant breaker introspection/control (NotFound/false for unknown
  /// keys).
  bool circuit_open(const std::string& key) const;
  Status ResetCircuitBreaker(const std::string& key);

  /// Requests waiting in `key`'s queue (0 for unknown keys).
  int64_t pending(const std::string& key) const;

  std::vector<std::string> tenant_keys() const { return registry_.Keys(); }
  int64_t tenant_count() const { return registry_.size(); }
  /// Test/bench introspection: the tenant's session (nullptr if unknown).
  InferenceSession* session(const std::string& key) const {
    return registry_.Find(key);
  }
  const FleetConfig& config() const { return config_; }

 private:
  struct Tenant {
    std::unique_ptr<TenantQueue> queue;
    int64_t weight = 1;
    int64_t wrr_credit = 0;   ///< Smooth-WRR state; mu_ guarded.
    bool in_service = false;  ///< Claimed by a shard; mu_ guarded.
  };

  void DispatchLoop();
  /// Picks the ripe, unclaimed tenant with the highest smooth-WRR credit
  /// and marks it in_service; returns nullptr when none is ripe, setting
  /// `next_ripe_ns` to the earliest future ripeness (0 = nothing queued
  /// anywhere). mu_ held.
  Tenant* ClaimTenantLocked(int64_t now_ns, bool drain,
                            int64_t* next_ripe_ns);

  const FleetConfig config_;
  ModelRegistry registry_;

  mutable std::mutex mu_;        ///< Guards tenants_ map + scheduler state.
  std::condition_variable cv_;   ///< Shards wait for work/shutdown.
  std::map<std::string, Tenant> tenants_;
  bool shutdown_ = false;
  std::once_flag join_once_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_FLEET_SERVER_H_
