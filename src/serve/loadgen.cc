#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <random>
#include <thread>
#include <utility>

#include "serve/stats.h"
#include "util/metrics.h"

namespace conformer::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration Seconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

// Histograms are cumulative for the process; the run's own observations are
// the after-minus-before bucket deltas.
metrics::Histogram::Snapshot Delta(
    const metrics::Histogram::Snapshot& before,
    const metrics::Histogram::Snapshot& after) {
  metrics::Histogram::Snapshot delta = after;
  for (size_t i = 0; i < delta.counts.size() && i < before.counts.size();
       ++i) {
    delta.counts[i] -= before.counts[i];
  }
  delta.count -= before.count;
  delta.sum -= before.sum;
  return delta;
}

}  // namespace

LoadReport RunOpenLoop(FleetServer& fleet, const std::vector<TenantLoad>& mix,
                       const LoadgenOptions& options) {
  LoadReport report;
  report.offered_rps = options.offered_rps;
  if (mix.empty() || options.offered_rps <= 0.0 ||
      options.duration_seconds <= 0.0) {
    return report;
  }
  const int64_t num_clients = std::max<int64_t>(1, options.num_clients);

  metrics::Registry& registry = metrics::Registry::Global();
  std::vector<metrics::Histogram*> latency;
  std::vector<metrics::Histogram::Snapshot> before;
  std::vector<double> weights;
  latency.reserve(mix.size());
  for (const TenantLoad& load : mix) {
    latency.push_back(&registry.GetHistogram("serve.tenant." + load.key +
                                             ".request_latency_seconds"));
    before.push_back(latency.back()->GetSnapshot());
    weights.push_back(std::max(load.mix, 1e-12));
  }

  // Per-client, per-tenant tallies; merged after the join so the hot loop
  // shares nothing.
  struct Tally {
    std::vector<int64_t> issued, ok, rejected, shed, failed;
    explicit Tally(size_t tenants)
        : issued(tenants, 0),
          ok(tenants, 0),
          rejected(tenants, 0),
          shed(tenants, 0),
          failed(tenants, 0) {}
  };
  std::vector<Tally> tallies(num_clients, Tally(mix.size()));

  const auto start = Clock::now();
  const auto stop_at = start + Seconds(options.duration_seconds);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (int64_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      Tally& tally = tallies[c];
      // Distinct, decorrelated streams per client; the run is reproducible
      // for a fixed (seed, num_clients) pair up to scheduling jitter.
      std::mt19937_64 rng(options.seed * 0x9e3779b97f4a7c15ULL +
                          static_cast<uint64_t>(c) + 1);
      std::exponential_distribution<double> interarrival(
          options.offered_rps / static_cast<double>(num_clients));
      std::discrete_distribution<int> pick_tenant(weights.begin(),
                                                  weights.end());
      std::uniform_real_distribution<double> uniform(1e-9, 1.0);

      std::vector<std::pair<int, std::future<Result<Forecast>>>> inflight;
      // The first arrival is one exponential gap out, like every later one
      // — clients firing at t=0 would spike the achieved rate above the
      // offered rate on short runs.
      auto next_arrival = Clock::now() + Seconds(interarrival(rng));
      // Open loop: the schedule never waits for completions. Saturation
      // shows up as queue rejections and backlog, not a slower generator.
      while (next_arrival < stop_at) {
        std::this_thread::sleep_until(next_arrival);
        const int idx = pick_tenant(rng);
        ++tally.issued[idx];
        inflight.emplace_back(
            idx, fleet.Submit(mix[idx].key, mix[idx].prototype,
                              {.deadline_us = options.deadline_us}));
        double gap_s = interarrival(rng);
        if (options.think_scale_us > 0.0) {
          // Pareto(alpha) think time: scale * U^(-1/alpha).
          gap_s += options.think_scale_us * 1e-6 *
                   std::pow(uniform(rng),
                            -1.0 / std::max(1.0001, options.think_tail_alpha));
        }
        next_arrival += Seconds(gap_s);
      }
      for (auto& [idx, future] : inflight) {
        const Result<Forecast> result = future.get();
        if (result.ok()) {
          ++tally.ok[idx];
          continue;
        }
        switch (result.status().code()) {
          case StatusCode::kDeadlineExceeded:
            ++tally.shed[idx];
            break;
          case StatusCode::kResourceExhausted:
          case StatusCode::kUnavailable:
          case StatusCode::kNotFound:
          case StatusCode::kInvalidArgument:
            ++tally.rejected[idx];
            break;
          default:
            ++tally.failed[idx];
            break;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  int64_t total_issued = 0;
  double total_good_series = 0.0;
  for (size_t i = 0; i < mix.size(); ++i) {
    TenantLoadStats stats;
    stats.key = mix[i].key;
    for (const Tally& tally : tallies) {
      stats.issued += tally.issued[i];
      stats.ok += tally.ok[i];
      stats.rejected += tally.rejected[i];
      stats.shed += tally.shed[i];
      stats.failed += tally.failed[i];
    }
    const double series_per_request =
        static_cast<double>(std::max<int64_t>(1, mix[i].prototype.size()));
    stats.goodput_rps = static_cast<double>(stats.ok) * series_per_request /
                        report.wall_seconds;
    const metrics::Histogram::Snapshot run =
        Delta(before[i], latency[i]->GetSnapshot());
    if (run.count > 0) {
      stats.p50_ms = HistogramQuantile(run, 0.50) * 1e3;
      stats.p95_ms = HistogramQuantile(run, 0.95) * 1e3;
      stats.p99_ms = HistogramQuantile(run, 0.99) * 1e3;
    }
    total_issued += stats.issued;
    total_good_series += static_cast<double>(stats.ok) * series_per_request;
    report.tenants.push_back(std::move(stats));
  }
  report.achieved_rps =
      static_cast<double>(total_issued) / report.wall_seconds;
  report.goodput_rps = total_good_series / report.wall_seconds;
  return report;
}

}  // namespace conformer::serve
