// Chaos-testing hook for the serving layer (docs/SERVING.md, "Overload &
// failure policy").
//
// In the spirit of the trainer's debug_abort_after_steps crash hook
// (docs/ROBUSTNESS.md), the injector lets tests and operators drive the
// serving stack through its failure modes on demand: make Predict() throw
// (exercising the dispatcher's containment boundary), stall or gate
// Predict() (exercising deadline shedding and bounded admission), or fail a
// checkpoint Reload() after staging but before the swap (exercising
// old-model continuity). When nothing is installed every hook is a single
// relaxed atomic load — serving pays nothing for the capability.
//
// Faults come from two places:
//   - tests call Install(config) / Uninstall() directly;
//   - operators set CONFORMER_SERVE_FAULTS, e.g.
//       CONFORMER_SERVE_FAULTS="throw_every=5,stall_us=2000,fail_reload=1"
//     which installs an injector at the first serving call.
//
// Faults can be scoped to one tenant of a model fleet (docs/SERVING.md):
// `scope=<tenant-key>` limits every fault to sessions whose
// SessionConfig::fault_scope matches (the fleet's ModelRegistry stamps each
// tenant's key there), so a chaos drill can break conformer@16 while
// linear@16 keeps serving bitwise-unchanged forecasts.

#ifndef CONFORMER_SERVE_FAULT_INJECTOR_H_
#define CONFORMER_SERVE_FAULT_INJECTOR_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace conformer::serve {

/// \brief The exception injected Predict faults throw; derived from
/// std::runtime_error so the dispatcher's generic containment catches it
/// like any real model failure.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// \brief Process-wide serving fault injector. All members are static; the
/// hooks are thread-safe and zero-cost while no injector is installed.
class FaultInjector {
 public:
  struct Config {
    /// Every nth Predict throws InjectedFault (1 = every call, 0 = never).
    int64_t throw_every = 0;
    /// Injected latency per stalled Predict, microseconds.
    int64_t stall_us = 0;
    /// Every nth Predict stalls for stall_us (1 = every call; 0 with
    /// stall_us > 0 also means every call).
    int64_t stall_every = 0;
    /// Reload() fails after the new parameters are staged, immediately
    /// before the swap — the old model must keep serving untouched.
    bool fail_reload = false;
    /// Non-empty: faults apply only to sessions whose
    /// SessionConfig::fault_scope equals this string (tenant keys in a
    /// fleet). Empty: faults apply to every session, the pre-fleet
    /// behaviour.
    std::string scope{};
  };

  /// Installs `config` process-wide (replacing any previous injector).
  static void Install(const Config& config);
  /// Removes the injector; every hook returns to its zero-cost path.
  static void Uninstall();
  static bool Enabled();

  /// Closes (true) or opens (false) the Predict gate: while closed, every
  /// Predict blocks inside the model's serialization point until the gate
  /// opens. Deterministic replacement for stall_us in tests. Works with or
  /// without an installed Config.
  static void SetPredictGate(bool closed);

  /// Hook: called by InferenceSession::Predict with the session's
  /// fault_scope. May block on the gate, stall, and/or throw InjectedFault.
  /// A scoped injector ignores sessions whose scope does not match (the
  /// gate still applies to everyone: it is a test synchronization tool,
  /// not a fault).
  static void MaybePredictFault(const std::string& scope = "");
  /// Hook: called by InferenceSession::Reload between staging and swap,
  /// with the session's fault_scope.
  static bool ShouldFailReload(const std::string& scope = "");

  /// Parses a CONFORMER_SERVE_FAULTS-style spec ("k=v,k=v"). Returns false
  /// (leaving `config` default) on malformed input. Exposed for tests.
  static bool ParseConfig(const std::string& spec, Config* config);

 private:
  FaultInjector() = delete;
};

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_FAULT_INJECTOR_H_
