#include "serve/fault_injector.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/env.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace conformer::serve {

namespace {

// Injector state. `g_armed` is the fast-path switch: hooks bail on one
// relaxed load unless an injector is installed or the gate is closed. The
// slow-path state lives behind `g_mu`.
std::atomic<bool> g_armed{false};
std::atomic<bool> g_gate_closed{false};

std::mutex g_mu;
std::condition_variable g_gate_cv;
FaultInjector::Config g_config;          // guarded by g_mu
bool g_installed = false;                // guarded by g_mu
std::atomic<int64_t> g_predict_calls{0};

// Re-derives the fast-path switch from the slow-path state; g_mu held.
void RearmLocked() {
  g_armed.store(g_installed || g_gate_closed.load(std::memory_order_relaxed),
                std::memory_order_release);
}

// Installs from CONFORMER_SERVE_FAULTS exactly once, at the first hook that
// finds the injector armed-or-not; returns true after the check ran.
void MaybeInstallFromEnv() {
  static const bool parsed = [] {
    const std::string spec = GetEnv("CONFORMER_SERVE_FAULTS");
    if (spec.empty()) return false;
    FaultInjector::Config config;
    if (!FaultInjector::ParseConfig(spec, &config)) {
      CONFORMER_LOG(Warning) << "ignoring malformed CONFORMER_SERVE_FAULTS="
                             << spec;
      return false;
    }
    CONFORMER_LOG(Warning) << "serving fault injection armed from "
                              "CONFORMER_SERVE_FAULTS="
                           << spec;
    FaultInjector::Install(config);
    return true;
  }();
  (void)parsed;
}

}  // namespace

void FaultInjector::Install(const Config& config) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_config = config;
  g_installed = true;
  g_predict_calls.store(0, std::memory_order_relaxed);
  RearmLocked();
}

void FaultInjector::Uninstall() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_config = Config{};
  g_installed = false;
  RearmLocked();
}

bool FaultInjector::Enabled() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_installed;
}

void FaultInjector::SetPredictGate(bool closed) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_gate_closed.store(closed, std::memory_order_relaxed);
    RearmLocked();
  }
  g_gate_cv.notify_all();
}

void FaultInjector::MaybePredictFault(const std::string& scope) {
  MaybeInstallFromEnv();
  if (!g_armed.load(std::memory_order_acquire)) return;

  Config config;
  {
    std::unique_lock<std::mutex> lock(g_mu);
    g_gate_cv.wait(lock, [] {
      return !g_gate_closed.load(std::memory_order_relaxed);
    });
    if (!g_installed) return;
    config = g_config;
  }
  // A scoped injector targets one tenant: sessions with a different (or no)
  // fault_scope are not counted and never faulted.
  if (!config.scope.empty() && config.scope != scope) return;

  const int64_t call = g_predict_calls.fetch_add(1) + 1;  // 1-based.
  const int64_t stall_every =
      config.stall_every > 0 ? config.stall_every
                             : (config.stall_us > 0 ? 1 : 0);
  if (config.stall_us > 0 && stall_every > 0 && call % stall_every == 0) {
    metrics::Registry::Global().GetCounter("serve.injected_stalls")
        .Increment();
    std::this_thread::sleep_for(std::chrono::microseconds(config.stall_us));
  }
  if (config.throw_every > 0 && call % config.throw_every == 0) {
    metrics::Registry::Global().GetCounter("serve.injected_throws")
        .Increment();
    throw InjectedFault("injected Predict fault (call " +
                        std::to_string(call) + ")");
  }
}

bool FaultInjector::ShouldFailReload(const std::string& scope) {
  MaybeInstallFromEnv();
  if (!g_armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(g_mu);
  if (!g_installed || !g_config.fail_reload) return false;
  return g_config.scope.empty() || g_config.scope == scope;
}

bool FaultInjector::ParseConfig(const std::string& spec, Config* config) {
  Config parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    if (key == "scope") {
      parsed.scope = item.substr(eq + 1);
      if (parsed.scope.empty()) return false;
      continue;
    }
    char* tail = nullptr;
    const long long value = std::strtoll(item.c_str() + eq + 1, &tail, 10);
    if (tail == item.c_str() + eq + 1 || *tail != '\0' || value < 0) {
      return false;
    }
    if (key == "throw_every") {
      parsed.throw_every = value;
    } else if (key == "stall_us") {
      parsed.stall_us = value;
    } else if (key == "stall_every") {
      parsed.stall_every = value;
    } else if (key == "fail_reload") {
      parsed.fail_reload = value != 0;
    } else {
      return false;
    }
  }
  *config = parsed;
  return true;
}

}  // namespace conformer::serve
