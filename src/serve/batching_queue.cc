#include "serve/batching_queue.h"

#include <chrono>
#include <utility>

#include "tensor/ops.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::serve {

namespace {

metrics::Registry& Registry() { return metrics::Registry::Global(); }

}  // namespace

BatchingQueue::BatchingQueue(InferenceSession* session, QueueConfig config)
    : session_(session), config_(config) {
  CONFORMER_CHECK(session_ != nullptr);
  if (config_.max_batch_size < 1) config_.max_batch_size = 1;
  if (config_.max_queue_delay_us < 0) config_.max_queue_delay_us = 0;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchingQueue::~BatchingQueue() { Shutdown(); }

std::future<Forecast> BatchingQueue::Submit(data::Batch request) {
  CONFORMER_CHECK(request.x.defined() && request.size() > 0)
      << "Submit() needs a non-empty batch";
  Pending pending;
  pending.batch = std::move(request);
  pending.enqueue_ns = prof::internal::NowNs();
  std::future<Forecast> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CONFORMER_CHECK(!shutdown_) << "Submit() after Shutdown()";
    queue_.push_back(std::move(pending));
    Registry().GetCounter("serve.requests").Increment();
    Registry().GetGauge("serve.queue_depth")
        .Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return future;
}

void BatchingQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && !dispatcher_.joinable()) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

int64_t BatchingQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void BatchingQueue::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // Hold an underfull batch open until the configured delay after its
    // oldest request — unless draining for shutdown, when latency no
    // longer matters and everything queued goes out as fast as possible.
    if (!shutdown_ && config_.max_queue_delay_us > 0) {
      const auto full = [this] {
        if (shutdown_) return true;
        int64_t series = 0;
        for (const Pending& p : queue_) series += p.batch.size();
        return series >= config_.max_batch_size;
      };
      const int64_t waited_ns =
          prof::internal::NowNs() - queue_.front().enqueue_ns;
      const int64_t remaining_ns =
          config_.max_queue_delay_us * 1000 - waited_ns;
      if (remaining_ns > 0 && !full()) {
        cv_.wait_for(lock, std::chrono::nanoseconds(remaining_ns), full);
      }
      if (queue_.empty()) continue;  // Raced a concurrent drain.
    }
    ServeBatch(lock);
  }
}

void BatchingQueue::ServeBatch(std::unique_lock<std::mutex>& lock) {
  // Pop the longest prefix that fits max_batch_size series; the first
  // request always ships, even if alone it exceeds the cap.
  std::vector<Pending> taken;
  int64_t series = 0;
  while (!queue_.empty()) {
    const int64_t next = queue_.front().batch.size();
    if (!taken.empty() && series + next > config_.max_batch_size) break;
    series += next;
    taken.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  Registry().GetGauge("serve.queue_depth")
      .Set(static_cast<double>(queue_.size()));
  lock.unlock();

  const int64_t start_ns = prof::internal::NowNs();
  Forecast merged;
  {
    CONFORMER_PROFILE_SCOPE_CAT("serve", "batch");
    if (taken.size() == 1) {
      merged = session_->Predict(taken[0].batch);
    } else {
      std::vector<Tensor> x, x_mark, y, y_mark;
      for (const Pending& p : taken) {
        x.push_back(p.batch.x);
        x_mark.push_back(p.batch.x_mark);
        y.push_back(p.batch.y);
        y_mark.push_back(p.batch.y_mark);
      }
      data::Batch batch;
      batch.x = Concat(x, 0);
      batch.x_mark = Concat(x_mark, 0);
      batch.y = Concat(y, 0);
      batch.y_mark = Concat(y_mark, 0);
      merged = session_->Predict(batch);
    }
  }
  const int64_t end_ns = prof::internal::NowNs();

  int64_t offset = 0;
  for (Pending& p : taken) {
    const int64_t rows = p.batch.size();
    Forecast slice;
    if (taken.size() == 1) {
      slice = merged;
    } else {
      slice.point = Slice(merged.point, 0, offset, offset + rows);
      if (merged.lower.defined()) {
        slice.lower = Slice(merged.lower, 0, offset, offset + rows);
        slice.upper = Slice(merged.upper, 0, offset, offset + rows);
      }
    }
    offset += rows;
    p.promise.set_value(std::move(slice));
    Registry().GetHistogram("serve.request_latency_seconds")
        .Observe(static_cast<double>(end_ns - p.enqueue_ns) * 1e-9);
  }

  metrics::Registry& registry = Registry();
  registry.GetCounter("serve.batches").Increment();
  registry.GetHistogram("serve.batch_size",
                        {1, 2, 4, 8, 16, 32, 64, 128})
      .Observe(static_cast<double>(series));
  registry.GetGauge("serve.batch_occupancy")
      .Set(static_cast<double>(series) /
           static_cast<double>(config_.max_batch_size));
  registry.GetHistogram("serve.batch_latency_seconds")
      .Observe(static_cast<double>(end_ns - start_ns) * 1e-9);

  lock.lock();
}

}  // namespace conformer::serve
