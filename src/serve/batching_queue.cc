#include "serve/batching_queue.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "data/time_features.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace conformer::serve {

namespace {

metrics::Registry& Registry() { return metrics::Registry::Global(); }

// Full-geometry admission check against the session's window. Every
// dimension the merge path (Concat along dim 0) and the model forward will
// touch is pinned here — all four batch tensors, not just x — so a
// malformed request becomes a status on its own future instead of a
// CHECK-abort that would take down the dispatcher and every co-batched
// request. Pinning every non-batch dimension also makes admitted requests
// mutually Concat-compatible by construction: no per-merge geometry key is
// needed.
Status ValidateRequest(const data::Batch& request,
                       const SessionConfig& config) {
  const data::WindowConfig& window = config.window;
  if (!request.x.defined() || request.size() < 1) {
    return Status::InvalidArgument("empty request batch");
  }
  if (request.x.dim() != 3 || request.x.size(1) != window.input_len ||
      request.x.size(2) != config.dims) {
    return Status::InvalidArgument(
        "request x geometry does not match the session window");
  }
  const int64_t rows = request.size();
  const int64_t decoder_len = window.label_len + window.pred_len;
  const struct {
    const Tensor& tensor;
    const char* name;
    int64_t len;
    int64_t features;
  } required[] = {
      {request.x_mark, "x_mark", window.input_len, data::kNumTimeFeatures},
      {request.y, "y", decoder_len, config.dims},
      {request.y_mark, "y_mark", decoder_len, data::kNumTimeFeatures},
  };
  for (const auto& field : required) {
    if (!field.tensor.defined()) {
      return Status::InvalidArgument(std::string("request ") + field.name +
                                     " is undefined");
    }
    if (field.tensor.dim() != 3 || field.tensor.size(0) != rows ||
        field.tensor.size(1) != field.len ||
        field.tensor.size(2) != field.features) {
      return Status::InvalidArgument(std::string("request ") + field.name +
                                     " geometry does not match the session"
                                     " window");
    }
  }
  return Status::OK();
}

QueueConfig Sanitize(QueueConfig config) {
  if (config.max_batch_size < 1) config.max_batch_size = 1;
  if (config.max_queue_delay_us < 0) config.max_queue_delay_us = 0;
  if (config.max_queue_depth < 0) config.max_queue_depth = 0;
  if (config.circuit_breaker_failures < 0) config.circuit_breaker_failures = 0;
  return config;
}

}  // namespace

TenantQueue::TenantQueue(InferenceSession* session, QueueConfig config,
                         std::string tenant_key,
                         std::function<void()> on_work)
    : session_(session),
      config_(Sanitize(config)),
      tenant_key_(std::move(tenant_key)),
      on_work_(std::move(on_work)),
      requests_(Registry().GetCounter("serve.requests")),
      rejected_(Registry().GetCounter("serve.rejected")),
      shed_(Registry().GetCounter("serve.shed_expired")) {
  CONFORMER_CHECK(session_ != nullptr);
  if (!tenant_key_.empty()) {
    const std::string prefix = "serve.tenant." + tenant_key_ + ".";
    tenant_requests_ = &Registry().GetCounter(prefix + "requests");
    tenant_rejected_ = &Registry().GetCounter(prefix + "rejected");
    tenant_shed_ = &Registry().GetCounter(prefix + "shed_expired");
    tenant_batches_ = &Registry().GetCounter(prefix + "batches");
    tenant_batch_failures_ = &Registry().GetCounter(prefix + "batch_failures");
    tenant_circuit_opens_ = &Registry().GetCounter(prefix + "circuit_opens");
    tenant_depth_ = &Registry().GetGauge(prefix + "queue_depth");
    tenant_latency_ =
        &Registry().GetHistogram(prefix + "request_latency_seconds");
  }
}

void TenantQueue::NotifyWork() {
  if (on_work_) on_work_();
}

void TenantQueue::CountRejected() {
  rejected_.Increment();
  if (tenant_rejected_ != nullptr) tenant_rejected_->Increment();
}

void TenantQueue::SetDepthLocked() {
  const double depth = static_cast<double>(queue_.size());
  Registry().GetGauge("serve.queue_depth").Set(depth);
  if (tenant_depth_ != nullptr) tenant_depth_->Set(depth);
}

std::future<Result<Forecast>> TenantQueue::Submit(data::Batch request,
                                                  RequestOptions options) {
  requests_.Increment();
  if (tenant_requests_ != nullptr) tenant_requests_->Increment();
  Pending pending;
  std::future<Result<Forecast>> future = pending.promise.get_future();

  // Admission. Every refusal is a status on the (already resolved) future —
  // a client can never crash the server with a bad or ill-timed request.
  Status admitted = ValidateRequest(request, session_->config());
  if (!admitted.ok()) {
    CountRejected();
    pending.promise.set_value(Result<Forecast>(std::move(admitted)));
    return future;
  }

  pending.batch = std::move(request);
  pending.enqueue_ns = prof::internal::NowNs();
  if (options.deadline_us > 0) {
    // Saturate: a huge client-supplied deadline clamps to "effectively
    // never" instead of overflowing int64 (UB) into a negative deadline_ns
    // that would silently disable shedding.
    const int64_t max_deadline_us =
        (std::numeric_limits<int64_t>::max() - pending.enqueue_ns) / 1000;
    pending.deadline_ns =
        pending.enqueue_ns +
        std::min(options.deadline_us, max_deadline_us) * 1000;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      CountRejected();
      pending.promise.set_value(Result<Forecast>(
          Status::Unavailable("queue is shut down")));
      return future;
    }
    if (circuit_open_) {
      CountRejected();
      pending.promise.set_value(Result<Forecast>(Status::Unavailable(
          "circuit breaker open after consecutive batch failures")));
      return future;
    }
    if (config_.max_queue_depth > 0 &&
        static_cast<int64_t>(queue_.size()) >= config_.max_queue_depth) {
      CountRejected();
      pending.promise.set_value(Result<Forecast>(Status::ResourceExhausted(
          "queue depth " + std::to_string(queue_.size()) + " at capacity")));
      return future;
    }
    queue_.push_back(std::move(pending));
    SetDepthLocked();
  }
  NotifyWork();
  return future;
}

void TenantQueue::BeginShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  NotifyWork();
}

bool TenantQueue::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

int64_t TenantQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

bool TenantQueue::circuit_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return circuit_open_;
}

void TenantQueue::ResetCircuitBreaker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    circuit_open_ = false;
    consecutive_failures_ = 0;
  }
  NotifyWork();
}

void TenantQueue::DrainAndRejectLocked(const Status& status) {
  while (!queue_.empty()) {
    CountRejected();
    queue_.front().promise.set_value(Result<Forecast>(status));
    queue_.pop_front();
  }
  SetDepthLocked();
}

TenantQueue::DispatchState TenantQueue::Peek() const {
  std::lock_guard<std::mutex> lock(mu_);
  DispatchState state;
  if (queue_.empty()) return state;
  state.has_work = true;
  if (shutdown_ || circuit_open_ || config_.max_queue_delay_us == 0) {
    return state;  // ripe_at_ns = 0: dispatch (or drain) immediately.
  }
  int64_t series = 0;
  for (const Pending& p : queue_) series += p.batch.size();
  if (series < config_.max_batch_size) {
    state.ripe_at_ns =
        queue_.front().enqueue_ns + config_.max_queue_delay_us * 1000;
  }
  return state;
}

bool TenantQueue::ServeOnce(bool drain) {
  std::unique_lock<std::mutex> lock(mu_);
  if (circuit_open_) {
    // Tripped: drain-and-reject instead of looping hot on a broken model.
    // Submit() refuses new work while the circuit is open.
    const bool had_work = !queue_.empty();
    DrainAndRejectLocked(Status::Unavailable(
        "circuit breaker open after consecutive batch failures"));
    return had_work;
  }
  if (queue_.empty()) return false;
  const int64_t now_ns = prof::internal::NowNs();
  if (!drain && !shutdown_ && config_.max_queue_delay_us > 0) {
    // Hold an underfull batch open until the configured delay after its
    // oldest request; the dispatcher re-arms a timed wait off Peek().
    int64_t series = 0;
    for (const Pending& p : queue_) series += p.batch.size();
    if (series < config_.max_batch_size &&
        now_ns - queue_.front().enqueue_ns <
            config_.max_queue_delay_us * 1000) {
      return false;
    }
  }

  // Pop the longest prefix that fits max_batch_size series; the first
  // request always ships, even if alone it exceeds the cap. Requests whose
  // deadline already passed are shed as they surface — the model never
  // spends time on work nobody is waiting for — and do not count against
  // the batch budget.
  std::vector<Pending> taken;
  std::vector<Pending> shed;
  int64_t series = 0;
  while (!queue_.empty()) {
    Pending& front = queue_.front();
    if (front.deadline_ns > 0 && now_ns >= front.deadline_ns) {
      shed.push_back(std::move(front));
      queue_.pop_front();
      continue;
    }
    const int64_t next = front.batch.size();
    if (!taken.empty() && series + next > config_.max_batch_size) break;
    series += next;
    taken.push_back(std::move(front));
    queue_.pop_front();
  }
  SetDepthLocked();
  lock.unlock();

  for (Pending& p : shed) {
    shed_.Increment();
    if (tenant_shed_ != nullptr) tenant_shed_->Increment();
    p.promise.set_value(Result<Forecast>(Status::DeadlineExceeded(
        "deadline passed before dispatch; request shed")));
  }
  if (taken.empty()) return !shed.empty();

  // Containment boundary: a throwing Predict fails only this batch's
  // promises with a status — the dispatcher survives to serve the next
  // batch, and no future is ever left broken.
  const int64_t start_ns = prof::internal::NowNs();
  Forecast merged;
  Status failure = Status::OK();
  try {
    CONFORMER_PROFILE_SCOPE_CAT("serve", "batch");
    if (taken.size() == 1) {
      merged = session_->Predict(taken[0].batch);
    } else {
      std::vector<Tensor> x, x_mark, y, y_mark;
      for (const Pending& p : taken) {
        x.push_back(p.batch.x);
        x_mark.push_back(p.batch.x_mark);
        y.push_back(p.batch.y);
        y_mark.push_back(p.batch.y_mark);
      }
      data::Batch batch;
      batch.x = Concat(x, 0);
      batch.x_mark = Concat(x_mark, 0);
      batch.y = Concat(y, 0);
      batch.y_mark = Concat(y_mark, 0);
      merged = session_->Predict(batch);
    }
  } catch (const std::exception& e) {
    failure = Status::Internal(std::string("model Predict failed: ") +
                               e.what());
  } catch (...) {
    failure = Status::Internal("model Predict failed: unknown exception");
  }
  const int64_t end_ns = prof::internal::NowNs();

  metrics::Registry& registry = Registry();
  if (!failure.ok()) {
    CONFORMER_LOG(Warning) << "serving batch of " << series
                           << " series failed: " << failure.ToString();
    registry.GetCounter("serve.batch_failures").Increment();
    if (tenant_batch_failures_ != nullptr) tenant_batch_failures_->Increment();
    for (Pending& p : taken) {
      p.promise.set_value(Result<Forecast>(failure));
    }
    lock.lock();
    ++consecutive_failures_;
    if (config_.circuit_breaker_failures > 0 &&
        consecutive_failures_ >= config_.circuit_breaker_failures &&
        !circuit_open_) {
      circuit_open_ = true;
      registry.GetCounter("serve.circuit_opens").Increment();
      if (tenant_circuit_opens_ != nullptr) {
        tenant_circuit_opens_->Increment();
      }
      CONFORMER_LOG(Error) << "serving circuit breaker open after "
                           << consecutive_failures_
                           << " consecutive batch failures"
                           << (tenant_key_.empty() ? ""
                                                   : " (tenant " +
                                                         tenant_key_ + ")");
      DrainAndRejectLocked(Status::Unavailable(
          "circuit breaker open after consecutive batch failures"));
    }
    return true;
  }

  int64_t offset = 0;
  for (Pending& p : taken) {
    const int64_t rows = p.batch.size();
    Forecast slice;
    if (taken.size() == 1) {
      slice = merged;
    } else {
      slice.point = Slice(merged.point, 0, offset, offset + rows);
      if (merged.lower.defined()) {
        slice.lower = Slice(merged.lower, 0, offset, offset + rows);
        slice.upper = Slice(merged.upper, 0, offset, offset + rows);
      }
    }
    offset += rows;
    if (p.deadline_ns > 0) {
      // Slack still on the clock when the result was ready; a request that
      // completed past its deadline (dispatched in time, served slow)
      // records zero.
      registry.GetHistogram("serve.deadline_slack_seconds")
          .Observe(std::max(0.0,
                            static_cast<double>(p.deadline_ns - end_ns) * 1e-9));
    }
    p.promise.set_value(Result<Forecast>(std::move(slice)));
    const double latency = static_cast<double>(end_ns - p.enqueue_ns) * 1e-9;
    registry.GetHistogram("serve.request_latency_seconds").Observe(latency);
    if (tenant_latency_ != nullptr) tenant_latency_->Observe(latency);
  }

  registry.GetCounter("serve.batches").Increment();
  if (tenant_batches_ != nullptr) tenant_batches_->Increment();
  registry.GetHistogram("serve.batch_size",
                        {1, 2, 4, 8, 16, 32, 64, 128})
      .Observe(static_cast<double>(series));
  registry.GetGauge("serve.batch_occupancy")
      .Set(static_cast<double>(series) /
           static_cast<double>(config_.max_batch_size));
  registry.GetHistogram("serve.batch_latency_seconds")
      .Observe(static_cast<double>(end_ns - start_ns) * 1e-9);

  lock.lock();
  consecutive_failures_ = 0;
  return true;
}

BatchingQueue::BatchingQueue(InferenceSession* session, QueueConfig config)
    : core_(session, config, "", [this] {
        {
          // Taking the wake mutex (even empty-handed) closes the race with
          // a dispatcher that just Peek()ed an empty queue and is about to
          // wait: the notify below cannot fire between its check and its
          // wait.
          std::lock_guard<std::mutex> lock(wake_mu_);
        }
        wake_cv_.notify_all();
      }) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

BatchingQueue::~BatchingQueue() { Shutdown(); }

std::future<Result<Forecast>> BatchingQueue::Submit(data::Batch request,
                                                    RequestOptions options) {
  return core_.Submit(std::move(request), std::move(options));
}

void BatchingQueue::Shutdown() {
  core_.BeginShutdown();
  // Exactly one caller joins; concurrent callers block here until the
  // dispatcher has stopped, so Shutdown() returning always means "queue
  // fully drained and dispatcher gone" for every caller.
  std::call_once(join_once_, [this] {
    if (dispatcher_.joinable()) dispatcher_.join();
  });
}

int64_t BatchingQueue::pending() const { return core_.pending(); }

bool BatchingQueue::circuit_open() const { return core_.circuit_open(); }

void BatchingQueue::ResetCircuitBreaker() { core_.ResetCircuitBreaker(); }

void BatchingQueue::DispatchLoop() {
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (true) {
    const TenantQueue::DispatchState state = core_.Peek();
    const bool drain = core_.shutdown_requested();
    if (!state.has_work) {
      if (drain) return;
      wake_cv_.wait(lock);
      continue;
    }
    const int64_t now_ns = prof::internal::NowNs();
    if (!drain && state.ripe_at_ns > now_ns) {
      // Underfull batch: hold it open for company until the coalescing
      // delay elapses (or a Submit/Shutdown wakes us to re-check).
      wake_cv_.wait_for(lock,
                        std::chrono::nanoseconds(state.ripe_at_ns - now_ns));
      continue;
    }
    lock.unlock();
    core_.ServeOnce(drain);
    lock.lock();
  }
}

}  // namespace conformer::serve
