#include "serve/model_registry.h"

#include <utility>

#include "util/metrics.h"

namespace conformer::serve {

std::string MakeTenantKey(const std::string& model_name, int64_t pred_len) {
  return model_name + "@" + std::to_string(pred_len);
}

Status ModelRegistry::ValidateKey(const std::string& key) {
  if (key.empty() || key.size() > 64) {
    return Status::InvalidArgument(
        "tenant key must be 1..64 chars, got \"" + key + "\"");
  }
  int64_t separators = 0;
  for (const char c : key) {
    if (c == '@') {
      ++separators;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          std::string("tenant key has invalid char '") + c + "': \"" + key +
          "\" (allowed: [A-Za-z0-9_.-] and one '@')");
    }
  }
  if (separators != 1 || key.front() == '@' || key.back() == '@') {
    return Status::InvalidArgument(
        "tenant key must be \"model@horizon\" — exactly one '@' between "
        "non-empty halves, got \"" + key + "\"");
  }
  return Status::OK();
}

Status ModelRegistry::Register(const std::string& key, SessionConfig config,
                               const std::string& checkpoint) {
  Status valid = ValidateKey(key);
  if (!valid.ok()) return valid;
  {
    // Reject duplicates before the (expensive) open, and again at insert —
    // two concurrent Registers of one key must not both succeed.
    std::lock_guard<std::mutex> lock(mu_);
    if (sessions_.count(key) > 0) {
      return Status::AlreadyExists("tenant \"" + key +
                                   "\" is already registered");
    }
  }
  if (config.fault_scope.empty()) config.fault_scope = key;
  Result<std::unique_ptr<InferenceSession>> session =
      InferenceSession::Open(config, checkpoint);
  if (!session.ok()) return session.status();

  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted =
      sessions_.emplace(key, std::move(session.value())).second;
  if (!inserted) {
    return Status::AlreadyExists("tenant \"" + key +
                                 "\" was registered concurrently");
  }
  metrics::Registry::Global().GetGauge("serve.fleet.tenants")
      .Set(static_cast<double>(sessions_.size()));
  return Status::OK();
}

Status ModelRegistry::Reload(const std::string& key,
                             const std::string& checkpoint) {
  InferenceSession* session = Find(key);
  if (session == nullptr) {
    return Status::NotFound("tenant \"" + key + "\" is not registered");
  }
  return session->Reload(checkpoint);
}

InferenceSession* ModelRegistry::Find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(key);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ModelRegistry::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) keys.push_back(key);
  return keys;
}

int64_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

}  // namespace conformer::serve
