#include "serve/stats.h"

#include <algorithm>
#include <cmath>

namespace conformer::serve {

double HistogramQuantile(const metrics::Histogram::Snapshot& snapshot,
                         double q) {
  if (snapshot.count <= 0 || snapshot.bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(snapshot.count);
  double seen = 0.0;
  for (size_t i = 0; i < snapshot.counts.size(); ++i) {
    const double in_bucket = static_cast<double>(snapshot.counts[i]);
    if (seen + in_bucket < rank || in_bucket == 0.0) {
      seen += in_bucket;
      continue;
    }
    if (i >= snapshot.bounds.size()) return snapshot.bounds.back();
    const double upper = snapshot.bounds[i];
    const double lower = i == 0 ? 0.0 : snapshot.bounds[i - 1];
    const double fraction = in_bucket == 0.0
                                ? 1.0
                                : std::min(1.0, (rank - seen) / in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return snapshot.bounds.back();
}

}  // namespace conformer::serve
