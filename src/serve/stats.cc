#include "serve/stats.h"

#include <algorithm>
#include <cmath>

namespace conformer::serve {

double HistogramQuantile(const metrics::Histogram::Snapshot& snapshot,
                         double q) {
  if (snapshot.count <= 0 || snapshot.bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Empirical quantile, ceil-rank convention: the target is the k-th
  // smallest observation with k = max(1, ceil(q * count)), so a rank that
  // lands exactly on a bucket boundary resolves to the bucket that actually
  // holds that observation (the old continuous rank with a strict `<`
  // mis-assigned boundary ranks to the following bucket's lower edge).
  const double rank =
      std::max(1.0, std::ceil(q * static_cast<double>(snapshot.count)));
  double seen = 0.0;
  for (size_t i = 0; i < snapshot.counts.size(); ++i) {
    const double in_bucket = static_cast<double>(snapshot.counts[i]);
    // `seen < rank` holds on every iteration, so empty buckets fall through
    // this skip naturally (no special case) and the selected bucket always
    // has in_bucket >= rank - seen > 0.
    if (seen + in_bucket < rank) {
      seen += in_bucket;
      continue;
    }
    // The overflow bucket has no upper edge: deliberately pin to the largest
    // finite bound — q=1.0 with overflow samples reports the histogram's
    // measurable ceiling, not an invented extrapolation.
    if (i >= snapshot.bounds.size()) return snapshot.bounds.back();
    const double lower = i == 0 ? 0.0 : snapshot.bounds[i - 1];
    const double upper = snapshot.bounds[i];
    // Interpolate by the target's fractional position in the bucket;
    // (rank - seen) / in_bucket is in (0, 1] by construction.
    return lower + (upper - lower) * ((rank - seen) / in_bucket);
  }
  return snapshot.bounds.back();
}

}  // namespace conformer::serve
