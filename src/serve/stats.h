// Quantile estimation over metrics histograms, for the serving CLI / bench
// p50/p95/p99 summaries (docs/SERVING.md).

#ifndef CONFORMER_SERVE_STATS_H_
#define CONFORMER_SERVE_STATS_H_

#include "util/metrics.h"

namespace conformer::serve {

/// Estimates the `q`-quantile (q in [0, 1]) of the observations behind a
/// histogram snapshot. Convention: the target is the k-th smallest
/// observation, k = max(1, ceil(q * count)), linearly interpolated by its
/// fractional position inside the bucket that holds it — so a rank exactly
/// on a bucket boundary reports that bucket's upper edge. The overflow
/// bucket reports the largest finite boundary (q = 1.0 with overflow
/// samples is deliberately pinned to bounds.back()); an empty histogram
/// reports 0. Resolution is bucket granularity — fine for dashboards, not
/// for asserting exact values.
double HistogramQuantile(const metrics::Histogram::Snapshot& snapshot,
                         double q);

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_STATS_H_
