// Quantile estimation over metrics histograms, for the serving CLI / bench
// p50/p95/p99 summaries (docs/SERVING.md).

#ifndef CONFORMER_SERVE_STATS_H_
#define CONFORMER_SERVE_STATS_H_

#include "util/metrics.h"

namespace conformer::serve {

/// Estimates the `q`-quantile (q in [0, 1]) of the observations behind a
/// histogram snapshot by linear interpolation inside the bucket holding the
/// quantile rank. The overflow bucket reports its lower bound (the largest
/// finite boundary); an empty histogram reports 0. Resolution is bucket
/// granularity — fine for dashboards, not for asserting exact values.
double HistogramQuantile(const metrics::Histogram::Snapshot& snapshot,
                         double q);

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_STATS_H_
