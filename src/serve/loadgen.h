// Open-loop load generation against a FleetServer (docs/SERVING.md,
// "Driving a fleet with fleet_loadgen").
//
// Open-loop means arrivals follow their own clock: requests are submitted
// on a Poisson schedule regardless of whether earlier ones finished, so a
// saturated fleet sees a growing backlog instead of the generator politely
// slowing down — the regime where admission bounds, deadline shedding, and
// per-tenant isolation actually matter. (Closed-loop clients, like
// bench_serving's serve_queue_b8 row, measure capacity; open-loop measures
// behaviour PAST capacity.)
//
// The generator is a library so the fleet_loadgen CLI and bench_fleet
// share one implementation: N client threads each run an independent
// Poisson process at offered_rps / N, pick a tenant per request by the
// traffic-mix weights, and optionally add Pareto(alpha) "think time" —
// a heavy-tailed pause that clumps arrivals into realistic bursts while
// the long-run rate stays put. Latency quantiles come from the fleet's own
// serve.tenant.<key>.request_latency_seconds histograms (snapshot-delta
// over the run), so the report measures exactly what the server observed.

#ifndef CONFORMER_SERVE_LOADGEN_H_
#define CONFORMER_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/window_dataset.h"
#include "serve/fleet_server.h"

namespace conformer::serve {

/// \brief One tenant's slice of the generated traffic.
struct TenantLoad {
  /// Registered FleetServer tenant key ("conformer@16").
  std::string key;
  /// Request payload submitted verbatim each arrival (its batch dimension
  /// is the series-per-request for this tenant). Must match the tenant
  /// session's geometry or every request dies at admission.
  data::Batch prototype;
  /// Relative traffic share; a {2, 1} mix sends the first tenant two
  /// thirds of the arrivals. Must be > 0.
  double mix = 1.0;
};

/// \brief Load-shape knobs (defaults = gentle smoke load).
struct LoadgenOptions {
  /// Aggregate Poisson arrival rate, requests/second across all tenants.
  double offered_rps = 64.0;
  /// Arrival window; futures issued inside it are always collected, so the
  /// wall clock of a run exceeds this when the fleet is saturated.
  double duration_seconds = 1.0;
  /// Client threads; each runs an independent Poisson process at
  /// offered_rps / num_clients (superposition keeps the aggregate Poisson).
  int64_t num_clients = 2;
  /// > 0 adds Pareto-distributed think time after each arrival:
  /// think = think_scale_us * U^(-1/think_tail_alpha) microseconds. Alpha
  /// in (1, 2] gives the classic heavy tail (finite mean, wild variance) —
  /// arrivals clump into bursts that stress admission bounds harder than a
  /// plain Poisson stream at the same average rate. 0 disables.
  double think_scale_us = 0.0;
  double think_tail_alpha = 1.5;
  /// Per-request deadline, forwarded to Submit (0 = none).
  int64_t deadline_us = 0;
  uint64_t seed = 42;
};

/// \brief Per-tenant outcome tallies + latency quantiles for one run.
struct TenantLoadStats {
  std::string key;
  int64_t issued = 0;
  int64_t ok = 0;        ///< Forecast delivered.
  int64_t rejected = 0;  ///< ResourceExhausted/Unavailable at admission.
  int64_t shed = 0;      ///< DeadlineExceeded before dispatch.
  int64_t failed = 0;    ///< Anything else (contained model faults, ...).
  /// Delivered series/second: ok × (series per request) / wall_seconds —
  /// the same unit as bench_serving's serving rows.
  double goodput_rps = 0.0;
  /// Quantiles of the tenant's served-request latency over this run,
  /// milliseconds, at histogram-bucket resolution. 0 when nothing was
  /// served.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// \brief One load point: what was offered, what came back.
struct LoadReport {
  double offered_rps = 0.0;   ///< Configured target.
  double achieved_rps = 0.0;  ///< Actually issued / wall (< offered when
                              ///< saturated or think time dominates).
  double goodput_rps = 0.0;   ///< Fleet-wide delivered series/second.
  double wall_seconds = 0.0;  ///< Arrival window + backlog drain.
  std::vector<TenantLoadStats> tenants;
};

/// Runs one open-loop load point against `fleet` and blocks until every
/// issued future resolved. `mix` keys must already be registered (unknown
/// keys simply tally as rejected — NotFound — like any other refusal).
LoadReport RunOpenLoop(FleetServer& fleet, const std::vector<TenantLoad>& mix,
                       const LoadgenOptions& options);

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_LOADGEN_H_
