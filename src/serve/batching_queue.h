// Dynamic micro-batching for concurrent forecast requests
// (docs/SERVING.md).
//
// Two layers:
//
//   TenantQueue    the dispatcherless core — bounded admission, deadline
//                  shedding, FIFO coalescing with per-request slice-back,
//                  fault containment and the circuit breaker over one
//                  InferenceSession, plus per-tenant metrics. It never
//                  starts a thread: something external calls ServeOnce().
//   BatchingQueue  the single-tenant facade every pre-fleet caller uses —
//                  one TenantQueue driven by one dedicated dispatcher
//                  thread. Unchanged public API and semantics.
//
// The split exists for the model fleet (fleet_server.h): a FleetServer owns
// one TenantQueue per tenant and a small shared pool of dispatcher threads
// that pick ripe tenants by weighted round-robin, so N tenants do not cost
// N dispatcher threads and one slow tenant cannot starve the rest.
//
// Dispatchers are plain std::threads, NOT ThreadPool tasks: pool workers
// that block would deadlock nested kernels (nested ParallelFor runs
// sequentially), while dedicated threads leave the whole pool to the
// coalesced forward pass.
//
// Batching is transparent: kernels are row-independent with thread-count-
// invariant chunking (docs/THREADING.md), so a request's rows are bitwise
// identical whether served alone or inside any micro-batch.
//
// The queue is production-shaped (docs/SERVING.md, "Overload & failure
// policy"): admission is bounded (max_queue_depth), requests carry optional
// deadlines that shed expired work before it reaches the model, a failing
// Predict fails only its own batch's futures, and a consecutive-failure
// circuit breaker stops a broken model from looping hot. Every outcome is a
// status on the returned future — Submit() never crashes the process.

#ifndef CONFORMER_SERVE_BATCHING_QUEUE_H_
#define CONFORMER_SERVE_BATCHING_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/inference_session.h"
#include "util/metrics.h"
#include "util/status.h"

namespace conformer::serve {

/// \brief Micro-batching and resilience knobs.
struct QueueConfig {
  /// Series coalesced into one forward pass; larger batches amortize
  /// per-call overhead and feed the kernels wider ParallelFor ranges.
  int64_t max_batch_size = 8;
  /// How long the dispatcher holds an underfull batch open waiting for
  /// company, counted from the first queued request. 0 = never wait:
  /// coalesce only what is already queued.
  int64_t max_queue_delay_us = 1000;
  /// Bounded admission: Submit() rejects (ResourceExhausted, immediately
  /// resolved future, serve.rejected) once this many requests are already
  /// waiting. 0 = unbounded, the pre-resilience behaviour.
  int64_t max_queue_depth = 0;
  /// Circuit breaker: after this many *consecutive* failed batches the
  /// queue opens the circuit — queued and future requests are rejected
  /// (Unavailable) without touching the model — instead of looping hot on
  /// a broken model. Any successful batch resets the count. 0 = disabled.
  int64_t circuit_breaker_failures = 0;
};

/// \brief Per-request Submit() options.
struct RequestOptions {
  /// Deadline relative to Submit(), microseconds; 0 = none. A request whose
  /// deadline has passed when the dispatcher picks it up is shed
  /// (DeadlineExceeded, serve.shed_expired) without running the model; once
  /// dispatched, a request always completes even if it finishes late.
  /// Values too large to represent as an absolute nanosecond deadline
  /// saturate to "effectively never" instead of overflowing.
  int64_t deadline_us = 0;
};

/// \brief The dispatcherless batching core: one tenant's request queue over
/// one InferenceSession. Thread-safe for any number of Submit() callers;
/// at most ONE thread may be inside ServeOnce() at a time (BatchingQueue's
/// dedicated dispatcher, or whichever FleetServer shard claimed the
/// tenant). Destruction requires the owner to have drained the queue first
/// (both owners do, via Shutdown()).
class TenantQueue {
 public:
  /// `session` must outlive the queue. A non-empty `tenant_key`
  /// additionally publishes the serve.tenant.<key>.* metric family next to
  /// the process-wide serve.* aggregates. `on_work`, when set, is invoked
  /// OUTSIDE the queue lock whenever newly dispatchable work may exist
  /// (accepted Submit, BeginShutdown, breaker reset) — the hook fleet
  /// dispatchers use to wake up.
  TenantQueue(InferenceSession* session, QueueConfig config,
              std::string tenant_key = "",
              std::function<void()> on_work = {});

  TenantQueue(const TenantQueue&) = delete;
  TenantQueue& operator=(const TenantQueue&) = delete;

  /// Enqueues one request (any batch size >= 1 matching the session's
  /// window geometry) and returns a future for its forecast-or-status.
  /// Admission validates the full data::Batch contract — x
  /// [B, input_len, D], x_mark [B, input_len, kNumTimeFeatures], y
  /// [B, label_len + pred_len, D], y_mark likewise, all defined — so every
  /// admitted request is safe to co-batch and forward. Admission failures
  /// resolve the future immediately instead of enqueueing:
  /// ResourceExhausted (queue full), Unavailable (after BeginShutdown, or
  /// circuit open), InvalidArgument (missing tensors or wrong geometry).
  std::future<Result<Forecast>> Submit(data::Batch request,
                                       RequestOptions options = {});

  /// \brief Dispatcher-side snapshot of the queue.
  struct DispatchState {
    /// Something is waiting to be dispatched, shed, or breaker-drained.
    bool has_work = false;
    /// Earliest time the pending batch may dispatch: now or earlier means
    /// ripe (batch full, coalescing delay elapsed, or draining); later
    /// means the dispatcher should wait for company until then.
    int64_t ripe_at_ns = 0;
  };
  DispatchState Peek() const;

  /// Serves one micro-batch if one is ripe (`drain` ignores the coalescing
  /// delay — shutdown semantics: everything queued goes out as fast as
  /// possible). Sheds expired requests as they surface, runs the batch
  /// inside the fault-containment boundary, trips/drains the breaker on
  /// consecutive failures. Returns true if any request was fulfilled, shed,
  /// or rejected. Single dispatcher at a time (see class comment).
  bool ServeOnce(bool drain);

  /// Refuses all later Submits with Unavailable. Queued requests are NOT
  /// rejected — the owning dispatcher drains them with ServeOnce(true),
  /// preserving the "no accepted request is lost" guarantee.
  void BeginShutdown();
  bool shutdown_requested() const;

  /// Requests currently waiting (not yet dispatched).
  int64_t pending() const;

  /// True once the circuit breaker has tripped; every request is rejected
  /// until ResetCircuitBreaker().
  bool circuit_open() const;
  /// Closes the circuit (e.g. after a model Reload fixed the fault).
  void ResetCircuitBreaker();

  const QueueConfig& config() const { return config_; }
  const std::string& tenant_key() const { return tenant_key_; }
  InferenceSession* session() const { return session_; }

 private:
  struct Pending {
    data::Batch batch;
    std::promise<Result<Forecast>> promise;
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  ///< Absolute; 0 = no deadline.
  };

  /// Rejects every queued request with `status`; mu_ held.
  void DrainAndRejectLocked(const Status& status);
  void CountRejected();
  void SetDepthLocked();
  void NotifyWork();

  InferenceSession* session_;
  QueueConfig config_;
  const std::string tenant_key_;
  std::function<void()> on_work_;

  // Cached instrument references (registry lookups are map-under-mutex;
  // references are stable for the process lifetime). The tenant_* members
  // are null for an untenanted queue.
  metrics::Counter& requests_;
  metrics::Counter& rejected_;
  metrics::Counter& shed_;
  metrics::Counter* tenant_requests_ = nullptr;
  metrics::Counter* tenant_rejected_ = nullptr;
  metrics::Counter* tenant_shed_ = nullptr;
  metrics::Counter* tenant_batches_ = nullptr;
  metrics::Counter* tenant_batch_failures_ = nullptr;
  metrics::Counter* tenant_circuit_opens_ = nullptr;
  metrics::Gauge* tenant_depth_ = nullptr;
  metrics::Histogram* tenant_latency_ = nullptr;

  mutable std::mutex mu_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  bool circuit_open_ = false;
  int64_t consecutive_failures_ = 0;  ///< Dispatcher-only.
};

/// \brief The single-tenant serving queue: one TenantQueue driven by one
/// dedicated dispatcher thread. Thread-safe; destruction drains the queue.
class BatchingQueue {
 public:
  /// `session` must outlive the queue.
  BatchingQueue(InferenceSession* session, QueueConfig config);
  /// Calls Shutdown().
  ~BatchingQueue();

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// See TenantQueue::Submit. Bumps serve.requests / serve.rejected and
  /// observes serve.request_latency_seconds on completion.
  std::future<Result<Forecast>> Submit(data::Batch request,
                                       RequestOptions options = {});

  /// Drains every queued request, then stops the dispatcher. Thread-safe
  /// and idempotent: concurrent callers all return once the dispatcher has
  /// stopped. Requests queued before shutdown complete; Submit() afterwards
  /// is refused with Unavailable.
  void Shutdown();

  /// Requests currently waiting (not yet dispatched).
  int64_t pending() const;

  /// True once the circuit breaker has tripped; every request is rejected
  /// until ResetCircuitBreaker().
  bool circuit_open() const;
  /// Closes the circuit (e.g. after a model Reload fixed the fault).
  void ResetCircuitBreaker();

  const QueueConfig& config() const { return core_.config(); }

 private:
  void DispatchLoop();

  TenantQueue core_;
  std::mutex wake_mu_;           ///< Pairs with wake_cv_ only.
  std::condition_variable wake_cv_;
  std::once_flag join_once_;
  std::thread dispatcher_;
};

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_BATCHING_QUEUE_H_
