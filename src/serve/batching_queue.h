// Dynamic micro-batching for concurrent forecast requests
// (docs/SERVING.md).
//
// Callers Submit() single-series (or small) batches and get a future; a
// dedicated dispatcher thread coalesces whatever is queued — up to
// max_batch_size series, waiting at most max_queue_delay_us after the first
// request of a batch — into one InferenceSession::Predict call, then slices
// the result back per request. The dispatcher is a plain std::thread, NOT a
// ThreadPool task: pool workers that block would deadlock nested kernels
// (nested ParallelFor runs sequentially), while a dedicated thread leaves
// the whole pool to the coalesced forward pass.
//
// Batching is transparent: kernels are row-independent with thread-count-
// invariant chunking (docs/THREADING.md), so a request's rows are bitwise
// identical whether served alone or inside any micro-batch.

#ifndef CONFORMER_SERVE_BATCHING_QUEUE_H_
#define CONFORMER_SERVE_BATCHING_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/inference_session.h"

namespace conformer::serve {

/// \brief Micro-batching knobs.
struct QueueConfig {
  /// Series coalesced into one forward pass; larger batches amortize
  /// per-call overhead and feed the kernels wider ParallelFor ranges.
  int64_t max_batch_size = 8;
  /// How long the dispatcher holds an underfull batch open waiting for
  /// company, counted from the first queued request. 0 = never wait:
  /// coalesce only what is already queued.
  int64_t max_queue_delay_us = 1000;
};

/// \brief Coalesces concurrent requests into micro-batches over one
/// InferenceSession. Thread-safe; destruction drains the queue.
class BatchingQueue {
 public:
  /// `session` must outlive the queue.
  BatchingQueue(InferenceSession* session, QueueConfig config);
  /// Calls Shutdown().
  ~BatchingQueue();

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Enqueues one request (any batch size >= 1 with the session's window
  /// geometry) and returns a future for its forecast. Bumps serve.requests
  /// and observes serve.request_latency_seconds on completion.
  std::future<Forecast> Submit(data::Batch request);

  /// Drains every queued request, then stops the dispatcher. Submit() after
  /// shutdown is an error. Idempotent.
  void Shutdown();

  /// Requests currently waiting (not yet dispatched).
  int64_t pending() const;

  const QueueConfig& config() const { return config_; }

 private:
  struct Pending {
    data::Batch batch;
    std::promise<Forecast> promise;
    int64_t enqueue_ns = 0;
  };

  void DispatchLoop();
  /// Pops up to max_batch_size series worth of requests, runs them as one
  /// batch, and fulfills their promises. `lock` is held on entry and exit.
  void ServeBatch(std::unique_lock<std::mutex>& lock);

  InferenceSession* session_;
  QueueConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  std::thread dispatcher_;
};

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_BATCHING_QUEUE_H_
