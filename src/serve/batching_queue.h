// Dynamic micro-batching for concurrent forecast requests
// (docs/SERVING.md).
//
// Callers Submit() single-series (or small) batches and get a future; a
// dedicated dispatcher thread coalesces whatever is queued — up to
// max_batch_size series, waiting at most max_queue_delay_us after the first
// request of a batch — into one InferenceSession::Predict call, then slices
// the result back per request. The dispatcher is a plain std::thread, NOT a
// ThreadPool task: pool workers that block would deadlock nested kernels
// (nested ParallelFor runs sequentially), while a dedicated thread leaves
// the whole pool to the coalesced forward pass.
//
// Batching is transparent: kernels are row-independent with thread-count-
// invariant chunking (docs/THREADING.md), so a request's rows are bitwise
// identical whether served alone or inside any micro-batch.
//
// The queue is production-shaped (docs/SERVING.md, "Overload & failure
// policy"): admission is bounded (max_queue_depth), requests carry optional
// deadlines that shed expired work before it reaches the model, a failing
// Predict fails only its own batch's futures, and a consecutive-failure
// circuit breaker stops a broken model from looping hot. Every outcome is a
// status on the returned future — Submit() never crashes the process.

#ifndef CONFORMER_SERVE_BATCHING_QUEUE_H_
#define CONFORMER_SERVE_BATCHING_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/inference_session.h"
#include "util/status.h"

namespace conformer::serve {

/// \brief Micro-batching and resilience knobs.
struct QueueConfig {
  /// Series coalesced into one forward pass; larger batches amortize
  /// per-call overhead and feed the kernels wider ParallelFor ranges.
  int64_t max_batch_size = 8;
  /// How long the dispatcher holds an underfull batch open waiting for
  /// company, counted from the first queued request. 0 = never wait:
  /// coalesce only what is already queued.
  int64_t max_queue_delay_us = 1000;
  /// Bounded admission: Submit() rejects (ResourceExhausted, immediately
  /// resolved future, serve.rejected) once this many requests are already
  /// waiting. 0 = unbounded, the pre-resilience behaviour.
  int64_t max_queue_depth = 0;
  /// Circuit breaker: after this many *consecutive* failed batches the
  /// queue opens the circuit — queued and future requests are rejected
  /// (Unavailable) without touching the model — instead of looping hot on
  /// a broken model. Any successful batch resets the count. 0 = disabled.
  int64_t circuit_breaker_failures = 0;
};

/// \brief Per-request Submit() options.
struct RequestOptions {
  /// Deadline relative to Submit(), microseconds; 0 = none. A request whose
  /// deadline has passed when the dispatcher picks it up is shed
  /// (DeadlineExceeded, serve.shed_expired) without running the model; once
  /// dispatched, a request always completes even if it finishes late.
  /// Values too large to represent as an absolute nanosecond deadline
  /// saturate to "effectively never" instead of overflowing.
  int64_t deadline_us = 0;
};

/// \brief Coalesces concurrent requests into micro-batches over one
/// InferenceSession. Thread-safe; destruction drains the queue.
class BatchingQueue {
 public:
  /// `session` must outlive the queue.
  BatchingQueue(InferenceSession* session, QueueConfig config);
  /// Calls Shutdown().
  ~BatchingQueue();

  BatchingQueue(const BatchingQueue&) = delete;
  BatchingQueue& operator=(const BatchingQueue&) = delete;

  /// Enqueues one request (any batch size >= 1 matching the session's
  /// window geometry) and returns a future for its forecast-or-status.
  /// Admission validates the full data::Batch contract — x
  /// [B, input_len, D], x_mark [B, input_len, kNumTimeFeatures], y
  /// [B, label_len + pred_len, D], y_mark likewise, all defined — so every
  /// admitted request is safe to co-batch and forward. Admission failures
  /// resolve the future immediately instead of enqueueing:
  /// ResourceExhausted (queue full), Unavailable (after Shutdown, or
  /// circuit open), InvalidArgument (missing tensors or wrong geometry).
  /// Bumps serve.requests / serve.rejected and observes
  /// serve.request_latency_seconds on completion.
  std::future<Result<Forecast>> Submit(data::Batch request,
                                       RequestOptions options = {});

  /// Drains every queued request, then stops the dispatcher. Thread-safe
  /// and idempotent: concurrent callers all return once the dispatcher has
  /// stopped. Requests queued before shutdown complete; Submit() afterwards
  /// is refused with Unavailable.
  void Shutdown();

  /// Requests currently waiting (not yet dispatched).
  int64_t pending() const;

  /// True once the circuit breaker has tripped; every request is rejected
  /// until ResetCircuitBreaker().
  bool circuit_open() const;
  /// Closes the circuit (e.g. after a model Reload fixed the fault).
  void ResetCircuitBreaker();

  const QueueConfig& config() const { return config_; }

 private:
  struct Pending {
    data::Batch batch;
    std::promise<Result<Forecast>> promise;
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  ///< Absolute; 0 = no deadline.
  };

  void DispatchLoop();
  /// Pops up to max_batch_size series worth of requests (shedding expired
  /// ones), runs them as one batch inside a containment boundary, and
  /// fulfills their promises. `lock` is held on entry and exit.
  void ServeBatch(std::unique_lock<std::mutex>& lock);
  /// Rejects every queued request with `status`; mu_ held.
  void DrainAndRejectLocked(const Status& status);

  InferenceSession* session_;
  QueueConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  bool circuit_open_ = false;
  int64_t consecutive_failures_ = 0;  ///< Dispatcher-only.
  std::once_flag join_once_;
  std::thread dispatcher_;
};

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_BATCHING_QUEUE_H_
