#include "serve/inference_session.h"

#include <utility>

#include "core/conformer_model.h"
#include "train/checkpoint.h"
#include "util/binary_io.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::serve {

namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace

InferenceSession::InferenceSession(SessionConfig config,
                                   std::unique_ptr<models::Forecaster> model)
    : config_(std::move(config)), model_(std::move(model)) {}

Result<std::unique_ptr<InferenceSession>> InferenceSession::Open(
    const SessionConfig& config, const std::string& checkpoint) {
  CONFORMER_PROFILE_SCOPE_CAT("serve", "session_open");
  Result<std::unique_ptr<models::Forecaster>> model = models::MakeForecaster(
      config.model_name, config.window, config.dims, config.hyper);
  if (!model.ok()) return model.status();
  model.value()->SetTraining(false);

  if (!checkpoint.empty()) {
    // A directory is recognized by its MANIFEST; anything else must be a
    // single checkpoint file.
    Status restored = io::FileExists(JoinPath(checkpoint, "MANIFEST"))
                          ? train::LoadLatestCheckpointParams(
                                checkpoint, model.value().get())
                          : train::LoadCheckpointParams(checkpoint,
                                                        model.value().get());
    if (!restored.ok()) return restored;
  }

  return std::unique_ptr<InferenceSession>(
      new InferenceSession(config, std::move(model.value())));
}

Forecast InferenceSession::Predict(const data::Batch& batch) {
  CONFORMER_PROFILE_SCOPE_CAT("serve", "predict");
  CONFORMER_CHECK(batch.x.defined() && batch.size() > 0)
      << "Predict() needs a non-empty batch";
  CONFORMER_CHECK_EQ(batch.x.size(1), config_.window.input_len);
  CONFORMER_CHECK_EQ(batch.x.size(2), config_.dims);

  const int64_t start_ns = prof::internal::NowNs();
  InferenceModeGuard inference_mode;

  Forecast out;
  out.point = model_->Predict(batch);
  if (config_.quantile_samples > 0) {
    // Flow-head quantiles: Conformer's normalizing flow is the only
    // sampling head; other models stay point-only.
    if (auto* conformer = dynamic_cast<core::ConformerModel*>(model_.get())) {
      flow::UncertaintyBand band = conformer->PredictWithUncertainty(
          batch, config_.quantile_samples, config_.coverage);
      out.lower = band.lower;
      out.upper = band.upper;
    }
  }

  metrics::Registry& registry = metrics::Registry::Global();
  registry.GetCounter("serve.predicts").Increment();
  registry.GetCounter("serve.predicted_series").Increment(batch.size());
  registry.GetHistogram("serve.predict_seconds")
      .Observe(static_cast<double>(prof::internal::NowNs() - start_ns) * 1e-9);
  return out;
}

}  // namespace conformer::serve
