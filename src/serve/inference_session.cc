#include "serve/inference_session.h"

#include <utility>

#include "core/conformer_model.h"
#include "serve/fault_injector.h"
#include "train/checkpoint.h"
#include "util/binary_io.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::serve {

namespace {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

// Restores `model`'s parameters from a .ckpt file or a MANIFEST directory
// (newest-first with fallback) — the shared loader behind Open and Reload.
Status RestoreParams(const std::string& checkpoint, nn::Module* model) {
  return io::FileExists(JoinPath(checkpoint, "MANIFEST"))
             ? train::LoadLatestCheckpointParams(checkpoint, model)
             : train::LoadCheckpointParams(checkpoint, model);
}

// Plan-cache key: the shapes of the four batch tensors ("-" when undefined).
// Two batches with equal keys replay through the same plan.
std::string GeometryKey(const data::Batch& batch) {
  std::string key;
  for (const Tensor* t : {&batch.x, &batch.x_mark, &batch.y, &batch.y_mark}) {
    if (!t->defined()) {
      key += "-|";
      continue;
    }
    for (int64_t i = 0; i < t->dim(); ++i) {
      if (i > 0) key += 'x';
      key += std::to_string(t->size(i));
    }
    key += '|';
  }
  return key;
}

}  // namespace

InferenceSession::InferenceSession(SessionConfig config,
                                   std::unique_ptr<models::Forecaster> model)
    : config_(std::move(config)), model_(std::move(model)) {}

Result<std::unique_ptr<InferenceSession>> InferenceSession::Open(
    const SessionConfig& config, const std::string& checkpoint) {
  CONFORMER_PROFILE_SCOPE_CAT("serve", "session_open");
  Result<std::unique_ptr<models::Forecaster>> model = models::MakeForecaster(
      config.model_name, config.window, config.dims, config.hyper);
  if (!model.ok()) return model.status();
  model.value()->SetTraining(false);

  if (!checkpoint.empty()) {
    Status restored = RestoreParams(checkpoint, model.value().get());
    if (!restored.ok()) return restored;
  }

  return std::unique_ptr<InferenceSession>(
      new InferenceSession(config, std::move(model.value())));
}

Result<std::unique_ptr<InferenceSession>> InferenceSession::Open(
    const SessionConfig& config, std::unique_ptr<models::Forecaster> model) {
  if (model == nullptr) {
    return Status::InvalidArgument("Open() needs a model");
  }
  model->SetTraining(false);
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(config, std::move(model)));
}

Forecast InferenceSession::Predict(const data::Batch& batch) {
  CONFORMER_PROFILE_SCOPE_CAT("serve", "predict");
  CONFORMER_CHECK(batch.x.defined() && batch.size() > 0)
      << "Predict() needs a non-empty batch";
  CONFORMER_CHECK_EQ(batch.x.size(1), config_.window.input_len);
  CONFORMER_CHECK_EQ(batch.x.size(2), config_.dims);

  const int64_t start_ns = prof::internal::NowNs();
  InferenceModeGuard inference_mode;

  // The session lock is Reload()'s swap point: holding it across the whole
  // forward means a request runs entirely on one parameter set.
  std::lock_guard<std::mutex> lock(mu_);
  FaultInjector::MaybePredictFault(config_.fault_scope);

  Forecast out;
  out.point = config_.use_static_plan ? PredictPoint(batch)
                                      : model_->Predict(batch);
  if (config_.quantile_samples > 0) {
    // Flow-head quantiles: Conformer's normalizing flow is the only
    // sampling head; other models stay point-only.
    if (auto* conformer = dynamic_cast<core::ConformerModel*>(model_.get())) {
      flow::UncertaintyBand band = conformer->PredictWithUncertainty(
          batch, config_.quantile_samples, config_.coverage);
      out.lower = band.lower;
      out.upper = band.upper;
    }
  }

  metrics::Registry& registry = metrics::Registry::Global();
  registry.GetCounter("serve.predicts").Increment();
  registry.GetCounter("serve.predicted_series").Increment(batch.size());
  registry.GetHistogram("serve.predict_seconds")
      .Observe(static_cast<double>(prof::internal::NowNs() - start_ns) * 1e-9);
  return out;
}

Status InferenceSession::Reload(const std::string& checkpoint) {
  CONFORMER_PROFILE_SCOPE_CAT("serve", "reload");
  metrics::Registry& registry = metrics::Registry::Global();
  const int64_t start_ns = prof::internal::NowNs();

  // Stage: build a fresh architecture and restore into it without the
  // serving lock, so a slow — or corrupt — checkpoint never stalls or
  // perturbs in-flight Predicts. Only a fully validated parameter set ever
  // reaches the swap below.
  Status staged = Status::OK();
  std::unique_ptr<models::Forecaster> incoming;
  if (checkpoint.empty()) {
    staged = Status::InvalidArgument("Reload() needs a checkpoint path");
  } else {
    Result<std::unique_ptr<models::Forecaster>> built =
        models::MakeForecaster(config_.model_name, config_.window,
                               config_.dims, config_.hyper);
    if (!built.ok()) {
      staged = built.status();
    } else {
      incoming = std::move(built.value());
      incoming->SetTraining(false);
      staged = RestoreParams(checkpoint, incoming.get());
    }
  }
  if (staged.ok() && FaultInjector::ShouldFailReload(config_.fault_scope)) {
    staged = Status::IOError("injected reload fault before swap");
  }
  if (!staged.ok()) {
    registry.GetCounter("serve.reload_failures").Increment();
    return staged;
  }

  {
    // Swap: the only mutation the serving path can observe, done under the
    // same mutex Predict holds — in-flight requests finish on the old
    // model, later ones see the new one. Plans compiled against the old
    // parameter values are invalidated wholesale.
    std::lock_guard<std::mutex> lock(mu_);
    model_ = std::move(incoming);
    plans_.clear();
    failed_geometries_.clear();
  }
  registry.GetCounter("serve.reloads").Increment();
  registry.GetHistogram("serve.reload_seconds")
      .Observe(static_cast<double>(prof::internal::NowNs() - start_ns) * 1e-9);
  return Status::OK();
}

Tensor InferenceSession::PredictPoint(const data::Batch& batch) {
  metrics::Registry& registry = metrics::Registry::Global();
  const std::string key = GeometryKey(batch);

  auto it = plans_.find(key);
  if (it != plans_.end()) {
    CONFORMER_PROFILE_SCOPE_CAT("serve", "plan_replay");
    registry.GetCounter("serve.plan_hits").Increment();
    if (config_.static_parity_check) {
      Tensor replay_out;
      runtime::ParityReport report = runtime::VerifyParity(
          *it->second,
          [this](const data::Batch& b) { return model_->Predict(b); }, batch,
          &replay_out);
      CONFORMER_CHECK(report.ok())
          << "static plan diverged from eager Predict: "
          << (report.structural_ok
                  ? (report.mismatches.empty()
                         ? std::string("unknown")
                         : "step " +
                               std::to_string(report.mismatches[0].step_index) +
                               " (" + report.mismatches[0].op_name + ")")
                  : report.structural_error);
      return replay_out;
    }
    return it->second->Run(batch);
  }

  if (failed_geometries_.count(key) > 0) {
    registry.GetCounter("serve.plan_fallbacks").Increment();
    return model_->Predict(batch);
  }

  // First call at this geometry: trace the eager forward into a plan. The
  // traced output doubles as this call's response, so a miss costs one eager
  // forward plus planning — never two forwards.
  CONFORMER_PROFILE_SCOPE_CAT("serve", "plan_build");
  Result<runtime::TraceResult> traced = runtime::CapturePredictPlan(
      [this](const data::Batch& b) { return model_->Predict(b); }, batch);
  if (!traced.ok()) {
    CONFORMER_LOG(Warning) << "static plan trace failed for " << key << ": "
                           << traced.status().message()
                           << "; serving eagerly for this geometry";
    failed_geometries_.insert(key);
    registry.GetCounter("serve.plan_fallbacks").Increment();
    return model_->Predict(batch);
  }
  registry.GetCounter("serve.plan_builds").Increment();
  Tensor output = traced.value().output;
  plans_.emplace(key, std::make_unique<runtime::PlanExecutor>(
                          std::move(traced.value().plan)));
  return output;
}

const runtime::Plan* InferenceSession::plan_for(
    const data::Batch& batch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(GeometryKey(batch));
  return it == plans_.end() ? nullptr : &it->second->plan();
}

}  // namespace conformer::serve
