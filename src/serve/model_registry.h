// Tenant-keyed registry of serving sessions (docs/SERVING.md, "The model
// fleet").
//
// A fleet serves many (model, horizon) variants concurrently; the registry
// is the key -> InferenceSession map behind it. Tenant keys follow the
// `model@horizon` naming contract ("conformer@16", "linear@96"): the model
// half is conventionally a models::MakeForecaster registry name and the
// horizon half the session's pred_len, so one model architecture served at
// three horizons is three tenants with three independent parameter sets,
// hot-reload schedules, and failure domains.
//
// Each session keeps its own PR-8 Reload() machinery — the registry adds
// only the naming, duplicate rejection, and lookup. Reload(key, checkpoint)
// therefore inherits every single-tenant guarantee: staging off the serving
// lock, atomic swap, corrupt-checkpoint rejection with the old parameters
// bitwise undisturbed — and touches nothing but that one tenant (proved by
// serve_fleet_test.cc's bitwise isolation cases).

#ifndef CONFORMER_SERVE_MODEL_REGISTRY_H_
#define CONFORMER_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/inference_session.h"
#include "util/status.h"

namespace conformer::serve {

/// Builds the conventional tenant key for a model served at a horizon:
/// "conformer@16". Purely a naming helper — Register accepts any valid key.
std::string MakeTenantKey(const std::string& model_name, int64_t pred_len);

/// \brief Key -> hot-reloadable InferenceSession map. Thread-safe; sessions
/// live until the registry dies (Remove() is deliberately absent — serving
/// infrastructure holds raw session pointers, and retiring a tenant is a
/// drain-the-queue problem the FleetServer owns, not a map erase).
class ModelRegistry {
 public:
  /// The tenant-key naming contract: non-empty, at most 64 chars, drawn
  /// from [A-Za-z0-9_.-] plus exactly one '@' separating two non-empty
  /// halves. Keys are embedded in metric names (serve.tenant.<key>.*), so
  /// the charset keeps the metrics JSON sane.
  static Status ValidateKey(const std::string& key);

  /// Opens a session for `key` from `config` + `checkpoint` (exactly like
  /// InferenceSession::Open; empty checkpoint serves the fresh model).
  /// `config.fault_scope`, when empty, is stamped with `key` so scoped
  /// chaos drills (CONFORMER_SERVE_FAULTS="...,scope=<key>") target this
  /// tenant alone. Fails with AlreadyExists on a duplicate key and
  /// InvalidArgument on a malformed one; a failed open registers nothing.
  Status Register(const std::string& key, SessionConfig config,
                  const std::string& checkpoint);

  /// Hot-reloads one tenant's parameters (InferenceSession::Reload): every
  /// other tenant's session is untouched by construction. NotFound for an
  /// unknown key.
  Status Reload(const std::string& key, const std::string& checkpoint);

  /// The session serving `key`, or nullptr when unregistered. The pointer
  /// is stable for the registry's lifetime.
  InferenceSession* Find(const std::string& key) const;

  /// Registered keys, sorted (the map order) — deterministic iteration for
  /// dispatch and reporting.
  std::vector<std::string> Keys() const;

  int64_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<InferenceSession>> sessions_;
};

}  // namespace conformer::serve

#endif  // CONFORMER_SERVE_MODEL_REGISTRY_H_
