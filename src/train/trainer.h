// Training loop: Adam, gradient clipping, early stopping on validation MSE
// with best-weights restore — the protocol of Section V-A3 — plus the
// crash-safety layer of docs/ROBUSTNESS.md: atomic checkpointing with exact
// resume and non-finite-loss recovery.

#ifndef CONFORMER_TRAIN_TRAINER_H_
#define CONFORMER_TRAIN_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/forecaster.h"
#include "data/window_dataset.h"
#include "train/metrics.h"

namespace conformer::train {

/// \brief Knobs of one training run.
struct TrainConfig {
  int64_t epochs = 10;        ///< Paper: early stopping within 10 epochs.
  int64_t batch_size = 32;
  float learning_rate = 1e-4f;
  /// Per-epoch learning-rate multiplier (Informer's protocol halves the LR
  /// each epoch; 1.0 keeps it constant).
  float lr_decay = 1.0f;
  int64_t patience = 3;       ///< Epochs without val improvement tolerated.
  float clip_norm = 5.0f;     ///< 0 disables clipping.
  /// Caps batches per epoch / per evaluation (0 = no cap). The scaled-down
  /// bench configs rely on these to keep single-core runs tractable.
  int64_t max_train_batches = 0;
  int64_t max_eval_batches = 0;
  uint64_t seed = 42;
  bool verbose = false;

  // -- Crash safety (docs/ROBUSTNESS.md) ------------------------------------

  /// Directory for checkpoints; empty disables checkpointing entirely.
  std::string checkpoint_dir;
  /// Also checkpoint every N optimizer steps (0 = epoch boundaries only).
  int64_t checkpoint_every_n_steps = 0;
  /// Checkpoint at every Nth epoch boundary (0 disables epoch checkpoints).
  int64_t checkpoint_every_n_epochs = 1;
  /// Retained checkpoint count; older ones are pruned from the manifest.
  int64_t checkpoint_keep_last = 2;
  /// When checkpoint_dir holds a valid checkpoint, continue from it instead
  /// of training from scratch. A resumed run reproduces the uninterrupted
  /// run bitwise (same shuffles, same updates, same FitResult history).
  bool resume = true;

  // -- Non-finite recovery --------------------------------------------------

  /// A step whose loss or gradient norm is NaN/Inf is skipped (no optimizer
  /// update) and counted in train.nonfinite_steps. After this many
  /// consecutive skipped steps, parameters and optimizer state are restored
  /// from the last known-good snapshot. <= 0 disables the rollback (bad
  /// steps are still skipped).
  int64_t nonfinite_patience = 3;

  // -- Fault injection (tests / docs only) ----------------------------------

  /// When > 0, Fit returns abruptly after this many global steps without
  /// running validation or restoring best weights — simulating a crash so
  /// kill-and-resume behaviour is testable in-process.
  int64_t debug_abort_after_steps = 0;
};

/// \brief Outcome of Trainer::Fit.
struct FitResult {
  int64_t epochs_run = 0;
  double best_val_mse = 0.0;
  bool early_stopped = false;
  std::vector<double> train_losses;  ///< Mean loss per epoch (finite steps).
  std::vector<double> val_mses;      ///< Validation MSE per epoch.
  int64_t nonfinite_steps = 0;  ///< Steps skipped for NaN/Inf loss or grad.
  bool resumed = false;         ///< True when Fit continued from a checkpoint.
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  /// Trains `model` and restores the best-validation weights before
  /// returning.
  FitResult Fit(models::Forecaster* model, const data::WindowDataset& train,
                const data::WindowDataset& val) const;

  /// MSE/MAE of `model` on `dataset` (standardized space, as in the paper).
  EvalMetrics Evaluate(models::Forecaster* model,
                       const data::WindowDataset& dataset) const;

  const TrainConfig& config() const { return config_; }

 private:
  TrainConfig config_;
};

}  // namespace conformer::train

#endif  // CONFORMER_TRAIN_TRAINER_H_
