#include "train/optimizer.h"

#include <cmath>
#include "util/profiler.h"

namespace conformer::train {

void Optimizer::ZeroGrad() {
  CONFORMER_PROFILE_SCOPE_CAT("train", "zero_grad");
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].numel(), 0.0f);
  }
}

void Sgd::Step() {
  CONFORMER_PROFILE_SCOPE_CAT("optimizer", "sgd_step");
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    float* w = p.data();
    float* vel = velocity_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      vel[j] = momentum_ * vel[j] + g[j];
      w[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].numel(), 0.0f);
    v_[i].assign(params_[i].numel(), 0.0f);
  }
}

void Adam::Step() {
  CONFORMER_PROFILE_SCOPE_CAT("optimizer", "adam_step");
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    float* w = p.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

double ClipGradNorm(std::vector<Tensor>& params, double max_norm) {
  CONFORMER_PROFILE_SCOPE_CAT("optimizer", "clip_grad_norm");
  double total = 0.0;
  for (Tensor& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    for (int64_t j = 0; j < p.numel(); ++j) {
      total += static_cast<double>(g[j]) * static_cast<double>(g[j]);
    }
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor& p : params) {
      if (!p.has_grad()) continue;
      float* g = p.grad_data();
      for (int64_t j = 0; j < p.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace conformer::train
