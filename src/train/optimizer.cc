#include "train/optimizer.h"

#include <cmath>
#include "util/binary_io.h"
#include "util/profiler.h"

namespace conformer::train {

void Optimizer::ZeroGrad() {
  CONFORMER_PROFILE_SCOPE_CAT("train", "zero_grad");
  for (Tensor& p : params_) p.ZeroGrad();
}

void Optimizer::SaveParamBuffers(
    std::ostream& out, const std::vector<std::vector<float>>& buffers) const {
  io::WriteU64(out, buffers.size());
  for (const std::vector<float>& buf : buffers) {
    io::WriteFloats(out, buf.data(), static_cast<int64_t>(buf.size()));
  }
}

Status Optimizer::LoadParamBuffers(
    std::istream& in, const std::string& what,
    std::vector<std::vector<float>>* buffers) {
  uint64_t count = 0;
  CONFORMER_RETURN_IF_ERROR(io::ReadU64(in, &count, what + " buffer count"));
  if (count != params_.size()) {
    return Status::InvalidArgument(
        what + ": state holds " + std::to_string(count) +
        " buffers but the optimizer tracks " + std::to_string(params_.size()) +
        " parameters");
  }
  std::vector<std::vector<float>> loaded(count);
  for (uint64_t i = 0; i < count; ++i) {
    CONFORMER_RETURN_IF_ERROR(io::ReadFloats(
        in, &loaded[i], what + " buffer " + std::to_string(i)));
    const uint64_t expect = static_cast<uint64_t>(params_[i].numel());
    if (loaded[i].size() != expect) {
      return Status::InvalidArgument(
          what + " buffer " + std::to_string(i) + " has " +
          std::to_string(loaded[i].size()) + " elements, parameter has " +
          std::to_string(expect));
    }
  }
  *buffers = std::move(loaded);
  return Status::OK();
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].numel(), 0.0f);
  }
}

void Sgd::Step() {
  CONFORMER_PROFILE_SCOPE_CAT("optimizer", "sgd_step");
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    float* w = p.data();
    float* vel = velocity_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      vel[j] = momentum_ * vel[j] + g[j];
      w[j] -= lr_ * vel[j];
    }
  }
}

void Sgd::SaveState(std::ostream& out) const {
  io::WriteF64(out, lr_);
  io::WriteF64(out, momentum_);
  SaveParamBuffers(out, velocity_);
}

Status Sgd::LoadState(std::istream& in) {
  double lr = 0.0;
  double momentum = 0.0;
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &lr, "sgd lr"));
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &momentum, "sgd momentum"));
  std::vector<std::vector<float>> velocity;
  CONFORMER_RETURN_IF_ERROR(LoadParamBuffers(in, "sgd velocity", &velocity));
  lr_ = static_cast<float>(lr);
  momentum_ = static_cast<float>(momentum);
  velocity_ = std::move(velocity);
  return Status::OK();
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].numel(), 0.0f);
    v_[i].assign(params_[i].numel(), 0.0f);
  }
}

void Adam::Step() {
  CONFORMER_PROFILE_SCOPE_CAT("optimizer", "adam_step");
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    float* w = p.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

void Adam::SaveState(std::ostream& out) const {
  io::WriteF64(out, lr_);
  io::WriteF64(out, beta1_);
  io::WriteF64(out, beta2_);
  io::WriteF64(out, eps_);
  io::WriteF64(out, weight_decay_);
  io::WriteI64(out, step_count_);
  SaveParamBuffers(out, m_);
  SaveParamBuffers(out, v_);
}

Status Adam::LoadState(std::istream& in) {
  double lr = 0.0, beta1 = 0.0, beta2 = 0.0, eps = 0.0, weight_decay = 0.0;
  int64_t step_count = 0;
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &lr, "adam lr"));
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &beta1, "adam beta1"));
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &beta2, "adam beta2"));
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &eps, "adam eps"));
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &weight_decay, "adam wd"));
  CONFORMER_RETURN_IF_ERROR(io::ReadI64(in, &step_count, "adam step count"));
  if (step_count < 0) {
    return Status::InvalidArgument("adam step count is negative: " +
                                   std::to_string(step_count));
  }
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
  CONFORMER_RETURN_IF_ERROR(LoadParamBuffers(in, "adam m", &m));
  CONFORMER_RETURN_IF_ERROR(LoadParamBuffers(in, "adam v", &v));
  lr_ = static_cast<float>(lr);
  beta1_ = static_cast<float>(beta1);
  beta2_ = static_cast<float>(beta2);
  eps_ = static_cast<float>(eps);
  weight_decay_ = static_cast<float>(weight_decay);
  step_count_ = step_count;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

double ClipGradNorm(std::vector<Tensor>& params, double max_norm) {
  CONFORMER_PROFILE_SCOPE_CAT("optimizer", "clip_grad_norm");
  double total = 0.0;
  for (Tensor& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad_data();
    for (int64_t j = 0; j < p.numel(); ++j) {
      total += static_cast<double>(g[j]) * static_cast<double>(g[j]);
    }
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor& p : params) {
      if (!p.has_grad()) continue;
      float* g = p.grad_data();
      for (int64_t j = 0; j < p.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

}  // namespace conformer::train
