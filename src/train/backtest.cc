#include "train/backtest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace conformer::train {

BacktestResult Backtest(models::Forecaster* model,
                        const data::WindowDataset& dataset, int64_t stride,
                        int64_t max_windows, int64_t batch_size) {
  CONFORMER_CHECK(model != nullptr);
  CONFORMER_CHECK_GE(stride, 1);
  CONFORMER_CHECK_GE(batch_size, 1);
  model->SetTraining(false);
  NoGradGuard guard;

  const int64_t pred_len = model->window().pred_len;
  std::vector<int64_t> origins;
  for (int64_t i = 0; i < dataset.size(); i += stride) origins.push_back(i);
  if (max_windows > 0 &&
      static_cast<int64_t>(origins.size()) > max_windows) {
    origins.resize(max_windows);
  }

  BacktestResult result;
  result.per_step_mse.assign(pred_len, 0.0);
  result.per_step_mae.assign(pred_len, 0.0);
  std::vector<int64_t> per_step_count(pred_len, 0);

  for (size_t begin = 0; begin < origins.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(begin + static_cast<size_t>(batch_size), origins.size());
    std::vector<int64_t> indices(origins.begin() + begin, origins.begin() + end);
    data::Batch batch = dataset.GetBatch(indices);
    Tensor pred = model->Forward(batch);
    const int64_t total = batch.y.size(1);
    Tensor target = Slice(batch.y, 1, total - pred_len, total);

    const int64_t b = pred.size(0);
    const int64_t d = pred.size(2);
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t t = 0; t < pred_len; ++t) {
        for (int64_t c = 0; c < d; ++c) {
          const double diff = pred.at({i, t, c}) - target.at({i, t, c});
          result.per_step_mse[t] += diff * diff;
          result.per_step_mae[t] += std::fabs(diff);
          ++per_step_count[t];
        }
      }
    }
    result.windows += b;
  }

  double total_sq = 0.0;
  double total_abs = 0.0;
  int64_t total_count = 0;
  for (int64_t t = 0; t < pred_len; ++t) {
    total_sq += result.per_step_mse[t];
    total_abs += result.per_step_mae[t];
    total_count += per_step_count[t];
    if (per_step_count[t] > 0) {
      result.per_step_mse[t] /= static_cast<double>(per_step_count[t]);
      result.per_step_mae[t] /= static_cast<double>(per_step_count[t]);
    }
  }
  if (total_count > 0) {
    result.mse = total_sq / static_cast<double>(total_count);
    result.mae = total_abs / static_cast<double>(total_count);
  }
  return result;
}

}  // namespace conformer::train
