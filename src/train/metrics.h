// Evaluation metrics (MSE / MAE, the paper's Table II-IX metrics).

#ifndef CONFORMER_TRAIN_METRICS_H_
#define CONFORMER_TRAIN_METRICS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace conformer::train {

/// \brief Accumulates squared / absolute / percentage error over
/// evaluation batches.
class MetricAccumulator {
 public:
  /// Adds every element of pred vs target (same shape).
  void Add(const Tensor& pred, const Tensor& target);

  double mse() const;
  double mae() const;
  double rmse() const;
  /// Mean absolute percentage error; denominators are floored at 1e-3 to
  /// survive (standardized) near-zero targets.
  double mape() const;
  int64_t count() const { return count_; }

 private:
  double sum_sq_ = 0.0;
  double sum_abs_ = 0.0;
  double sum_ape_ = 0.0;
  int64_t count_ = 0;
};

/// \brief Final evaluation scores.
struct EvalMetrics {
  double mse = 0.0;
  double mae = 0.0;
};

/// Fraction of `target` elements inside [lower, upper] — the empirical
/// coverage of an uncertainty band (Fig. 6 support).
double BandCoverage(const Tensor& lower, const Tensor& upper,
                    const Tensor& target);

}  // namespace conformer::train

#endif  // CONFORMER_TRAIN_METRICS_H_
