// First-order optimizers operating on a module's parameter list.

#ifndef CONFORMER_TRAIN_OPTIMIZER_H_
#define CONFORMER_TRAIN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace conformer::train {

/// \brief Base optimizer: owns the parameter handles, applies Step() from
/// their accumulated gradients, and clears them with ZeroGrad().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the current gradients.
  virtual void Step() = 0;

  void ZeroGrad();

  /// Rescales the base learning rate (for schedules).
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;

 protected:
  std::vector<Tensor> params_;
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// \brief Adam (Kingma & Ba). The paper trains every model with Adam at
/// lr = 1e-4 (Section V-A3).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 1e-4f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
double ClipGradNorm(std::vector<Tensor>& params, double max_norm);

}  // namespace conformer::train

#endif  // CONFORMER_TRAIN_OPTIMIZER_H_
