// First-order optimizers operating on a module's parameter list.

#ifndef CONFORMER_TRAIN_OPTIMIZER_H_
#define CONFORMER_TRAIN_OPTIMIZER_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace conformer::train {

/// \brief Base optimizer: owns the parameter handles, applies Step() from
/// their accumulated gradients, and clears them with ZeroGrad().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the current gradients.
  virtual void Step() = 0;

  void ZeroGrad();

  /// Rescales the base learning rate (for schedules).
  virtual void set_learning_rate(float lr) = 0;
  virtual float learning_rate() const = 0;

  /// Stable identifier stored in checkpoints ("sgd", "adam"); LoadState
  /// refuses state written by a different optimizer type.
  virtual std::string type_name() const = 0;

  /// Serializes every piece of state a bitwise-identical resume needs
  /// (hyperparameters, step counts, per-parameter moment buffers).
  virtual void SaveState(std::ostream& out) const = 0;

  /// Restores state written by SaveState on an optimizer constructed over
  /// the same parameter list; validates buffer counts and sizes against
  /// the current parameters before overwriting anything.
  virtual Status LoadState(std::istream& in) = 0;

 protected:
  /// Shared LoadState validation: reads `count` per-parameter buffers and
  /// checks each against the matching parameter's numel.
  Status LoadParamBuffers(std::istream& in, const std::string& what,
                          std::vector<std::vector<float>>* buffers);
  void SaveParamBuffers(std::ostream& out,
                        const std::vector<std::vector<float>>& buffers) const;

  std::vector<Tensor> params_;
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);

  void Step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }
  std::string type_name() const override { return "sgd"; }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// \brief Adam (Kingma & Ba). The paper trains every model with Adam at
/// lr = 1e-4 (Section V-A3).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr = 1e-4f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;
  void set_learning_rate(float lr) override { lr_ = lr; }
  float learning_rate() const override { return lr_; }
  std::string type_name() const override { return "adam"; }
  void SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
double ClipGradNorm(std::vector<Tensor>& params, double max_norm);

}  // namespace conformer::train

#endif  // CONFORMER_TRAIN_OPTIMIZER_H_
