#include "train/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace conformer::train {

void MetricAccumulator::Add(const Tensor& pred, const Tensor& target) {
  CONFORMER_CHECK_EQ(pred.numel(), target.numel());
  const float* p = pred.data();
  const float* t = target.data();
  const int64_t n = pred.numel();
  for (int64_t i = 0; i < n; ++i) {
    const double diff = static_cast<double>(p[i]) - static_cast<double>(t[i]);
    sum_sq_ += diff * diff;
    sum_abs_ += std::fabs(diff);
    sum_ape_ += std::fabs(diff) / std::max(std::fabs(static_cast<double>(t[i])),
                                           1e-3);
  }
  count_ += n;
}

double MetricAccumulator::mse() const {
  return count_ > 0 ? sum_sq_ / static_cast<double>(count_) : 0.0;
}

double MetricAccumulator::mae() const {
  return count_ > 0 ? sum_abs_ / static_cast<double>(count_) : 0.0;
}

double MetricAccumulator::rmse() const { return std::sqrt(mse()); }

double MetricAccumulator::mape() const {
  return count_ > 0 ? sum_ape_ / static_cast<double>(count_) : 0.0;
}

double BandCoverage(const Tensor& lower, const Tensor& upper,
                    const Tensor& target) {
  CONFORMER_CHECK_EQ(lower.numel(), target.numel());
  CONFORMER_CHECK_EQ(upper.numel(), target.numel());
  const int64_t n = target.numel();
  if (n == 0) return 0.0;
  int64_t inside = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (target.data()[i] >= lower.data()[i] &&
        target.data()[i] <= upper.data()[i]) {
      ++inside;
    }
  }
  return static_cast<double>(inside) / static_cast<double>(n);
}

}  // namespace conformer::train
