// Crash-safe training checkpoints (docs/ROBUSTNESS.md).
//
// A checkpoint is one binary file holding four CRC32-protected sections —
// model parameters, optimizer state, RNG engine state, and the trainer's
// epoch/step/early-stopping cursor — written atomically (temp file + fsync
// + rename). A plain-text MANIFEST in the checkpoint directory lists the
// retained files oldest-first; restore walks it newest-first and falls back
// to an older checkpoint when the newest fails validation, so a crash
// mid-write (or bit rot caught by CRC) never loses the run.
//
// File layout (little-endian):
//   u32 magic, u32 version, u32 section_count
//   per section: string name, u64 payload_len, u32 crc32(payload), payload
//
// Section payloads:
//   "model"      nn::SerializeModule stream
//   "optimizer"  string type_name + Optimizer::SaveState stream
//   "rng"        Rng::Serialize() text (state at the start of the epoch)
//   "trainer"    TrainProgress fields (cursor, accumulators, FitResult
//                history, best-validation parameter snapshot)

#ifndef CONFORMER_TRAIN_CHECKPOINT_H_
#define CONFORMER_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "nn/module.h"
#include "train/optimizer.h"
#include "train/trainer.h"
#include "util/status.h"

namespace conformer::train {

/// \brief Everything Trainer::Fit needs to resume a run bitwise-identically:
/// where it was, the partial-epoch accumulators, the early-stopping state,
/// and the RNG state from which the current epoch's shuffle was drawn.
struct TrainProgress {
  int64_t epoch = 0;           ///< Epoch the next step belongs to.
  int64_t step_in_epoch = 0;   ///< Batches already consumed this epoch.
  int64_t global_step = 0;     ///< Steps across all epochs (checkpoint id).
  double loss_sum = 0.0;       ///< Partial-epoch loss accumulator.
  int64_t finite_batches = 0;  ///< Batches contributing to loss_sum.
  double best_val = std::numeric_limits<double>::infinity();
  int64_t bad_epochs = 0;
  /// Rng state at the start of `epoch`, before the shuffle: re-creating the
  /// BatchIterator from it reproduces the identical batch order.
  std::string epoch_rng_state;
  FitResult result;  ///< Per-epoch history accumulated so far.
  /// Parameter values at the best validation epoch (empty before the first
  /// validation improvement).
  std::vector<std::vector<float>> best_snapshot;
};

/// Reads one checkpoint file into `model`, `optimizer`, and `progress`.
/// All section CRCs are validated before any state is touched, and the
/// optimizer/trainer sections are staged before application, so a corrupt
/// file leaves the inputs unchanged (the model section, applied last, can
/// only be half-applied if corruption slips past its CRC). The stored
/// optimizer type must match `optimizer->type_name()`.
Status LoadCheckpointFile(const std::string& path, nn::Module* model,
                          Optimizer* optimizer, TrainProgress* progress);

/// Reads only the "model" section of a checkpoint into `model` — the
/// serving path's loader (docs/SERVING.md). Every section's CRC is still
/// validated (corruption anywhere in the file rejects it), but no optimizer
/// / RNG / trainer state is required, matched, or touched.
Status LoadCheckpointParams(const std::string& path, nn::Module* model);

/// Params-only restore from a checkpoint *directory*: walks the MANIFEST
/// newest-first like CheckpointManager::RestoreLatest, loading the newest
/// checkpoint whose sections all validate. NotFound without a manifest.
Status LoadLatestCheckpointParams(const std::string& dir, nn::Module* model);

/// \brief Owns a checkpoint directory: atomic writes, a manifest of the
/// last K checkpoints, and newest-first restore with fallback.
class CheckpointManager {
 public:
  /// `keep_last` < 1 is clamped to 1.
  explicit CheckpointManager(std::string dir, int64_t keep_last = 2);

  /// Atomically writes a checkpoint named after `progress.global_step`,
  /// appends it to the manifest, and prunes checkpoints beyond the
  /// retention window. Bumps train.checkpoint_writes / observes
  /// train.checkpoint_seconds.
  Status Save(const nn::Module& model, const Optimizer& optimizer,
              const TrainProgress& progress);

  /// Restores the newest manifest entry that validates, trying older ones
  /// on failure. Returns NotFound when the directory holds no manifest or
  /// the manifest is empty; IOError when every retained checkpoint fails.
  Status RestoreLatest(nn::Module* model, Optimizer* optimizer,
                       TrainProgress* progress) const;

  /// Manifest entries as absolute paths, oldest first. NotFound without a
  /// manifest.
  Result<std::vector<std::string>> ListCheckpoints() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  int64_t keep_last_;
};

}  // namespace conformer::train

#endif  // CONFORMER_TRAIN_CHECKPOINT_H_
