#include "train/trainer.h"

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>

#include "train/checkpoint.h"
#include "train/optimizer.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::train {

namespace {

// Snapshot / restore of parameter values for best-weights early stopping and
// non-finite rollback.
std::vector<std::vector<float>> SnapshotParams(const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> snap;
  snap.reserve(params.size());
  for (const Tensor& p : params) {
    snap.emplace_back(p.data(), p.data() + p.numel());
  }
  return snap;
}

void RestoreParams(std::vector<Tensor>& params,
                   const std::vector<std::vector<float>>& snap) {
  CONFORMER_CHECK_EQ(params.size(), snap.size())
      << "snapshot holds a different parameter count than the model";
  for (size_t i = 0; i < params.size(); ++i) {
    CONFORMER_CHECK_EQ(static_cast<int64_t>(snap[i].size()), params[i].numel())
        << "snapshot buffer " << i << " does not match the parameter's numel";
    std::copy(snap[i].begin(), snap[i].end(), params[i].data());
  }
}

}  // namespace

FitResult Trainer::Fit(models::Forecaster* model,
                       const data::WindowDataset& train,
                       const data::WindowDataset& val) const {
  CONFORMER_CHECK(model != nullptr);
  std::vector<Tensor> params = model->Parameters();
  Adam optimizer(params, config_.learning_rate);
  Rng rng(config_.seed);

  TrainProgress prog;
  std::unique_ptr<CheckpointManager> checkpoints;
  int64_t resume_epoch = -1;
  int64_t resume_step = 0;
  if (!config_.checkpoint_dir.empty()) {
    checkpoints = std::make_unique<CheckpointManager>(
        config_.checkpoint_dir, config_.checkpoint_keep_last);
    if (config_.resume) {
      const Status st = checkpoints->RestoreLatest(model, &optimizer, &prog);
      if (st.ok()) {
        CONFORMER_CHECK(rng.Deserialize(prog.epoch_rng_state).ok());
        prog.result.resumed = true;
        resume_epoch = prog.epoch;
        resume_step = prog.step_in_epoch;
        if (config_.verbose) {
          CONFORMER_LOG(Info) << model->name() << " resuming from "
                              << config_.checkpoint_dir << " at epoch "
                              << prog.epoch << " step " << prog.step_in_epoch
                              << " (global step " << prog.global_step << ")";
        }
      } else if (st.code() != StatusCode::kNotFound) {
        CONFORMER_LOG(Warning)
            << "cannot resume from " << config_.checkpoint_dir << ": "
            << st.ToString() << "; training from scratch";
      }
    }
  }

  FitResult& result = prog.result;

  metrics::Registry& registry = metrics::Registry::Global();
  metrics::Counter& step_counter = registry.GetCounter("train.steps");
  metrics::Counter& sample_counter = registry.GetCounter("train.samples");
  metrics::Counter& nonfinite_counter =
      registry.GetCounter("train.nonfinite_steps");
  metrics::Counter& restore_counter =
      registry.GetCounter("train.nonfinite_restores");
  metrics::Histogram& step_seconds = registry.GetHistogram("train.step_seconds");

  // Last known-good state for non-finite rollback: refreshed at every epoch
  // start and after every successful checkpoint write.
  std::vector<std::vector<float>> good_params;
  std::string good_optimizer_state;
  const auto capture_good = [&]() {
    if (config_.nonfinite_patience <= 0) return;
    good_params = SnapshotParams(params);
    std::ostringstream out(std::ios::binary);
    optimizer.SaveState(out);
    good_optimizer_state = out.str();
  };
  int64_t consecutive_nonfinite = 0;

  const auto write_checkpoint = [&]() {
    const Status st = checkpoints->Save(*model, optimizer, prog);
    if (st.ok()) {
      capture_good();
    } else {
      CONFORMER_LOG(Warning) << "checkpoint write failed: " << st.ToString();
    }
  };

  for (int64_t epoch = prog.epoch;
       epoch < config_.epochs && !result.early_stopped; ++epoch) {
    CONFORMER_PROFILE_SCOPE_CAT("train", "epoch");
    const bool mid_epoch_resume = epoch == resume_epoch && resume_step > 0;
    if (epoch != resume_epoch) {
      prog.epoch = epoch;
      prog.step_in_epoch = 0;
      prog.loss_sum = 0.0;
      prog.finite_batches = 0;
    }
    // A mid-epoch checkpoint stored the already-decayed learning rate for
    // this epoch; applying the decay again would diverge from the
    // uninterrupted run.
    if (epoch > 0 && config_.lr_decay != 1.0f && !mid_epoch_resume) {
      optimizer.set_learning_rate(optimizer.learning_rate() * config_.lr_decay);
    }
    registry.GetGauge("train.learning_rate").Set(optimizer.learning_rate());
    // The shuffle below advances `rng`; saving the pre-shuffle state lets a
    // resumed run re-draw the identical batch order.
    prog.epoch_rng_state = rng.Serialize();
    model->SetTraining(true);
    data::BatchIterator it(train, config_.batch_size, /*shuffle=*/true, &rng);
    if (mid_epoch_resume) it.Skip(resume_step);
    capture_good();
    data::Batch batch;
    while (it.Next(&batch)) {
      const int64_t step_start_ns = prof::internal::NowNs();
      {
        CONFORMER_PROFILE_SCOPE_CAT("train", "step");
        optimizer.ZeroGrad();
        Tensor loss = model->Loss(batch);
        const float loss_value = loss.item();
        loss.Backward();
        const double grad_norm = ClipGradNorm(
            params, config_.clip_norm > 0.0f
                        ? static_cast<double>(config_.clip_norm)
                        : std::numeric_limits<double>::infinity());
        if (std::isfinite(loss_value) && std::isfinite(grad_norm)) {
          optimizer.Step();
          prog.loss_sum += loss_value;
          ++prog.finite_batches;
          consecutive_nonfinite = 0;
        } else {
          // Skip the poisoned update; the gradients are cleared by the next
          // step's ZeroGrad.
          ++result.nonfinite_steps;
          nonfinite_counter.Increment();
          ++consecutive_nonfinite;
          if (config_.verbose) {
            CONFORMER_LOG(Warning)
                << model->name() << " non-finite step skipped (loss="
                << loss_value << ", grad_norm=" << grad_norm << ")";
          }
          if (config_.nonfinite_patience > 0 &&
              consecutive_nonfinite >= config_.nonfinite_patience &&
              !good_params.empty()) {
            RestoreParams(params, good_params);
            std::istringstream in(good_optimizer_state, std::ios::binary);
            CONFORMER_CHECK(optimizer.LoadState(in).ok());
            restore_counter.Increment();
            consecutive_nonfinite = 0;
            CONFORMER_LOG(Warning)
                << model->name() << " restored last-good state after "
                << config_.nonfinite_patience
                << " consecutive non-finite steps";
          }
        }
      }
      step_counter.Increment();
      sample_counter.Increment(batch.x.size(0));
      step_seconds.Observe(
          static_cast<double>(prof::internal::NowNs() - step_start_ns) * 1e-9);
      ++prog.step_in_epoch;
      ++prog.global_step;
      if (checkpoints && config_.checkpoint_every_n_steps > 0 &&
          prog.global_step % config_.checkpoint_every_n_steps == 0) {
        write_checkpoint();
      }
      if (config_.debug_abort_after_steps > 0 &&
          prog.global_step >= config_.debug_abort_after_steps) {
        // Simulated crash for kill-and-resume tests: bail without
        // validation or best-weights restore.
        result.best_val_mse = prog.best_val;
        return result;
      }
      if (config_.max_train_batches > 0 &&
          prog.step_in_epoch >= config_.max_train_batches) {
        break;
      }
    }
    result.train_losses.push_back(
        prog.finite_batches > 0 ? prog.loss_sum / prog.finite_batches : 0.0);

    const EvalMetrics val_metrics = Evaluate(model, val);
    registry.GetGauge("train.val_mse").Set(val_metrics.mse);
    result.val_mses.push_back(val_metrics.mse);
    result.epochs_run = epoch + 1;
    if (config_.verbose) {
      CONFORMER_LOG(Info) << model->name() << " epoch " << epoch + 1
                          << " train_loss=" << result.train_losses.back()
                          << " val_mse=" << val_metrics.mse;
    }

    if (val_metrics.mse < prog.best_val) {
      prog.best_val = val_metrics.mse;
      prog.best_snapshot = SnapshotParams(params);
      prog.bad_epochs = 0;
    } else {
      ++prog.bad_epochs;
      if (prog.bad_epochs >= config_.patience) {
        result.early_stopped = true;
      }
    }

    // Advance the cursor to the next epoch before the boundary checkpoint so
    // a resume picks up exactly where the uninterrupted run would continue.
    prog.epoch = epoch + 1;
    prog.step_in_epoch = 0;
    prog.loss_sum = 0.0;
    prog.finite_batches = 0;
    prog.epoch_rng_state = rng.Serialize();
    if (checkpoints && config_.checkpoint_every_n_epochs > 0 &&
        ((epoch + 1) % config_.checkpoint_every_n_epochs == 0 ||
         result.early_stopped || epoch + 1 == config_.epochs)) {
      write_checkpoint();
    }
  }

  if (!prog.best_snapshot.empty()) RestoreParams(params, prog.best_snapshot);
  result.best_val_mse = prog.best_val;
  return result;
}

EvalMetrics Trainer::Evaluate(models::Forecaster* model,
                              const data::WindowDataset& dataset) const {
  CONFORMER_PROFILE_SCOPE_CAT("train", "eval");
  CONFORMER_CHECK(model != nullptr);
  model->SetTraining(false);
  NoGradGuard guard;
  MetricAccumulator acc;
  data::BatchIterator it(dataset, config_.batch_size, /*shuffle=*/false);
  data::Batch batch;
  int64_t batches = 0;
  while (it.Next(&batch)) {
    Tensor pred = model->Forward(batch);
    const int64_t total = batch.y.size(1);
    Tensor target = Slice(batch.y, 1, total - model->window().pred_len, total);
    acc.Add(pred, target);
    ++batches;
    if (config_.max_eval_batches > 0 && batches >= config_.max_eval_batches) {
      break;
    }
  }
  return EvalMetrics{acc.mse(), acc.mae()};
}

}  // namespace conformer::train
