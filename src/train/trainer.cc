#include "train/trainer.h"

#include <limits>

#include "train/optimizer.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::train {

namespace {

// Snapshot / restore of parameter values for best-weights early stopping.
std::vector<std::vector<float>> SnapshotParams(const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> snap;
  snap.reserve(params.size());
  for (const Tensor& p : params) {
    snap.emplace_back(p.data(), p.data() + p.numel());
  }
  return snap;
}

void RestoreParams(std::vector<Tensor>& params,
                   const std::vector<std::vector<float>>& snap) {
  for (size_t i = 0; i < params.size(); ++i) {
    std::copy(snap[i].begin(), snap[i].end(), params[i].data());
  }
}

}  // namespace

FitResult Trainer::Fit(models::Forecaster* model,
                       const data::WindowDataset& train,
                       const data::WindowDataset& val) const {
  CONFORMER_CHECK(model != nullptr);
  std::vector<Tensor> params = model->Parameters();
  Adam optimizer(params, config_.learning_rate);
  Rng rng(config_.seed);

  FitResult result;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<std::vector<float>> best_snapshot;
  int64_t bad_epochs = 0;

  metrics::Registry& registry = metrics::Registry::Global();
  metrics::Counter& step_counter = registry.GetCounter("train.steps");
  metrics::Counter& sample_counter = registry.GetCounter("train.samples");
  metrics::Histogram& step_seconds = registry.GetHistogram("train.step_seconds");

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    CONFORMER_PROFILE_SCOPE_CAT("train", "epoch");
    if (epoch > 0 && config_.lr_decay != 1.0f) {
      optimizer.set_learning_rate(optimizer.learning_rate() * config_.lr_decay);
    }
    registry.GetGauge("train.learning_rate").Set(optimizer.learning_rate());
    model->SetTraining(true);
    data::BatchIterator it(train, config_.batch_size, /*shuffle=*/true, &rng);
    double loss_sum = 0.0;
    int64_t batches = 0;
    data::Batch batch;
    while (it.Next(&batch)) {
      const int64_t step_start_ns = prof::internal::NowNs();
      {
        CONFORMER_PROFILE_SCOPE_CAT("train", "step");
        optimizer.ZeroGrad();
        Tensor loss = model->Loss(batch);
        loss.Backward();
        if (config_.clip_norm > 0.0f) ClipGradNorm(params, config_.clip_norm);
        optimizer.Step();
        loss_sum += loss.item();
      }
      step_counter.Increment();
      sample_counter.Increment(batch.x.size(0));
      step_seconds.Observe(
          static_cast<double>(prof::internal::NowNs() - step_start_ns) * 1e-9);
      ++batches;
      if (config_.max_train_batches > 0 && batches >= config_.max_train_batches) {
        break;
      }
    }
    result.train_losses.push_back(batches > 0 ? loss_sum / batches : 0.0);

    const EvalMetrics val_metrics = Evaluate(model, val);
    registry.GetGauge("train.val_mse").Set(val_metrics.mse);
    result.val_mses.push_back(val_metrics.mse);
    result.epochs_run = epoch + 1;
    if (config_.verbose) {
      CONFORMER_LOG(Info) << model->name() << " epoch " << epoch + 1
                          << " train_loss=" << result.train_losses.back()
                          << " val_mse=" << val_metrics.mse;
    }

    if (val_metrics.mse < best_val) {
      best_val = val_metrics.mse;
      best_snapshot = SnapshotParams(params);
      bad_epochs = 0;
    } else {
      ++bad_epochs;
      if (bad_epochs >= config_.patience) {
        result.early_stopped = true;
        break;
      }
    }
  }

  if (!best_snapshot.empty()) RestoreParams(params, best_snapshot);
  result.best_val_mse = best_val;
  return result;
}

EvalMetrics Trainer::Evaluate(models::Forecaster* model,
                              const data::WindowDataset& dataset) const {
  CONFORMER_PROFILE_SCOPE_CAT("train", "eval");
  CONFORMER_CHECK(model != nullptr);
  model->SetTraining(false);
  NoGradGuard guard;
  MetricAccumulator acc;
  data::BatchIterator it(dataset, config_.batch_size, /*shuffle=*/false);
  data::Batch batch;
  int64_t batches = 0;
  while (it.Next(&batch)) {
    Tensor pred = model->Forward(batch);
    const int64_t total = batch.y.size(1);
    Tensor target = Slice(batch.y, 1, total - model->window().pred_len, total);
    acc.Add(pred, target);
    ++batches;
    if (config_.max_eval_batches > 0 && batches >= config_.max_eval_batches) {
      break;
    }
  }
  return EvalMetrics{acc.mse(), acc.mae()};
}

}  // namespace conformer::train
