#include "train/checkpoint.h"

#include <map>
#include <sstream>
#include <utility>

#include "nn/serialize.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/string_util.h"

namespace conformer::train {

namespace {

constexpr uint32_t kCheckpointMagic = 0xC04FCC01;
constexpr uint32_t kCheckpointVersion = 1;
constexpr uint32_t kMaxSections = 64;
constexpr uint64_t kMaxHistory = 1ull << 24;   // Per-epoch history entries.
constexpr uint64_t kMaxSnapshots = 1ull << 20;  // Best-snapshot buffers.
const char kManifestName[] = "MANIFEST";
const char kManifestHeader[] = "conformer-checkpoint-manifest v1";

std::string CheckpointFileName(int64_t global_step) {
  std::string digits = std::to_string(global_step);
  if (digits.size() < 12) digits.insert(0, 12 - digits.size(), '0');
  return "ckpt-" + digits + ".ckpt";
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

void SerializeTrainerSection(const TrainProgress& p, std::ostream& out) {
  io::WriteI64(out, p.epoch);
  io::WriteI64(out, p.step_in_epoch);
  io::WriteI64(out, p.global_step);
  io::WriteF64(out, p.loss_sum);
  io::WriteI64(out, p.finite_batches);
  io::WriteF64(out, p.best_val);
  io::WriteI64(out, p.bad_epochs);
  io::WriteI64(out, p.result.epochs_run);
  io::WriteF64(out, p.result.best_val_mse);
  io::WriteI64(out, p.result.early_stopped ? 1 : 0);
  io::WriteI64(out, p.result.nonfinite_steps);
  io::WriteU64(out, p.result.train_losses.size());
  for (double v : p.result.train_losses) io::WriteF64(out, v);
  io::WriteU64(out, p.result.val_mses.size());
  for (double v : p.result.val_mses) io::WriteF64(out, v);
  io::WriteU64(out, p.best_snapshot.size());
  for (const std::vector<float>& buf : p.best_snapshot) {
    io::WriteFloats(out, buf.data(), static_cast<int64_t>(buf.size()));
  }
}

Status ParseTrainerSection(const std::string& payload, TrainProgress* out) {
  std::istringstream in(payload, std::ios::binary);
  TrainProgress p;
  CONFORMER_RETURN_IF_ERROR(io::ReadI64(in, &p.epoch, "trainer epoch"));
  CONFORMER_RETURN_IF_ERROR(
      io::ReadI64(in, &p.step_in_epoch, "trainer step_in_epoch"));
  CONFORMER_RETURN_IF_ERROR(
      io::ReadI64(in, &p.global_step, "trainer global_step"));
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &p.loss_sum, "trainer loss_sum"));
  CONFORMER_RETURN_IF_ERROR(
      io::ReadI64(in, &p.finite_batches, "trainer finite_batches"));
  CONFORMER_RETURN_IF_ERROR(io::ReadF64(in, &p.best_val, "trainer best_val"));
  CONFORMER_RETURN_IF_ERROR(
      io::ReadI64(in, &p.bad_epochs, "trainer bad_epochs"));
  if (p.epoch < 0 || p.step_in_epoch < 0 || p.global_step < 0 ||
      p.finite_batches < 0 || p.bad_epochs < 0) {
    return Status::InvalidArgument("trainer section has a negative cursor");
  }
  CONFORMER_RETURN_IF_ERROR(
      io::ReadI64(in, &p.result.epochs_run, "result epochs_run"));
  CONFORMER_RETURN_IF_ERROR(
      io::ReadF64(in, &p.result.best_val_mse, "result best_val_mse"));
  int64_t early = 0;
  CONFORMER_RETURN_IF_ERROR(io::ReadI64(in, &early, "result early_stopped"));
  p.result.early_stopped = early != 0;
  CONFORMER_RETURN_IF_ERROR(
      io::ReadI64(in, &p.result.nonfinite_steps, "result nonfinite_steps"));
  uint64_t n = 0;
  CONFORMER_RETURN_IF_ERROR(io::ReadU64(in, &n, "train_losses count"));
  if (n > kMaxHistory) {
    return Status::IOError("implausible train_losses count " +
                           std::to_string(n));
  }
  p.result.train_losses.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    CONFORMER_RETURN_IF_ERROR(
        io::ReadF64(in, &p.result.train_losses[i], "train_losses entry"));
  }
  CONFORMER_RETURN_IF_ERROR(io::ReadU64(in, &n, "val_mses count"));
  if (n > kMaxHistory) {
    return Status::IOError("implausible val_mses count " + std::to_string(n));
  }
  p.result.val_mses.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    CONFORMER_RETURN_IF_ERROR(
        io::ReadF64(in, &p.result.val_mses[i], "val_mses entry"));
  }
  CONFORMER_RETURN_IF_ERROR(io::ReadU64(in, &n, "best_snapshot count"));
  if (n > kMaxSnapshots) {
    return Status::IOError("implausible best_snapshot count " +
                           std::to_string(n));
  }
  p.best_snapshot.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    CONFORMER_RETURN_IF_ERROR(io::ReadFloats(
        in, &p.best_snapshot[i], "best_snapshot buffer",
        payload.size() / sizeof(float)));
  }
  *out = std::move(p);
  return Status::OK();
}

/// Parses the section table of a checkpoint file, validating every CRC
/// before returning. `contents` is the whole file.
Status ParseSections(const std::string& contents, const std::string& path,
                     std::map<std::string, std::string>* sections) {
  std::istringstream in(contents, std::ios::binary);
  uint32_t magic = 0;
  Status st = io::ReadU32(in, &magic, path + ": magic");
  if (!st.ok() || magic != kCheckpointMagic) {
    return Status::InvalidArgument("not a conformer training checkpoint: " +
                                   path);
  }
  uint32_t version = 0;
  CONFORMER_RETURN_IF_ERROR(io::ReadU32(in, &version, path + ": version"));
  if (version != kCheckpointVersion) {
    return Status::InvalidArgument(path + ": unsupported checkpoint version " +
                                   std::to_string(version));
  }
  uint32_t count = 0;
  CONFORMER_RETURN_IF_ERROR(io::ReadU32(in, &count, path + ": section count"));
  if (count == 0 || count > kMaxSections) {
    return Status::IOError(path + ": implausible section count " +
                           std::to_string(count));
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    CONFORMER_RETURN_IF_ERROR(
        io::ReadString(in, &name, path + ": section name", 256));
    uint64_t payload_len = 0;
    CONFORMER_RETURN_IF_ERROR(io::ReadU64(
        in, &payload_len, path + ": length of section '" + name + "'"));
    if (payload_len > contents.size()) {
      return Status::IOError(path + ": section '" + name + "' claims " +
                             std::to_string(payload_len) +
                             " bytes, beyond the file's " +
                             std::to_string(contents.size()));
    }
    uint32_t crc = 0;
    CONFORMER_RETURN_IF_ERROR(
        io::ReadU32(in, &crc, path + ": crc of section '" + name + "'"));
    std::string payload(payload_len, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(payload_len));
    if (!in) {
      return Status::IOError(path + ": truncated payload in section '" + name +
                             "'");
    }
    const uint32_t actual = io::Crc32(payload.data(), payload.size());
    if (actual != crc) {
      return Status::IOError(path + ": CRC mismatch in section '" + name +
                             "' (stored " + std::to_string(crc) +
                             ", computed " + std::to_string(actual) + ")");
    }
    if (!sections->emplace(name, std::move(payload)).second) {
      return Status::InvalidArgument(path + ": duplicate section '" + name +
                                     "'");
    }
  }
  return Status::OK();
}

}  // namespace

Status LoadCheckpointFile(const std::string& path, nn::Module* model,
                          Optimizer* optimizer, TrainProgress* progress) {
  CONFORMER_PROFILE_SCOPE_CAT("checkpoint", "load");
  Result<std::string> contents = io::ReadFileToString(path);
  if (!contents.ok()) return contents.status();

  std::map<std::string, std::string> sections;
  CONFORMER_RETURN_IF_ERROR(ParseSections(contents.value(), path, &sections));
  for (const char* required : {"model", "optimizer", "rng", "trainer"}) {
    if (sections.count(required) == 0) {
      return Status::InvalidArgument(path + ": missing section '" +
                                     std::string(required) + "'");
    }
  }

  // Stage the side-effect-free sections first so a parse failure leaves the
  // caller's state untouched.
  TrainProgress staged;
  CONFORMER_RETURN_IF_ERROR(ParseTrainerSection(sections["trainer"], &staged));
  staged.epoch_rng_state = sections["rng"];
  {
    Rng probe;  // Reject a corrupt RNG token stream before applying anything.
    CONFORMER_RETURN_IF_ERROR(probe.Deserialize(staged.epoch_rng_state));
  }

  {
    std::istringstream in(sections["optimizer"], std::ios::binary);
    std::string type;
    CONFORMER_RETURN_IF_ERROR(
        io::ReadString(in, &type, path + ": optimizer type", 256));
    if (type != optimizer->type_name()) {
      return Status::InvalidArgument(
          path + ": checkpoint holds '" + type + "' optimizer state but a '" +
          optimizer->type_name() + "' optimizer was supplied");
    }
    CONFORMER_RETURN_IF_ERROR(optimizer->LoadState(in));
  }

  {
    std::istringstream in(sections["model"], std::ios::binary);
    CONFORMER_RETURN_IF_ERROR(nn::DeserializeModule(
        model, in, path + ": model section", sections["model"].size()));
  }

  // The best snapshot must line up with the model it will be restored into.
  if (!staged.best_snapshot.empty()) {
    const std::vector<Tensor> params = model->Parameters();
    if (staged.best_snapshot.size() != params.size()) {
      return Status::InvalidArgument(
          path + ": best snapshot holds " +
          std::to_string(staged.best_snapshot.size()) +
          " buffers but the model has " + std::to_string(params.size()) +
          " parameters");
    }
    for (size_t i = 0; i < params.size(); ++i) {
      if (static_cast<int64_t>(staged.best_snapshot[i].size()) !=
          params[i].numel()) {
        return Status::InvalidArgument(
            path + ": best snapshot buffer " + std::to_string(i) +
            " size mismatch");
      }
    }
  }

  *progress = std::move(staged);
  return Status::OK();
}

Status LoadCheckpointParams(const std::string& path, nn::Module* model) {
  CONFORMER_PROFILE_SCOPE_CAT("checkpoint", "load_params");
  Result<std::string> contents = io::ReadFileToString(path);
  if (!contents.ok()) return contents.status();

  std::map<std::string, std::string> sections;
  CONFORMER_RETURN_IF_ERROR(ParseSections(contents.value(), path, &sections));
  auto it = sections.find("model");
  if (it == sections.end()) {
    return Status::InvalidArgument(path + ": missing section 'model'");
  }
  std::istringstream in(it->second, std::ios::binary);
  return nn::DeserializeModule(model, in, path + ": model section",
                               it->second.size());
}

Status LoadLatestCheckpointParams(const std::string& dir, nn::Module* model) {
  const CheckpointManager manager(dir);
  Result<std::vector<std::string>> list = manager.ListCheckpoints();
  if (!list.ok()) return list.status();
  if (list.value().empty()) {
    return Status::NotFound("checkpoint manifest is empty in " + dir);
  }
  Status last_error = Status::OK();
  for (auto it = list.value().rbegin(); it != list.value().rend(); ++it) {
    const Status st = LoadCheckpointParams(*it, model);
    if (st.ok()) return st;
    last_error = st;
    CONFORMER_LOG(Warning) << "checkpoint " << *it
                           << " failed to load params: " << st.ToString();
  }
  return Status::IOError("every retained checkpoint in " + dir +
                         " failed to load; last error: " +
                         last_error.message());
}

CheckpointManager::CheckpointManager(std::string dir, int64_t keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last < 1 ? 1 : keep_last) {}

Result<std::vector<std::string>> CheckpointManager::ListCheckpoints() const {
  const std::string manifest_path = JoinPath(dir_, kManifestName);
  if (!io::FileExists(manifest_path)) {
    return Status::NotFound("no checkpoint manifest in " + dir_);
  }
  Result<std::string> contents = io::ReadFileToString(manifest_path);
  if (!contents.ok()) return contents.status();
  std::vector<std::string> lines;
  for (const std::string& raw : Split(contents.value(), '\n')) {
    const std::string line = Strip(raw);
    if (!line.empty()) lines.push_back(line);
  }
  if (lines.empty() || lines[0] != kManifestHeader) {
    return Status::IOError("corrupt checkpoint manifest: " + manifest_path);
  }
  std::vector<std::string> paths;
  for (size_t i = 1; i < lines.size(); ++i) {
    paths.push_back(JoinPath(dir_, lines[i]));
  }
  return paths;
}

Status CheckpointManager::Save(const nn::Module& model,
                               const Optimizer& optimizer,
                               const TrainProgress& progress) {
  CONFORMER_PROFILE_SCOPE_CAT("checkpoint", "save");
  const int64_t start_ns = prof::internal::NowNs();
  CONFORMER_RETURN_IF_ERROR(io::MakeDirs(dir_));

  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ostringstream out(std::ios::binary);
    CONFORMER_RETURN_IF_ERROR(nn::SerializeModule(model, out));
    sections.emplace_back("model", out.str());
  }
  {
    std::ostringstream out(std::ios::binary);
    io::WriteString(out, optimizer.type_name());
    optimizer.SaveState(out);
    sections.emplace_back("optimizer", out.str());
  }
  sections.emplace_back("rng", progress.epoch_rng_state);
  {
    std::ostringstream out(std::ios::binary);
    SerializeTrainerSection(progress, out);
    sections.emplace_back("trainer", out.str());
  }

  std::ostringstream file(std::ios::binary);
  io::WriteU32(file, kCheckpointMagic);
  io::WriteU32(file, kCheckpointVersion);
  io::WriteU32(file, static_cast<uint32_t>(sections.size()));
  for (const auto& [name, payload] : sections) {
    io::WriteString(file, name);
    io::WriteU64(file, payload.size());
    io::WriteU32(file, io::Crc32(payload.data(), payload.size()));
    file.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }

  const std::string name = CheckpointFileName(progress.global_step);
  CONFORMER_RETURN_IF_ERROR(
      io::AtomicWriteFile(JoinPath(dir_, name), file.str()));

  // Fold the new file into the manifest and prune past the retention window.
  std::vector<std::string> entries;
  Result<std::vector<std::string>> existing = ListCheckpoints();
  if (existing.ok()) {
    for (const std::string& path : existing.value()) {
      const std::string base =
          path.substr(path.find_last_of('/') + 1);
      if (base != name) entries.push_back(base);
    }
  }
  entries.push_back(name);
  std::vector<std::string> pruned;
  while (static_cast<int64_t>(entries.size()) > keep_last_) {
    pruned.push_back(entries.front());
    entries.erase(entries.begin());
  }
  std::string manifest = std::string(kManifestHeader) + "\n";
  for (const std::string& entry : entries) manifest += entry + "\n";
  CONFORMER_RETURN_IF_ERROR(
      io::AtomicWriteFile(JoinPath(dir_, kManifestName), manifest));
  for (const std::string& old : pruned) {
    const Status st = io::RemoveFile(JoinPath(dir_, old));
    if (!st.ok()) {
      CONFORMER_LOG(Warning) << "failed to prune checkpoint: " << st.ToString();
    }
  }

  metrics::Registry& registry = metrics::Registry::Global();
  registry.GetCounter("train.checkpoint_writes").Increment();
  registry.GetHistogram("train.checkpoint_seconds")
      .Observe(static_cast<double>(prof::internal::NowNs() - start_ns) * 1e-9);
  return Status::OK();
}

Status CheckpointManager::RestoreLatest(nn::Module* model,
                                        Optimizer* optimizer,
                                        TrainProgress* progress) const {
  CONFORMER_PROFILE_SCOPE_CAT("checkpoint", "restore");
  Result<std::vector<std::string>> list = ListCheckpoints();
  if (!list.ok()) return list.status();
  if (list.value().empty()) {
    return Status::NotFound("checkpoint manifest is empty in " + dir_);
  }
  Status last_error = Status::OK();
  for (auto it = list.value().rbegin(); it != list.value().rend(); ++it) {
    const Status st = LoadCheckpointFile(*it, model, optimizer, progress);
    if (st.ok()) {
      if (it != list.value().rbegin()) {
        CONFORMER_LOG(Warning)
            << "newest checkpoint failed validation ("
            << last_error.ToString() << "); fell back to " << *it;
      }
      return Status::OK();
    }
    last_error = st;
    CONFORMER_LOG(Warning) << "checkpoint " << *it
                           << " failed to load: " << st.ToString();
  }
  return Status::IOError("every retained checkpoint in " + dir_ +
                         " failed to load; last error: " +
                         last_error.message());
}

}  // namespace conformer::train
