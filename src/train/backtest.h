// Rolling-origin backtesting: evaluates a trained forecaster across many
// forecast origins and reports how the error grows along the horizon — the
// operational complement to the paper's aggregate MSE/MAE tables (its
// "errors grow slower for Conformer as Ly grows" claim is exactly a
// per-horizon-step statement).

#ifndef CONFORMER_TRAIN_BACKTEST_H_
#define CONFORMER_TRAIN_BACKTEST_H_

#include <cstdint>
#include <vector>

#include "baselines/forecaster.h"
#include "data/window_dataset.h"

namespace conformer::train {

/// \brief Error profile of a backtest run.
struct BacktestResult {
  std::vector<double> per_step_mse;  ///< MSE at forecast step 1..pred_len.
  std::vector<double> per_step_mae;
  double mse = 0.0;                  ///< Aggregate over all steps/windows.
  double mae = 0.0;
  int64_t windows = 0;               ///< Forecast origins evaluated.
};

/// Rolls the forecast origin through `dataset` with the given stride,
/// forecasting each window and accumulating per-step errors.
/// `max_windows` caps the number of origins (0 = all).
BacktestResult Backtest(models::Forecaster* model,
                        const data::WindowDataset& dataset,
                        int64_t stride = 1, int64_t max_windows = 0,
                        int64_t batch_size = 32);

}  // namespace conformer::train

#endif  // CONFORMER_TRAIN_BACKTEST_H_
