// Stationary and Instant Recurrent Network (Section IV-B2, Eqs. 8-11, Fig.
// 3a): a sliding-window-attention block whose global signal comes from a
// softmax-gated GRU, with eta recurrent moving-average decompositions
// distilling stationary (trend) and instant (seasonal) patterns.
//
// Table VI's ablation replaces the whole block by a plain attention layer
// (AttentionOnlyLayer below) built on any of the competing mechanisms.

#ifndef CONFORMER_CORE_SIRN_H_
#define CONFORMER_CORE_SIRN_H_

#include <memory>

#include "attention/multi_head_attention.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/gru.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace conformer::core {

/// \brief Output of one encoder/decoder layer: the sequence representation
/// plus the RNN latent states consumed by the normalizing flow.
struct LayerOutput {
  Tensor sequence;      ///< [B, L, d_model]
  Tensor hidden_first;  ///< [B, d_model] — RNN state after the first step.
  Tensor hidden_last;   ///< [B, d_model] — RNN state after the last step.
};

/// \brief Common interface so SIRN and the attention-only ablation layers
/// are interchangeable inside the encoder/decoder stacks.
class SequenceLayer : public nn::Module {
 public:
  virtual LayerOutput Forward(const Tensor& x) const = 0;
};

/// \brief SIRN configuration.
struct SirnConfig {
  int64_t d_model = 32;
  int64_t n_heads = 4;
  int64_t window = 2;        ///< Sliding-window width w (paper default 2).
  int64_t eta = 2;           ///< Number of recurrent decompositions (Eq. 10).
  int64_t ma_kernel = 25;    ///< Moving-average width of Eq. (9).
  int64_t rnn_layers = 1;    ///< GRU depth (1 enc / 2 dec in the paper).
  float dropout = 0.05f;
};

class Sirn : public SequenceLayer {
 public:
  explicit Sirn(const SirnConfig& config);

  LayerOutput Forward(const Tensor& x) const override;

 private:
  SirnConfig config_;
  std::shared_ptr<nn::Gru> rnn_global_;  // first RNN block (Eq. 8)
  std::shared_ptr<nn::Gru> rnn_trend_;   // second RNN block (Eq. 11)
  std::shared_ptr<attention::MultiHeadAttention> window_attention_;
  std::shared_ptr<nn::Conv1dLayer> seasonal_conv_;  // Conv of Eq. (10)
  std::shared_ptr<nn::Linear> out_proj_;            // W of Eq. (11)
  std::shared_ptr<nn::Dropout> dropout_;
  std::shared_ptr<nn::LayerNorm> norm_;
};

/// \brief Table VI ablation: a vanilla pre-activation transformer layer
/// (MHA of any kind + feed-forward) standing in for SIRN. The flow hiddens
/// are mean-pooled sequence states.
class AttentionOnlyLayer : public SequenceLayer {
 public:
  AttentionOnlyLayer(int64_t d_model, int64_t n_heads,
                     attention::AttentionKind kind,
                     const attention::AttentionConfig& attn_config,
                     float dropout);

  LayerOutput Forward(const Tensor& x) const override;

 private:
  std::shared_ptr<attention::MultiHeadAttention> attention_;
  std::shared_ptr<nn::Linear> ff1_;
  std::shared_ptr<nn::Linear> ff2_;
  std::shared_ptr<nn::LayerNorm> norm1_;
  std::shared_ptr<nn::LayerNorm> norm2_;
  std::shared_ptr<nn::Dropout> dropout_;
};

}  // namespace conformer::core

#endif  // CONFORMER_CORE_SIRN_H_
