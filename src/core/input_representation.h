// Conformer's input representation (Section IV-A, Eqs. 1-6): fuses
// FFT-derived multivariate correlation, multiscale calendar dynamics, and a
// convolutional value embedding.
//
// The ablation variants of Table V and the fusion methods of Table VIII are
// both selected through the config so the bench harness can sweep them.

#ifndef CONFORMER_CORE_INPUT_REPRESENTATION_H_
#define CONFORMER_CORE_INPUT_REPRESENTATION_H_

#include <memory>
#include <vector>

#include "nn/conv1d.h"
#include "nn/embedding.h"
#include "nn/module.h"

namespace conformer::core {

/// \brief Calendar resolutions available for the multiscale block (Eq. 3).
enum class TemporalResolution { kMinute, kHour, kDayOfWeek, kDayOfMonth };

/// \brief Table V ablation variants of Eq. (6).
enum class InputVariant {
  kFull,                ///< X^in = X^v + Gamma (Eq. 6)
  kNoMultiscale,        ///< X^in_{-Gamma}
  kNoCorrelation,       ///< X^in_{-R}
  kNoCorrNoMultiscale,  ///< X^in_{-R-Gamma}
  kNoRaw,               ///< X^in_{-X}
  kNoRawNoMultiscale,   ///< X^in_{-X-Gamma}
};

/// \brief Table VIII fusion methods (Section V-G1).
enum class FusionMethod {
  kDefault,  ///< Eq. (6)
  kMethod1,  ///< W^v . (W^Gamma W^R X + X) + b
  kMethod2,  ///< W^v . (W^R X + W^Gamma X) + b
  kMethod3,  ///< W^v . (W^R X + W^Gamma X + X) + b
  kMethod4,  ///< [W^v . (W^R X + X) + b] W^Gamma
};

const char* InputVariantName(InputVariant variant);
const char* FusionMethodName(FusionMethod method);

/// \brief Config of one InputRepresentation instance.
struct InputRepresentationConfig {
  int64_t dims = 7;          ///< Raw variable count d_x.
  int64_t length = 96;       ///< Sequence length L this instance embeds.
  int64_t d_model = 32;
  std::vector<TemporalResolution> resolutions = {
      TemporalResolution::kHour, TemporalResolution::kDayOfWeek};
  InputVariant variant = InputVariant::kFull;
  FusionMethod fusion = FusionMethod::kDefault;
};

/// \brief Produces X^in [B, L, d_model] from raw series and marks.
class InputRepresentation : public nn::Module {
 public:
  explicit InputRepresentation(const InputRepresentationConfig& config);

  /// x [B, L, dims] (standardized values), marks [B, L, kNumTimeFeatures].
  Tensor Forward(const Tensor& x, const Tensor& marks) const;

  /// Eq. (1)-(2): softmax over variables of the per-lag auto-correlation;
  /// constant w.r.t. parameters (computed from the raw input). Public so the
  /// FFT bench and the rewrite-regression test can drive the correlation
  /// path in isolation; Forward is the production entry point.
  Tensor MultivariateWeights(const Tensor& x) const;

  const InputRepresentationConfig& config() const { return config_; }

 private:
  /// Eq. (3)-(4): multiscale calendar embedding, [B, L, d_model].
  Tensor MultiscaleDynamics(const Tensor& marks) const;

  /// Bodies of the two data-dependent blocks (FFT auto-correlation; calendar
  /// index decoding). The public entry points wrap them as opaque capture
  /// steps for the static runtime.
  Tensor MultivariateWeightsImpl(const Tensor& x) const;
  Tensor MultiscaleDynamicsImpl(const Tensor& marks) const;

  InputRepresentationConfig config_;
  std::shared_ptr<nn::Conv1dLayer> value_conv_;  // W^v, b^v of Eq. (5)
  std::vector<std::shared_ptr<nn::Embedding>> scale_embeddings_;
  std::vector<Tensor> scale_mixers_;  // W^S_k, [L, L] each
  Tensor scale_bias_;                 // b^S as [L, d_model]
};

}  // namespace conformer::core

#endif  // CONFORMER_CORE_INPUT_REPRESENTATION_H_
