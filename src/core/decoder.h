// Conformer decoder: the zero-padded target block is embedded with its own
// input representation, refined by SIRN layers, then fused with the encoder
// memory through cross attention and projected back to variable space.

#ifndef CONFORMER_CORE_DECODER_H_
#define CONFORMER_CORE_DECODER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/encoder.h"
#include "core/input_representation.h"
#include "core/sirn.h"

namespace conformer::core {

/// \brief Decoder output.
struct DecoderOutput {
  Tensor series;                    ///< [B, label+pred, dims] prediction.
  std::vector<LayerOutput> layers;  ///< Per-layer RNN states.

  Tensor SelectHidden(const HiddenChoice& choice) const;
};

class Decoder : public nn::Module {
 public:
  Decoder(const InputRepresentationConfig& input_config, int64_t num_layers,
          const std::function<std::shared_ptr<SequenceLayer>()>& make_layer,
          int64_t n_heads, int64_t out_dims, float dropout);

  /// y_in: zero-padded decoder block [B, label+pred, dims]; memory: encoder
  /// sequence [B, Lx, d_model].
  DecoderOutput Forward(const Tensor& y_in, const Tensor& marks,
                        const Tensor& memory) const;

 private:
  std::shared_ptr<InputRepresentation> input_;
  std::vector<std::shared_ptr<SequenceLayer>> layers_;
  std::shared_ptr<attention::MultiHeadAttention> cross_attention_;
  std::shared_ptr<nn::LayerNorm> cross_norm_;
  std::shared_ptr<nn::Dropout> dropout_;
  std::shared_ptr<nn::Linear> out_proj_;
};

}  // namespace conformer::core

#endif  // CONFORMER_CORE_DECODER_H_
