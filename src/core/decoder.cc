#include "core/decoder.h"
#include "util/profiler.h"

namespace conformer::core {

Tensor DecoderOutput::SelectHidden(const HiddenChoice& choice) const {
  CONFORMER_CHECK(!layers.empty());
  const LayerOutput& layer = choice.last_layer ? layers.back() : layers.front();
  return choice.first_step ? layer.hidden_first : layer.hidden_last;
}

Decoder::Decoder(
    const InputRepresentationConfig& input_config, int64_t num_layers,
    const std::function<std::shared_ptr<SequenceLayer>()>& make_layer,
    int64_t n_heads, int64_t out_dims, float dropout) {
  CONFORMER_CHECK_GE(num_layers, 1);
  input_ = RegisterModule("input",
                          std::make_shared<InputRepresentation>(input_config));
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(
        RegisterModule("layer" + std::to_string(i), make_layer()));
  }
  cross_attention_ = RegisterModule(
      "cross_attention",
      std::make_shared<attention::MultiHeadAttention>(
          input_config.d_model, n_heads, attention::AttentionKind::kFull));
  cross_norm_ = RegisterModule(
      "cross_norm", std::make_shared<nn::LayerNorm>(input_config.d_model));
  dropout_ = RegisterModule("dropout", std::make_shared<nn::Dropout>(dropout));
  out_proj_ = RegisterModule(
      "out_proj", std::make_shared<nn::Linear>(input_config.d_model, out_dims));
}

DecoderOutput Decoder::Forward(const Tensor& y_in, const Tensor& marks,
                               const Tensor& memory) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "decoder");
  DecoderOutput out;
  Tensor h = input_->Forward(y_in, marks);
  for (const auto& layer : layers_) {
    LayerOutput lo = layer->Forward(h);
    h = lo.sequence;
    out.layers.push_back(std::move(lo));
  }
  // Weighted composition against the encoder memory (Fig. 1).
  Tensor attended = dropout_->Forward(
      cross_attention_->Forward(h, memory, memory, /*causal=*/false));
  h = cross_norm_->Forward(Add(h, attended));
  out.series = out_proj_->Forward(h);
  return out;
}

}  // namespace conformer::core
