#include "core/sirn.h"

#include "core/series_decomposition.h"
#include "util/profiler.h"

namespace conformer::core {

Sirn::Sirn(const SirnConfig& config) : config_(config) {
  rnn_global_ = RegisterModule(
      "rnn_global",
      std::make_shared<nn::Gru>(config.d_model, config.d_model,
                                config.rnn_layers));
  rnn_trend_ = RegisterModule(
      "rnn_trend",
      std::make_shared<nn::Gru>(config.d_model, config.d_model,
                                config.rnn_layers));
  attention::AttentionConfig attn_config;
  attn_config.window = config.window;
  window_attention_ = RegisterModule(
      "window_attention",
      std::make_shared<attention::MultiHeadAttention>(
          config.d_model, config.n_heads,
          attention::AttentionKind::kSlidingWindow, attn_config));
  seasonal_conv_ = RegisterModule(
      "seasonal_conv",
      std::make_shared<nn::Conv1dLayer>(config.d_model, config.d_model,
                                        /*kernel=*/3, /*padding=*/1,
                                        PadMode::kReplicate));
  out_proj_ = RegisterModule(
      "out_proj", std::make_shared<nn::Linear>(config.d_model, config.d_model));
  dropout_ = RegisterModule("dropout",
                            std::make_shared<nn::Dropout>(config.dropout));
  norm_ = RegisterModule("norm",
                         std::make_shared<nn::LayerNorm>(config.d_model));
}

LayerOutput Sirn::Forward(const Tensor& x) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "sirn");
  CONFORMER_CHECK_EQ(x.dim(), 3);
  CONFORMER_CHECK_EQ(x.size(2), config_.d_model);

  // Eq. (8): X' = Softmax(RNN(X)) * X + MHA_W(X) + X — a softmax-gated
  // global signal plus windowed local attention plus the residual.
  nn::GruOutput global = rnn_global_->Forward(x);
  Tensor gate = Softmax(global.output, -1);
  Tensor local = dropout_->Forward(window_attention_->Forward(x));
  Tensor fused = Add(Add(Mul(gate, x), local), x);

  // Eq. (9): initial trend / seasonal split.
  Decomposition decomp = DecomposeSeries(fused, config_.ma_kernel);
  Tensor trend_sum = decomp.trend;
  Tensor seasonal = decomp.seasonal;

  // Eq. (10): recurrent distillation; each round convolves the seasonal
  // stream and re-injects the local pattern before decomposing again.
  for (int64_t l = 0; l < config_.eta; ++l) {
    Tensor conv = Permute(
        seasonal_conv_->Forward(Permute(seasonal, {0, 2, 1})), {0, 2, 1});
    Decomposition next = DecomposeSeries(Add(conv, local), config_.ma_kernel);
    trend_sum = Add(trend_sum, next.trend);
    seasonal = next.seasonal;
  }

  // Eq. (11): X_out = W(X_s^eta + RNN(sum of trends)).
  nn::GruOutput trend_rnn = rnn_trend_->Forward(trend_sum);
  Tensor out = out_proj_->Forward(Add(seasonal, trend_rnn.output));
  out = norm_->Forward(out);

  // The flow consumes the first RNN block's latent state (Fig. 3a); expose
  // the top GRU layer's state after the first and last steps (Table IX).
  const int64_t top = rnn_global_->num_layers() - 1;
  LayerOutput result;
  result.sequence = out;
  result.hidden_first =
      Squeeze(Slice(global.first_hidden, 0, top, top + 1), 0);
  result.hidden_last = Squeeze(Slice(global.last_hidden, 0, top, top + 1), 0);
  return result;
}

AttentionOnlyLayer::AttentionOnlyLayer(
    int64_t d_model, int64_t n_heads, attention::AttentionKind kind,
    const attention::AttentionConfig& attn_config, float dropout) {
  attention_ = RegisterModule(
      "attention", std::make_shared<attention::MultiHeadAttention>(
                       d_model, n_heads, kind, attn_config));
  ff1_ = RegisterModule("ff1",
                        std::make_shared<nn::Linear>(d_model, 2 * d_model));
  ff2_ = RegisterModule("ff2",
                        std::make_shared<nn::Linear>(2 * d_model, d_model));
  norm1_ = RegisterModule("norm1", std::make_shared<nn::LayerNorm>(d_model));
  norm2_ = RegisterModule("norm2", std::make_shared<nn::LayerNorm>(d_model));
  dropout_ = RegisterModule("dropout", std::make_shared<nn::Dropout>(dropout));
}

LayerOutput AttentionOnlyLayer::Forward(const Tensor& x) const {
  Tensor attended = dropout_->Forward(attention_->Forward(x));
  Tensor h1 = norm1_->Forward(Add(x, attended));
  Tensor ff = ff2_->Forward(Relu(ff1_->Forward(h1)));
  Tensor out = norm2_->Forward(Add(h1, dropout_->Forward(ff)));

  LayerOutput result;
  result.sequence = out;
  // Without an RNN the flow hiddens degrade to pooled sequence summaries.
  result.hidden_first = Squeeze(Slice(out, 1, 0, 1), 1);
  result.hidden_last = Mean(out, {1});
  return result;
}

}  // namespace conformer::core
