// Conformer (the paper's model): encoder-decoder on SIRN + sliding-window
// attention, with a normalizing-flow head generating the target block from
// the RNN latent states, trained with the mixed loss of Eq. (18).

#ifndef CONFORMER_CORE_CONFORMER_MODEL_H_
#define CONFORMER_CORE_CONFORMER_MODEL_H_

#include <memory>
#include <vector>

#include "baselines/forecaster.h"
#include "core/decoder.h"
#include "core/encoder.h"
#include "flow/gaussian_head.h"
#include "flow/normalizing_flow.h"

namespace conformer::core {

/// \brief Whether the stacked layers are real SIRN blocks or the Table VI
/// attention-only ablation.
enum class SirnMode { kFull, kAttentionOnly };

/// \brief All Conformer hyper-parameters (defaults = paper, Section V-A3).
struct ConformerConfig {
  int64_t d_model = 32;
  int64_t n_heads = 4;
  int64_t window = 2;             ///< Sliding-window width w.
  int64_t eta = 2;                ///< Decomposition recurrences.
  int64_t ma_kernel = 25;         ///< Moving-average width.
  int64_t enc_layers = 2;
  int64_t dec_layers = 1;
  int64_t enc_rnn_layers = 1;     ///< Paper: 1-layer GRU in the encoder.
  int64_t dec_rnn_layers = 2;     ///< Paper: 2-layer GRU in the decoder
                                  ///< (1 under the univariate setting).
  float dropout = 0.05f;

  // Normalizing flow (Eq. 15-18).
  int64_t flow_transforms = 2;
  flow::FlowVariant flow_variant = flow::FlowVariant::kFull;
  float lambda = 0.8f;            ///< Eq. (18) trade-off.
  HiddenChoice enc_hidden;        ///< Which h_e feeds the flow (Table IX).
  HiddenChoice dec_hidden;

  // Input representation (Tables V / VIII).
  InputVariant input_variant = InputVariant::kFull;
  FusionMethod fusion = FusionMethod::kDefault;
  std::vector<TemporalResolution> resolutions = {
      TemporalResolution::kHour, TemporalResolution::kDayOfWeek};

  // SIRN ablation (Table VI).
  SirnMode sirn_mode = SirnMode::kFull;
  attention::AttentionKind ablation_attention = attention::AttentionKind::kFull;

  uint64_t seed = 7;
};

class ConformerModel : public models::Forecaster {
 public:
  ConformerModel(const ConformerConfig& config, data::WindowConfig window,
                 int64_t dims);

  /// Point forecast: lambda * decoder output + (1 - lambda) * flow output
  /// (mean path in eval mode).
  Tensor Forward(const data::Batch& batch) const override;

  /// Eq. (18): lambda * MSE(Y_out, Y) + (1 - lambda) * MSE(Z_out, Y).
  Tensor Loss(const data::Batch& batch) override;

  std::string name() const override { return "Conformer"; }

  /// Uncertainty-aware forecast (Figs. 6-7): draws `num_samples` flow
  /// samples and summarizes them into mean and coverage band.
  flow::UncertaintyBand PredictWithUncertainty(const data::Batch& batch,
                                               int64_t num_samples,
                                               double coverage);

  const ConformerConfig& config() const { return config_; }

 private:
  /// Shared forward: decoder series + flow latent block.
  struct Parts {
    Tensor decoder_series;  ///< [B, pred_len, D]
    Tensor flow_series;     ///< [B, pred_len, D] or undefined when disabled.
  };
  Parts Run(const data::Batch& batch, bool sample_flow) const;

  ConformerConfig config_;
  std::shared_ptr<Encoder> encoder_;
  std::shared_ptr<Decoder> decoder_;
  std::shared_ptr<flow::NormalizingFlow> flow_;
  std::shared_ptr<flow::FlowOutputHead> flow_head_;
  mutable Rng rng_;  // Flow sampling; mutated by const Forward.
};

}  // namespace conformer::core

#endif  // CONFORMER_CORE_CONFORMER_MODEL_H_
