#include "core/input_representation.h"

#include <cmath>

#include "fft/autocorrelation.h"
#include "nn/init.h"
#include "tensor/capture.h"
#include "tensor/ops.h"
#include "util/profiler.h"

namespace conformer::core {

namespace {

// Cardinality of each calendar resolution's vocabulary.
int64_t ResolutionCardinality(TemporalResolution r) {
  switch (r) {
    case TemporalResolution::kMinute:
      return 60;
    case TemporalResolution::kHour:
      return 24;
    case TemporalResolution::kDayOfWeek:
      return 7;
    case TemporalResolution::kDayOfMonth:
      return 31;
  }
  return 1;
}

// Recovers the discrete calendar index from the normalized mark features
// (see data/time_features.cc for the encoding).
int64_t ResolutionIndex(TemporalResolution r, const float* mark_row) {
  auto decode = [](float v, float denom) {
    return static_cast<int64_t>(std::lround((v + 0.5f) * denom));
  };
  switch (r) {
    case TemporalResolution::kMinute:
      return std::min<int64_t>(59, decode(mark_row[0], 59.0f));
    case TemporalResolution::kHour:
      return std::min<int64_t>(23, decode(mark_row[1], 23.0f));
    case TemporalResolution::kDayOfWeek:
      return std::min<int64_t>(6, decode(mark_row[2], 6.0f));
    case TemporalResolution::kDayOfMonth:
      return std::min<int64_t>(30, decode(mark_row[3], 30.0f));
  }
  return 0;
}

}  // namespace

const char* InputVariantName(InputVariant variant) {
  switch (variant) {
    case InputVariant::kFull:
      return "full";
    case InputVariant::kNoMultiscale:
      return "-Gamma";
    case InputVariant::kNoCorrelation:
      return "-R";
    case InputVariant::kNoCorrNoMultiscale:
      return "-R-Gamma";
    case InputVariant::kNoRaw:
      return "-X";
    case InputVariant::kNoRawNoMultiscale:
      return "-X-Gamma";
  }
  return "?";
}

const char* FusionMethodName(FusionMethod method) {
  switch (method) {
    case FusionMethod::kDefault:
      return "default";
    case FusionMethod::kMethod1:
      return "method1";
    case FusionMethod::kMethod2:
      return "method2";
    case FusionMethod::kMethod3:
      return "method3";
    case FusionMethod::kMethod4:
      return "method4";
  }
  return "?";
}

InputRepresentation::InputRepresentation(const InputRepresentationConfig& config)
    : config_(config) {
  CONFORMER_CHECK_GT(config_.dims, 0);
  CONFORMER_CHECK_GT(config_.length, 0);
  CONFORMER_CHECK(!config_.resolutions.empty())
      << "at least one temporal resolution";
  // W^v, b^v of Eq. (5): kernel-3 circular convolution dims -> d_model.
  value_conv_ = RegisterModule(
      "value_conv",
      std::make_shared<nn::Conv1dLayer>(config_.dims, config_.d_model,
                                        /*kernel=*/3, /*padding=*/1,
                                        PadMode::kCircular, /*bias=*/true));
  // Eq. (3)-(4): one embedding table and one [L, L] mixer per resolution.
  const int64_t l = config_.length;
  for (size_t k = 0; k < config_.resolutions.size(); ++k) {
    scale_embeddings_.push_back(RegisterModule(
        "scale_emb" + std::to_string(k),
        std::make_shared<nn::Embedding>(
            ResolutionCardinality(config_.resolutions[k]), config_.d_model)));
    scale_mixers_.push_back(RegisterParameter(
        "scale_mixer" + std::to_string(k),
        // Near-identity init keeps early training close to a plain sum of
        // resolution embeddings.
        Add(Tensor::Eye(l), nn::XavierUniform({l, l}, l, l) * 0.1f)));
  }
  scale_bias_ =
      RegisterParameter("scale_bias", Tensor::Zeros({l, config_.d_model}));
}

Tensor InputRepresentation::MultivariateWeights(const Tensor& x) const {
  // The FFT auto-correlation reads raw values on the host; the static
  // runtime replays the whole block as one opaque step.
  return conformer::internal::CaptureOpaque(
      "MultivariateWeights", {x}, [this](const std::vector<Tensor>& in) {
        return MultivariateWeightsImpl(in[0]);
      });
}

Tensor InputRepresentation::MultivariateWeightsImpl(const Tensor& x) const {
  // Eq. (1): per-variable auto-correlation over the window; Eq. (2):
  // softmax across variables per lag. Computed outside the tape — the
  // weights depend only on the raw input.
  NoGradGuard guard;
  CONFORMER_PROFILE_SCOPE_CAT("model", "multivariate_correlation");
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);
  const int64_t dims = x.size(2);
  const float* xd = x.data();
  // Gather the (batch, variable) columns into contiguous rows and run one
  // batched FFT auto-correlation over all of them (threaded; see
  // fft::AutoCorrelationBatch for the determinism contract).
  std::vector<double> columns(batch * dims * length);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t d = 0; d < dims; ++d) {
      double* column = columns.data() + (b * dims + d) * length;
      for (int64_t t = 0; t < length; ++t) {
        column[t] = xd[(b * length + t) * dims + d];
      }
    }
  }
  const std::vector<double> ac =
      fft::AutoCorrelationBatch(columns, batch * dims, length);
  std::vector<float> corr(batch * length * dims);
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t d = 0; d < dims; ++d) {
      const double* row = ac.data() + (b * dims + d) * length;
      // Normalize by lag-0 energy so variables are comparable.
      const double denom = std::max(std::fabs(row[0]), 1e-8);
      for (int64_t t = 0; t < length; ++t) {
        corr[(b * length + t) * dims + d] = static_cast<float>(row[t] / denom);
      }
    }
  }
  Tensor mr = Tensor::FromVector(std::move(corr), {batch, length, dims});
  return Softmax(mr, -1);
}

Tensor InputRepresentation::MultiscaleDynamics(const Tensor& marks) const {
  // Calendar index decoding reads mark values on the host; the static
  // runtime replays the whole block as one opaque step.
  return conformer::internal::CaptureOpaque(
      "MultiscaleDynamics", {marks}, [this](const std::vector<Tensor>& in) {
        return MultiscaleDynamicsImpl(in[0]);
      });
}

Tensor InputRepresentation::MultiscaleDynamicsImpl(const Tensor& marks) const {
  const int64_t batch = marks.size(0);
  const int64_t length = marks.size(1);
  CONFORMER_CHECK_EQ(length, config_.length)
      << "InputRepresentation built for length " << config_.length;
  const int64_t f = marks.size(2);
  const float* md = marks.data();

  Tensor out;
  for (size_t k = 0; k < config_.resolutions.size(); ++k) {
    // Gather the per-step calendar indices for this resolution.
    std::vector<int64_t> indices(batch * length);
    for (int64_t i = 0; i < batch * length; ++i) {
      indices[i] = ResolutionIndex(config_.resolutions[k], md + i * f);
    }
    Tensor emb = Reshape(scale_embeddings_[k]->Forward(indices),
                         {batch, length, config_.d_model});
    // Eq. (4): temporal mixing with W^S_k in R^{L x L}.
    Tensor mixed = MatMul(scale_mixers_[k], emb);
    out = out.defined() ? Add(out, mixed) : mixed;
  }
  return Add(out, scale_bias_);
}

Tensor InputRepresentation::Forward(const Tensor& x, const Tensor& marks) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "input_representation");
  CONFORMER_CHECK_EQ(x.size(2), config_.dims);
  const InputVariant variant = config_.variant;
  const FusionMethod fusion = config_.fusion;

  const bool use_corr = variant != InputVariant::kNoCorrelation &&
                        variant != InputVariant::kNoCorrNoMultiscale;
  const bool use_raw = variant != InputVariant::kNoRaw &&
                       variant != InputVariant::kNoRawNoMultiscale;
  const bool use_multiscale = variant == InputVariant::kFull ||
                              variant == InputVariant::kNoCorrelation ||
                              variant == InputVariant::kNoRaw;

  Tensor gamma;  // multiscale term, [B, L, d_model]
  if (use_multiscale || fusion != FusionMethod::kDefault) {
    gamma = MultiscaleDynamics(marks);
  }

  if (fusion != FusionMethod::kDefault) {
    // Table VIII experiments: W^Gamma = Softmax(Gamma) mixes over d_model,
    // projected back onto the raw variable space via its softmax weights.
    Tensor w_r = MultivariateWeights(x);
    Tensor corr_term = Mul(w_r, x);
    // W^Gamma X: gate the raw series by the (softmaxed) multiscale signal
    // reduced to a per-step scalar.
    Tensor gate = Softmax(Mean(gamma, {2}, /*keepdim=*/true), 1);  // [B, L, 1]
    Tensor gated_x = Mul(MulScalar(gate, static_cast<float>(x.size(1))), x);
    Tensor inner;
    switch (fusion) {
      case FusionMethod::kMethod1:
        inner = Add(Mul(gate * static_cast<float>(x.size(1)), corr_term), x);
        break;
      case FusionMethod::kMethod2:
        inner = Add(corr_term, gated_x);
        break;
      case FusionMethod::kMethod3:
        inner = Add(Add(corr_term, gated_x), x);
        break;
      case FusionMethod::kMethod4:
      case FusionMethod::kDefault:
        inner = Add(corr_term, x);
        break;
    }
    Tensor embedded =
        Permute(value_conv_->Forward(Permute(inner, {0, 2, 1})), {0, 2, 1});
    if (fusion == FusionMethod::kMethod4) {
      Tensor gate_out = Softmax(Mean(gamma, {2}, /*keepdim=*/true), 1);
      embedded = Mul(MulScalar(gate_out, static_cast<float>(x.size(1))), embedded);
    }
    return embedded;
  }

  // Eq. (5): X^v = Conv(W^R X + X) (terms toggled by the Table V variant).
  Tensor inner;
  if (use_corr) {
    Tensor corr_term = Mul(MultivariateWeights(x), x);
    inner = use_raw ? Add(corr_term, x) : corr_term;
  } else {
    CONFORMER_CHECK(use_raw) << "variant removes both W^R X and X";
    inner = x;
  }
  Tensor x_v = Permute(value_conv_->Forward(Permute(inner, {0, 2, 1})), {0, 2, 1});

  // Eq. (6): X^in = X^v + Gamma^S.
  return use_multiscale ? Add(x_v, gamma) : x_v;
}

}  // namespace conformer::core
