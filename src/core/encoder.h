// Conformer encoder: input representation followed by a stack of SIRN (or
// ablation) layers. Exposes each layer's RNN hidden states for the
// normalizing flow (Table IX feeds first- or last-layer states).

#ifndef CONFORMER_CORE_ENCODER_H_
#define CONFORMER_CORE_ENCODER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/input_representation.h"
#include "core/sirn.h"

namespace conformer::core {

/// \brief Which SIRN layer's hidden feeds the flow, and at which time step.
struct HiddenChoice {
  bool last_layer = true;  ///< h_k (true) vs h_1 (false) in Table IX.
  bool first_step = true;  ///< Paper default: state after the first step.
};

/// \brief Encoder stack output.
struct EncoderOutput {
  Tensor sequence;                   ///< [B, Lx, d_model]
  std::vector<LayerOutput> layers;   ///< Per-layer states.

  /// Hidden state selected per `choice`: [B, d_model].
  Tensor SelectHidden(const HiddenChoice& choice) const;
};

class Encoder : public nn::Module {
 public:
  /// `make_layer` constructs each stacked layer (SIRN or ablation).
  Encoder(const InputRepresentationConfig& input_config, int64_t num_layers,
          const std::function<std::shared_ptr<SequenceLayer>()>& make_layer);

  EncoderOutput Forward(const Tensor& x, const Tensor& marks) const;

 private:
  std::shared_ptr<InputRepresentation> input_;
  std::vector<std::shared_ptr<SequenceLayer>> layers_;
};

}  // namespace conformer::core

#endif  // CONFORMER_CORE_ENCODER_H_
