#include "core/conformer_model.h"
#include "util/profiler.h"

namespace conformer::core {

namespace {

std::function<std::shared_ptr<SequenceLayer>()> LayerFactory(
    const ConformerConfig& config, int64_t rnn_layers) {
  if (config.sirn_mode == SirnMode::kFull) {
    SirnConfig sirn;
    sirn.d_model = config.d_model;
    sirn.n_heads = config.n_heads;
    sirn.window = config.window;
    sirn.eta = config.eta;
    sirn.ma_kernel = config.ma_kernel;
    sirn.rnn_layers = rnn_layers;
    sirn.dropout = config.dropout;
    return [sirn] { return std::make_shared<Sirn>(sirn); };
  }
  attention::AttentionConfig attn;
  attn.window = config.window;
  attn.seed = config.seed;
  const auto kind = config.ablation_attention;
  const int64_t d_model = config.d_model;
  const int64_t n_heads = config.n_heads;
  const float dropout = config.dropout;
  return [=] {
    return std::make_shared<AttentionOnlyLayer>(d_model, n_heads, kind, attn,
                                                dropout);
  };
}

}  // namespace

ConformerModel::ConformerModel(const ConformerConfig& config,
                               data::WindowConfig window, int64_t dims)
    : Forecaster(window, dims), config_(config), rng_(config.seed) {
  InputRepresentationConfig enc_input;
  enc_input.dims = dims;
  enc_input.length = window.input_len;
  enc_input.d_model = config.d_model;
  enc_input.resolutions = config.resolutions;
  enc_input.variant = config.input_variant;
  enc_input.fusion = config.fusion;

  InputRepresentationConfig dec_input = enc_input;
  dec_input.length = window.label_len + window.pred_len;

  encoder_ = RegisterModule(
      "encoder", std::make_shared<Encoder>(
                     enc_input, config.enc_layers,
                     LayerFactory(config, config.enc_rnn_layers)));
  decoder_ = RegisterModule(
      "decoder",
      std::make_shared<Decoder>(dec_input, config.dec_layers,
                                LayerFactory(config, config.dec_rnn_layers),
                                config.n_heads, dims, config.dropout));
  if (config.flow_variant != flow::FlowVariant::kNone) {
    flow_ = RegisterModule(
        "flow", std::make_shared<flow::NormalizingFlow>(
                    config.d_model, config.flow_transforms,
                    config.flow_variant));
    flow_head_ = RegisterModule(
        "flow_head", std::make_shared<flow::FlowOutputHead>(
                         config.d_model, window.pred_len, dims));
  }
}

ConformerModel::Parts ConformerModel::Run(const data::Batch& batch,
                                          bool sample_flow) const {
  EncoderOutput enc = encoder_->Forward(batch.x, batch.x_mark);
  Tensor dec_in = DecoderInput(batch);
  DecoderOutput dec = decoder_->Forward(dec_in, batch.y_mark, enc.sequence);

  Parts parts;
  const int64_t total = dec.series.size(1);
  parts.decoder_series = Slice(dec.series, 1, total - window_.pred_len, total);

  if (flow_ != nullptr) {
    Tensor h_e = enc.SelectHidden(config_.enc_hidden);
    Tensor h_d = dec.SelectHidden(config_.dec_hidden);
    Tensor z = flow_->Forward(h_e, h_d, sample_flow, &rng_);
    parts.flow_series = flow_head_->Forward(z);
  }
  return parts;
}

Tensor ConformerModel::Forward(const data::Batch& batch) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "conformer_forward");
  Parts parts = Run(batch, /*sample_flow=*/training());
  if (!parts.flow_series.defined()) return parts.decoder_series;
  return Add(MulScalar(parts.decoder_series, config_.lambda),
             MulScalar(parts.flow_series, 1.0f - config_.lambda));
}

Tensor ConformerModel::Loss(const data::Batch& batch) {
  CONFORMER_PROFILE_SCOPE_CAT("model", "conformer_loss");
  Parts parts = Run(batch, /*sample_flow=*/training());
  Tensor target = TargetBlock(batch);
  Tensor loss = MseLoss(parts.decoder_series, target);
  if (!parts.flow_series.defined()) return loss;
  return Add(MulScalar(loss, config_.lambda),
             MulScalar(MseLoss(parts.flow_series, target),
                       1.0f - config_.lambda));
}

flow::UncertaintyBand ConformerModel::PredictWithUncertainty(
    const data::Batch& batch, int64_t num_samples, double coverage) {
  CONFORMER_CHECK(flow_ != nullptr)
      << "uncertainty requires the normalizing flow";
  NoGradGuard guard;
  SetTraining(false);
  std::vector<Tensor> samples;
  samples.reserve(num_samples);
  for (int64_t s = 0; s < num_samples; ++s) {
    Parts parts = Run(batch, /*sample_flow=*/true);
    samples.push_back(Add(MulScalar(parts.decoder_series, config_.lambda),
                          MulScalar(parts.flow_series,
                                    1.0f - config_.lambda)));
  }
  return flow::SummarizeSamples(samples, coverage);
}

}  // namespace conformer::core
