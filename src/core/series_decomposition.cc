#include "core/series_decomposition.h"

namespace conformer::core {

Decomposition DecomposeSeries(const Tensor& x, int64_t kernel) {
  CONFORMER_CHECK_EQ(x.dim(), 3) << "DecomposeSeries expects [B, L, D]";
  CONFORMER_CHECK_GE(kernel, 1);
  const int64_t length = x.size(1);
  // Keep the window odd and no wider than the sequence so the average stays
  // centred.
  if (kernel > length) kernel = length;
  if (kernel % 2 == 0) kernel -= 1;
  if (kernel < 1) kernel = 1;

  // Pool over time: [B, L, D] -> [B, D, L], replicate-pad, average, back.
  Tensor t = Permute(x, {0, 2, 1});
  const int64_t half = kernel / 2;
  t = ReplicatePad(t, /*dim=*/2, half, half);
  t = AvgPool1d(t, kernel, /*stride=*/1);
  Tensor trend = Permute(t, {0, 2, 1});
  return Decomposition{trend, Sub(x, trend)};
}

}  // namespace conformer::core
