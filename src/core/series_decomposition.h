// Moving-average series decomposition (Eq. 9): the trend is an
// edge-replicated moving average over the time axis and the seasonal part
// is the residual — the Autoformer block the paper adopts for SIRN.

#ifndef CONFORMER_CORE_SERIES_DECOMPOSITION_H_
#define CONFORMER_CORE_SERIES_DECOMPOSITION_H_

#include "tensor/ops.h"

namespace conformer::core {

/// \brief Trend + seasonal pair, both shaped like the input.
struct Decomposition {
  Tensor trend;
  Tensor seasonal;
};

/// Decomposes x [B, L, D] with a moving average of width `kernel` (odd;
/// clamped to the sequence length when longer).
Decomposition DecomposeSeries(const Tensor& x, int64_t kernel);

}  // namespace conformer::core

#endif  // CONFORMER_CORE_SERIES_DECOMPOSITION_H_
