#include "core/encoder.h"
#include "util/profiler.h"

namespace conformer::core {

Tensor EncoderOutput::SelectHidden(const HiddenChoice& choice) const {
  CONFORMER_CHECK(!layers.empty());
  const LayerOutput& layer = choice.last_layer ? layers.back() : layers.front();
  return choice.first_step ? layer.hidden_first : layer.hidden_last;
}

Encoder::Encoder(
    const InputRepresentationConfig& input_config, int64_t num_layers,
    const std::function<std::shared_ptr<SequenceLayer>()>& make_layer) {
  CONFORMER_CHECK_GE(num_layers, 1);
  input_ = RegisterModule("input",
                          std::make_shared<InputRepresentation>(input_config));
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(
        RegisterModule("layer" + std::to_string(i), make_layer()));
  }
}

EncoderOutput Encoder::Forward(const Tensor& x, const Tensor& marks) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "encoder");
  EncoderOutput out;
  Tensor h = input_->Forward(x, marks);
  for (const auto& layer : layers_) {
    LayerOutput lo = layer->Forward(h);
    h = lo.sequence;
    out.layers.push_back(std::move(lo));
  }
  out.sequence = h;
  return out;
}

}  // namespace conformer::core
