// Iterative radix-2 fast Fourier transform. Used by the Conformer input
// representation (Eq. 1: multivariate auto-correlation) and by the fast path
// of the Autoformer-style auto-correlation baseline.
//
// These routines operate on plain double buffers (no autograd): in Conformer
// the FFT consumes raw input data, so no gradient flows through it (see
// DESIGN.md §6).

#ifndef CONFORMER_FFT_FFT_H_
#define CONFORMER_FFT_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace conformer::fft {

/// In-place FFT of a power-of-two-length complex signal; `inverse` applies
/// the conjugate transform and divides by n.
void Transform(std::vector<std::complex<double>>* signal, bool inverse);

/// Next power of two >= n (n >= 1).
int64_t NextPowerOfTwo(int64_t n);

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the padded-length complex spectrum.
std::vector<std::complex<double>> RealFft(const std::vector<double>& signal);

/// Naive O(n^2) DFT used as a test oracle.
std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& signal, bool inverse);

}  // namespace conformer::fft

#endif  // CONFORMER_FFT_FFT_H_
