// Fast Fourier transforms at arbitrary lengths. Used by the Conformer input
// representation (Eq. 1: multivariate auto-correlation) and by the fast path
// of the Autoformer-style auto-correlation baseline.
//
// Power-of-two lengths run the iterative radix-2 kernel; every other length
// runs the Bluestein chirp-z transform, so the spectrum is exact at any n —
// never the spectrum of a zero-padded (spectrally leaked) surrogate. Both
// paths draw their twiddle/chirp tables from the process-wide plan cache
// (fft/plan.h).
//
// These routines operate on plain double buffers (no autograd): in Conformer
// the FFT consumes raw input data, so no gradient flows through it (see
// DESIGN.md §6).

#ifndef CONFORMER_FFT_FFT_H_
#define CONFORMER_FFT_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace conformer::fft {

/// In-place DFT of a complex signal of any length >= 1; `inverse` applies
/// the conjugate transform and divides by n. Exact at every length (radix-2
/// for powers of two, Bluestein otherwise).
void Transform(std::vector<std::complex<double>>* signal, bool inverse);

/// Next power of two >= n (n >= 1).
int64_t NextPowerOfTwo(int64_t n);

/// Forward DFT of a real signal. Contract: returns exactly `signal.size()`
/// complex bins for any length — bin k is the true DFT coefficient X[k] of
/// the unpadded signal (Hermitian: X[n-k] = conj(X[k])).
std::vector<std::complex<double>> RealFft(const std::vector<double>& signal);

/// Naive O(n^2) DFT used as a test oracle.
std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& signal, bool inverse);

}  // namespace conformer::fft

#endif  // CONFORMER_FFT_FFT_H_
