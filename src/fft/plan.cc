#include "fft/plan.h"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::fft {

namespace {

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

int64_t CeilPowerOfTwo(int64_t n) {
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FftPlan::FftPlan(int64_t n) : n_(n), pow2_(IsPowerOfTwo(n)) {
  CONFORMER_CHECK_GE(n, 1);
  CONFORMER_PROFILE_SCOPE_CAT("fft", "fft.plan_build");
  // Bluestein turns a length-n DFT into a linear convolution of length
  // 2n-1, which the radix-2 core evaluates at the next power of two.
  m_ = pow2_ ? n_ : CeilPowerOfTwo(2 * n_ - 1);

  // Bit-reversal permutation of the radix-2 core.
  bitrev_.assign(m_, 0);
  for (int64_t i = 1, j = 0; i < m_; ++i) {
    int64_t bit = m_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = j;
  }

  // Forward twiddles, flattened by stage: stage `len` contributes the len/2
  // factors w_len^j = exp(-2*pi*i*j/len) at offset len/2 - 1.
  twiddle_.resize(m_ > 1 ? m_ - 1 : 0);
  for (int64_t len = 2; len <= m_; len <<= 1) {
    const int64_t half = len / 2;
    std::complex<double>* stage = twiddle_.data() + (half - 1);
    for (int64_t j = 0; j < half; ++j) {
      const double angle =
          -2.0 * std::numbers::pi * static_cast<double>(j) / static_cast<double>(len);
      stage[j] = {std::cos(angle), std::sin(angle)};
    }
  }

  if (!pow2_) {
    // chirp[k] = exp(-i*pi*k^2/n). k^2 is reduced mod 2n before the division
    // so the angle stays O(1) and full double precision survives large n.
    chirp_.resize(n_);
    for (int64_t k = 0; k < n_; ++k) {
      const int64_t k2 = (k * k) % (2 * n_);
      const double angle =
          -std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n_);
      chirp_[k] = {std::cos(angle), std::sin(angle)};
    }
    // Chirp filter b[j] = conj(chirp[|j|]) laid out circularly over m_, then
    // pre-transformed once: the per-call convolution needs only one forward
    // and one inverse radix-2 pass.
    chirp_fft_.assign(m_, {0.0, 0.0});
    for (int64_t j = 0; j < n_; ++j) {
      const std::complex<double> b = std::conj(chirp_[j]);
      chirp_fft_[j] = b;
      if (j > 0) chirp_fft_[m_ - j] = b;
    }
    TransformPow2(chirp_fft_.data(), /*inverse=*/false);
  }
}

void FftPlan::TransformPow2(std::complex<double>* a, bool inverse) const {
  const int64_t m = m_;
  for (int64_t i = 1; i < m; ++i) {
    const int64_t j = bitrev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (int64_t len = 2; len <= m; len <<= 1) {
    const int64_t half = len / 2;
    const std::complex<double>* stage = twiddle_.data() + (half - 1);
    for (int64_t i = 0; i < m; i += len) {
      for (int64_t j = 0; j < half; ++j) {
        const std::complex<double> w =
            inverse ? std::conj(stage[j]) : stage[j];
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + half] * w;
        a[i + j] = u + v;
        a[i + j + half] = u - v;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(m);
    for (int64_t i = 0; i < m; ++i) a[i] *= scale;
  }
}

void FftPlan::BluesteinForward(std::complex<double>* data) const {
  // X[k] = chirp[k] * sum_t (x[t]*chirp[t]) * conj(chirp[k-t]): a linear
  // convolution with the pre-transformed chirp filter.
  std::vector<std::complex<double>> work(m_, {0.0, 0.0});
  for (int64_t t = 0; t < n_; ++t) work[t] = data[t] * chirp_[t];
  TransformPow2(work.data(), /*inverse=*/false);
  for (int64_t i = 0; i < m_; ++i) work[i] *= chirp_fft_[i];
  TransformPow2(work.data(), /*inverse=*/true);
  for (int64_t k = 0; k < n_; ++k) data[k] = work[k] * chirp_[k];
}

void FftPlan::Forward(std::complex<double>* data) const {
  CONFORMER_PROFILE_SCOPE_CAT("fft", "fft.transform");
  if (pow2_) {
    TransformPow2(data, /*inverse=*/false);
  } else {
    BluesteinForward(data);
  }
}

void FftPlan::Inverse(std::complex<double>* data) const {
  CONFORMER_PROFILE_SCOPE_CAT("fft", "fft.transform");
  if (pow2_) {
    TransformPow2(data, /*inverse=*/true);
    return;
  }
  // IDFT(x) = conj(DFT(conj(x))) / n.
  for (int64_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]);
  BluesteinForward(data);
  const double scale = 1.0 / static_cast<double>(n_);
  for (int64_t i = 0; i < n_; ++i) data[i] = std::conj(data[i]) * scale;
}

namespace {

struct PlanCache {
  std::mutex mu;
  std::map<int64_t, std::shared_ptr<const FftPlan>> plans;
};

PlanCache& Cache() {
  static PlanCache* cache = new PlanCache();  // leaky: usable at shutdown
  return *cache;
}

}  // namespace

std::shared_ptr<const FftPlan> GetPlan(int64_t n) {
  static metrics::Counter& hits =
      metrics::Registry::Global().GetCounter("fft.plan_hits");
  static metrics::Counter& misses =
      metrics::Registry::Global().GetCounter("fft.plan_misses");
  PlanCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  auto it = cache.plans.find(n);
  if (it != cache.plans.end()) {
    hits.Increment();
    return it->second;
  }
  misses.Increment();
  auto plan = std::make_shared<const FftPlan>(n);
  cache.plans.emplace(n, plan);
  return plan;
}

int64_t PlanCacheSize() {
  PlanCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return static_cast<int64_t>(cache.plans.size());
}

void ClearPlanCacheForTesting() {
  PlanCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.plans.clear();
}

}  // namespace conformer::fft
