#include "fft/autocorrelation.h"

#include <algorithm>
#include <complex>

#include "fft/fft.h"
#include "util/logging.h"

namespace conformer::fft {

std::vector<double> AutoCorrelation(const std::vector<double>& signal,
                                    bool circular) {
  const int64_t n = static_cast<int64_t>(signal.size());
  CONFORMER_CHECK_GT(n, 0);
  const int64_t padded = NextPowerOfTwo(circular ? n : 2 * n);
  std::vector<std::complex<double>> buffer(padded, {0.0, 0.0});
  if (circular) {
    // Tile the signal so the transform length stays a power of two while the
    // correlation remains circular in the original period... impossible in
    // general; instead compute directly when n is not a power of two.
    if (padded == n) {
      for (int64_t i = 0; i < n; ++i) buffer[i] = {signal[i], 0.0};
      Transform(&buffer, false);
      for (auto& x : buffer) x *= std::conj(x);
      Transform(&buffer, true);
      std::vector<double> out(n);
      for (int64_t i = 0; i < n; ++i) out[i] = buffer[i].real();
      return out;
    }
    // Direct O(n^2) circular correlation fallback for non-power-of-two n.
    std::vector<double> out(n, 0.0);
    for (int64_t lag = 0; lag < n; ++lag) {
      double acc = 0.0;
      for (int64_t t = 0; t < n; ++t) acc += signal[t] * signal[(t + lag) % n];
      out[lag] = acc;
    }
    return out;
  }
  // Linear correlation via zero padding.
  for (int64_t i = 0; i < n; ++i) buffer[i] = {signal[i], 0.0};
  Transform(&buffer, false);
  for (auto& x : buffer) x *= std::conj(x);
  Transform(&buffer, true);
  std::vector<double> out(n);
  for (int64_t i = 0; i < n; ++i) out[i] = buffer[i].real();
  return out;
}

std::vector<double> CrossCorrelation(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  CONFORMER_CHECK_EQ(a.size(), b.size());
  const int64_t n = static_cast<int64_t>(a.size());
  const int64_t padded = NextPowerOfTwo(n);
  if (padded == n) {
    std::vector<std::complex<double>> fa(padded), fb(padded);
    for (int64_t i = 0; i < n; ++i) {
      fa[i] = {a[i], 0.0};
      fb[i] = {b[i], 0.0};
    }
    Transform(&fa, false);
    Transform(&fb, false);
    for (int64_t i = 0; i < padded; ++i) fa[i] *= std::conj(fb[i]);
    Transform(&fa, true);
    std::vector<double> out(n);
    for (int64_t i = 0; i < n; ++i) out[i] = fa[i].real();
    return out;
  }
  // Direct circular correlation for non-power-of-two lengths.
  std::vector<double> out(n, 0.0);
  for (int64_t lag = 0; lag < n; ++lag) {
    double acc = 0.0;
    for (int64_t t = 0; t < n; ++t) acc += a[(t + lag) % n] * b[t];
    out[lag] = acc;
  }
  return out;
}

std::vector<int64_t> TopKLags(const std::vector<double>& correlation, int64_t k) {
  const int64_t n = static_cast<int64_t>(correlation.size());
  std::vector<int64_t> lags;
  for (int64_t i = 1; i < n; ++i) lags.push_back(i);
  k = std::min<int64_t>(k, static_cast<int64_t>(lags.size()));
  std::partial_sort(lags.begin(), lags.begin() + k, lags.end(),
                    [&](int64_t x, int64_t y) {
                      return correlation[x] > correlation[y];
                    });
  lags.resize(k);
  return lags;
}

}  // namespace conformer::fft
