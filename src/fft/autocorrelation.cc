#include "fft/autocorrelation.h"

#include <algorithm>
#include <complex>

#include "fft/fft.h"
#include "fft/plan.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace conformer::fft {

namespace {

bool IsPowerOfTwo(int64_t n) { return n > 0 && (n & (n - 1)) == 0; }

// Transform length used for the circular correlation of a length-n series:
// n itself when the circular FFT applies directly, otherwise the padded
// power of two >= 2n that holds the full linear correlation.
int64_t CircularPlanLength(int64_t n) {
  return IsPowerOfTwo(n) ? n : NextPowerOfTwo(2 * n);
}

// Circular auto-correlation of x[0..n) into out[0..n) using `plan` (whose
// length must be CircularPlanLength(n)). For padded plans the linear
// correlation lin[k] comes back in buffer[k] (k >= 0) and buffer[m - k]
// (k < 0), and the circular result is the wrap-around fold
// circ[lag] = lin[lag] + lin[lag - n].
void CircularAutoCorrelationInto(const double* x, int64_t n,
                                 const FftPlan& plan, double* out) {
  const int64_t m = plan.length();
  std::vector<std::complex<double>> buffer(m, {0.0, 0.0});
  for (int64_t i = 0; i < n; ++i) buffer[i] = {x[i], 0.0};
  plan.Forward(buffer.data());
  for (auto& c : buffer) c *= std::conj(c);
  plan.Inverse(buffer.data());
  if (m == n) {
    for (int64_t lag = 0; lag < n; ++lag) out[lag] = buffer[lag].real();
    return;
  }
  out[0] = buffer[0].real();
  for (int64_t lag = 1; lag < n; ++lag) {
    out[lag] = buffer[lag].real() + buffer[m - n + lag].real();
  }
}

}  // namespace

std::vector<double> AutoCorrelation(const std::vector<double>& signal,
                                    bool circular) {
  const int64_t n = static_cast<int64_t>(signal.size());
  CONFORMER_CHECK_GT(n, 0);
  if (circular) {
    std::vector<double> out(n);
    std::shared_ptr<const FftPlan> plan = GetPlan(CircularPlanLength(n));
    CircularAutoCorrelationInto(signal.data(), n, *plan, out.data());
    return out;
  }
  // Linear correlation: zero padding to >= 2n leaves no wrap-around term.
  const int64_t padded = NextPowerOfTwo(2 * n);
  std::shared_ptr<const FftPlan> plan = GetPlan(padded);
  std::vector<std::complex<double>> buffer(padded, {0.0, 0.0});
  for (int64_t i = 0; i < n; ++i) buffer[i] = {signal[i], 0.0};
  plan->Forward(buffer.data());
  for (auto& c : buffer) c *= std::conj(c);
  plan->Inverse(buffer.data());
  std::vector<double> out(n);
  for (int64_t i = 0; i < n; ++i) out[i] = buffer[i].real();
  return out;
}

std::vector<double> AutoCorrelationBatch(const std::vector<double>& series,
                                         int64_t count, int64_t length) {
  CONFORMER_CHECK_GE(count, 0);
  CONFORMER_CHECK_GT(length, 0);
  CONFORMER_CHECK_EQ(static_cast<int64_t>(series.size()), count * length);
  std::vector<double> out(series.size());
  if (count == 0) return out;
  // Warm the plan before fanning out so workers never contend on the cache
  // mutex (and the one-time build is attributed to the dispatching thread).
  std::shared_ptr<const FftPlan> plan = GetPlan(CircularPlanLength(length));
  // Disjoint writes: row i is written by exactly one chunk, and chunk
  // boundaries depend only on (0, count, 1) — bitwise identical at any
  // thread count (docs/THREADING.md contract 1).
  ParallelFor(0, count, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      CircularAutoCorrelationInto(series.data() + i * length, length, *plan,
                                  out.data() + i * length);
    }
  });
  return out;
}

std::vector<double> CrossCorrelation(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  CONFORMER_CHECK_EQ(a.size(), b.size());
  const int64_t n = static_cast<int64_t>(a.size());
  CONFORMER_CHECK_GT(n, 0);
  const int64_t m = CircularPlanLength(n);
  std::shared_ptr<const FftPlan> plan = GetPlan(m);
  std::vector<std::complex<double>> fa(m, {0.0, 0.0});
  std::vector<std::complex<double>> fb(m, {0.0, 0.0});
  for (int64_t i = 0; i < n; ++i) {
    fa[i] = {a[i], 0.0};
    fb[i] = {b[i], 0.0};
  }
  plan->Forward(fa.data());
  plan->Forward(fb.data());
  for (int64_t i = 0; i < m; ++i) fa[i] *= std::conj(fb[i]);
  plan->Inverse(fa.data());
  std::vector<double> out(n);
  if (m == n) {
    for (int64_t lag = 0; lag < n; ++lag) out[lag] = fa[lag].real();
    return out;
  }
  // Fold the padded linear correlation back to circular:
  // circ[lag] = lin[lag] + lin[lag - n], with lin[-j] stored at fa[m - j].
  out[0] = fa[0].real();
  for (int64_t lag = 1; lag < n; ++lag) {
    out[lag] = fa[lag].real() + fa[m - n + lag].real();
  }
  return out;
}

std::vector<int64_t> TopKLags(const std::vector<double>& correlation, int64_t k) {
  const int64_t n = static_cast<int64_t>(correlation.size());
  std::vector<int64_t> lags;
  for (int64_t i = 1; i < n; ++i) lags.push_back(i);
  k = std::clamp<int64_t>(k, 0, static_cast<int64_t>(lags.size()));
  // Equal correlations break toward the lower lag: partial_sort's order
  // among tied elements is otherwise implementation-defined, and downstream
  // consumers (lag selection, period dedup) rely on a stable answer.
  std::partial_sort(lags.begin(), lags.begin() + k, lags.end(),
                    [&](int64_t x, int64_t y) {
                      if (correlation[x] != correlation[y]) {
                        return correlation[x] > correlation[y];
                      }
                      return x < y;
                    });
  lags.resize(k);
  return lags;
}

std::vector<PeriodCandidate> TopKPeriods(const std::vector<double>& amplitude,
                                         int64_t length, int64_t k) {
  CONFORMER_CHECK_GT(length, 0);
  // Usable bins: [1, Nyquist]. Bin 0 (DC) carries the mean, not a period;
  // bins past length/2 mirror the lower half for real input.
  const int64_t max_freq = std::min<int64_t>(
      static_cast<int64_t>(amplitude.size()) - 1, length / 2);
  std::vector<int64_t> freqs;
  for (int64_t f = 1; f <= max_freq; ++f) freqs.push_back(f);
  std::sort(freqs.begin(), freqs.end(), [&](int64_t x, int64_t y) {
    if (amplitude[x] != amplitude[y]) return amplitude[x] > amplitude[y];
    return x < y;  // Tie: prefer the lower frequency (longer period).
  });
  std::vector<PeriodCandidate> out;
  std::vector<bool> seen(length + 1, false);
  for (int64_t f : freqs) {
    if (static_cast<int64_t>(out.size()) >= std::max<int64_t>(k, 0)) break;
    const int64_t period = length / f;
    // Integer rounding maps several high bins to the same period; keep the
    // strongest (first in amplitude order).
    if (seen[period]) continue;
    seen[period] = true;
    out.push_back({f, period});
  }
  return out;
}

}  // namespace conformer::fft
