#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace conformer::fft {

int64_t NextPowerOfTwo(int64_t n) {
  CONFORMER_CHECK_GE(n, 1);
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Transform(std::vector<std::complex<double>>* signal, bool inverse) {
  auto& a = *signal;
  const int64_t n = static_cast<int64_t>(a.size());
  CONFORMER_CHECK(n > 0 && (n & (n - 1)) == 0)
      << "FFT length must be a power of two, got " << n;

  // Bit-reversal permutation.
  for (int64_t i = 1, j = 0; i < n; ++i) {
    int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (int64_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (int64_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (int64_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<std::complex<double>> RealFft(const std::vector<double>& signal) {
  const int64_t padded = NextPowerOfTwo(static_cast<int64_t>(signal.size()));
  std::vector<std::complex<double>> buffer(padded, {0.0, 0.0});
  for (size_t i = 0; i < signal.size(); ++i) buffer[i] = {signal[i], 0.0};
  Transform(&buffer, /*inverse=*/false);
  return buffer;
}

std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& signal, bool inverse) {
  const int64_t n = static_cast<int64_t>(signal.size());
  std::vector<std::complex<double>> out(n, {0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k) * static_cast<double>(t) /
                           static_cast<double>(n);
      out[k] += signal[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
  }
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}

}  // namespace conformer::fft
