#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "fft/plan.h"
#include "util/logging.h"

namespace conformer::fft {

int64_t NextPowerOfTwo(int64_t n) {
  CONFORMER_CHECK_GE(n, 1);
  int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Transform(std::vector<std::complex<double>>* signal, bool inverse) {
  const int64_t n = static_cast<int64_t>(signal->size());
  CONFORMER_CHECK_GT(n, 0) << "FFT of an empty signal";
  std::shared_ptr<const FftPlan> plan = GetPlan(n);
  if (inverse) {
    plan->Inverse(signal->data());
  } else {
    plan->Forward(signal->data());
  }
}

std::vector<std::complex<double>> RealFft(const std::vector<double>& signal) {
  const int64_t n = static_cast<int64_t>(signal.size());
  CONFORMER_CHECK_GT(n, 0) << "FFT of an empty signal";
  std::vector<std::complex<double>> buffer(n);
  for (int64_t i = 0; i < n; ++i) buffer[i] = {signal[i], 0.0};
  Transform(&buffer, /*inverse=*/false);
  return buffer;
}

std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& signal, bool inverse) {
  const int64_t n = static_cast<int64_t>(signal.size());
  std::vector<std::complex<double>> out(n, {0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (int64_t k = 0; k < n; ++k) {
    for (int64_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k) * static_cast<double>(t) /
                           static_cast<double>(n);
      out[k] += signal[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
  }
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}

}  // namespace conformer::fft
