// Arbitrary-length FFT plans with a process-wide cache.
//
// An FftPlan precomputes everything a transform of one fixed length needs:
// the bit-reversal permutation and per-stage twiddle factors of the radix-2
// core, and — for non-power-of-two lengths — the Bluestein chirp-z tables
// (chirp sequence plus the pre-transformed chirp filter). Plans are immutable
// after construction, so one plan can serve any number of threads
// concurrently; per-call scratch lives on the caller's stack/heap, never in
// the plan.
//
// GetPlan(n) is the shared entry point: a mutex-guarded cache keyed by
// length hands out shared_ptr<const FftPlan>, building at most one plan per
// length for the process lifetime. Cache traffic is observable through the
// metrics counters `fft.plan_hits` / `fft.plan_misses`, and plan
// construction is profiled under the `fft.plan_build` scope (category
// "fft"). Hot loops that fan transforms across the thread pool should call
// GetPlan once up front and reuse the plan inside the parallel region.

#ifndef CONFORMER_FFT_PLAN_H_
#define CONFORMER_FFT_PLAN_H_

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

namespace conformer::fft {

/// \brief Precomputed tables for DFTs of one fixed length (any n >= 1).
class FftPlan {
 public:
  /// Builds the tables for length `n`. Power-of-two lengths get radix-2
  /// tables only; other lengths additionally get Bluestein chirp tables
  /// (whose internal convolution uses a radix-2 core of the padded size).
  explicit FftPlan(int64_t n);

  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  /// The transform length this plan was built for.
  int64_t length() const { return n_; }

  /// Radix-2 convolution length backing this plan (== length() when the
  /// length is a power of two).
  int64_t conv_length() const { return m_; }

  /// In-place forward DFT of `data[0..length())`. Exact at any length —
  /// non-power-of-two lengths run the Bluestein chirp-z transform, never a
  /// zero-padded approximation. Thread-safe (const, no shared scratch).
  void Forward(std::complex<double>* data) const;

  /// In-place inverse DFT (conjugate transform divided by n).
  void Inverse(std::complex<double>* data) const;

 private:
  /// Radix-2 core over `data[0..m_)`; `inverse` conjugates the twiddles and
  /// divides by m_.
  void TransformPow2(std::complex<double>* data, bool inverse) const;
  /// Bluestein chirp-z forward DFT of `data[0..n_)`.
  void BluesteinForward(std::complex<double>* data) const;

  int64_t n_;         // requested transform length
  int64_t m_;         // radix-2 core length (n_ if pow2, else >= 2n_-1)
  bool pow2_;         // n_ is a power of two
  std::vector<int64_t> bitrev_;                 // size m_
  std::vector<std::complex<double>> twiddle_;   // forward stages, size m_-1
  // Bluestein tables (empty when pow2_):
  std::vector<std::complex<double>> chirp_;      // exp(-i pi k^2 / n), size n_
  std::vector<std::complex<double>> chirp_fft_;  // FFT_m of conj-chirp filter
};

/// Returns the cached plan for length `n`, building it on first use.
/// Thread-safe; bumps `fft.plan_hits` / `fft.plan_misses`.
std::shared_ptr<const FftPlan> GetPlan(int64_t n);

/// Number of distinct lengths currently cached.
int64_t PlanCacheSize();

/// Drops every cached plan (outstanding shared_ptrs stay valid). Test-only:
/// lets suites assert hit/miss counters from a known-empty cache.
void ClearPlanCacheForTesting();

}  // namespace conformer::fft

#endif  // CONFORMER_FFT_PLAN_H_
