// FFT-based auto-correlation (Wiener–Khinchin), implementing Eq. (1) of the
// paper:  MR_XX = F^{-1}( F(X) conj(F(X)) ).

#ifndef CONFORMER_FFT_AUTOCORRELATION_H_
#define CONFORMER_FFT_AUTOCORRELATION_H_

#include <cstdint>
#include <vector>

namespace conformer::fft {

/// Circular auto-correlation of `signal` at all lags [0, n): the inverse FFT
/// of the power spectrum, computed with zero padding to 2n to avoid wrap
/// contamination when `circular` is false.
std::vector<double> AutoCorrelation(const std::vector<double>& signal,
                                    bool circular = true);

/// Circular cross-correlation of `a` against `b` at all lags [0, n):
/// F^{-1}(F(a) conj(F(b))). Both inputs must have the same length.
std::vector<double> CrossCorrelation(const std::vector<double>& a,
                                     const std::vector<double>& b);

/// Lags of the `k` largest auto-correlation values (lag 0 excluded) —
/// the period candidates used by the Autoformer-style baseline.
std::vector<int64_t> TopKLags(const std::vector<double>& correlation, int64_t k);

}  // namespace conformer::fft

#endif  // CONFORMER_FFT_AUTOCORRELATION_H_
