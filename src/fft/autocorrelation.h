// FFT-based auto-correlation (Wiener–Khinchin), implementing Eq. (1) of the
// paper:  MR_XX = F^{-1}( F(X) conj(F(X)) ).
//
// Every entry point is O(n log n) at every length. Power-of-two lengths use
// the length-n circular FFT directly; other lengths compute the linear
// correlation at the next power of two >= 2n and fold the wrap-around term
// (circ[lag] = lin[lag] + lin[lag - n]), which is exact — no O(n^2) fallback
// and no spectral-leakage approximation. Transform plans come from the
// process-wide cache in fft/plan.h.

#ifndef CONFORMER_FFT_AUTOCORRELATION_H_
#define CONFORMER_FFT_AUTOCORRELATION_H_

#include <cstdint>
#include <vector>

namespace conformer::fft {

/// Circular auto-correlation of `signal` at all lags [0, n): the inverse FFT
/// of the power spectrum, computed with zero padding to >= 2n to avoid wrap
/// contamination when `circular` is false.
std::vector<double> AutoCorrelation(const std::vector<double>& signal,
                                    bool circular = true);

/// Circular auto-correlation of `count` series of length `length`, stored
/// back-to-back in `series` (row-major [count, length]). Returns the same
/// layout. Rows fan out across util::ParallelFor under the determinism
/// contract of docs/THREADING.md: each row is one disjoint output slice, so
/// the result is bitwise identical to calling AutoCorrelation per row at any
/// thread count. The FFT plan is warmed once before the parallel region.
std::vector<double> AutoCorrelationBatch(const std::vector<double>& series,
                                         int64_t count, int64_t length);

/// Circular cross-correlation of `a` against `b` at all lags [0, n):
/// F^{-1}(F(a) conj(F(b))). Both inputs must have the same length.
std::vector<double> CrossCorrelation(const std::vector<double>& a,
                                     const std::vector<double>& b);

/// Lags of the `k` largest auto-correlation values (lag 0 excluded) —
/// the period candidates used by the Autoformer-style baseline. `k` is
/// clamped into [0, n-1]; ties are deterministic (equal correlation →
/// lower lag wins), so the result is a pure function of `correlation`
/// independent of the sort implementation.
std::vector<int64_t> TopKLags(const std::vector<double>& correlation, int64_t k);

/// One dominant-period candidate from a real-FFT amplitude spectrum.
struct PeriodCandidate {
  int64_t frequency;  ///< DFT bin index (cycles over the window), >= 1.
  int64_t period;     ///< length / frequency (integer division), >= 2.
};

/// The `k` dominant periods of a length-`length` series given its per-bin
/// spectrum `amplitude` (amplitude[f] = |X[f]|; any size up to `length` —
/// bins past Nyquist are ignored since they mirror). The TimesNet-lite
/// `FFT_for_Period` recipe with its implicit assumptions made explicit:
/// the DC bin is excluded, amplitude ties break toward the lower frequency
/// (the longer period), periods that collide after the `length / frequency`
/// rounding are deduplicated (keeping the higher-amplitude bin), and `k` is
/// clamped to the number of distinct candidates.
std::vector<PeriodCandidate> TopKPeriods(const std::vector<double>& amplitude,
                                         int64_t length, int64_t k);

}  // namespace conformer::fft

#endif  // CONFORMER_FFT_AUTOCORRELATION_H_
