// PlanExecutor: flat replay of a compiled Plan — memcpy the batch inputs
// into the arena, run each step's precomputed closure chain over precomputed
// pointer tables, copy the output slot out. Plus VerifyParity(), the
// per-node differential harness that re-traces the eager path and compares
// every planned step's output bitwise.

#include <cstring>
#include <utility>

#include "runtime/static_runtime.h"
#include "util/logging.h"

namespace conformer::runtime {

namespace {

// Pointer a step reads slot `slot` through: pinned storage for constants,
// the executor's arena otherwise.
const float* SlotPtr(const PlanSlot& slot, const std::vector<float>& arena) {
  if (slot.kind == SlotKind::kConstant) return slot.constant->data.data();
  CONFORMER_CHECK_GE(slot.offset, 0) << "reading a slot with no storage";
  return arena.data() + slot.offset;
}

}  // namespace

PlanExecutor::PlanExecutor(std::shared_ptr<const Plan> plan)
    : plan_(std::move(plan)), arena_(plan_->arena_numel(), 0.0f) {
  const auto& slots = plan_->slots();
  const auto& steps = plan_->steps();
  step_inputs_.resize(steps.size());
  link_inputs_.resize(steps.size());
  step_out_.resize(steps.size());
  step_numel_.resize(steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& step = steps[i];
    const PlanSlot& out = slots[step.out_slot];
    CONFORMER_CHECK(out.kind != SlotKind::kConstant);
    CONFORMER_CHECK_GE(out.offset, 0);
    step_out_[i] = arena_.data() + out.offset;
    step_numel_[i] = out.numel;
    // Link 0 (or the opaque fn) reads the leading inputs; later links get
    // their own {chain buffer, extras...} table.
    const size_t lead = step.chain.empty()
                            ? step.in_slots.size()
                            : static_cast<size_t>(step.chain[0].num_inputs);
    step_inputs_[i].reserve(lead);
    for (size_t k = 0; k < lead; ++k) {
      step_inputs_[i].push_back(SlotPtr(slots[step.in_slots[k]], arena_));
    }
    size_t base = lead;
    for (size_t l = 1; l < step.chain.size(); ++l) {
      std::vector<const float*> table;
      table.reserve(step.chain[l].num_inputs + 1);
      table.push_back(step_out_[i]);
      for (int k = 0; k < step.chain[l].num_inputs; ++k) {
        table.push_back(SlotPtr(slots[step.in_slots[base + k]], arena_));
      }
      base += step.chain[l].num_inputs;
      link_inputs_[i].push_back(std::move(table));
    }
  }
}

bool PlanExecutor::GeometryMatches(const data::Batch& batch) const {
  const Tensor* inputs[] = {&batch.x, &batch.x_mark, &batch.y, &batch.y_mark};
  const std::vector<Shape>& expected = plan_->input_shapes();
  for (size_t i = 0; i < expected.size() && i < 4; ++i) {
    const bool traced = !expected[i].empty();
    if (inputs[i]->defined() != traced) return false;
    if (traced && inputs[i]->shape() != expected[i]) return false;
  }
  return true;
}

Tensor PlanExecutor::Run(const data::Batch& batch, StepObserver* observer) {
  CONFORMER_CHECK(GeometryMatches(batch))
      << "batch geometry differs from the captured plan";
  const Tensor* inputs[] = {&batch.x, &batch.x_mark, &batch.y, &batch.y_mark};
  for (const PlanSlot& slot : plan_->slots()) {
    if (slot.kind != SlotKind::kInput || slot.offset < 0) continue;
    std::memcpy(arena_.data() + slot.offset,
                inputs[slot.input_index]->data(),
                slot.numel * sizeof(float));
  }

  const auto& steps = plan_->steps();
  for (size_t i = 0; i < steps.size(); ++i) {
    const PlanStep& step = steps[i];
    float* out = step_out_[i];
    const int64_t numel = step_numel_[i];
    if (!step.chain.empty()) {
      if (step.zero_init) std::memset(out, 0, numel * sizeof(float));
      step.chain[0].fn(step_inputs_[i].data(), out);
      for (size_t l = 1; l < step.chain.size(); ++l) {
        step.chain[l].fn(link_inputs_[i][l - 1].data(), out);
      }
    } else {
      // Opaque composite: materialize tensors from the planned buffers and
      // re-run the recorded host logic (deterministic by contract).
      std::vector<Tensor> in_tensors;
      in_tensors.reserve(step.in_slots.size());
      for (size_t k = 0; k < step.in_slots.size(); ++k) {
        const Shape& shape = step.opaque_in_shapes[k];
        const float* src = step_inputs_[i][k];
        in_tensors.push_back(Tensor::FromVector(
            std::vector<float>(src, src + NumElements(shape)), shape));
      }
      Tensor value;
      {
        NoGradGuard no_grad;
        internal::CaptureSuspendGuard no_capture;
        value = step.opaque_fn(in_tensors);
      }
      CONFORMER_CHECK_EQ(value.numel(), numel)
          << "opaque step '" << step.op_name << "' changed output size";
      std::memcpy(out, value.data(), numel * sizeof(float));
    }
    if (plan_->corrupted_step() == static_cast<int>(i) && numel > 0) {
      out[0] = out[0] == 0.0f ? 1.0f : -out[0];
    }
    if (observer != nullptr) {
      observer->OnStep(static_cast<int>(i), out, numel);
    }
  }

  const PlanSlot& out_slot = plan_->slots()[plan_->output_slot()];
  const float* src = SlotPtr(out_slot, arena_);
  return Tensor::FromVector(std::vector<float>(src, src + out_slot.numel),
                            plan_->output_shape());
}

Result<TraceResult> CapturePredictPlan(
    const std::function<Tensor(const data::Batch&)>& predict,
    const data::Batch& batch) {
  Tracer tracer;
  const Tensor* inputs[] = {&batch.x, &batch.x_mark, &batch.y, &batch.y_mark};
  for (int i = 0; i < 4; ++i) {
    if (inputs[i]->defined()) tracer.RegisterInput(*inputs[i], i);
  }
  Tensor output;
  {
    TraceScope scope(&tracer);
    output = predict(batch);
  }
  Result<std::shared_ptr<const Plan>> plan = tracer.BuildPlan(output, 4);
  if (!plan.ok()) return plan.status();
  return TraceResult{std::move(plan).value(), std::move(output)};
}

namespace {

constexpr size_t kMaxReportedMismatches = 16;

// Compares each executed step's output region against the retained eager
// value of the step's final source node, bit-for-bit.
class ParityObserver : public StepObserver {
 public:
  ParityObserver(const Plan& plan, const Tracer& trace, ParityReport* report)
      : plan_(plan), trace_(trace), report_(report) {}

  void OnStep(int step_index, const float* out, int64_t numel) override {
    if (report_->mismatches.size() >= kMaxReportedMismatches) return;
    const PlanStep& step = plan_.steps()[step_index];
    const Tensor& reference = trace_.node_value(step.trace_node);
    ParityMismatch mismatch;
    mismatch.step_index = step_index;
    mismatch.op_name = step.op_name;
    if (reference.numel() != numel) {
      report_->mismatches.push_back(std::move(mismatch));
      return;
    }
    const float* ref = reference.data();
    if (std::memcmp(ref, out, numel * sizeof(float)) == 0) return;
    for (int64_t k = 0; k < numel; ++k) {
      if (std::memcmp(&ref[k], &out[k], sizeof(float)) != 0) {
        mismatch.flat_index = k;
        mismatch.eager_value = ref[k];
        mismatch.replay_value = out[k];
        break;
      }
    }
    report_->mismatches.push_back(std::move(mismatch));
  }

 private:
  const Plan& plan_;
  const Tracer& trace_;
  ParityReport* report_;
};

}  // namespace

ParityReport VerifyParity(
    PlanExecutor& executor,
    const std::function<Tensor(const data::Batch&)>& predict,
    const data::Batch& batch, Tensor* replay_out) {
  ParityReport report;
  const Plan& plan = executor.plan();

  Tracer trace;
  const Tensor* inputs[] = {&batch.x, &batch.x_mark, &batch.y, &batch.y_mark};
  for (int i = 0; i < 4; ++i) {
    if (inputs[i]->defined()) trace.RegisterInput(*inputs[i], i);
  }
  Tensor eager;
  {
    TraceScope scope(&trace);
    eager = predict(batch);
  }

  const std::vector<std::string>& expected = plan.trace_op_names();
  if (trace.num_nodes() != static_cast<int>(expected.size())) {
    report.structural_ok = false;
    report.structural_error =
        "re-trace recorded " + std::to_string(trace.num_nodes()) +
        " nodes, plan expected " + std::to_string(expected.size());
    return report;
  }
  for (int i = 0; i < trace.num_nodes(); ++i) {
    if (trace.node_op(i) != expected[i]) {
      report.structural_ok = false;
      report.structural_error = "node " + std::to_string(i) + " is '" +
                                trace.node_op(i) + "', plan expected '" +
                                expected[i] + "'";
      return report;
    }
  }

  ParityObserver observer(plan, trace, &report);
  Tensor replayed = executor.Run(batch, &observer);
  if (replay_out != nullptr) *replay_out = replayed;

  // Boundary check: the final returned tensors must match bitwise too
  // (covers output slots the per-step loop cannot see, e.g. aliases).
  ParityMismatch boundary;
  boundary.step_index = static_cast<int>(plan.steps().size());
  boundary.op_name = "output";
  if (eager.numel() != replayed.numel() || eager.shape() != replayed.shape()) {
    report.mismatches.push_back(std::move(boundary));
  } else if (std::memcmp(eager.data(), replayed.data(),
                         eager.numel() * sizeof(float)) != 0) {
    for (int64_t k = 0; k < eager.numel(); ++k) {
      if (std::memcmp(&eager.data()[k], &replayed.data()[k],
                      sizeof(float)) != 0) {
        boundary.flat_index = k;
        boundary.eager_value = eager.data()[k];
        boundary.replay_value = replayed.data()[k];
        break;
      }
    }
    report.mismatches.push_back(std::move(boundary));
  }
  return report;
}

}  // namespace conformer::runtime
