// Static inference runtime (docs/STATIC_RUNTIME.md).
//
// Capture one eager Predict() through the tensor layer's trace hooks
// (tensor/capture.h), compile the recorded op stream into an
// ahead-of-time-planned Plan — one activation arena with liveness-based
// buffer reuse, trivial producer-consumer chains fused in place, aliases
// (Reshape/Detach/Clone) elided entirely — and replay it with zero per-op
// dispatch, tape bookkeeping, or pool lookups. Replay is bitwise identical
// to the eager path at any thread count; VerifyParity() proves it per node.

#ifndef CONFORMER_RUNTIME_STATIC_RUNTIME_H_
#define CONFORMER_RUNTIME_STATIC_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/window_dataset.h"
#include "tensor/capture.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace conformer::runtime {

/// Arena alignment for planned buffers, in floats (64 bytes).
inline constexpr int64_t kArenaAlignFloats = 16;

enum class SlotKind {
  kInput,       ///< One of the request batch tensors; memcpy'd per run.
  kConstant,    ///< Pinned trace-time tensor (weights, fixed embeddings).
  kActivation,  ///< Intermediate; lives at a planned arena offset.
};

/// \brief One logical buffer of the plan. Activations and inputs live in the
/// executor's arena at `offset`; constants point into pinned TensorImpls.
struct PlanSlot {
  SlotKind kind = SlotKind::kActivation;
  int64_t numel = 0;
  /// Arena offset in floats (kInput/kActivation with consumers); -1 when the
  /// slot needs no arena space (constants, unused inputs).
  int64_t offset = -1;
  std::shared_ptr<TensorImpl> constant;  ///< Keeps kConstant storage alive.
  int input_index = -1;                  ///< kInput: position in the batch.
  int def_step = -1;   ///< Producing step; -1 for inputs/constants.
  int last_use = -1;   ///< Last step reading it (num_steps for the output).
};

/// \brief One kernel invocation of a fused step. Links after the first read
/// their primary operand from (and write back into) the chain's buffer.
struct PlanChainLink {
  internal::ReplayFn fn;
  /// Pointers this link consumes from the step's input list: the full input
  /// count for link 0, only the non-chain extras for later links.
  int num_inputs = 0;
  int trace_node = -1;  ///< Producing node in the capture trace.
};

/// \brief One executable step: a chain of >= 1 fused kernel links writing a
/// single output slot, or an opaque composite replayed through tensors.
struct PlanStep {
  std::vector<PlanChainLink> chain;  ///< Empty for opaque steps.
  std::vector<int> in_slots;         ///< All links' inputs, concatenated.
  int out_slot = -1;
  bool zero_init = false;  ///< memset the output before link 0 (Sum).
  std::string op_name;     ///< "MatMul+Add+Relu" for fused chains.
  int trace_node = -1;     ///< Node whose value the step's output equals.

  /// Opaque composite replay (chain.empty()): materialize the inputs as
  /// tensors, re-run the recorded deterministic function, copy the result.
  std::function<Tensor(const std::vector<Tensor>&)> opaque_fn;
  std::vector<Shape> opaque_in_shapes;
  Shape out_shape;  ///< Output shape of this step (opaque + diagnostics).
};

/// \brief An immutable compiled replay program for one (model, geometry)
/// pair. Shareable across threads; per-thread state lives in PlanExecutor.
class Plan {
 public:
  const std::vector<PlanSlot>& slots() const { return slots_; }
  const std::vector<PlanStep>& steps() const { return steps_; }
  /// Total arena size in floats (inputs + live activations after reuse).
  int64_t arena_numel() const { return arena_numel_; }
  int output_slot() const { return output_slot_; }
  const Shape& output_shape() const { return output_shape_; }
  /// Trace-time shape of each batch input ({} for an undefined tensor);
  /// replay requires an exact geometry match.
  const std::vector<Shape>& input_shapes() const { return input_shapes_; }
  /// Op names of the capture trace, pre-fusion (structural parity checks).
  const std::vector<std::string>& trace_op_names() const {
    return trace_op_names_;
  }
  /// Sum of activation numels had every slot owned distinct storage —
  /// against arena_numel() this is the liveness-reuse win.
  int64_t unshared_activation_numel() const {
    return unshared_activation_numel_;
  }

  /// Test-only: after step `step_index` executes, flip one bit of its
  /// output so the per-node parity checker must trip. -1 disarms.
  void CorruptStepForTesting(int step_index) { corrupted_step_ = step_index; }
  int corrupted_step() const { return corrupted_step_; }

 private:
  friend class Tracer;

  std::vector<PlanSlot> slots_;
  std::vector<PlanStep> steps_;
  int64_t arena_numel_ = 0;
  int64_t unshared_activation_numel_ = 0;
  int output_slot_ = -1;
  Shape output_shape_;
  std::vector<Shape> input_shapes_;
  std::vector<std::string> trace_op_names_;
  int corrupted_step_ = -1;
};

/// \brief CaptureSink that records one eager Predict() into a node stream
/// and compiles it into a Plan. Single-use: trace once, then BuildPlan().
class Tracer : public internal::CaptureSink {
 public:
  Tracer();
  ~Tracer() override;

  /// Declares a batch tensor as replay input `input_index` before tracing.
  void RegisterInput(const Tensor& t, int input_index);

  // CaptureSink:
  void RecordStep(const Tensor& out, const std::vector<Tensor>& inputs,
                  internal::ReplayFn fn,
                  const internal::CaptureStepMeta& meta) override;
  void RecordAlias(const Tensor& out, const Tensor& src,
                   const char* op_name) override;
  void RecordOpaque(const Tensor& out, const std::vector<Tensor>& inputs,
                    std::function<Tensor(const std::vector<Tensor>&)> fn,
                    const char* op_name) override;
  void RecordRaw(const Tensor& out, const char* op_name) override;

  /// Recorded nodes (steps + opaques, in execution order; aliases excluded).
  int num_nodes() const;
  const std::string& node_op(int i) const;
  /// The retained eager output of node `i` — the per-node parity reference.
  const Tensor& node_value(int i) const;

  /// Compiles the trace: slot unification, fusion, liveness, arena offsets.
  /// `output` must be the traced call's result; `num_inputs` the batch
  /// tensor count registered via RegisterInput. Fails (so callers fall back
  /// to eager) when the output or any consumed value is untraceable.
  Result<std::shared_ptr<const Plan>> BuildPlan(const Tensor& output,
                                                int num_inputs);

 private:
  struct Node;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief RAII: installs a Tracer as the calling thread's capture sink.
class TraceScope {
 public:
  explicit TraceScope(Tracer* tracer)
      : previous_(internal::SwapCaptureSink(tracer)) {}
  ~TraceScope() { internal::SwapCaptureSink(previous_); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  internal::CaptureSink* previous_;
};

/// \brief Observes replay step-by-step (parity checking, diagnostics).
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  /// Called right after step `step_index` wrote `out[0..numel)`.
  virtual void OnStep(int step_index, const float* out, int64_t numel) = 0;
};

/// \brief Replays a Plan. Owns the arena and the precomputed per-step
/// pointer tables, so Run() performs no allocation and no slot lookups.
/// One executor serves one caller at a time; share the Plan and give each
/// concurrent thread its own executor.
class PlanExecutor {
 public:
  explicit PlanExecutor(std::shared_ptr<const Plan> plan);

  /// True when `batch` matches the plan's captured geometry exactly.
  bool GeometryMatches(const data::Batch& batch) const;

  /// Replays the plan on `batch` and returns the output tensor. The batch
  /// must satisfy GeometryMatches().
  Tensor Run(const data::Batch& batch, StepObserver* observer = nullptr);

  const Plan& plan() const { return *plan_; }

 private:
  std::shared_ptr<const Plan> plan_;
  std::vector<float> arena_;
  /// Per step: input pointer table for link 0 (chain buffer excluded).
  std::vector<std::vector<const float*>> step_inputs_;
  /// Per step, per link >= 1: {out_ptr, extra inputs...} tables.
  std::vector<std::vector<std::vector<const float*>>> link_inputs_;
  std::vector<float*> step_out_;
  std::vector<int64_t> step_numel_;
};

/// \brief Result of capturing a Predict(): the compiled plan plus the traced
/// call's eager output (so a capture-on-miss also answers the request).
struct TraceResult {
  std::shared_ptr<const Plan> plan;
  Tensor output;
};

/// Traces `predict(batch)` (normally a bound Forecaster::Predict) under a
/// fresh Tracer and compiles the plan. Inputs are registered in Batch order:
/// x, x_mark, y, y_mark.
Result<TraceResult> CapturePredictPlan(
    const std::function<Tensor(const data::Batch&)>& predict,
    const data::Batch& batch);

/// \brief One per-node bitwise difference between replay and eager.
struct ParityMismatch {
  int step_index = -1;
  std::string op_name;
  int64_t flat_index = -1;  ///< First differing element.
  float eager_value = 0.0f;
  float replay_value = 0.0f;
};

/// \brief Outcome of a checked replay.
struct ParityReport {
  /// The re-traced op sequence matched the plan's recorded trace.
  bool structural_ok = true;
  std::string structural_error;
  std::vector<ParityMismatch> mismatches;
  bool ok() const { return structural_ok && mismatches.empty(); }
};

/// Replays the plan on `executor` while re-running `predict(batch)` eagerly
/// under a fresh trace, comparing every planned step's output region
/// bitwise against the retained eager value of its source node (fused
/// chains compare at the chain-final node). Costs one extra eager forward —
/// a debug/validation mode, off on the serving fast path. `replay_out`
/// (optional) receives the replayed output tensor.
ParityReport VerifyParity(
    PlanExecutor& executor,
    const std::function<Tensor(const data::Batch&)>& predict,
    const data::Batch& batch, Tensor* replay_out = nullptr);

}  // namespace conformer::runtime

#endif  // CONFORMER_RUNTIME_STATIC_RUNTIME_H_
