// Tracer: records one eager Predict() as a node stream (via the capture
// hooks in tensor/capture.h) and compiles it into a Plan — alias
// unification, producer-consumer fusion, liveness analysis, and greedy
// free-list arena assignment.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "runtime/static_runtime.h"
#include "util/logging.h"

namespace conformer::runtime {

namespace {

int64_t AlignUp(int64_t n) {
  return (n + kArenaAlignFloats - 1) / kArenaAlignFloats * kArenaAlignFloats;
}

}  // namespace

struct Tracer::Node {
  std::string op_name;
  internal::ReplayFn fn;  // Null for opaque composites.
  std::function<Tensor(const std::vector<Tensor>&)> opaque_fn;
  std::vector<int> in_slots;
  int out_slot = -1;
  bool zero_init = false;
  bool inplace_safe = false;
  std::vector<Shape> in_shapes;  // Opaque input materialization.
  Tensor value;                  // Retained eager output (parity reference).
};

struct Tracer::Impl {
  std::vector<Node> nodes;
  std::vector<PlanSlot> slots;
  std::unordered_map<const TensorImpl*, int> slot_of;
  // Outputs of ops without a replay closure: consuming one of these as an
  // input invalidates the trace (its value would be wrongly frozen).
  std::unordered_map<const TensorImpl*, std::string> raw;
  // Pins every impl the maps reference, so addresses are never reused
  // within a trace.
  std::vector<Tensor> retained;
  std::vector<Shape> input_shapes;
  std::string failure;  // First fatal trace problem; empty when clean.

  void Fail(const std::string& why) {
    if (failure.empty()) failure = why;
  }

  // Slot for `t` as an op input: known output, registered input, or — for
  // anything the trace has never seen — a pinned constant.
  int ResolveInput(const Tensor& t, const char* consumer) {
    const TensorImpl* key = t.impl().get();
    auto it = slot_of.find(key);
    if (it != slot_of.end()) return it->second;
    auto raw_it = raw.find(key);
    if (raw_it != raw.end()) {
      Fail(std::string(consumer) + " consumed the output of '" +
           raw_it->second + "', which has no replay closure");
    }
    PlanSlot slot;
    slot.kind = SlotKind::kConstant;
    slot.numel = t.numel();
    slot.constant = t.impl();
    const int id = static_cast<int>(slots.size());
    slots.push_back(std::move(slot));
    slot_of.emplace(key, id);
    retained.push_back(t);
    return id;
  }

  int NewActivation(const Tensor& out) {
    PlanSlot slot;
    slot.kind = SlotKind::kActivation;
    slot.numel = out.numel();
    const int id = static_cast<int>(slots.size());
    slots.push_back(std::move(slot));
    slot_of[out.impl().get()] = id;
    raw.erase(out.impl().get());
    return id;
  }
};

Tracer::Tracer() : impl_(std::make_unique<Impl>()) {}
Tracer::~Tracer() = default;

void Tracer::RegisterInput(const Tensor& t, int input_index) {
  CONFORMER_CHECK(t.defined());
  if (impl_->input_shapes.size() <= static_cast<size_t>(input_index)) {
    impl_->input_shapes.resize(input_index + 1);
  }
  impl_->input_shapes[input_index] = t.shape();
  PlanSlot slot;
  slot.kind = SlotKind::kInput;
  slot.numel = t.numel();
  slot.input_index = input_index;
  const int id = static_cast<int>(impl_->slots.size());
  impl_->slots.push_back(std::move(slot));
  impl_->slot_of[t.impl().get()] = id;
  impl_->retained.push_back(t);
}

void Tracer::RecordStep(const Tensor& out, const std::vector<Tensor>& inputs,
                        internal::ReplayFn fn,
                        const internal::CaptureStepMeta& meta) {
  Node node;
  node.op_name = meta.op_name;
  node.fn = std::move(fn);
  node.in_slots.reserve(inputs.size());
  for (const Tensor& t : inputs) {
    node.in_slots.push_back(impl_->ResolveInput(t, meta.op_name));
  }
  node.out_slot = impl_->NewActivation(out);
  node.zero_init = meta.zero_init;
  node.inplace_safe = meta.inplace_safe;
  node.value = out;
  impl_->nodes.push_back(std::move(node));
}

void Tracer::RecordAlias(const Tensor& out, const Tensor& src,
                         const char* op_name) {
  // Same bytes, same slot: replay elides the eager copy entirely.
  const int slot = impl_->ResolveInput(src, op_name);
  impl_->slot_of[out.impl().get()] = slot;
  impl_->raw.erase(out.impl().get());
  impl_->retained.push_back(out);
}

void Tracer::RecordOpaque(const Tensor& out, const std::vector<Tensor>& inputs,
                          std::function<Tensor(const std::vector<Tensor>&)> fn,
                          const char* op_name) {
  Node node;
  node.op_name = op_name;
  node.opaque_fn = std::move(fn);
  node.in_slots.reserve(inputs.size());
  for (const Tensor& t : inputs) {
    node.in_slots.push_back(impl_->ResolveInput(t, op_name));
    node.in_shapes.push_back(t.shape());
  }
  node.out_slot = impl_->NewActivation(out);
  node.value = out;
  impl_->nodes.push_back(std::move(node));
}

void Tracer::RecordRaw(const Tensor& out, const char* op_name) {
  // Provisional: RecordStep/RecordAlias for the same tensor (which runs
  // right after MakeOpResult) upgrades it to a planned value.
  impl_->raw.emplace(out.impl().get(), op_name);
  impl_->retained.push_back(out);
}

int Tracer::num_nodes() const { return static_cast<int>(impl_->nodes.size()); }

const std::string& Tracer::node_op(int i) const {
  return impl_->nodes[i].op_name;
}

const Tensor& Tracer::node_value(int i) const {
  return impl_->nodes[i].value;
}

Result<std::shared_ptr<const Plan>> Tracer::BuildPlan(const Tensor& output,
                                                      int num_inputs) {
  Impl& t = *impl_;
  if (!t.failure.empty()) {
    return Status::Unimplemented("trace not replayable: " + t.failure);
  }
  if (!output.defined()) {
    return Status::InvalidArgument("traced call returned an undefined tensor");
  }
  const auto out_it = t.slot_of.find(output.impl().get());
  if (out_it == t.slot_of.end()) {
    const auto raw_it = t.raw.find(output.impl().get());
    return Status::Unimplemented(
        raw_it != t.raw.end()
            ? "output produced by '" + raw_it->second +
                  "', which has no replay closure"
            : "output was not produced under the capture trace");
  }
  if (t.nodes.empty()) {
    return Status::Unimplemented("trace recorded no steps");
  }
  int output_slot = out_it->second;

  // Consumer occurrence counts per original slot id; the model output
  // counts as one extra consumer (it must survive to the end).
  std::vector<int> consumers(t.slots.size(), 0);
  for (const Node& nd : t.nodes) {
    for (int s : nd.in_slots) ++consumers[s];
  }
  ++consumers[output_slot];

  // -- Fusion: fold a node onto the previous step when it is the sole
  // consumer of that step's output and can run in place on the same buffer.
  auto plan = std::make_shared<Plan>();
  std::vector<int> remap(t.slots.size());
  for (size_t i = 0; i < remap.size(); ++i) remap[i] = static_cast<int>(i);
  auto resolve = [&remap](int s) {
    while (remap[s] != s) s = remap[s];
    return s;
  };

  std::vector<PlanStep>& steps = plan->steps_;
  // Original out-slot id of each step's final chain link (fusion target).
  std::vector<int> chain_out;
  for (int ni = 0; ni < static_cast<int>(t.nodes.size()); ++ni) {
    Node& nd = t.nodes[ni];
    if (nd.fn && nd.inplace_safe && !steps.empty() && !nd.in_slots.empty()) {
      PlanStep& prev = steps.back();
      const int o = chain_out.back();
      if (!prev.chain.empty() && nd.in_slots[0] == o &&
          std::count(nd.in_slots.begin(), nd.in_slots.end(), o) == 1 &&
          consumers[o] == 1 &&
          t.slots[nd.out_slot].numel == t.slots[o].numel) {
        PlanChainLink link;
        link.fn = nd.fn;
        link.num_inputs = static_cast<int>(nd.in_slots.size()) - 1;
        link.trace_node = ni;
        prev.chain.push_back(std::move(link));
        prev.in_slots.insert(prev.in_slots.end(), nd.in_slots.begin() + 1,
                             nd.in_slots.end());
        prev.op_name += "+";
        prev.op_name += nd.op_name;
        prev.trace_node = ni;
        prev.out_shape = nd.value.shape();
        remap[nd.out_slot] = prev.out_slot;
        chain_out.back() = nd.out_slot;
        continue;
      }
    }
    PlanStep step;
    step.in_slots = nd.in_slots;
    step.out_slot = nd.out_slot;
    step.zero_init = nd.zero_init;
    step.op_name = nd.op_name;
    step.trace_node = ni;
    step.out_shape = nd.value.shape();
    if (nd.fn) {
      PlanChainLink link;
      link.fn = nd.fn;
      link.num_inputs = static_cast<int>(nd.in_slots.size());
      link.trace_node = ni;
      step.chain.push_back(std::move(link));
    } else {
      step.opaque_fn = nd.opaque_fn;
      step.opaque_in_shapes = nd.in_shapes;
    }
    steps.push_back(std::move(step));
    chain_out.push_back(nd.out_slot);
  }

  // Resolve every reference through the fusion remap.
  for (PlanStep& step : steps) {
    for (int& s : step.in_slots) s = resolve(s);
    step.out_slot = resolve(step.out_slot);
  }
  output_slot = resolve(output_slot);

  // -- Liveness on the final steps: def at the producing step, last_use at
  // the last read. The output (even when it is an input slot) must survive
  // past the final step so the executor can copy it out.
  std::vector<PlanSlot>& slots = plan->slots_;
  slots = t.slots;
  const int num_steps = static_cast<int>(steps.size());
  for (int si = 0; si < num_steps; ++si) {
    PlanSlot& out = slots[steps[si].out_slot];
    if (out.def_step < 0) out.def_step = si;
    out.last_use = std::max(out.last_use, si);
    for (int s : steps[si].in_slots) {
      slots[s].last_use = std::max(slots[s].last_use, si);
    }
  }
  if (slots[output_slot].kind != SlotKind::kConstant) {
    slots[output_slot].last_use = num_steps;
  }

  // -- Arena assignment: greedy first-fit free list, processing step by
  // step — allocate the slots defined at step s, then release the ones
  // whose last read was step s (never earlier: a buffer read during step s
  // must not back a slot written during step s).
  struct Block {
    int64_t off;
    int64_t size;
  };
  std::vector<Block> free_blocks;  // Sorted by offset, coalesced.
  int64_t arena_end = 0;
  auto allocate = [&](PlanSlot& slot) {
    const int64_t need = AlignUp(slot.numel);
    for (size_t i = 0; i < free_blocks.size(); ++i) {
      if (free_blocks[i].size >= need) {
        slot.offset = free_blocks[i].off;
        free_blocks[i].off += need;
        free_blocks[i].size -= need;
        if (free_blocks[i].size == 0) {
          free_blocks.erase(free_blocks.begin() + i);
        }
        return;
      }
    }
    slot.offset = arena_end;
    arena_end += need;
  };
  auto release = [&](const PlanSlot& slot) {
    Block block{slot.offset, AlignUp(slot.numel)};
    auto it = std::lower_bound(
        free_blocks.begin(), free_blocks.end(), block.off,
        [](const Block& b, int64_t off) { return b.off < off; });
    it = free_blocks.insert(it, block);
    // Coalesce with the next, then the previous neighbor.
    if (it + 1 != free_blocks.end() && it->off + it->size == (it + 1)->off) {
      it->size += (it + 1)->size;
      free_blocks.erase(it + 1);
    }
    if (it != free_blocks.begin() &&
        (it - 1)->off + (it - 1)->size == it->off) {
      (it - 1)->size += it->size;
      free_blocks.erase(it);
    }
  };
  for (int step = -1; step < num_steps; ++step) {
    for (PlanSlot& slot : slots) {
      if (slot.kind == SlotKind::kConstant) continue;
      if (slot.def_step == step && slot.last_use >= 0) allocate(slot);
    }
    for (PlanSlot& slot : slots) {
      if (slot.kind == SlotKind::kConstant || slot.offset < 0) continue;
      if (slot.last_use == step) release(slot);
    }
  }

  // -- Validate: any two slots with overlapping lifetimes must occupy
  // disjoint arena ranges.
  for (size_t i = 0; i < slots.size(); ++i) {
    const PlanSlot& a = slots[i];
    if (a.kind == SlotKind::kConstant || a.offset < 0) continue;
    plan->unshared_activation_numel_ += a.numel;
    for (size_t j = i + 1; j < slots.size(); ++j) {
      const PlanSlot& b = slots[j];
      if (b.kind == SlotKind::kConstant || b.offset < 0) continue;
      const bool lifetimes_overlap =
          a.def_step <= b.last_use && b.def_step <= a.last_use;
      if (!lifetimes_overlap) continue;
      const bool ranges_disjoint = a.offset + AlignUp(a.numel) <= b.offset ||
                                   b.offset + AlignUp(b.numel) <= a.offset;
      CONFORMER_CHECK(ranges_disjoint)
          << "arena plan aliases live slots " << i << " and " << j;
    }
  }

  plan->arena_numel_ = arena_end;
  plan->output_slot_ = output_slot;
  plan->output_shape_ = output.shape();
  plan->input_shapes_ = t.input_shapes;
  plan->input_shapes_.resize(num_inputs);
  plan->trace_op_names_.reserve(t.nodes.size());
  for (const Node& nd : t.nodes) plan->trace_op_names_.push_back(nd.op_name);
  return std::shared_ptr<const Plan>(std::move(plan));
}

}  // namespace conformer::runtime
