#include "util/linalg.h"

#include <cmath>

#include "tensor/vec/vec.h"
#include "util/logging.h"

namespace conformer {

Status CholeskyFactor(std::vector<double>* a_in, int64_t n) {
  CONFORMER_CHECK_EQ(static_cast<int64_t>(a_in->size()), n * n);
  std::vector<double>& a = *a_in;
  // Row dot products go through the dispatched SIMD kernel (fixed 4-bin
  // fold; deterministic, identical across SIMD levels).
  for (int64_t j = 0; j < n; ++j) {
    const double diag =
        a[j * n + j] - vec::DdotN(&a[j * n], &a[j * n], j);
    if (diag <= 0.0) {
      return Status::InvalidArgument(
          "matrix is not positive definite (pivot " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (int64_t i = j + 1; i < n; ++i) {
      const double acc = a[i * n + j] - vec::DdotN(&a[i * n], &a[j * n], j);
      a[i * n + j] = acc / ljj;
    }
  }
  return Status::OK();
}

void CholeskySolveInPlace(const std::vector<double>& l, int64_t n,
                          std::vector<double>* b_in) {
  CONFORMER_CHECK_EQ(static_cast<int64_t>(b_in->size()), n);
  std::vector<double>& b = *b_in;
  // Forward substitution: L y = b.
  for (int64_t i = 0; i < n; ++i) {
    const double acc = b[i] - vec::DdotN(&l[i * n], b.data(), i);
    b[i] = acc / l[i * n + i];
  }
  // Back substitution: L^T x = y.
  for (int64_t i = n - 1; i >= 0; --i) {
    double acc = b[i];
    for (int64_t k = i + 1; k < n; ++k) acc -= l[k * n + i] * b[k];
    b[i] = acc / l[i * n + i];
  }
}

Result<std::vector<double>> RidgeLeastSquares(const std::vector<double>& x,
                                              int64_t rows, int64_t features,
                                              const std::vector<double>& y,
                                              int64_t outputs, double ridge) {
  CONFORMER_CHECK_EQ(static_cast<int64_t>(x.size()), rows * features);
  CONFORMER_CHECK_EQ(static_cast<int64_t>(y.size()), rows * outputs);
  CONFORMER_CHECK_GE(ridge, 0.0);

  // Gram matrix X^T X + ridge I.
  std::vector<double> gram(features * features, 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    const double* row = x.data() + r * features;
    for (int64_t i = 0; i < features; ++i) {
      // Upper triangle of the rank-1 update row ⊗ row, as one axpy span.
      vec::DmulAddN(row + i, row[i], gram.data() + i * features + i,
                    features - i);
    }
  }
  for (int64_t i = 0; i < features; ++i) {
    for (int64_t j = 0; j < i; ++j) gram[i * features + j] = gram[j * features + i];
    gram[i * features + i] += ridge;
  }

  CONFORMER_RETURN_IF_ERROR(CholeskyFactor(&gram, features));

  // X^T Y, solved column by column.
  std::vector<double> w(features * outputs, 0.0);
  std::vector<double> rhs(features);
  for (int64_t o = 0; o < outputs; ++o) {
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (int64_t r = 0; r < rows; ++r) {
      const double target = y[r * outputs + o];
      vec::DmulAddN(x.data() + r * features, target, rhs.data(), features);
    }
    CholeskySolveInPlace(gram, features, &rhs);
    for (int64_t i = 0; i < features; ++i) w[i * outputs + o] = rhs[i];
  }
  return w;
}

}  // namespace conformer
