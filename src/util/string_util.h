// Small string helpers used by the CSV loader, configuration parsing, and
// the bench table printers.

#ifndef CONFORMER_UTIL_STRING_UTIL_H_
#define CONFORMER_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace conformer {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Strip(const std::string& text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `text` starts with / ends with the given prefix / suffix.
bool StartsWith(const std::string& text, const std::string& prefix);
bool EndsWith(const std::string& text, const std::string& suffix);

/// ASCII lower-casing.
std::string ToLower(const std::string& text);

/// Strict parses (whole string must be consumed).
Result<double> ParseDouble(const std::string& text);
Result<int64_t> ParseInt(const std::string& text);

/// Formats a double with `digits` fractional digits, e.g. 0.2124 -> "0.2124".
std::string FormatFixed(double value, int digits);

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters; no surrounding quotes added).
std::string JsonEscape(const std::string& text);

}  // namespace conformer

#endif  // CONFORMER_UTIL_STRING_UTIL_H_
