// Op-level profiler: RAII scoped timers feeding per-thread event logs, with
// aggregation (count / total / min / max / self wall time, bytes moved) and
// export as a JSON summary or a chrome://tracing event file.
//
// Cost model: when profiling is disabled the scope constructor is one relaxed
// atomic load and a branch — no allocation, no clock read. When enabled, each
// scope costs two steady_clock reads plus an append to a thread-local event
// buffer (uncontended mutex). Recording is safe from ThreadPool workers; see
// profiler_test.cc for the concurrency contract.
//
// Enabling:
//   - runtime: CONFORMER_PROFILE=1 in the environment, or
//     Profiler::Global().Enable() programmatically.
//   - compile-time kill switch: -DCONFORMER_PROFILE_DISABLED turns the
//     CONFORMER_PROFILE_SCOPE macros into no-ops (cmake option
//     CONFORMER_DISABLE_PROFILING).
//
// With CONFORMER_PROFILE=1, setting CONFORMER_PROFILE_JSON=<path> and/or
// CONFORMER_TRACE_FILE=<path> dumps the summary / trace at process exit, so
// any existing binary becomes profilable without code changes.

#ifndef CONFORMER_UTIL_PROFILER_H_
#define CONFORMER_UTIL_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace conformer::prof {

/// \brief One completed scope. `name` and `cat` must be string literals (or
/// otherwise outlive the profiler); events store the pointers only.
struct Event {
  const char* name = "";
  const char* cat = "";
  int64_t start_ns = 0;  ///< Nanoseconds since process start (steady clock).
  int64_t dur_ns = 0;
  int64_t bytes = 0;     ///< Bytes moved by the op, 0 if not reported.
  uint32_t tid = 0;      ///< Dense per-process thread id (registration order).
};

/// \brief Aggregated statistics for one (category, name) pair.
struct OpStats {
  std::string cat;
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t min_ns = 0;
  int64_t max_ns = 0;
  /// Exclusive time: total minus time spent in scopes nested inside this one
  /// on the same thread. Summing `self_ns` over all rows never double-counts.
  int64_t self_ns = 0;
  int64_t bytes = 0;
};

namespace internal {

/// Global enabled flag; read on every scope construction (relaxed).
extern std::atomic<bool> g_enabled;

/// Nanoseconds since the process-wide steady-clock epoch.
int64_t NowNs();

/// Appends a completed scope to the calling thread's log.
void Record(const char* name, const char* cat, int64_t start_ns,
            int64_t dur_ns, int64_t bytes);

}  // namespace internal

/// True when profiling is currently enabled (cheap; relaxed load).
inline bool ProfilingEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// \brief Process-wide event sink and aggregator.
class Profiler {
 public:
  /// The singleton used by all scopes. Never destroyed (leaky), so scopes on
  /// detached threads can record safely during shutdown.
  static Profiler& Global();

  void Enable();
  void Disable();
  bool enabled() const { return ProfilingEnabled(); }

  /// Drops all recorded events (thread logs stay registered). Must not run
  /// concurrently with aggregation; concurrent recording is allowed and the
  /// affected events land either before or after the reset.
  void Reset();

  /// Total events recorded so far.
  int64_t event_count() const;

  /// Copies out all events, ordered by (tid, start).
  std::vector<Event> Snapshot() const;

  /// Per-(cat, name) aggregates with self-time attribution, sorted by
  /// descending total time.
  std::vector<OpStats> Aggregate() const;

  /// JSON document: schema tag, op aggregates, tensor-allocation stats
  /// (current / peak bytes, alloc count) and the metrics registry.
  std::string SummaryJson() const;

  /// Writes SummaryJson() to `path`; false on I/O failure.
  bool WriteSummaryJson(const std::string& path) const;

  /// Writes events as a chrome://tracing "traceEvents" JSON file; false on
  /// I/O failure. `max_events` > 0 keeps only the chronologically first
  /// events (a complete time prefix, so nesting stays intact) — long training
  /// runs record millions of events and the tracing UI struggles past a few
  /// hundred MB. The env-var dump path reads CONFORMER_TRACE_MAX_EVENTS.
  bool WriteTrace(const std::string& path, int64_t max_events = 0) const;

 private:
  friend void internal::Record(const char*, const char*, int64_t, int64_t,
                               int64_t);
  struct ThreadLog;
  Profiler();

  /// Registers (or returns) the calling thread's log.
  ThreadLog* LocalLog();

  mutable std::mutex mu_;  // guards logs_ (the list, not the per-log events)
  std::vector<std::shared_ptr<ThreadLog>> logs_;
};

/// \brief RAII timer for one named scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* cat = "op",
                       int64_t bytes = 0)
      : name_(name), cat_(cat), bytes_(bytes), active_(ProfilingEnabled()) {
    if (active_) start_ns_ = internal::NowNs();
  }

  ~ScopedTimer() {
    if (active_) {
      internal::Record(name_, cat_, start_ns_,
                       internal::NowNs() - start_ns_, bytes_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Attributes `bytes` moved to this scope after construction (e.g. once
  /// shapes are known).
  void set_bytes(int64_t bytes) { bytes_ = bytes; }

 private:
  const char* name_;
  const char* cat_;
  int64_t bytes_;
  int64_t start_ns_ = 0;
  bool active_;
};

}  // namespace conformer::prof

// Scope macros: the only instrumentation API call sites should use. With
// CONFORMER_PROFILE_DISABLED they compile to nothing.
#ifndef CONFORMER_PROFILE_DISABLED
#define CONFORMER_PROFILE_CONCAT_INNER(a, b) a##b
#define CONFORMER_PROFILE_CONCAT(a, b) CONFORMER_PROFILE_CONCAT_INNER(a, b)
/// Times the enclosing scope under (`cat`, `name`).
#define CONFORMER_PROFILE_SCOPE_CAT(cat, name)                 \
  ::conformer::prof::ScopedTimer CONFORMER_PROFILE_CONCAT(     \
      conformer_prof_scope_, __LINE__)((name), (cat))
/// Times the enclosing scope and reports `bytes` moved.
#define CONFORMER_PROFILE_SCOPE_BYTES(cat, name, bytes)        \
  ::conformer::prof::ScopedTimer CONFORMER_PROFILE_CONCAT(     \
      conformer_prof_scope_, __LINE__)((name), (cat), (bytes))
/// Times the enclosing scope under the default "op" category.
#define CONFORMER_PROFILE_SCOPE(name) CONFORMER_PROFILE_SCOPE_CAT("op", name)
#else
#define CONFORMER_PROFILE_SCOPE_CAT(cat, name) \
  do {                                         \
  } while (false)
#define CONFORMER_PROFILE_SCOPE_BYTES(cat, name, bytes) \
  do {                                                  \
  } while (false)
#define CONFORMER_PROFILE_SCOPE(name) \
  do {                                \
  } while (false)
#endif  // CONFORMER_PROFILE_DISABLED

#endif  // CONFORMER_UTIL_PROFILER_H_
