// Streaming writer for the chrome://tracing (and Perfetto) JSON event
// format: a {"traceEvents": [...]} document of complete ("ph":"X") events.
// Load the output via chrome://tracing "Load" or https://ui.perfetto.dev.

#ifndef CONFORMER_UTIL_TRACE_WRITER_H_
#define CONFORMER_UTIL_TRACE_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace conformer::prof {

/// \brief Serializes complete events into a trace file as they are added.
/// Usage: Open() -> AddCompleteEvent()* -> Close(). Not thread-safe; callers
/// serialize (the Profiler writes from one thread at export time).
class TraceWriter {
 public:
  TraceWriter() = default;
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Opens `path` and writes the document header; false on I/O failure.
  bool Open(const std::string& path);

  /// Appends one complete event. Times are in nanoseconds (converted to the
  /// format's microsecond unit). `bytes` > 0 is attached as an args entry so
  /// the viewer shows bytes moved per slice.
  void AddCompleteEvent(const std::string& name, const std::string& cat,
                        int64_t start_ns, int64_t dur_ns, uint32_t tid,
                        int64_t bytes = 0);

  /// Writes the footer and closes the file; false on I/O failure. Open()
  /// may be called again afterwards for a new file.
  bool Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
  bool first_event_ = true;
};

}  // namespace conformer::prof

#endif  // CONFORMER_UTIL_TRACE_WRITER_H_
