// Small dense linear algebra for closed-form estimators: Cholesky
// factorization and SPD solves (used by the ridge-regression fit of the
// linear/VAR baseline).

#ifndef CONFORMER_UTIL_LINALG_H_
#define CONFORMER_UTIL_LINALG_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace conformer {

/// In-place Cholesky factorization of a symmetric positive-definite matrix
/// A (n x n, row-major): A = L L^T with L written into the lower triangle.
/// Fails if A is not (numerically) positive definite.
Status CholeskyFactor(std::vector<double>* a, int64_t n);

/// Solves L L^T x = b for one right-hand side, given the factor from
/// CholeskyFactor; overwrites b with x.
void CholeskySolveInPlace(const std::vector<double>& l, int64_t n,
                          std::vector<double>* b);

/// Solves the ridge-regularized least squares (X^T X + ridge I) W = X^T Y
/// for X (rows x features, row-major) and Y (rows x outputs). Returns W
/// (features x outputs, row-major).
Result<std::vector<double>> RidgeLeastSquares(const std::vector<double>& x,
                                              int64_t rows, int64_t features,
                                              const std::vector<double>& y,
                                              int64_t outputs, double ridge);

}  // namespace conformer

#endif  // CONFORMER_UTIL_LINALG_H_
