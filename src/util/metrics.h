// Process-wide metrics: counters, gauges, and fixed-bucket histograms, all
// lock-free to update (single atomic op) and safe to bump from ThreadPool
// workers. A name-keyed Registry owns every instrument and exports one JSON
// object, which the profiler summary and BENCH_*.json embed.
//
// Instruments are created on first GetCounter/GetGauge/GetHistogram lookup
// and live for the process lifetime, so call sites may cache the reference:
//
//   static metrics::Counter& steps =
//       metrics::Registry::Global().GetCounter("train.steps");
//   steps.Increment();

#ifndef CONFORMER_UTIL_METRICS_H_
#define CONFORMER_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace conformer::metrics {

/// \brief Monotonically increasing integer (e.g. steps run, ops dispatched).
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins double (e.g. current learning rate, val MSE).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Histogram over fixed bucket upper bounds (last bucket catches the
/// rest). Observe() is two relaxed atomic ops; snapshots are advisory under
/// concurrent writes (counts and sum may be skewed by in-flight updates).
class Histogram {
 public:
  /// `bounds` must be strictly increasing; observations <= bounds[i] land in
  /// bucket i, larger ones in the overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<int64_t> counts;  ///< bounds.size() + 1 entries (overflow last).
    int64_t count = 0;
    double sum = 0.0;
  };
  Snapshot GetSnapshot() const;
  void Reset();

  /// `n` bounds start, start*factor, start*factor^2, ... (e.g. latencies).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               int n);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief Name-keyed owner of all instruments.
class Registry {
 public:
  /// The process-wide registry (leaky singleton).
  static Registry& Global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. A histogram's `bounds` are fixed by the first call (later calls
  /// with different bounds get the existing instrument); empty bounds mean
  /// ExponentialBounds(1e-4, 4.0, 12) — 100us..~1.7min, latency-friendly.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;

  /// Zeroes every instrument (instruments stay registered).
  void ResetAll();

 private:
  Registry() = default;

  mutable std::mutex mu_;  // guards the maps; values are internally atomic
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace conformer::metrics

#endif  // CONFORMER_UTIL_METRICS_H_
