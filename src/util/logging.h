// Minimal glog-style logging and CHECK macros.
//
// CONFORMER_CHECK* macros abort on failure: they guard invariants whose
// violation indicates a bug (e.g. tensor shape mismatches), not a runtime
// condition the caller should handle (those return Status instead).

#ifndef CONFORMER_UTIL_LOGGING_H_
#define CONFORMER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace conformer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();  // Emits the message; aborts for kFatal.

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows streamed values when the level is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns the streamed LogMessage expression into void so it can sit on the
// right-hand side of `cond ? (void)0 : ...` (the glog dangling-else fix).
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define CONFORMER_LOG(level)                                               \
  ::conformer::internal::LogMessage(::conformer::LogLevel::k##level,       \
                                    __FILE__, __LINE__)                    \
      .stream()

#define CONFORMER_CHECK(cond)                                              \
  (cond) ? (void)0                                                         \
         : ::conformer::internal::Voidify() &                              \
               ::conformer::internal::LogMessage(                          \
                   ::conformer::LogLevel::kFatal, __FILE__, __LINE__)      \
                       .stream()                                           \
                   << "Check failed: " #cond " "

#define CONFORMER_CHECK_EQ(a, b) CONFORMER_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CONFORMER_CHECK_NE(a, b) CONFORMER_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CONFORMER_CHECK_LT(a, b) CONFORMER_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CONFORMER_CHECK_LE(a, b) CONFORMER_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CONFORMER_CHECK_GT(a, b) CONFORMER_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CONFORMER_CHECK_GE(a, b) CONFORMER_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace conformer

#endif  // CONFORMER_UTIL_LOGGING_H_
