// Persistent worker thread pool behind the kernel layer's ParallelFor.
//
// Determinism contract (see docs/THREADING.md): a parallel loop splits
// [begin, end) into grain-sized chunks whose boundaries depend only on
// (begin, end, grain) — never on the number of threads — and every chunk is
// executed by exactly one thread. Kernels that only write disjoint indices
// are therefore bitwise identical at any thread count; reductions must
// combine per-chunk partials in chunk order (ParallelReduce) instead of
// sharing accumulators.

#ifndef CONFORMER_UTIL_THREAD_POOL_H_
#define CONFORMER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace conformer {

/// \brief A persistent pool of worker threads executing chunked loops.
///
/// One job runs at a time and the dispatching thread participates in the
/// work, so `num_threads() == 1` means "no extra workers, run inline".
/// Chunks are assigned to threads by a static stripe (chunk c belongs to
/// thread c % num_threads), which keeps the execution exactly-once without
/// any shared work counter. Construction reads CONFORMER_NUM_THREADS
/// (falling back to hardware_concurrency); tests pin the count with
/// SetNumThreads.
class ThreadPool {
 public:
  /// The process-wide pool used by the tensor kernels.
  static ThreadPool& Global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Resizes the pool to `n` total threads (dispatcher + n-1 workers).
  /// Clamped to >= 1. Blocks until the old workers have exited; must not be
  /// called from inside a parallel region.
  void SetNumThreads(int64_t n);

  /// Total threads that participate in a loop (including the caller).
  int64_t num_threads() const;

  /// Runs `fn(chunk_begin, chunk_end)` over grain-sized chunks of
  /// [begin, end). Chunk boundaries are begin + i*grain, independent of the
  /// thread count. `fn` must only write locations disjoint across chunks.
  /// Empty or inverted ranges are a no-op. Nested calls (from inside a
  /// parallel region) run sequentially on the calling thread.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  struct Job {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    int64_t num_threads = 1;
  };

  ThreadPool();

  void StartWorkers(int64_t workers);
  void StopWorkers();
  /// `start_epoch` is the epoch at spawn time; the worker only reacts to
  /// later epochs (the job slot may still hold a completed historic job).
  void WorkerLoop(int64_t stripe, uint64_t start_epoch);
  /// Runs every chunk c of `job` with c % job.num_threads == stripe.
  static void RunStripe(const Job& job, int64_t stripe);

  std::vector<std::thread> workers_;
  int64_t num_threads_ = 1;

  std::mutex dispatch_mutex_;  // serializes dispatchers and resizing
  mutable std::mutex mutex_;   // guards job_, epoch_, pending_, shutdown_
  std::condition_variable job_cv_;   // workers wait for a new epoch
  std::condition_variable done_cv_;  // dispatcher waits for pending_ == 0
  Job job_;
  uint64_t epoch_ = 0;
  int64_t pending_ = 0;  // workers that have not finished the current epoch
  bool shutdown_ = false;
};

/// Convenience wrapper over ThreadPool::Global().
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Deterministic parallel reduction: [begin, end) is cut into grain-sized
/// chunks (boundaries independent of thread count), `chunk_fn(b, e)` produces
/// each chunk's partial, and the partials are combined with `combine` in
/// ascending chunk order on the calling thread. Returns `init` for an empty
/// range. Never uses shared mutable accumulators, so the result is bitwise
/// identical at any thread count.
template <typename T, typename ChunkFn, typename Combine>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                 ChunkFn chunk_fn, Combine combine) {
  if (end <= begin) return init;
  const int64_t g = grain < 1 ? 1 : grain;
  const int64_t num_chunks = (end - begin + g - 1) / g;
  std::vector<T> partials(num_chunks);
  ParallelFor(0, num_chunks, 1, [&](int64_t cb, int64_t ce) {
    for (int64_t c = cb; c < ce; ++c) {
      const int64_t b = begin + c * g;
      const int64_t e = b + g < end ? b + g : end;
      partials[c] = chunk_fn(b, e);
    }
  });
  T acc = init;
  for (int64_t c = 0; c < num_chunks; ++c) acc = combine(acc, partials[c]);
  return acc;
}

}  // namespace conformer

#endif  // CONFORMER_UTIL_THREAD_POOL_H_
