// Status / Result error model, following the Arrow / RocksDB idiom: fallible
// user-facing operations return a Status (or Result<T>), while programming
// errors use the CHECK macros in util/check.h.

#ifndef CONFORMER_UTIL_STATUS_H_
#define CONFORMER_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace conformer {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kUnavailable,
};

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. `Status::OK()` is the success value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Accessing `value()` on an error Result is a programming error and aborts
/// (via the CHECK in the .h include chain being unavailable here we use a
/// plain branch; see ValueOrDie semantics below).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the value or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Returns a StatusCode's canonical name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Propagates an error Status out of the enclosing function.
#define CONFORMER_RETURN_IF_ERROR(expr)                 \
  do {                                                  \
    ::conformer::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                          \
  } while (false)

}  // namespace conformer

#endif  // CONFORMER_UTIL_STATUS_H_
