// Little-endian binary stream helpers shared by module serialization,
// optimizer state, and the checkpoint subsystem, plus CRC32 and a
// crash-safe (temp file + fsync + rename) whole-file writer.
//
// Every Read* helper validates the stream after the read and returns a
// descriptive IOError naming the field that was truncated, so callers can
// propagate corruption diagnostics without per-site boilerplate.

#ifndef CONFORMER_UTIL_BINARY_IO_H_
#define CONFORMER_UTIL_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace conformer::io {

// -- CRC32 (IEEE 802.3 polynomial, zlib-compatible) -------------------------

/// CRC of `n` bytes; pass a previous crc to continue an incremental run.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

// -- Writers ----------------------------------------------------------------

void WriteU32(std::ostream& out, uint32_t v);
void WriteU64(std::ostream& out, uint64_t v);
void WriteI64(std::ostream& out, int64_t v);
void WriteF64(std::ostream& out, double v);
/// u64 length followed by the raw bytes.
void WriteString(std::ostream& out, const std::string& s);
/// u64 element count followed by the raw float32 payload.
void WriteFloats(std::ostream& out, const float* data, int64_t n);

// -- Readers (stream-state validated) ---------------------------------------

Status ReadU32(std::istream& in, uint32_t* v, const std::string& what);
Status ReadU64(std::istream& in, uint64_t* v, const std::string& what);
Status ReadI64(std::istream& in, int64_t* v, const std::string& what);
Status ReadF64(std::istream& in, double* v, const std::string& what);
/// Rejects lengths above `max_len` before allocating.
Status ReadString(std::istream& in, std::string* s, const std::string& what,
                  uint64_t max_len = 1ull << 20);
/// Rejects element counts above `max_elems` before allocating.
Status ReadFloats(std::istream& in, std::vector<float>* out,
                  const std::string& what,
                  uint64_t max_elems = 1ull << 32);

// -- Files ------------------------------------------------------------------

/// Writes `contents` to `path` crash-safely: the bytes go to `path.tmp`
/// first, are fsync'd, and the temp file is renamed over `path` (with a
/// directory fsync) so readers observe either the old file or the complete
/// new one, never a torn write.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Reads the whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Creates `dir` (and parents) if missing.
Status MakeDirs(const std::string& dir);

/// True when `path` names an existing file.
bool FileExists(const std::string& path);

/// Deletes `path`; missing files are not an error.
Status RemoveFile(const std::string& path);

}  // namespace conformer::io

#endif  // CONFORMER_UTIL_BINARY_IO_H_
