#include "util/civil_time.h"

#include <cstdio>

namespace conformer {

int64_t DaysFromCivil(int y, int m, int d) {
  // Howard Hinnant's days_from_civil.
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* year, int* month, int* day) {
  // Howard Hinnant's civil_from_days.
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

CivilTime CivilFromUnixSeconds(int64_t seconds) {
  int64_t days = seconds / 86400;
  int64_t rem = seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  CivilTime ct;
  CivilFromDays(days, &ct.year, &ct.month, &ct.day);
  ct.hour = static_cast<int>(rem / 3600);
  ct.minute = static_cast<int>((rem % 3600) / 60);
  ct.second = static_cast<int>(rem % 60);
  return ct;
}

int64_t UnixSecondsFromCivil(const CivilTime& ct) {
  return DaysFromCivil(ct.year, ct.month, ct.day) * 86400 + ct.hour * 3600 +
         ct.minute * 60 + ct.second;
}

int DayOfWeek(int64_t unix_seconds) {
  int64_t days = unix_seconds / 86400;
  if (unix_seconds % 86400 < 0) days -= 1;
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  int64_t dow = (days + 3) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

int DayOfYear(int64_t unix_seconds) {
  CivilTime ct = CivilFromUnixSeconds(unix_seconds);
  int64_t start = DaysFromCivil(ct.year, 1, 1);
  int64_t today = DaysFromCivil(ct.year, ct.month, ct.day);
  return static_cast<int>(today - start) + 1;
}

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

Result<int64_t> ParseTimestamp(const std::string& text) {
  CivilTime ct;
  int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &ct.year, &ct.month,
                      &ct.day, &ct.hour, &ct.minute, &ct.second);
  if (n != 3 && n != 5 && n != 6) {
    return Status::InvalidArgument("cannot parse timestamp: '" + text + "'");
  }
  if (ct.month < 1 || ct.month > 12 || ct.day < 1 || ct.day > 31 ||
      ct.hour < 0 || ct.hour > 23 || ct.minute < 0 || ct.minute > 59 ||
      ct.second < 0 || ct.second > 59) {
    return Status::InvalidArgument("timestamp out of range: '" + text + "'");
  }
  return UnixSecondsFromCivil(ct);
}

std::string FormatTimestamp(int64_t unix_seconds) {
  CivilTime ct = CivilFromUnixSeconds(unix_seconds);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", ct.year,
                ct.month, ct.day, ct.hour, ct.minute, ct.second);
  return std::string(buf);
}

}  // namespace conformer
