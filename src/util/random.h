// Deterministic random number generation. All stochastic components (weight
// init, dropout, LSH hashing, synthetic data) draw from an explicit Rng so
// experiments are reproducible from a single seed.

#ifndef CONFORMER_UTIL_RANDOM_H_
#define CONFORMER_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/status.h"

namespace conformer {

/// \brief A seeded pseudo-random generator wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform in [0, 1).
  double Uniform();
  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  /// Standard normal draw.
  double Normal();
  /// Normal with the given mean / stddev.
  double Normal(double mean, double stddev);
  /// Uniform integer in [0, n).
  int64_t UniformInt(int64_t n);
  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);
  /// Student-t draw with `dof` degrees of freedom (heavy-tailed noise).
  double StudentT(double dof);

  /// Fills `out` with standard normal draws.
  void FillNormal(std::vector<float>* out);

  /// A random permutation of {0, ..., n-1}.
  std::vector<int64_t> Permutation(int64_t n);

  /// Engine state as a portable text token stream (the mt19937_64 stream
  /// operators), so a checkpoint restores the exact draw sequence.
  std::string Serialize() const;
  /// Restores a state produced by Serialize(); rejects malformed input
  /// without touching the current state.
  Status Deserialize(const std::string& state);

  std::mt19937_64& gen() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// \brief Process-wide generator used where threading a Rng through would be
/// disproportionate (e.g. default weight init). Re-seedable for tests.
Rng& GlobalRng();
void SeedGlobalRng(uint64_t seed);

}  // namespace conformer

#endif  // CONFORMER_UTIL_RANDOM_H_
