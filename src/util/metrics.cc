#include "util/metrics.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace conformer::metrics {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CONFORMER_CHECK(bounds_[i - 1] < bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 int n) {
  CONFORMER_CHECK(start > 0.0 && factor > 1.0 && n > 0);
  std::vector<double> bounds(n);
  double b = start;
  for (int i = 0; i < n; ++i, b *= factor) bounds[i] = b;
  return bounds;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // leaky, like the profiler
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::ExponentialBounds(1e-4, 4.0, 12);
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += (first ? "" : ", ");
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(counter->value());
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += (first ? "" : ", ");
    out += "\"" + JsonEscape(name) + "\": " + FormatFixed(gauge->value(), 6);
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const Histogram::Snapshot snap = hist->GetSnapshot();
    out += (first ? "" : ", ");
    out += "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(snap.count) +
           ", \"sum\": " + FormatFixed(snap.sum, 6) + ", \"bounds\": [";
    for (size_t i = 0; i < snap.bounds.size(); ++i) {
      out += (i == 0 ? "" : ", ") + FormatFixed(snap.bounds[i], 6);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      out += (i == 0 ? "" : ", ") + std::to_string(snap.counts[i]);
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace conformer::metrics
