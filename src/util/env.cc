#include "util/env.h"

#include <cstdlib>

#include "util/string_util.h"

namespace conformer {

std::string GetEnv(const std::string& name, const std::string& fallback) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

int64_t GetEnvInt(const std::string& name, int64_t fallback) {
  const std::string text = GetEnv(name);
  if (text.empty()) return fallback;
  Result<int64_t> parsed = ParseInt(text);
  return parsed.ok() ? parsed.value() : fallback;
}

}  // namespace conformer
