#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace conformer {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Strip(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string ToLower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<double> ParseDouble(const std::string& text) {
  const std::string stripped = Strip(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty string is not a number");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(stripped.c_str(), &end);
  if (errno != 0 || end != stripped.c_str() + stripped.size()) {
    return Status::InvalidArgument("cannot parse double: '" + text + "'");
  }
  return value;
}

Result<int64_t> ParseInt(const std::string& text) {
  const std::string stripped = Strip(text);
  if (stripped.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  int64_t value = std::strtoll(stripped.c_str(), &end, 10);
  if (errno != 0 || end != stripped.c_str() + stripped.size()) {
    return Status::InvalidArgument("cannot parse integer: '" + text + "'");
  }
  return value;
}

std::string FormatFixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace conformer
