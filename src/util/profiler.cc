#include "util/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "tensor/alloc_stats.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace_writer.h"

namespace conformer::prof {

namespace internal {

std::atomic<bool> g_enabled{false};

int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

}  // namespace internal

/// Per-thread append buffer. The registry keeps a shared_ptr so a worker
/// thread exiting (e.g. ThreadPool::SetNumThreads) never invalidates
/// recorded events.
struct Profiler::ThreadLog {
  std::mutex mu;  // uncontended except during aggregation / reset
  std::vector<Event> events;
  uint32_t tid = 0;
};

Profiler& Profiler::Global() {
  static Profiler* instance = new Profiler();  // leaky: see header
  return *instance;
}

namespace {

// Dump targets resolved from the environment at startup (empty = no dump).
std::string& SummaryDumpPath() {
  static std::string path = GetEnv("CONFORMER_PROFILE_JSON");
  return path;
}

std::string& TraceDumpPath() {
  static std::string path = GetEnv("CONFORMER_TRACE_FILE");
  return path;
}

void DumpAtExit() {
  Profiler& p = Profiler::Global();
  if (!SummaryDumpPath().empty()) p.WriteSummaryJson(SummaryDumpPath());
  if (!TraceDumpPath().empty()) {
    p.WriteTrace(TraceDumpPath(), GetEnvInt("CONFORMER_TRACE_MAX_EVENTS", 0));
  }
}

}  // namespace

Profiler::Profiler() {
  if (GetEnvInt("CONFORMER_PROFILE", 0) != 0) {
    internal::g_enabled.store(true, std::memory_order_relaxed);
    if (!SummaryDumpPath().empty() || !TraceDumpPath().empty()) {
      std::atexit(DumpAtExit);
    }
  }
}

// Touching Global() from a static initializer makes CONFORMER_PROFILE take
// effect before main() even when no scope has run yet.
namespace {
const bool g_profiler_env_init = (Profiler::Global(), true);
}  // namespace

void Profiler::Enable() {
  internal::g_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::Disable() {
  internal::g_enabled.store(false, std::memory_order_relaxed);
}

Profiler::ThreadLog* Profiler::LocalLog() {
  thread_local std::shared_ptr<ThreadLog> log = [this] {
    auto fresh = std::make_shared<ThreadLog>();
    std::lock_guard<std::mutex> lock(mu_);
    fresh->tid = static_cast<uint32_t>(logs_.size());
    logs_.push_back(fresh);
    return fresh;
  }();
  return log.get();
}

namespace internal {

void Record(const char* name, const char* cat, int64_t start_ns,
            int64_t dur_ns, int64_t bytes) {
  Profiler::ThreadLog* log = Profiler::Global().LocalLog();
  std::lock_guard<std::mutex> lock(log->mu);
  log->events.push_back(
      Event{name, cat, start_ns, dur_ns, bytes, log->tid});
}

}  // namespace internal

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
}

int64_t Profiler::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t n = 0;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    n += static_cast<int64_t>(log->events.size());
  }
  return n;
}

std::vector<Event> Profiler::Snapshot() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& log : logs_) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      events.insert(events.end(), log->events.begin(), log->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

std::vector<OpStats> Profiler::Aggregate() const {
  std::vector<Event> events = Snapshot();

  // Self time: within one thread, scopes nest by construction (RAII), so a
  // stack sweep over (start asc, end desc) attributes each event's duration
  // to itself minus its direct children.
  std::vector<int64_t> self(events.size());
  size_t tid_begin = 0;
  while (tid_begin < events.size()) {
    size_t tid_end = tid_begin;
    while (tid_end < events.size() &&
           events[tid_end].tid == events[tid_begin].tid) {
      ++tid_end;
    }
    std::vector<size_t> idx(tid_end - tid_begin);
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = tid_begin + i;
    // Parents before children: same start -> longer duration first.
    std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      if (events[a].start_ns != events[b].start_ns) {
        return events[a].start_ns < events[b].start_ns;
      }
      return events[a].dur_ns > events[b].dur_ns;
    });
    std::vector<size_t> stack;
    for (size_t i : idx) {
      const int64_t start = events[i].start_ns;
      const int64_t end = start + events[i].dur_ns;
      while (!stack.empty() &&
             events[stack.back()].start_ns + events[stack.back()].dur_ns <=
                 start) {
        stack.pop_back();
      }
      // Nested directly under the current top: charge the child's time to it
      // exactly once.
      if (!stack.empty() &&
          end <= events[stack.back()].start_ns + events[stack.back()].dur_ns) {
        self[stack.back()] -= events[i].dur_ns;
        stack.push_back(i);
      } else {
        stack.clear();
        stack.push_back(i);
      }
      self[i] += events[i].dur_ns;
    }
    tid_begin = tid_end;
  }

  std::map<std::pair<std::string, std::string>, OpStats> by_key;
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    OpStats& s = by_key[{e.cat, e.name}];
    if (s.count == 0) {
      s.cat = e.cat;
      s.name = e.name;
      s.min_ns = e.dur_ns;
      s.max_ns = e.dur_ns;
    }
    s.count += 1;
    s.total_ns += e.dur_ns;
    s.min_ns = std::min(s.min_ns, e.dur_ns);
    s.max_ns = std::max(s.max_ns, e.dur_ns);
    s.self_ns += self[i];
    s.bytes += e.bytes;
  }

  std::vector<OpStats> stats;
  stats.reserve(by_key.size());
  for (auto& [key, s] : by_key) stats.push_back(std::move(s));
  std::sort(stats.begin(), stats.end(), [](const OpStats& a, const OpStats& b) {
    return a.total_ns > b.total_ns;
  });
  return stats;
}

std::string Profiler::SummaryJson() const {
  const std::vector<OpStats> stats = Aggregate();
  const AllocStats alloc = GetAllocStats();
  std::string out;
  out += "{\n  \"schema\": \"conformer.profile.v1\",\n";
  out += "  \"event_count\": " + std::to_string(event_count()) + ",\n";
  out += "  \"ops\": [";
  for (size_t i = 0; i < stats.size(); ++i) {
    const OpStats& s = stats[i];
    out += (i == 0 ? "\n" : ",\n");
    out += "    {\"cat\": \"" + JsonEscape(s.cat) + "\", \"name\": \"" +
           JsonEscape(s.name) + "\", \"count\": " + std::to_string(s.count) +
           ", \"total_ns\": " + std::to_string(s.total_ns) +
           ", \"min_ns\": " + std::to_string(s.min_ns) +
           ", \"max_ns\": " + std::to_string(s.max_ns) +
           ", \"self_ns\": " + std::to_string(s.self_ns) +
           ", \"bytes\": " + std::to_string(s.bytes) + "}";
  }
  out += "\n  ],\n";
  out += "  \"alloc\": {\"current_bytes\": " +
         std::to_string(alloc.current_bytes) +
         ", \"peak_bytes\": " + std::to_string(alloc.peak_bytes) +
         ", \"total_allocs\": " + std::to_string(alloc.total_allocs) + "},\n";
  out += "  \"metrics\": " + metrics::Registry::Global().ToJson() + "\n}\n";
  return out;
}

bool Profiler::WriteSummaryJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = SummaryJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

bool Profiler::WriteTrace(const std::string& path, int64_t max_events) const {
  std::vector<Event> events = Snapshot();
  if (max_events > 0 && static_cast<int64_t>(events.size()) > max_events) {
    // Keep the complete time prefix: find the max_events-th smallest start
    // and drop everything that began after it.
    std::vector<int64_t> starts(events.size());
    for (size_t i = 0; i < events.size(); ++i) starts[i] = events[i].start_ns;
    std::nth_element(starts.begin(), starts.begin() + (max_events - 1),
                     starts.end());
    const int64_t cutoff = starts[max_events - 1];
    events.erase(std::remove_if(events.begin(), events.end(),
                                [cutoff](const Event& e) {
                                  return e.start_ns > cutoff;
                                }),
                 events.end());
  }
  TraceWriter writer;
  if (!writer.Open(path)) return false;
  for (const Event& e : events) {
    writer.AddCompleteEvent(e.name, e.cat, e.start_ns, e.dur_ns, e.tid,
                            e.bytes);
  }
  return writer.Close();
}

}  // namespace conformer::prof
