#include "util/binary_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace conformer::io {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status Truncated(const std::string& what) {
  return Status::IOError("truncated or unreadable stream while reading " +
                         what);
}

std::string ErrnoMessage(const std::string& action, const std::string& path) {
  return action + " failed for " + path + ": " + std::strerror(errno);
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t crc) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteFloats(std::ostream& out, const float* data, int64_t n) {
  WriteU64(out, static_cast<uint64_t>(n));
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(n) *
                static_cast<std::streamsize>(sizeof(float)));
}

Status ReadU32(std::istream& in, uint32_t* v, const std::string& what) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Truncated(what);
  return Status::OK();
}

Status ReadU64(std::istream& in, uint64_t* v, const std::string& what) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Truncated(what);
  return Status::OK();
}

Status ReadI64(std::istream& in, int64_t* v, const std::string& what) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Truncated(what);
  return Status::OK();
}

Status ReadF64(std::istream& in, double* v, const std::string& what) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Truncated(what);
  return Status::OK();
}

Status ReadString(std::istream& in, std::string* s, const std::string& what,
                  uint64_t max_len) {
  uint64_t len = 0;
  CONFORMER_RETURN_IF_ERROR(ReadU64(in, &len, what + " length"));
  if (len > max_len) {
    return Status::IOError("implausible length " + std::to_string(len) +
                           " for " + what + " (max " +
                           std::to_string(max_len) + ")");
  }
  s->assign(len, '\0');
  in.read(s->data(), static_cast<std::streamsize>(len));
  if (!in) return Truncated(what);
  return Status::OK();
}

Status ReadFloats(std::istream& in, std::vector<float>* out,
                  const std::string& what, uint64_t max_elems) {
  uint64_t n = 0;
  CONFORMER_RETURN_IF_ERROR(ReadU64(in, &n, what + " count"));
  if (n > max_elems) {
    return Status::IOError("implausible element count " + std::to_string(n) +
                           " for " + what + " (max " +
                           std::to_string(max_elems) + ")");
  }
  out->assign(n, 0.0f);
  in.read(reinterpret_cast<char*>(out->data()),
          static_cast<std::streamsize>(n) *
              static_cast<std::streamsize>(sizeof(float)));
  if (!in) return Truncated(what);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Status::IOError(ErrnoMessage("open", tmp));
    size_t written = 0;
    while (written < contents.size()) {
      const ssize_t n =
          ::write(fd, contents.data() + written, contents.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        return Status::IOError(ErrnoMessage("write", tmp));
      }
      written += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError(ErrnoMessage("fsync", tmp));
    }
    if (::close(fd) != 0) {
      ::unlink(tmp.c_str());
      return Status::IOError(ErrnoMessage("close", tmp));
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(ErrnoMessage("rename", path));
  }
  // Persist the rename itself: fsync the containing directory.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // Best effort: some filesystems reject directory fsync.
    ::close(dfd);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return buffer.str();
}

Status MakeDirs(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::IOError("cannot remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace conformer::io
