// Civil (calendar) time utilities. The multiscale-dynamics block of the
// Conformer input representation (Eq. 3-4) embeds timestamps at several
// temporal resolutions (minute / hour / day / week / month), so we need a
// small proleptic-Gregorian calendar that converts between Unix seconds and
// calendar fields without relying on the system timezone database.

#ifndef CONFORMER_UTIL_CIVIL_TIME_H_
#define CONFORMER_UTIL_CIVIL_TIME_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace conformer {

/// \brief A broken-down UTC calendar time.
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1-12
  int day = 1;     ///< 1-31
  int hour = 0;    ///< 0-23
  int minute = 0;  ///< 0-59
  int second = 0;  ///< 0-59

  bool operator==(const CivilTime& other) const = default;
};

/// Days since 1970-01-01 for the given date (proleptic Gregorian; negative
/// before the epoch). Uses Howard Hinnant's algorithm.
int64_t DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

/// Unix seconds -> calendar fields (UTC).
CivilTime CivilFromUnixSeconds(int64_t seconds);

/// Calendar fields -> Unix seconds (UTC).
int64_t UnixSecondsFromCivil(const CivilTime& ct);

/// Day of week, 0 = Monday ... 6 = Sunday.
int DayOfWeek(int64_t unix_seconds);

/// Day of year, 1-based.
int DayOfYear(int64_t unix_seconds);

/// True for Gregorian leap years.
bool IsLeapYear(int year);

/// Parses "YYYY-MM-DD HH:MM[:SS]" or "YYYY-MM-DD" into Unix seconds.
Result<int64_t> ParseTimestamp(const std::string& text);

/// Formats Unix seconds as "YYYY-MM-DD HH:MM:SS".
std::string FormatTimestamp(int64_t unix_seconds);

}  // namespace conformer

#endif  // CONFORMER_UTIL_CIVIL_TIME_H_
