#include "util/thread_pool.h"

#include "util/env.h"
#include "util/logging.h"

namespace conformer {

namespace {

// Set while a thread is executing pool work; nested ParallelFor calls from
// such a thread run inline to avoid deadlocking on the single job slot.
thread_local bool t_in_parallel_region = false;

int64_t DefaultNumThreads() {
  const int64_t hw = static_cast<int64_t>(std::thread::hardware_concurrency());
  const int64_t n = GetEnvInt("CONFORMER_NUM_THREADS", hw > 0 ? hw : 1);
  return n > 0 ? n : 1;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally: worker threads must outlive static destructors.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::ThreadPool() {
  num_threads_ = DefaultNumThreads();
  StartWorkers(num_threads_ - 1);
}

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::SetNumThreads(int64_t n) {
  CONFORMER_CHECK(!t_in_parallel_region)
      << "SetNumThreads called from inside a parallel region";
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (n == num_threads_) return;
  }
  StopWorkers();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    num_threads_ = n;
  }
  StartWorkers(n - 1);
}

int64_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_threads_;
}

void ThreadPool::StartWorkers(int64_t workers) {
  uint64_t start_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = false;
    // New workers must ignore the historic job slot: epoch_ survives
    // restarts, and a worker born with seen_epoch=0 would otherwise fire on
    // the stale job_ whose fn pointer dangles.
    start_epoch = epoch_;
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int64_t i = 0; i < workers; ++i) {
    // Worker i owns stripe i + 1; the dispatcher is stripe 0.
    workers_.emplace_back(
        [this, i, start_epoch] { WorkerLoop(i + 1, start_epoch); });
  }
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::RunStripe(const Job& job, int64_t stripe) {
  for (int64_t c = stripe; c < job.num_chunks; c += job.num_threads) {
    const int64_t b = job.begin + c * job.grain;
    const int64_t e = b + job.grain < job.end ? b + job.grain : job.end;
    (*job.fn)(b, e);
  }
}

void ThreadPool::WorkerLoop(int64_t stripe, uint64_t seen_epoch) {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    t_in_parallel_region = true;
    RunStripe(job, stripe);
    t_in_parallel_region = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int64_t g = grain < 1 ? 1 : grain;
  const int64_t num_chunks = (n + g - 1) / g;

  // Inline paths: a single chunk, a nested call, or no workers. The chunk
  // decomposition is identical to the parallel path, so results match
  // bitwise for any kernel honoring the disjoint-write contract.
  const bool nested = t_in_parallel_region;
  if (num_chunks > 1 && !nested) {
    std::lock_guard<std::mutex> dispatch_lock(dispatch_mutex_);
    if (!workers_.empty()) {
      Job job;
      job.fn = &fn;
      job.begin = begin;
      job.end = end;
      job.grain = g;
      job.num_chunks = num_chunks;
      job.num_threads = static_cast<int64_t>(workers_.size()) + 1;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = job;
        ++epoch_;
        pending_ = static_cast<int64_t>(workers_.size());
      }
      job_cv_.notify_all();

      t_in_parallel_region = true;
      RunStripe(job, /*stripe=*/0);
      t_in_parallel_region = false;

      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] { return pending_ == 0; });
      return;
    }
  }

  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t b = begin + c * g;
    fn(b, b + g < end ? b + g : end);
  }
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace conformer
