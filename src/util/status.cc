#include "util/status.h"

namespace conformer {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

}  // namespace conformer
