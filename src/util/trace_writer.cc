#include "util/trace_writer.h"

#include "util/string_util.h"

namespace conformer::prof {

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) Close();
}

bool TraceWriter::Open(const std::string& path) {
  if (file_ != nullptr) return false;
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return false;
  first_event_ = true;
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", file_);
  return true;
}

void TraceWriter::AddCompleteEvent(const std::string& name,
                                   const std::string& cat, int64_t start_ns,
                                   int64_t dur_ns, uint32_t tid,
                                   int64_t bytes) {
  if (file_ == nullptr) return;
  // The format's ts/dur unit is microseconds; keep ns resolution with a
  // 3-digit fraction.
  std::fprintf(file_,
               "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
               "\"ts\": %lld.%03lld, \"dur\": %lld.%03lld, \"pid\": 1, "
               "\"tid\": %u",
               first_event_ ? "" : ",", JsonEscape(name).c_str(),
               JsonEscape(cat).c_str(),
               static_cast<long long>(start_ns / 1000),
               static_cast<long long>(start_ns % 1000),
               static_cast<long long>(dur_ns / 1000),
               static_cast<long long>(dur_ns % 1000), tid);
  if (bytes > 0) {
    std::fprintf(file_, ", \"args\": {\"bytes\": %lld}",
                 static_cast<long long>(bytes));
  }
  std::fputs("}", file_);
  first_event_ = false;
}

bool TraceWriter::Close() {
  if (file_ == nullptr) return false;
  std::fputs("\n]}\n", file_);
  const bool ok = std::fclose(file_) == 0;
  file_ = nullptr;
  return ok;
}

}  // namespace conformer::prof
