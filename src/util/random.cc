#include "util/random.h"

#include <cmath>
#include <sstream>

namespace conformer {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

double Rng::Normal() { return std::normal_distribution<double>(0.0, 1.0)(gen_); }

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(gen_);
}

int64_t Rng::UniformInt(int64_t n) {
  return std::uniform_int_distribution<int64_t>(0, n - 1)(gen_);
}

bool Rng::Bernoulli(double p) {
  return std::bernoulli_distribution(p)(gen_);
}

double Rng::StudentT(double dof) {
  return std::student_t_distribution<double>(dof)(gen_);
}

void Rng::FillNormal(std::vector<float>* out) {
  std::normal_distribution<double> dist(0.0, 1.0);
  for (float& v : *out) v = static_cast<float>(dist(gen_));
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    int64_t j = UniformInt(i + 1);
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

std::string Rng::Serialize() const {
  std::ostringstream out;
  out << gen_;
  return out.str();
}

Status Rng::Deserialize(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return Status::InvalidArgument("malformed mt19937_64 state string");
  }
  gen_ = restored;
  return Status::OK();
}

namespace {
Rng* GlobalRngInstance() {
  static Rng* rng = new Rng(42);
  return rng;
}
}  // namespace

Rng& GlobalRng() { return *GlobalRngInstance(); }

void SeedGlobalRng(uint64_t seed) { *GlobalRngInstance() = Rng(seed); }

}  // namespace conformer
