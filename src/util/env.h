// Environment-variable helpers for bench scaling knobs
// (e.g. CONFORMER_BENCH_SCALE=full).

#ifndef CONFORMER_UTIL_ENV_H_
#define CONFORMER_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace conformer {

/// Returns the value of `name` or `fallback` if unset/empty.
std::string GetEnv(const std::string& name, const std::string& fallback = "");

/// Integer environment variable with fallback (also used on parse failure).
int64_t GetEnvInt(const std::string& name, int64_t fallback);

}  // namespace conformer

#endif  // CONFORMER_UTIL_ENV_H_
