#include "nn/layer_norm.h"

namespace conformer::nn {

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({features}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({features}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  CONFORMER_CHECK_EQ(x.size(-1), features_);
  Tensor mu = Mean(x, {-1}, /*keepdim=*/true);
  Tensor centered = Sub(x, mu);
  Tensor var = Mean(Mul(centered, centered), {-1}, /*keepdim=*/true);
  Tensor norm = Div(centered, Sqrt(AddScalar(var, eps_)));
  return Add(Mul(norm, gamma_), beta_);
}

}  // namespace conformer::nn
