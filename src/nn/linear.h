// Fully connected layer.

#ifndef CONFORMER_NN_LINEAR_H_
#define CONFORMER_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::nn {

/// \brief y = x W + b for x of shape [..., in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_LINEAR_H_
