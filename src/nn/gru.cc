#include "nn/gru.h"

#include <cmath>

#include "nn/init.h"

namespace conformer::nn {

GruCell::GruCell(int64_t input_size, int64_t hidden_size)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_size));
  w_ih_ = RegisterParameter("w_ih",
                            UniformInit({input_size, 3 * hidden_size}, bound));
  w_hh_ = RegisterParameter("w_hh",
                            UniformInit({hidden_size, 3 * hidden_size}, bound));
  b_ih_ = RegisterParameter("b_ih", UniformInit({3 * hidden_size}, bound));
  b_hh_ = RegisterParameter("b_hh", UniformInit({3 * hidden_size}, bound));
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  CONFORMER_CHECK_EQ(x.size(-1), input_size_);
  return StepPrecomputed(Add(MatMul(x, w_ih_), b_ih_), h);
}

Tensor GruCell::InputGates(const Tensor& x) const {
  CONFORMER_CHECK_EQ(x.size(-1), input_size_);
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);
  Tensor flat = Reshape(x, {batch * length, input_size_});
  return Reshape(Add(MatMul(flat, w_ih_), b_ih_),
                 {batch, length, 3 * hidden_size_});
}

Tensor GruCell::StepPrecomputed(const Tensor& gi, const Tensor& h) const {
  const int64_t hs = hidden_size_;
  Tensor gh = Add(MatMul(h, w_hh_), b_hh_);  // [B, 3h]
  Tensor gi_r = Slice(gi, 1, 0, hs);
  Tensor gi_z = Slice(gi, 1, hs, 2 * hs);
  Tensor gi_n = Slice(gi, 1, 2 * hs, 3 * hs);
  Tensor gh_r = Slice(gh, 1, 0, hs);
  Tensor gh_z = Slice(gh, 1, hs, 2 * hs);
  Tensor gh_n = Slice(gh, 1, 2 * hs, 3 * hs);
  Tensor r = Sigmoid(Add(gi_r, gh_r));
  Tensor z = Sigmoid(Add(gi_z, gh_z));
  Tensor n = Tanh(Add(gi_n, Mul(r, gh_n)));
  // h' = (1 - z) * n + z * h
  return Add(Mul(Sub(Tensor::Ones(z.shape()), z), n), Mul(z, h));
}

Gru::Gru(int64_t input_size, int64_t hidden_size, int64_t num_layers)
    : hidden_size_(hidden_size) {
  CONFORMER_CHECK_GE(num_layers, 1);
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? input_size : hidden_size;
    cells_.push_back(RegisterModule("layer" + std::to_string(l),
                                    std::make_shared<GruCell>(in, hidden_size)));
  }
}

GruOutput Gru::Forward(const Tensor& x) const {
  CONFORMER_CHECK_EQ(x.dim(), 3) << "Gru expects [B, L, input]";
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);

  std::vector<Tensor> states(cells_.size());
  for (auto& s : states) s = Tensor::Zeros({batch, hidden_size_});

  std::vector<Tensor> outputs;
  outputs.reserve(length);
  std::vector<Tensor> first_states(cells_.size());
  // Layer 0's input-side projections for every step are one batched matmul;
  // deeper layers consume freshly produced states and keep the step path.
  Tensor gates0 = cells_[0]->InputGates(x);
  for (int64_t t = 0; t < length; ++t) {
    Tensor gi = Squeeze(Slice(gates0, 1, t, t + 1), 1);  // [B, 3h]
    states[0] = cells_[0]->StepPrecomputed(gi, states[0]);
    Tensor input = states[0];
    if (t == 0) first_states[0] = states[0];
    for (size_t l = 1; l < cells_.size(); ++l) {
      states[l] = cells_[l]->Step(input, states[l]);
      input = states[l];
      if (t == 0) first_states[l] = states[l];
    }
    outputs.push_back(input);
  }

  GruOutput out;
  out.output = StackTensors(outputs, /*dim=*/1);  // [B, L, h]
  out.last_hidden = StackTensors(states, /*dim=*/0);
  out.first_hidden = StackTensors(first_states, /*dim=*/0);
  return out;
}

}  // namespace conformer::nn
