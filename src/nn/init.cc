#include "nn/init.h"

#include <cmath>

namespace conformer::nn {

Tensor XavierUniform(const Shape& shape, int64_t fan_in, int64_t fan_out,
                     Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Rand(shape, -a, a, rng);
}

Tensor KaimingUniform(const Shape& shape, int64_t fan_in, Rng* rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in));
  return Tensor::Rand(shape, -a, a, rng);
}

Tensor UniformInit(const Shape& shape, float bound, Rng* rng) {
  return Tensor::Rand(shape, -bound, bound, rng);
}

}  // namespace conformer::nn
