#include "nn/module.h"

namespace conformer::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<std::pair<std::string, Tensor>> named = NamedParameters();
  std::vector<Tensor> out;
  out.reserve(named.size());
  for (auto& [name, tensor] : named) out.push_back(tensor);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, tensor] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, tensor);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Tensor& t : Parameters()) total += t.numel();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

Tensor Module::RegisterParameter(const std::string& name, Tensor tensor) {
  tensor.set_requires_grad(true);
  params_.emplace_back(name, tensor);
  return tensor;
}

}  // namespace conformer::nn
