// 2-D convolution layer.

#ifndef CONFORMER_NN_CONV2D_H_
#define CONFORMER_NN_CONV2D_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::nn {

/// \brief Conv over a 2-D grid: input [B, Cin, H, W] -> [B, Cout, H', W'].
///
/// Used by the TimesNet-lite baseline's (cycles x period) grids; symmetric
/// zero padding keeps H' = H and W' = W at padding = (kernel - 1) / 2.
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel_h,
              int64_t kernel_w, int64_t padding, bool bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t padding_;
  Tensor weight_;  // [Cout, Cin, Kh, Kw]
  Tensor bias_;    // [Cout] or undefined
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_CONV2D_H_
