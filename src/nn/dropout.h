// Inverted dropout layer (active only in training mode).

#ifndef CONFORMER_NN_DROPOUT_H_
#define CONFORMER_NN_DROPOUT_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::nn {

class Dropout : public Module {
 public:
  explicit Dropout(float p) : p_(p) {}

  Tensor Forward(const Tensor& x) const {
    return DropoutOp(x, p_, training());
  }

 private:
  float p_;
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_DROPOUT_H_
