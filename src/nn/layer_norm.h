// Layer normalization over the trailing feature dimension.

#ifndef CONFORMER_NN_LAYER_NORM_H_
#define CONFORMER_NN_LAYER_NORM_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::nn {

/// \brief y = gamma * (x - mean) / sqrt(var + eps) + beta, statistics over
/// the last dim.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  int64_t features_;
  float eps_;
  Tensor gamma_;
  Tensor beta_;
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_LAYER_NORM_H_
