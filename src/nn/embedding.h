// Input embeddings shared by Conformer and the Transformer baselines:
// value (token) embedding via circular convolution, fixed sinusoidal
// positional encoding, and calendar time-feature embedding. The combination
// (DataEmbedding) follows the Informer convention the paper adopts for all
// Transformer baselines; Autoformer/Conformer drop the positional term.

#ifndef CONFORMER_NN_EMBEDDING_H_
#define CONFORMER_NN_EMBEDDING_H_

#include <memory>

#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace conformer::nn {

/// \brief Lookup table [num_embeddings, dim]; input is an index list.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim);

  /// indices -> [n, dim]
  Tensor Forward(const std::vector<int64_t>& indices) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Tensor weight_;
};

/// \brief Projects raw series values [B, L, c_in] to [B, L, d_model] with a
/// kernel-3 circular convolution over time.
class TokenEmbedding : public Module {
 public:
  TokenEmbedding(int64_t c_in, int64_t d_model);

  Tensor Forward(const Tensor& x) const;

 private:
  std::shared_ptr<Conv1dLayer> conv_;
};

/// \brief Fixed sinusoidal positional encoding, returned as [1, L, d_model].
class PositionalEncoding : public Module {
 public:
  explicit PositionalEncoding(int64_t d_model, int64_t max_len = 4096);

  /// Encoding for the first `length` positions: [1, length, d_model].
  Tensor Forward(int64_t length) const;

 private:
  Tensor table_;  // [max_len, d_model], not learnable
};

/// \brief Linear embedding of calendar time features [B, L, n_features]
/// into the model dimension.
class TimeFeatureEmbedding : public Module {
 public:
  TimeFeatureEmbedding(int64_t n_features, int64_t d_model);

  Tensor Forward(const Tensor& marks) const;

 private:
  std::shared_ptr<Linear> proj_;
};

/// \brief value + [positional] + time embedding with dropout.
class DataEmbedding : public Module {
 public:
  DataEmbedding(int64_t c_in, int64_t n_time_features, int64_t d_model,
                float dropout = 0.05f, bool use_positional = true);

  /// x [B, L, c_in], marks [B, L, n_time_features] -> [B, L, d_model].
  Tensor Forward(const Tensor& x, const Tensor& marks) const;

 private:
  bool use_positional_;
  std::shared_ptr<TokenEmbedding> value_;
  std::shared_ptr<PositionalEncoding> positional_;
  std::shared_ptr<TimeFeatureEmbedding> temporal_;
  std::shared_ptr<Dropout> dropout_;
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_EMBEDDING_H_
