// Base class for neural-network modules: owns the parameter / submodule
// registry used by optimizers, serialization, and train/eval mode switching.

#ifndef CONFORMER_NN_MODULE_H_
#define CONFORMER_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace conformer::nn {

/// \brief Base for all layers and models.
///
/// Subclasses register their learnable tensors with RegisterParameter and
/// their children with RegisterModule; Parameters()/NamedParameters() then
/// walk the whole tree.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All learnable tensors of this module and its descendants.
  std::vector<Tensor> Parameters() const;

  /// Parameters with hierarchical dotted names ("encoder.attn.wq").
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total learnable element count.
  int64_t NumParameters() const;

  /// Switches train/eval mode for this module and all descendants
  /// (affects dropout).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes every parameter gradient in the tree.
  void ZeroGrad();

 protected:
  /// Registers `tensor` as a learnable leaf and returns it.
  Tensor RegisterParameter(const std::string& name, Tensor tensor);

  /// Registers a child module and returns the typed pointer.
  template <typename M>
  std::shared_ptr<M> RegisterModule(const std::string& name,
                                    std::shared_ptr<M> module) {
    children_.emplace_back(name, module);
    return module;
  }

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_MODULE_H_
