// Multi-layer perceptron convenience module: a stack of Linear layers with
// a chosen activation between them.

#ifndef CONFORMER_NN_MLP_H_
#define CONFORMER_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace conformer::nn {

enum class Activation { kRelu, kGelu, kTanh, kNone };

/// \brief Linear stack: sizes {in, h1, ..., out}; `activation` is applied
/// after every layer except the last.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& sizes, Activation activation = Activation::kRelu);

  Tensor Forward(const Tensor& x) const;

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }

 private:
  Activation activation_;
  std::vector<std::shared_ptr<Linear>> layers_;
};

/// Applies the named activation.
Tensor ApplyActivation(const Tensor& x, Activation activation);

}  // namespace conformer::nn

#endif  // CONFORMER_NN_MLP_H_
