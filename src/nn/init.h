// Weight initialization schemes.

#ifndef CONFORMER_NN_INIT_H_
#define CONFORMER_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/random.h"

namespace conformer::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(const Shape& shape, int64_t fan_in, int64_t fan_out,
                     Rng* rng = nullptr);

/// Kaiming/He uniform for ReLU-family layers: U(-a, a), a = sqrt(6 / fan_in).
Tensor KaimingUniform(const Shape& shape, int64_t fan_in, Rng* rng = nullptr);

/// U(-bound, bound), the default bias init (bound = 1/sqrt(fan_in)).
Tensor UniformInit(const Shape& shape, float bound, Rng* rng = nullptr);

}  // namespace conformer::nn

#endif  // CONFORMER_NN_INIT_H_
