#include "nn/lstm.h"

#include <cmath>

#include "nn/init.h"

namespace conformer::nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_size));
  w_ih_ = RegisterParameter("w_ih",
                            UniformInit({input_size, 4 * hidden_size}, bound));
  w_hh_ = RegisterParameter("w_hh",
                            UniformInit({hidden_size, 4 * hidden_size}, bound));
  b_ih_ = RegisterParameter("b_ih", UniformInit({4 * hidden_size}, bound));
  b_hh_ = RegisterParameter("b_hh", UniformInit({4 * hidden_size}, bound));
}

std::pair<Tensor, Tensor> LstmCell::Step(const Tensor& x, const Tensor& h,
                                         const Tensor& c) const {
  CONFORMER_CHECK_EQ(x.size(-1), input_size_);
  const int64_t hs = hidden_size_;
  Tensor gates = Add(Add(MatMul(x, w_ih_), b_ih_),
                     Add(MatMul(h, w_hh_), b_hh_));  // [B, 4h]
  Tensor i = Sigmoid(Slice(gates, 1, 0, hs));
  Tensor f = Sigmoid(Slice(gates, 1, hs, 2 * hs));
  Tensor g = Tanh(Slice(gates, 1, 2 * hs, 3 * hs));
  Tensor o = Sigmoid(Slice(gates, 1, 3 * hs, 4 * hs));
  Tensor c_next = Add(Mul(f, c), Mul(i, g));
  Tensor h_next = Mul(o, Tanh(c_next));
  return {h_next, c_next};
}

Lstm::Lstm(int64_t input_size, int64_t hidden_size, int64_t num_layers)
    : hidden_size_(hidden_size) {
  CONFORMER_CHECK_GE(num_layers, 1);
  for (int64_t l = 0; l < num_layers; ++l) {
    const int64_t in = l == 0 ? input_size : hidden_size;
    cells_.push_back(RegisterModule(
        "layer" + std::to_string(l), std::make_shared<LstmCell>(in, hidden_size)));
  }
}

LstmOutput Lstm::Forward(const Tensor& x) const {
  CONFORMER_CHECK_EQ(x.dim(), 3) << "Lstm expects [B, L, input]";
  const int64_t batch = x.size(0);
  const int64_t length = x.size(1);

  std::vector<Tensor> h(cells_.size());
  std::vector<Tensor> c(cells_.size());
  for (size_t l = 0; l < cells_.size(); ++l) {
    h[l] = Tensor::Zeros({batch, hidden_size_});
    c[l] = Tensor::Zeros({batch, hidden_size_});
  }

  std::vector<Tensor> outputs;
  outputs.reserve(length);
  for (int64_t t = 0; t < length; ++t) {
    Tensor input = Squeeze(Slice(x, 1, t, t + 1), 1);
    for (size_t l = 0; l < cells_.size(); ++l) {
      auto [h_next, c_next] = cells_[l]->Step(input, h[l], c[l]);
      h[l] = h_next;
      c[l] = c_next;
      input = h[l];
    }
    outputs.push_back(input);
  }

  LstmOutput out;
  out.output = StackTensors(outputs, 1);
  out.last_hidden = StackTensors(h, 0);
  out.last_cell = StackTensors(c, 0);
  return out;
}

}  // namespace conformer::nn
