#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

namespace conformer::nn {

namespace {
constexpr uint32_t kMagic = 0xC04F04E8;  // "Conformer" checkpoint marker.
}  // namespace

Status SaveModule(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);

  const auto named = module.NamedParameters();
  const uint32_t magic = kMagic;
  const uint64_t count = named.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, tensor] : named) {
    const uint64_t name_len = name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t rank = tensor.shape().size();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : tensor.shape()) {
      const int64_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadModule(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);

  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in || magic != kMagic) {
    return Status::InvalidArgument("not a conformer checkpoint: " + path);
  }
  in.read(reinterpret_cast<char*>(&count), sizeof(count));

  std::map<std::string, Tensor> by_name;
  for (auto& [name, tensor] : module->NamedParameters()) {
    by_name.emplace(name, tensor);
  }

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > 4096) {
      return Status::IOError("corrupt checkpoint (name length): " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in || rank > 16) {
      return Status::IOError("corrupt checkpoint (rank): " + path);
    }
    Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) {
      in.read(reinterpret_cast<char*>(&shape[d]), sizeof(int64_t));
    }
    const int64_t numel = NumElements(shape);
    std::vector<float> values(numel);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in) return Status::IOError("corrupt checkpoint (data): " + path);

    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound("parameter '" + name + "' not in module");
    }
    if (it->second.shape() != shape) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " + ShapeToString(shape) +
          " vs module " + ShapeToString(it->second.shape()));
    }
    it->second.CopyDataFrom(Tensor::FromVector(std::move(values), shape));
  }
  return Status::OK();
}

}  // namespace conformer::nn
