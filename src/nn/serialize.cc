#include "nn/serialize.h"

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/binary_io.h"

namespace conformer::nn {

namespace {
constexpr uint32_t kMagic = 0xC04F04E8;  // "Conformer" checkpoint marker.
constexpr uint64_t kMaxNameLen = 4096;
constexpr uint64_t kMaxRank = 16;
}  // namespace

Status SerializeModule(const Module& module, std::ostream& out) {
  const auto named = module.NamedParameters();
  io::WriteU32(out, kMagic);
  io::WriteU64(out, named.size());
  for (const auto& [name, tensor] : named) {
    io::WriteString(out, name);
    io::WriteU64(out, tensor.shape().size());
    for (int64_t d : tensor.shape()) io::WriteI64(out, d);
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  if (!out) return Status::IOError("module serialization write failed");
  return Status::OK();
}

Status DeserializeModule(Module* module, std::istream& in,
                         const std::string& context, uint64_t byte_limit) {
  uint32_t magic = 0;
  Status st = io::ReadU32(in, &magic, context + ": magic");
  if (!st.ok() || magic != kMagic) {
    return Status::InvalidArgument("not a conformer checkpoint: " + context);
  }
  uint64_t count = 0;
  CONFORMER_RETURN_IF_ERROR(io::ReadU64(in, &count, context + ": count"));

  std::map<std::string, Tensor> by_name;
  for (auto& [name, tensor] : module->NamedParameters()) {
    by_name.emplace(name, tensor);
  }
  if (count > by_name.size()) {
    return Status::InvalidArgument(
        context + ": file claims " + std::to_string(count) +
        " parameters but the module has only " +
        std::to_string(by_name.size()));
  }

  std::set<std::string> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    CONFORMER_RETURN_IF_ERROR(io::ReadString(
        in, &name, context + ": parameter name", kMaxNameLen));
    uint64_t rank = 0;
    CONFORMER_RETURN_IF_ERROR(
        io::ReadU64(in, &rank, context + ": rank of '" + name + "'"));
    if (rank > kMaxRank) {
      return Status::IOError(context + ": corrupt rank " +
                             std::to_string(rank) + " for '" + name + "'");
    }
    Shape shape(rank);
    int64_t numel = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      CONFORMER_RETURN_IF_ERROR(
          io::ReadI64(in, &shape[d], context + ": shape of '" + name + "'"));
      if (shape[d] < 0) {
        return Status::IOError(context + ": negative dim " +
                               std::to_string(shape[d]) + " for '" + name +
                               "'");
      }
      if (shape[d] > 0 &&
          numel > std::numeric_limits<int64_t>::max() / shape[d]) {
        return Status::IOError(context + ": shape overflow for '" + name +
                               "': " + ShapeToString(shape));
      }
      numel *= shape[d];
    }
    const uint64_t bytes = static_cast<uint64_t>(numel) * sizeof(float);
    if (bytes > byte_limit) {
      return Status::IOError(context + ": tensor '" + name + "' claims " +
                             std::to_string(bytes) +
                             " bytes, beyond the stream's " +
                             std::to_string(byte_limit));
    }
    if (!loaded.insert(name).second) {
      return Status::InvalidArgument(context + ": duplicate parameter '" +
                                     name + "'");
    }
    std::vector<float> values(numel);
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(bytes));
    if (!in) {
      return Status::IOError(context + ": truncated data for '" + name + "'");
    }

    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::NotFound(context + ": parameter '" + name +
                              "' not in module");
    }
    if (it->second.shape() != shape) {
      return Status::InvalidArgument(
          context + ": shape mismatch for '" + name + "': file " +
          ShapeToString(shape) + " vs module " +
          ShapeToString(it->second.shape()));
    }
    it->second.CopyDataFrom(Tensor::FromVector(std::move(values), shape));
  }

  for (const auto& [name, tensor] : by_name) {
    (void)tensor;
    if (loaded.count(name) == 0) {
      return Status::InvalidArgument(
          context + ": file leaves module parameter '" + name + "' unset");
    }
  }
  return Status::OK();
}

Status SaveModule(const Module& module, const std::string& path) {
  std::ostringstream out(std::ios::binary);
  CONFORMER_RETURN_IF_ERROR(SerializeModule(module, out));
  return io::AtomicWriteFile(path, out.str());
}

Status LoadModule(Module* module, const std::string& path) {
  Result<std::string> contents = io::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::istringstream in(contents.value(), std::ios::binary);
  return DeserializeModule(module, in, path, contents.value().size());
}

}  // namespace conformer::nn
