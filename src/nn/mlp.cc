#include "nn/mlp.h"

#include "tensor/ops.h"

namespace conformer::nn {

Tensor ApplyActivation(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kGelu:
      return Gelu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kNone:
      return x;
  }
  CONFORMER_CHECK(false) << "unknown activation";
  return x;
}

Mlp::Mlp(const std::vector<int64_t>& sizes, Activation activation)
    : activation_(activation) {
  CONFORMER_CHECK_GE(sizes.size(), 2u) << "Mlp needs at least in/out sizes";
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.push_back(
        RegisterModule("fc" + std::to_string(i),
                       std::make_shared<Linear>(sizes[i], sizes[i + 1])));
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = ApplyActivation(h, activation_);
  }
  return h;
}

}  // namespace conformer::nn
