// Gated recurrent unit (multi-layer). The paper's SIRN and RNN baselines are
// all built on GRUs (Section V-A3: "All of the RNN blocks in Conformer are
// implemented with GRU").

#ifndef CONFORMER_NN_GRU_H_
#define CONFORMER_NN_GRU_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::nn {

/// \brief Output of a GRU forward pass.
struct GruOutput {
  Tensor output;       ///< [B, L, hidden] — top layer states at every step.
  Tensor last_hidden;  ///< [num_layers, B, hidden] — final state per layer.
  Tensor first_hidden; ///< [num_layers, B, hidden] — state after step 1
                       ///< (the "h_1" fed to the normalizing flow, Table IX).
};

/// \brief A single GRU layer (torch gate layout r, z, n).
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size);

  /// One step: x [B, input], h [B, hidden] -> new h [B, hidden].
  Tensor Step(const Tensor& x, const Tensor& h) const;

  /// Input-side gate pre-activations for a whole sequence in one matmul:
  /// x [B, L, input] -> [B, L, 3*hidden]. StepPrecomputed consumes slices
  /// of this, which keeps the per-step work to the recurrent matmul only.
  Tensor InputGates(const Tensor& x) const;

  /// One step given this step's precomputed input gates gi [B, 3*hidden].
  Tensor StepPrecomputed(const Tensor& gi, const Tensor& h) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_ih_;  // [input, 3*hidden]
  Tensor w_hh_;  // [hidden, 3*hidden]
  Tensor b_ih_;  // [3*hidden]
  Tensor b_hh_;  // [3*hidden]
};

/// \brief Stacked GRU over a [B, L, input] sequence.
class Gru : public Module {
 public:
  Gru(int64_t input_size, int64_t hidden_size, int64_t num_layers = 1);

  /// Runs the full sequence from a zero initial state.
  GruOutput Forward(const Tensor& x) const;

  int64_t hidden_size() const { return hidden_size_; }
  int64_t num_layers() const { return static_cast<int64_t>(cells_.size()); }

 private:
  int64_t hidden_size_;
  std::vector<std::shared_ptr<GruCell>> cells_;
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_GRU_H_
