// Long short-term memory layer (Hochreiter & Schmidhuber), the other
// recurrent unit the paper's related work leans on. Interface mirrors Gru.

#ifndef CONFORMER_NN_LSTM_H_
#define CONFORMER_NN_LSTM_H_

#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::nn {

/// \brief Output of an LSTM forward pass.
struct LstmOutput {
  Tensor output;       ///< [B, L, hidden] — top-layer hidden states.
  Tensor last_hidden;  ///< [num_layers, B, hidden].
  Tensor last_cell;    ///< [num_layers, B, hidden].
};

/// \brief One LSTM layer (torch gate layout i, f, g, o).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size);

  /// One step; returns (h', c').
  std::pair<Tensor, Tensor> Step(const Tensor& x, const Tensor& h,
                                 const Tensor& c) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_ih_;  // [input, 4*hidden]
  Tensor w_hh_;  // [hidden, 4*hidden]
  Tensor b_ih_;  // [4*hidden]
  Tensor b_hh_;  // [4*hidden]
};

/// \brief Stacked LSTM over a [B, L, input] sequence.
class Lstm : public Module {
 public:
  Lstm(int64_t input_size, int64_t hidden_size, int64_t num_layers = 1);

  LstmOutput Forward(const Tensor& x) const;

  int64_t hidden_size() const { return hidden_size_; }
  int64_t num_layers() const { return static_cast<int64_t>(cells_.size()); }

 private:
  int64_t hidden_size_;
  std::vector<std::shared_ptr<LstmCell>> cells_;
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_LSTM_H_
