#include "nn/conv1d.h"

#include <cmath>

#include "nn/init.h"

namespace conformer::nn {

Conv1dLayer::Conv1dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel, int64_t padding, PadMode mode,
                         bool bias, int64_t dilation, int64_t stride)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      padding_(padding),
      mode_(mode),
      dilation_(dilation),
      stride_(stride) {
  const int64_t fan_in = in_channels * kernel;
  weight_ = RegisterParameter(
      "weight", KaimingUniform({out_channels, in_channels, kernel}, fan_in));
  if (bias) {
    const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
    bias_ = RegisterParameter("bias", UniformInit({out_channels}, bound));
  }
}

Tensor Conv1dLayer::Forward(const Tensor& x) const {
  return Conv1d(x, weight_, bias_, padding_, mode_, dilation_, stride_);
}

}  // namespace conformer::nn
