// 1-D convolution layer.

#ifndef CONFORMER_NN_CONV1D_H_
#define CONFORMER_NN_CONV1D_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::nn {

/// \brief Conv over the time axis: input [B, Cin, L] -> [B, Cout, L'].
///
/// The "same"-padding circular mode matches the token embedding used by
/// Informer-style models; Conformer's Eq. (5) value embedding uses it too.
class Conv1dLayer : public Module {
 public:
  Conv1dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
              int64_t padding, PadMode mode = PadMode::kZeros,
              bool bias = true, int64_t dilation = 1, int64_t stride = 1);

  Tensor Forward(const Tensor& x) const;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t padding_;
  PadMode mode_;
  int64_t dilation_;
  int64_t stride_;
  Tensor weight_;  // [Cout, Cin, K]
  Tensor bias_;    // [Cout] or undefined
};

}  // namespace conformer::nn

#endif  // CONFORMER_NN_CONV1D_H_
