// Model checkpointing: saves / loads a module's named parameters to a simple
// binary format (magic, count, then per-parameter name + shape + float data).
//
// The stream-based entry points let the training checkpoint embed the same
// format as one CRC-protected section (see train/checkpoint.h); the
// file-based ones add crash-safe atomic writes.

#ifndef CONFORMER_NN_SERIALIZE_H_
#define CONFORMER_NN_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace conformer::nn {

/// Writes every named parameter of `module` to `out`.
Status SerializeModule(const Module& module, std::ostream& out);

/// Loads parameters by name into `module`, validating the stream after
/// every field. Fails on: truncation, negative or overflowing shape dims,
/// tensors larger than `byte_limit`, duplicate parameter names, names
/// missing from the module, shape mismatches, and files that leave any
/// module parameter unset. `context` prefixes error messages (a path or
/// section name).
Status DeserializeModule(Module* module, std::istream& in,
                         const std::string& context, uint64_t byte_limit);

/// Writes every named parameter of `module` to `path` atomically
/// (temp file + fsync + rename): a crash mid-save leaves the previous
/// file intact.
Status SaveModule(const Module& module, const std::string& path);

/// Loads parameters by name into `module` from `path`; every module
/// parameter must be present in the file (see DeserializeModule).
Status LoadModule(Module* module, const std::string& path);

}  // namespace conformer::nn

#endif  // CONFORMER_NN_SERIALIZE_H_
