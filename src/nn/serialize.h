// Model checkpointing: saves / loads a module's named parameters to a simple
// binary format (magic, count, then per-parameter name + shape + float data).

#ifndef CONFORMER_NN_SERIALIZE_H_
#define CONFORMER_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace conformer::nn {

/// Writes every named parameter of `module` to `path`.
Status SaveModule(const Module& module, const std::string& path);

/// Loads parameters by name into `module`. Fails if a stored name is missing
/// from the module or shapes differ; parameters absent from the file are
/// left untouched.
Status LoadModule(Module* module, const std::string& path);

}  // namespace conformer::nn

#endif  // CONFORMER_NN_SERIALIZE_H_
