#include "nn/linear.h"

#include <cmath>

#include "nn/init.h"

namespace conformer::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ = RegisterParameter(
      "weight", XavierUniform({in_features, out_features}, in_features,
                              out_features));
  if (bias) {
    const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
    bias_ = RegisterParameter("bias", UniformInit({out_features}, bound));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  CONFORMER_CHECK_EQ(x.size(-1), in_features_)
      << "Linear expects trailing dim " << in_features_;
  // Flatten leading dims so MatMul sees rank 2, then restore.
  Shape out_shape = x.shape();
  out_shape.back() = out_features_;
  Tensor flat = Reshape(x, {-1, in_features_});
  Tensor out = MatMul(flat, weight_);
  if (bias_.defined()) out = Add(out, bias_);
  return Reshape(out, std::move(out_shape));
}

}  // namespace conformer::nn
