#include "nn/conv2d.h"

#include <cmath>

#include "nn/init.h"

namespace conformer::nn {

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel_h, int64_t kernel_w, int64_t padding,
                         bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      padding_(padding) {
  const int64_t fan_in = in_channels * kernel_h * kernel_w;
  weight_ = RegisterParameter(
      "weight",
      KaimingUniform({out_channels, in_channels, kernel_h, kernel_w}, fan_in));
  if (bias) {
    const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
    bias_ = RegisterParameter("bias", UniformInit({out_channels}, bound));
  }
}

Tensor Conv2dLayer::Forward(const Tensor& x) const {
  return Conv2d(x, weight_, bias_, padding_, padding_);
}

}  // namespace conformer::nn
