#include "nn/embedding.h"

#include <cmath>

#include "nn/init.h"
#include "tensor/ops.h"

namespace conformer::nn {

Embedding::Embedding(int64_t num_embeddings, int64_t dim)
    : num_embeddings_(num_embeddings), dim_(dim) {
  weight_ = RegisterParameter(
      "weight", Tensor::Randn({num_embeddings, dim}) * 0.02f);
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  for (int64_t i : indices) {
    CONFORMER_CHECK(i >= 0 && i < num_embeddings_)
        << "embedding index out of range";
  }
  return IndexSelect(weight_, 0, indices);
}

TokenEmbedding::TokenEmbedding(int64_t c_in, int64_t d_model) {
  conv_ = RegisterModule(
      "conv", std::make_shared<Conv1dLayer>(c_in, d_model, /*kernel=*/3,
                                            /*padding=*/1, PadMode::kCircular,
                                            /*bias=*/false));
}

Tensor TokenEmbedding::Forward(const Tensor& x) const {
  CONFORMER_CHECK_EQ(x.dim(), 3) << "TokenEmbedding expects [B, L, c_in]";
  Tensor channels_first = Permute(x, {0, 2, 1});
  Tensor out = conv_->Forward(channels_first);
  return Permute(out, {0, 2, 1});
}

PositionalEncoding::PositionalEncoding(int64_t d_model, int64_t max_len) {
  std::vector<float> table(max_len * d_model, 0.0f);
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < d_model; i += 2) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, static_cast<double>(i) / static_cast<double>(d_model));
      table[pos * d_model + i] = static_cast<float>(std::sin(angle));
      if (i + 1 < d_model) {
        table[pos * d_model + i + 1] = static_cast<float>(std::cos(angle));
      }
    }
  }
  table_ = Tensor::FromVector(std::move(table), {max_len, d_model});
}

Tensor PositionalEncoding::Forward(int64_t length) const {
  CONFORMER_CHECK_LE(length, table_.size(0)) << "sequence exceeds max_len";
  return Unsqueeze(Slice(table_, 0, 0, length), 0);
}

TimeFeatureEmbedding::TimeFeatureEmbedding(int64_t n_features, int64_t d_model) {
  proj_ = RegisterModule("proj",
                         std::make_shared<Linear>(n_features, d_model,
                                                  /*bias=*/false));
}

Tensor TimeFeatureEmbedding::Forward(const Tensor& marks) const {
  return proj_->Forward(marks);
}

DataEmbedding::DataEmbedding(int64_t c_in, int64_t n_time_features,
                             int64_t d_model, float dropout,
                             bool use_positional)
    : use_positional_(use_positional) {
  value_ = RegisterModule("value", std::make_shared<TokenEmbedding>(c_in, d_model));
  positional_ = RegisterModule("positional",
                               std::make_shared<PositionalEncoding>(d_model));
  temporal_ = RegisterModule(
      "temporal",
      std::make_shared<TimeFeatureEmbedding>(n_time_features, d_model));
  dropout_ = RegisterModule("dropout", std::make_shared<Dropout>(dropout));
}

Tensor DataEmbedding::Forward(const Tensor& x, const Tensor& marks) const {
  Tensor out = Add(value_->Forward(x), temporal_->Forward(marks));
  if (use_positional_) out = Add(out, positional_->Forward(x.size(1)));
  return dropout_->Forward(out);
}

}  // namespace conformer::nn
