// Conformer's normalizing-flow forecasting head (Section IV-C, Eqs. 15-17):
// a chain of conditional affine transformations seeded from the encoder RNN
// hidden state and cascaded through the decoder RNN hidden state, generating
// the target series directly ("generative fashion").
//
// Table VII's ablation variants — replacing the flow outcome z_t by z_e, z_d
// or z_0 — are selected with FlowVariant.

#ifndef CONFORMER_FLOW_NORMALIZING_FLOW_H_
#define CONFORMER_FLOW_NORMALIZING_FLOW_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::flow {

/// \brief Which latent feeds the output head (Table VII).
enum class FlowVariant {
  kFull,  ///< z_T after all transformations (Conformer).
  kZe,    ///< Encoder Gaussian head only (Eq. 15).
  kZd,    ///< Decoder Gaussian head only (Eq. 15 with h_d).
  kZeZd,  ///< Flow initialisation z_0 only (Eq. 16).
  kNone,  ///< Flow disabled (Conformer_-NF).
};

const char* FlowVariantName(FlowVariant variant);

/// \brief Conditional affine normalizing flow over hidden states.
class NormalizingFlow : public nn::Module {
 public:
  /// `hidden` is the dimension of h_e / h_d (and of the latent z);
  /// `num_transforms` is T in Eq. (17) (paper default 2).
  NormalizingFlow(int64_t hidden, int64_t num_transforms,
                  FlowVariant variant = FlowVariant::kFull);

  /// Produces the latent z for the output head. h_e, h_d: [B, hidden].
  /// `sample` draws epsilon ~ N(0, I); when false epsilon = 0 (the mean
  /// path used for deterministic evaluation).
  Tensor Forward(const Tensor& h_e, const Tensor& h_d, bool sample,
                 Rng* rng = nullptr) const;

  FlowVariant variant() const { return variant_; }
  int64_t num_transforms() const { return num_transforms_; }

 private:
  int64_t hidden_;
  int64_t num_transforms_;
  FlowVariant variant_;
  std::shared_ptr<nn::Linear> enc_mu_;
  std::shared_ptr<nn::Linear> enc_sigma_;
  std::shared_ptr<nn::Linear> dec_mu_;
  std::shared_ptr<nn::Linear> dec_sigma_;
  // Per-transform conditioners on [h_d, z_{t-1}].
  std::vector<std::shared_ptr<nn::Linear>> step_mu_;
  std::vector<std::shared_ptr<nn::Linear>> step_sigma_;
};

}  // namespace conformer::flow

#endif  // CONFORMER_FLOW_NORMALIZING_FLOW_H_
