#include "flow/gaussian_head.h"

#include <algorithm>
#include <cmath>
#include "util/profiler.h"

namespace conformer::flow {

FlowOutputHead::FlowOutputHead(int64_t hidden, int64_t pred_len, int64_t dims)
    : pred_len_(pred_len), dims_(dims) {
  proj_ = RegisterModule(
      "proj", std::make_shared<nn::Linear>(hidden, pred_len * dims));
}

Tensor FlowOutputHead::Forward(const Tensor& z) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "gaussian_head");
  const int64_t batch = z.size(0);
  return Reshape(proj_->Forward(z), {batch, pred_len_, dims_});
}

UncertaintyBand SummarizeSamples(const std::vector<Tensor>& samples,
                                 double coverage) {
  CONFORMER_CHECK(!samples.empty());
  CONFORMER_CHECK(coverage > 0.0 && coverage < 1.0);
  const int64_t s = static_cast<int64_t>(samples.size());
  const int64_t n = samples[0].numel();
  const Shape shape = samples[0].shape();

  std::vector<float> mean(n, 0.0f);
  for (const Tensor& t : samples) {
    CONFORMER_CHECK(t.shape() == shape);
    const float* d = t.data();
    for (int64_t i = 0; i < n; ++i) mean[i] += d[i];
  }
  for (float& m : mean) m /= static_cast<float>(s);

  std::vector<float> lower(n);
  std::vector<float> upper(n);
  std::vector<float> column(s);
  const double alpha = (1.0 - coverage) / 2.0;
  const int64_t lo_idx = std::clamp<int64_t>(
      static_cast<int64_t>(std::floor(alpha * (s - 1))), 0, s - 1);
  const int64_t hi_idx = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil((1.0 - alpha) * (s - 1))), 0, s - 1);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < s; ++j) column[j] = samples[j].data()[i];
    std::sort(column.begin(), column.end());
    lower[i] = column[lo_idx];
    upper[i] = column[hi_idx];
  }

  UncertaintyBand band;
  band.mean = Tensor::FromVector(std::move(mean), shape);
  band.lower = Tensor::FromVector(std::move(lower), shape);
  band.upper = Tensor::FromVector(std::move(upper), shape);
  return band;
}

}  // namespace conformer::flow
