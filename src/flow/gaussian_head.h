// Output head decoding the flow latent into the forecast block, plus the
// multi-sample uncertainty summary used for Figs. 6-7.

#ifndef CONFORMER_FLOW_GAUSSIAN_HEAD_H_
#define CONFORMER_FLOW_GAUSSIAN_HEAD_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace conformer::flow {

/// \brief Projects a latent z [B, hidden] to a series block
/// [B, pred_len, dims].
class FlowOutputHead : public nn::Module {
 public:
  FlowOutputHead(int64_t hidden, int64_t pred_len, int64_t dims);

  Tensor Forward(const Tensor& z) const;

 private:
  int64_t pred_len_;
  int64_t dims_;
  std::shared_ptr<nn::Linear> proj_;
};

/// \brief Empirical mean and symmetric quantile band of a set of sampled
/// forecasts, all [S, B, pred_len, dims] flattened into a vector of tensors.
struct UncertaintyBand {
  Tensor mean;   ///< [B, pred_len, dims]
  Tensor lower;  ///< coverage-quantile lower bound
  Tensor upper;  ///< coverage-quantile upper bound
};

/// `coverage` in (0, 1), e.g. 0.9 for a 90% band.
UncertaintyBand SummarizeSamples(const std::vector<Tensor>& samples,
                                 double coverage);

}  // namespace conformer::flow

#endif  // CONFORMER_FLOW_GAUSSIAN_HEAD_H_
