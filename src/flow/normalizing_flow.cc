#include "flow/normalizing_flow.h"
#include "util/profiler.h"

namespace conformer::flow {

const char* FlowVariantName(FlowVariant variant) {
  switch (variant) {
    case FlowVariant::kFull:
      return "full";
    case FlowVariant::kZe:
      return "z_e";
    case FlowVariant::kZd:
      return "z_d";
    case FlowVariant::kZeZd:
      return "z_e+z_d";
    case FlowVariant::kNone:
      return "none";
  }
  return "?";
}

NormalizingFlow::NormalizingFlow(int64_t hidden, int64_t num_transforms,
                                 FlowVariant variant)
    : hidden_(hidden), num_transforms_(num_transforms), variant_(variant) {
  CONFORMER_CHECK_GE(num_transforms, 0);
  enc_mu_ = RegisterModule("enc_mu", std::make_shared<nn::Linear>(hidden, hidden));
  enc_sigma_ =
      RegisterModule("enc_sigma", std::make_shared<nn::Linear>(hidden, hidden));
  dec_mu_ = RegisterModule("dec_mu", std::make_shared<nn::Linear>(hidden, hidden));
  dec_sigma_ =
      RegisterModule("dec_sigma", std::make_shared<nn::Linear>(hidden, hidden));
  for (int64_t t = 0; t < num_transforms; ++t) {
    step_mu_.push_back(RegisterModule(
        "step_mu" + std::to_string(t),
        std::make_shared<nn::Linear>(2 * hidden, hidden)));
    step_sigma_.push_back(RegisterModule(
        "step_sigma" + std::to_string(t),
        std::make_shared<nn::Linear>(2 * hidden, hidden)));
  }
}

Tensor NormalizingFlow::Forward(const Tensor& h_e, const Tensor& h_d,
                                bool sample, Rng* rng) const {
  CONFORMER_PROFILE_SCOPE_CAT("model", "flow");
  CONFORMER_CHECK(variant_ != FlowVariant::kNone)
      << "flow is disabled; caller must not invoke it";
  CONFORMER_CHECK_EQ(h_e.size(-1), hidden_);
  CONFORMER_CHECK_EQ(h_d.size(-1), hidden_);

  // Eq. (15): z_e = mu_e(h_e) + sigma_e(h_e) * eps. Softplus keeps the
  // scale positive; eps = 0 gives the deterministic mean path.
  Tensor eps = sample ? Tensor::Randn(h_e.shape(), rng)
                      : Tensor::Zeros(h_e.shape());
  Tensor z_e =
      Add(enc_mu_->Forward(h_e), Mul(Softplus(enc_sigma_->Forward(h_e)), eps));
  if (variant_ == FlowVariant::kZe) return z_e;

  if (variant_ == FlowVariant::kZd) {
    // Eq. (15) applied to the decoder hidden state.
    Tensor eps_d = sample ? Tensor::Randn(h_d.shape(), rng)
                          : Tensor::Zeros(h_d.shape());
    return Add(dec_mu_->Forward(h_d),
               Mul(Softplus(dec_sigma_->Forward(h_d)), eps_d));
  }

  // Eq. (16): z_0 = mu_d(h_d) + sigma_d(h_d) * z_e.
  Tensor z = Add(dec_mu_->Forward(h_d),
                 Mul(Softplus(dec_sigma_->Forward(h_d)), z_e));
  if (variant_ == FlowVariant::kZeZd) return z;

  // Eq. (17): z_t = mu_t(h_d, z_{t-1}) + sigma_t(h_d, z_{t-1}) * z_{t-1}.
  for (int64_t t = 0; t < num_transforms_; ++t) {
    Tensor joint = Concat({h_d, z}, -1);
    z = Add(step_mu_[t]->Forward(joint),
            Mul(Softplus(step_sigma_[t]->Forward(joint)), z));
  }
  return z;
}

}  // namespace conformer::flow
