#include "tensor/alloc_stats.h"

#include <algorithm>

namespace conformer {

namespace {
AllocStats g_stats;
}  // namespace

AllocStats GetAllocStats() { return g_stats; }

void ResetAllocPeak() {
  g_stats.peak_bytes = g_stats.current_bytes;
  g_stats.total_allocs = 0;
}

namespace internal {

void RecordAlloc(int64_t bytes) {
  g_stats.current_bytes += bytes;
  g_stats.peak_bytes = std::max(g_stats.peak_bytes, g_stats.current_bytes);
  g_stats.total_allocs += 1;
}

void RecordFree(int64_t bytes) { g_stats.current_bytes -= bytes; }

}  // namespace internal
}  // namespace conformer
