#include "tensor/alloc_stats.h"

#include <atomic>

namespace conformer {

namespace {
// Atomics rather than a struct behind a mutex: RecordAlloc sits on the
// constructor path of every TensorImpl, and the serving dispatcher thread
// allocates concurrently with callers (tsan-verified). Relaxed ordering is
// enough — the counters are monotonic accounting, not synchronization.
std::atomic<int64_t> g_current_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_total_allocs{0};
}  // namespace

AllocStats GetAllocStats() {
  AllocStats stats;
  stats.current_bytes = g_current_bytes.load(std::memory_order_relaxed);
  stats.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  stats.total_allocs = g_total_allocs.load(std::memory_order_relaxed);
  return stats;
}

void ResetAllocPeak() {
  g_peak_bytes.store(g_current_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  g_total_allocs.store(0, std::memory_order_relaxed);
}

namespace internal {

void RecordAlloc(int64_t bytes) {
  const int64_t current =
      g_current_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (current > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, current,
                                             std::memory_order_relaxed)) {
  }
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
}

void RecordFree(int64_t bytes) {
  g_current_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace internal
}  // namespace conformer
