#include "tensor/kernels.h"

#include <algorithm>
#include <cstring>

#include "tensor/vec/vec.h"
#include "util/profiler.h"

namespace conformer::kernels {

namespace {

// Rows per Gemm chunk so one chunk does at least kGrainGemmMacs MACs.
int64_t GemmRowGrain(int64_t n, int64_t k) {
  const int64_t macs_per_row = std::max<int64_t>(1, n * k);
  return std::max<int64_t>(1, kGrainGemmMacs / macs_per_row);
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, bool accumulate) {
  CONFORMER_PROFILE_SCOPE_BYTES(
      "kernel", "Gemm",
      static_cast<int64_t>(sizeof(float)) * (m * k + k * n + m * n));
  // Explicit zero-size early-outs: empty output writes nothing; an empty
  // inner dimension makes the product a zero matrix.
  if (m <= 0 || n <= 0) return;
  if (!accumulate) std::memset(c, 0, sizeof(float) * m * n);
  if (k <= 0) return;

  // Row-blocked over the output: each chunk owns rows [i0, i1), so every
  // c element is written by exactly one thread and accumulates over p in
  // sequential order — bitwise deterministic for any thread count.
  const int64_t grain = GemmRowGrain(n, k);
  if (!trans_a && !trans_b) {
    // a: m x k, b: k x n
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t p = 0; p < k; ++p) {
          const float aip = a[i * k + p];
          if (aip == 0.0f) continue;
          vec::MulAddN(b + p * n, aip, c + i * n, n);
        }
      }
    });
  } else if (!trans_a && trans_b) {
    // a: m x k, b: n x k. The dot kernel accumulates into 8 logical bins
    // folded in a fixed order (docs/SIMD.md), so the sum order differs from
    // a sequential loop but is identical at every SIMD level & thread count.
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        for (int64_t j = 0; j < n; ++j) {
          c[i * n + j] += vec::DotN(arow, b + j * k, k);
        }
      }
    });
  } else if (trans_a && !trans_b) {
    // a: k x m, b: k x n. The p-loop stays outermost within a row block for
    // unit-stride access to b; the per-element order over p is unchanged.
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      for (int64_t p = 0; p < k; ++p) {
        const float* arow = a + p * m;
        const float* brow = b + p * n;
        for (int64_t i = i0; i < i1; ++i) {
          const float api = arow[i];
          if (api == 0.0f) continue;
          vec::MulAddN(brow, api, c + i * n, n);
        }
      }
    });
  } else {
    // a: k x m, b: n x k
    ParallelFor(0, m, grain, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
          c[i * n + j] += acc;
        }
      }
    });
  }
}

void Axpy(int64_t n, float alpha, const float* x, float* out) {
  ParallelFor(0, n, kGrainElementwise, [&](int64_t cb, int64_t ce) {
    vec::MulAddN(x + cb, alpha, out + cb, ce - cb);
  });
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t ad = i < static_cast<int64_t>(rank - a.size())
                           ? 1
                           : a[i - (rank - a.size())];
    const int64_t bd = i < static_cast<int64_t>(rank - b.size())
                           ? 1
                           : b[i - (rank - b.size())];
    CONFORMER_CHECK(ad == bd || ad == 1 || bd == 1)
        << "cannot broadcast " << ShapeToString(a) << " with "
        << ShapeToString(b);
    out[i] = std::max(ad, bd);
  }
  return out;
}

std::vector<int64_t> BroadcastStrides(const Shape& from, const Shape& to) {
  const int64_t rank = static_cast<int64_t>(to.size());
  const int64_t offset = rank - static_cast<int64_t>(from.size());
  CONFORMER_CHECK_GE(offset, 0);
  std::vector<int64_t> from_strides = ContiguousStrides(from);
  std::vector<int64_t> strides(rank, 0);
  for (int64_t i = 0; i < static_cast<int64_t>(from.size()); ++i) {
    const int64_t d = i + offset;
    if (from[i] == to[d]) {
      strides[d] = from_strides[i];
    } else {
      CONFORMER_CHECK_EQ(from[i], 1)
          << "shape " << ShapeToString(from) << " does not broadcast to "
          << ShapeToString(to);
      strides[d] = 0;
    }
  }
  return strides;
}

void ReduceGradToShape(const float* grad, const Shape& grad_shape, float* out,
                       const Shape& target_shape) {
  if (grad_shape == target_shape) {
    Axpy(NumElements(grad_shape), 1.0f, grad, out);
    return;
  }
  const std::vector<int64_t> strides = BroadcastStrides(target_shape, grad_shape);
  const int64_t rank = static_cast<int64_t>(grad_shape.size());
  const int64_t n = NumElements(grad_shape);

  auto reduce_range = [&](int64_t cb, int64_t ce) {
    std::vector<int64_t> index(rank, 0);
    int64_t out_off = 0;
    int64_t rem = cb;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % grad_shape[d];
      rem /= grad_shape[d];
      out_off += index[d] * strides[d];
    }
    for (int64_t i = cb; i < ce; ++i) {
      out[out_off] += grad[i];
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        out_off += strides[d];
        if (index[d] < grad_shape[d]) break;
        index[d] = 0;
        out_off -= strides[d] * grad_shape[d];
      }
    }
  };

  // The accumulation targets overlap across the reduced (stride-0) dims, so
  // chunks may only split the leading dimension when it is NOT reduced: then
  // each leading index owns a disjoint slice of `out`, and per-element
  // accumulation order is unchanged — bitwise identical at any thread count.
  const int64_t block = rank > 0 ? n / grad_shape[0] : n;
  if (rank > 0 && strides[0] > 0 && grad_shape[0] > 1 && block > 0) {
    const int64_t row_grain =
        std::max<int64_t>(1, kGrainStrided / block);
    ParallelFor(0, grad_shape[0], row_grain, [&](int64_t r0, int64_t r1) {
      reduce_range(r0 * block, r1 * block);
    });
  } else {
    reduce_range(0, n);
  }
}

}  // namespace conformer::kernels
