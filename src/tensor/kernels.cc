#include "tensor/kernels.h"

#include <cstring>

namespace conformer::kernels {

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * m * n);
  // Row-major loops ordered for unit-stride inner access where possible.
  if (!trans_a && !trans_b) {
    // a: m x k, b: k x n
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float aip = a[i * k + p];
        if (aip == 0.0f) continue;
        const float* brow = b + p * n;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // a: m x k, b: n x k
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        c[i * n + j] += acc;
      }
    }
  } else if (trans_a && !trans_b) {
    // a: k x m, b: k x n
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * m;
      const float* brow = b + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float api = arow[i];
        if (api == 0.0f) continue;
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += api * brow[j];
      }
    }
  } else {
    // a: k x m, b: n x k
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
        c[i * n + j] += acc;
      }
    }
  }
}

void Axpy(int64_t n, float alpha, const float* x, float* out) {
  for (int64_t i = 0; i < n; ++i) out[i] += alpha * x[i];
}

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const int64_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (int64_t i = 0; i < rank; ++i) {
    const int64_t ad = i < static_cast<int64_t>(rank - a.size())
                           ? 1
                           : a[i - (rank - a.size())];
    const int64_t bd = i < static_cast<int64_t>(rank - b.size())
                           ? 1
                           : b[i - (rank - b.size())];
    CONFORMER_CHECK(ad == bd || ad == 1 || bd == 1)
        << "cannot broadcast " << ShapeToString(a) << " with "
        << ShapeToString(b);
    out[i] = std::max(ad, bd);
  }
  return out;
}

std::vector<int64_t> BroadcastStrides(const Shape& from, const Shape& to) {
  const int64_t rank = static_cast<int64_t>(to.size());
  const int64_t offset = rank - static_cast<int64_t>(from.size());
  CONFORMER_CHECK_GE(offset, 0);
  std::vector<int64_t> from_strides = ContiguousStrides(from);
  std::vector<int64_t> strides(rank, 0);
  for (int64_t i = 0; i < static_cast<int64_t>(from.size()); ++i) {
    const int64_t d = i + offset;
    if (from[i] == to[d]) {
      strides[d] = from_strides[i];
    } else {
      CONFORMER_CHECK_EQ(from[i], 1)
          << "shape " << ShapeToString(from) << " does not broadcast to "
          << ShapeToString(to);
      strides[d] = 0;
    }
  }
  return strides;
}

void ReduceGradToShape(const float* grad, const Shape& grad_shape, float* out,
                       const Shape& target_shape) {
  if (grad_shape == target_shape) {
    Axpy(NumElements(grad_shape), 1.0f, grad, out);
    return;
  }
  const std::vector<int64_t> strides = BroadcastStrides(target_shape, grad_shape);
  const int64_t rank = static_cast<int64_t>(grad_shape.size());
  const int64_t n = NumElements(grad_shape);
  std::vector<int64_t> index(rank, 0);
  int64_t out_off = 0;
  for (int64_t i = 0; i < n; ++i) {
    out[out_off] += grad[i];
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++index[d];
      out_off += strides[d];
      if (index[d] < grad_shape[d]) break;
      index[d] = 0;
      out_off -= strides[d] * grad_shape[d];
    }
  }
}

}  // namespace conformer::kernels
