// Trace-capture hooks for the static inference runtime; see
// docs/STATIC_RUNTIME.md.
//
// While a CaptureSink is installed on the calling thread, every primitive op
// reports itself right after it executes eagerly: its output tensor, its
// input tensors, and a replay closure that re-runs the exact same kernel
// call over raw pointers. The runtime's tracer turns that stream into a
// flat, ahead-of-time-planned step list that replays a Predict() with zero
// per-op dispatch.
//
// The hooks are deliberately one TLS load on the eager fast path: the replay
// closure (and its std::function allocation) is only materialized when a
// sink is active.

#ifndef CONFORMER_TENSOR_CAPTURE_H_
#define CONFORMER_TENSOR_CAPTURE_H_

#include <functional>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace conformer::internal {

/// Replay closure for one captured primitive op: reads the op's inputs
/// through `in` (one pointer per recorded input, in recording order) and
/// writes the output through `out`. Every other parameter — shapes, strides,
/// indices, scalars — is captured by value when the closure is built, so the
/// closure is immutable, reentrant, and shareable across threads.
using ReplayFn = std::function<void(const float* const* in, float* out)>;

struct CaptureStepMeta {
  const char* op_name = "";
  /// Replay must zero the output region before invoking the closure (ops
  /// that accumulate into AcquireBuffer's zero-filled storage, e.g. Sum).
  bool zero_init = false;
  /// The closure writes out[i] reading in[0] only at the same flat index i
  /// within the same loop iteration — safe to run with out == in[0]. This
  /// is what permits in-place fusion of elementwise chains onto their
  /// producer's buffer.
  bool inplace_safe = false;
};

/// \brief Observes op construction on the calling thread while a trace is
/// active. Implemented by runtime::Tracer; the tensor layer only talks to
/// this interface so it never depends on src/runtime.
class CaptureSink {
 public:
  virtual ~CaptureSink() = default;

  /// One primitive op: `out = fn(inputs)` has already run eagerly; `fn`
  /// reproduces it bitwise over raw pointers.
  virtual void RecordStep(const Tensor& out, const std::vector<Tensor>& inputs,
                          ReplayFn fn, const CaptureStepMeta& meta) = 0;

  /// `out` holds exactly the bytes of `src` (Reshape / Detach / Clone):
  /// replay elides the copy and reads the producer's buffer directly.
  virtual void RecordAlias(const Tensor& out, const Tensor& src,
                           const char* op_name) = 0;

  /// An opaque composite with data-dependent host control flow (top-k
  /// selection, hashing, FFT lag picking): replay re-runs `fn` eagerly on
  /// tensors materialized from the planned input buffers. `fn` must be
  /// deterministic given its inputs.
  virtual void RecordOpaque(
      const Tensor& out, const std::vector<Tensor>& inputs,
      std::function<Tensor(const std::vector<Tensor>&)> fn,
      const char* op_name) = 0;

  /// Every MakeOpResult reports its output here, before the op decides
  /// whether it also calls RecordStep. An output that is never upgraded to a
  /// step/alias came from an op without a replay closure — consuming it later
  /// must invalidate the trace instead of silently freezing its value.
  virtual void RecordRaw(const Tensor& out, const char* op_name) = 0;
};

/// The calling thread's active sink (null when not tracing).
CaptureSink* ActiveCaptureSink();

/// Installs `sink` on the calling thread; returns the previous sink.
CaptureSink* SwapCaptureSink(CaptureSink* sink);

/// \brief RAII: suspends capture on this thread. Opaque composites use it so
/// their internal ops are not recorded as individual steps.
class CaptureSuspendGuard {
 public:
  CaptureSuspendGuard() : previous_(SwapCaptureSink(nullptr)) {}
  ~CaptureSuspendGuard() { SwapCaptureSink(previous_); }
  CaptureSuspendGuard(const CaptureSuspendGuard&) = delete;
  CaptureSuspendGuard& operator=(const CaptureSuspendGuard&) = delete;

 private:
  CaptureSink* previous_;
};

/// Called by op implementations right after building `out`. `make_fn` is
/// only invoked (and the ReplayFn only allocated) under an active sink.
template <typename MakeFn>
inline void MaybeCaptureStep(const Tensor& out,
                             std::initializer_list<Tensor> inputs,
                             const CaptureStepMeta& meta, MakeFn&& make_fn) {
  if (CaptureSink* sink = ActiveCaptureSink()) {
    sink->RecordStep(out, std::vector<Tensor>(inputs), make_fn(), meta);
  }
}

/// Overload for ops with a dynamic input list (Concat).
template <typename MakeFn>
inline void MaybeCaptureStep(const Tensor& out,
                             const std::vector<Tensor>& inputs,
                             const CaptureStepMeta& meta, MakeFn&& make_fn) {
  if (CaptureSink* sink = ActiveCaptureSink()) {
    sink->RecordStep(out, inputs, make_fn(), meta);
  }
}

/// Notifies the sink (if any) that `out` aliases `src` byte-for-byte.
inline void MaybeCaptureAlias(const Tensor& out, const Tensor& src,
                              const char* op_name) {
  if (CaptureSink* sink = ActiveCaptureSink()) {
    sink->RecordAlias(out, src, op_name);
  }
}

/// Runs `fn(inputs)` as one opaque composite step. With no sink active this
/// is a plain call; under capture the internal ops are suspended and the
/// whole call is recorded as a single replayable unit. `fn` must be a pure
/// deterministic function of `inputs` (plus immutable captured state such as
/// module parameters and fixed seeds).
Tensor CaptureOpaque(const char* name, std::vector<Tensor> inputs,
                     std::function<Tensor(const std::vector<Tensor>&)> fn);

}  // namespace conformer::internal

#endif  // CONFORMER_TENSOR_CAPTURE_H_
