#include <algorithm>

#include "tensor/capture.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/profiler.h"

namespace conformer {

namespace {

// Applies padding to [B, C, L] input according to `mode`.
Tensor PadInput(const Tensor& input, int64_t padding, PadMode mode) {
  if (padding == 0) return input;
  switch (mode) {
    case PadMode::kZeros:
      return Pad(input, /*dim=*/2, padding, padding, 0.0f);
    case PadMode::kReplicate:
      return ReplicatePad(input, /*dim=*/2, padding, padding);
    case PadMode::kCircular: {
      const int64_t length = input.size(2);
      if (padding <= length) {
        Tensor head = Slice(input, 2, length - padding, length);
        Tensor tail = Slice(input, 2, 0, padding);
        return Concat({head, input, tail}, 2);
      }
      // Pad wider than the input: the periodic extension is whole-tile
      // repeats plus a remainder slice on each side — any width is legal,
      // where this used to CHECK-abort (reachable from model config).
      const int64_t reps = padding / length;
      const int64_t rem = padding % length;
      Tensor tiles = Tile(input, {1, 1, reps});
      std::vector<Tensor> parts;
      if (rem > 0) parts.push_back(Slice(input, 2, length - rem, length));
      parts.push_back(tiles);
      parts.push_back(input);
      parts.push_back(tiles);
      if (rem > 0) parts.push_back(Slice(input, 2, 0, rem));
      return Concat(parts, 2);
    }
  }
  CONFORMER_CHECK(false) << "unreachable";
  return input;
}

}  // namespace

Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t padding, PadMode mode, int64_t dilation,
              int64_t stride) {
  CONFORMER_PROFILE_SCOPE("conv1d");
  CONFORMER_CHECK(input.defined() && weight.defined());
  CONFORMER_CHECK_EQ(input.dim(), 3) << "Conv1d input must be [B, Cin, L]";
  CONFORMER_CHECK_EQ(weight.dim(), 3) << "Conv1d weight must be [Cout, Cin, K]";
  CONFORMER_CHECK_GE(dilation, 1);
  CONFORMER_CHECK_GE(stride, 1);
  const int64_t cin = input.size(1);
  CONFORMER_CHECK_EQ(weight.size(1), cin) << "Conv1d channel mismatch";

  const Tensor padded = PadInput(input, padding, mode);
  const int64_t batch = padded.size(0);
  const int64_t length = padded.size(2);
  const int64_t cout = weight.size(0);
  const int64_t kernel = weight.size(2);
  const int64_t span = (kernel - 1) * dilation + 1;  // effective kernel
  const int64_t out_len = (length - span) / stride + 1;
  CONFORMER_CHECK_GT(out_len, 0) << "Conv1d kernel longer than padded input";

  // im2col: columns [B, out_len, Cin*K]; then out = columns x W^T.
  // Built from differentiable primitives so the backward pass is free.
  std::vector<Tensor> taps;
  taps.reserve(kernel);
  for (int64_t k = 0; k < kernel; ++k) {
    // [B, Cin, out_len] strided window starting at dilated offset k. At
    // stride 1 this is the same [k*d, k*d + out_len) slice as before, so
    // existing call sites stay bitwise unchanged.
    taps.push_back(Slice(padded, 2, k * dilation,
                         k * dilation + (out_len - 1) * stride + 1, stride));
  }
  // [B, Cin, K, out_len] -> [B, out_len, Cin, K] -> [B, out_len, Cin*K]
  Tensor stacked = StackTensors(taps, /*dim=*/2);
  Tensor columns = Reshape(Permute(stacked, {0, 3, 1, 2}),
                           {batch, out_len, cin * kernel});
  // weight [Cout, Cin, K] -> [Cin*K, Cout]
  Tensor wmat = Transpose(Reshape(weight, {cout, cin * kernel}), 0, 1);
  Tensor out = MatMul(columns, wmat);  // [B, out_len, Cout]
  if (bias.defined()) {
    CONFORMER_CHECK_EQ(bias.numel(), cout);
    out = Add(out, Reshape(bias, {1, 1, cout}));
  }
  return Permute(out, {0, 2, 1});  // [B, Cout, out_len]
}

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t padding_h, int64_t padding_w) {
  CONFORMER_PROFILE_SCOPE("conv2d");
  CONFORMER_CHECK(input.defined() && weight.defined());
  CONFORMER_CHECK_EQ(input.dim(), 4) << "Conv2d input must be [B, Cin, H, W]";
  CONFORMER_CHECK_EQ(weight.dim(), 4)
      << "Conv2d weight must be [Cout, Cin, Kh, Kw]";
  CONFORMER_CHECK_GE(padding_h, 0);
  CONFORMER_CHECK_GE(padding_w, 0);
  const int64_t cin = input.size(1);
  CONFORMER_CHECK_EQ(weight.size(1), cin) << "Conv2d channel mismatch";

  Tensor padded = input;
  if (padding_h > 0) padded = Pad(padded, /*dim=*/2, padding_h, padding_h);
  if (padding_w > 0) padded = Pad(padded, /*dim=*/3, padding_w, padding_w);
  const int64_t batch = padded.size(0);
  const int64_t height = padded.size(2);
  const int64_t width = padded.size(3);
  const int64_t cout = weight.size(0);
  const int64_t kh = weight.size(2);
  const int64_t kw = weight.size(3);
  const int64_t out_h = height - kh + 1;
  const int64_t out_w = width - kw + 1;
  CONFORMER_CHECK(out_h > 0 && out_w > 0)
      << "Conv2d kernel larger than padded input";

  // im2col from differentiable primitives, exactly like Conv1d: one tap per
  // (i, j) kernel offset, stacked in the weight's (Cin, Kh, Kw) memory
  // order so a single MatMul against the reshaped weight applies the whole
  // kernel. Autograd, capture instrumentation, and the ParallelFor / SIMD
  // determinism contracts are all inherited from the primitives.
  std::vector<Tensor> taps;
  taps.reserve(kh * kw);
  for (int64_t i = 0; i < kh; ++i) {
    for (int64_t j = 0; j < kw; ++j) {
      // [B, Cin, out_h, out_w] window at offset (i, j).
      taps.push_back(
          Slice(Slice(padded, 2, i, i + out_h), 3, j, j + out_w));
    }
  }
  // [B, Cin, Kh*Kw, out_h, out_w] -> [B, out_h, out_w, Cin, Kh*Kw]
  Tensor stacked = StackTensors(taps, /*dim=*/2);
  Tensor columns = Reshape(Permute(stacked, {0, 3, 4, 1, 2}),
                           {batch, out_h * out_w, cin * kh * kw});
  // weight [Cout, Cin, Kh, Kw] -> [Cin*Kh*Kw, Cout]
  Tensor wmat = Transpose(Reshape(weight, {cout, cin * kh * kw}), 0, 1);
  Tensor out = MatMul(columns, wmat);  // [B, out_h*out_w, Cout]
  if (bias.defined()) {
    CONFORMER_CHECK_EQ(bias.numel(), cout);
    out = Add(out, Reshape(bias, {1, 1, cout}));
  }
  return Permute(Reshape(out, {batch, out_h, out_w, cout}), {0, 3, 1, 2});
}

Tensor AvgPool1d(const Tensor& input, int64_t kernel, int64_t stride) {
  CONFORMER_PROFILE_SCOPE("avg_pool1d");
  CONFORMER_CHECK(input.defined());
  CONFORMER_CHECK_GE(input.dim(), 1);
  CONFORMER_CHECK(kernel >= 1 && stride >= 1);
  const int64_t rank = input.dim();
  const int64_t length = input.size(rank - 1);
  CONFORMER_CHECK_GE(length, kernel) << "AvgPool1d window longer than input";
  const int64_t out_len = (length - kernel) / stride + 1;

  int64_t outer = 1;
  for (int64_t i = 0; i < rank - 1; ++i) outer *= input.size(i);

  Shape out_shape = input.shape();
  out_shape[rank - 1] = out_len;
  std::vector<float> out = internal::AcquireBuffer(outer * out_len);
  const float inv_k = 1.0f / static_cast<float>(kernel);
  // Each outer index owns disjoint input/output rows in both directions
  // (windows may overlap within a row, never across rows).
  const int64_t pool_grain = std::max<int64_t>(
      1, kernels::kGrainStrided / std::max<int64_t>(1, out_len * kernel));
  auto forward = [outer, length, out_len, kernel, stride, inv_k,
                  pool_grain](const float* ad, float* dst) {
    ParallelFor(0, outer, pool_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        const float* row = ad + o * length;
        if (stride == 1) {
          // Stride-1 windows (the SIRN moving-average decomposition):
          // dispatched SIMD kernel, vectorized across outputs with the same
          // sequential per-output accumulation over the window — bitwise
          // identical to the scalar loop below.
          vec::MovingAvgN(row, out_len, kernel, inv_k, dst + o * out_len);
          continue;
        }
        for (int64_t j = 0; j < out_len; ++j) {
          float acc = 0.0f;
          const float* window = row + j * stride;
          for (int64_t k = 0; k < kernel; ++k) acc += window[k];
          dst[o * out_len + j] = acc * inv_k;
        }
      }
    });
  };
  forward(input.data(), out.data());

  Tensor a_in = input;
  auto backward = [a_in, outer, length, out_len, kernel, stride, inv_k,
                   pool_grain](TensorImpl& self) mutable {
    std::vector<float> delta(a_in.numel(), 0.0f);
    const float* gd = self.grad.data();
    ParallelFor(0, outer, pool_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        float* row = delta.data() + o * length;
        for (int64_t j = 0; j < out_len; ++j) {
          const float g = gd[o * out_len + j] * inv_k;
          float* window = row + j * stride;
          for (int64_t k = 0; k < kernel; ++k) window[k] += g;
        }
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         {input}, std::move(backward),
                                         "AvgPool1d");
  internal::MaybeCaptureStep(
      result, {input},
      {"AvgPool1d", /*zero_init=*/false, /*inplace_safe=*/false}, [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor MaxPool1d(const Tensor& input, int64_t kernel, int64_t stride) {
  CONFORMER_PROFILE_SCOPE("max_pool1d");
  CONFORMER_CHECK(input.defined());
  CONFORMER_CHECK_GE(input.dim(), 1);
  CONFORMER_CHECK(kernel >= 1 && stride >= 1);
  const int64_t rank = input.dim();
  const int64_t length = input.size(rank - 1);
  CONFORMER_CHECK_GE(length, kernel) << "MaxPool1d window longer than input";
  const int64_t out_len = (length - kernel) / stride + 1;

  int64_t outer = 1;
  for (int64_t i = 0; i < rank - 1; ++i) outer *= input.size(i);

  Shape out_shape = input.shape();
  out_shape[rank - 1] = out_len;
  std::vector<float> out = internal::AcquireBuffer(outer * out_len);
  std::vector<int64_t> argmax(outer * out_len);
  const int64_t pool_grain = std::max<int64_t>(
      1, kernels::kGrainStrided / std::max<int64_t>(1, out_len * kernel));
  auto forward = [outer, length, out_len, kernel, stride,
                  pool_grain](const float* ad, float* dst, int64_t* arg_out) {
    ParallelFor(0, outer, pool_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        const float* row = ad + o * length;
        for (int64_t j = 0; j < out_len; ++j) {
          const int64_t start = j * stride;
          float best = row[start];
          int64_t arg = start;
          for (int64_t k = 1; k < kernel; ++k) {
            if (row[start + k] > best) {
              best = row[start + k];
              arg = start + k;
            }
          }
          dst[o * out_len + j] = best;
          arg_out[o * out_len + j] = arg;
        }
      }
    });
  };
  forward(input.data(), out.data(), argmax.data());

  Tensor a_in = input;
  auto backward = [a_in, argmax, outer, length, out_len,
                   pool_grain](TensorImpl& self) mutable {
    std::vector<float> delta(a_in.numel(), 0.0f);
    const float* gd = self.grad.data();
    // argmax indices stay within their own row, so rows scatter disjointly.
    ParallelFor(0, outer, pool_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t j = 0; j < out_len; ++j) {
          delta[o * length + argmax[o * out_len + j]] += gd[o * out_len + j];
        }
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         {input}, std::move(backward),
                                         "MaxPool1d");
  internal::MaybeCaptureStep(
      result, {input},
      {"MaxPool1d", /*zero_init=*/false, /*inplace_safe=*/false}, [&] {
        return [forward, scratch = outer * out_len](const float* const* in,
                                                    float* o) {
          std::vector<int64_t> arg(scratch);
          forward(in[0], o, arg.data());
        };
      });
  return result;
}

Tensor Cumsum(const Tensor& a, int64_t dim) {
  CONFORMER_PROFILE_SCOPE("cumsum");
  CONFORMER_CHECK(a.defined());
  const Shape& shape = a.shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank;
  CONFORMER_CHECK(dim >= 0 && dim < rank);
  const int64_t n = shape[dim];
  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= shape[i];
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= shape[i];

  std::vector<float> out = internal::AcquireBuffer(a.numel());
  // Parallel over (outer, inner) scan lanes; each lane's running sum stays
  // sequential, so the result is thread-count independent.
  const int64_t lane_grain = std::max<int64_t>(
      1, kernels::kGrainStrided / std::max<int64_t>(1, n));
  auto forward = [outer, inner, n, lane_grain](const float* ad, float* dst) {
    ParallelFor(0, outer * inner, lane_grain, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t o = r / inner;
        const int64_t i = r % inner;
        float acc = 0.0f;
        for (int64_t j = 0; j < n; ++j) {
          acc += ad[(o * n + j) * inner + i];
          dst[(o * n + j) * inner + i] = acc;
        }
      }
    });
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  auto backward = [a_in, outer, inner, n, lane_grain](TensorImpl& self) mutable {
    // d/dx_j sum contributions: reverse cumulative sum of the out-grad.
    std::vector<float> delta(a_in.numel());
    const float* gd = self.grad.data();
    ParallelFor(0, outer * inner, lane_grain, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const int64_t o = r / inner;
        const int64_t i = r % inner;
        float acc = 0.0f;
        for (int64_t j = n - 1; j >= 0; --j) {
          acc += gd[(o * n + j) * inner + i];
          delta[(o * n + j) * inner + i] = acc;
        }
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(a.shape(), std::move(out), {a},
                                         std::move(backward), "Cumsum");
  internal::MaybeCaptureStep(
      result, {a}, {"Cumsum", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

}  // namespace conformer
