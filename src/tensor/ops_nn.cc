#include <algorithm>
#include <cmath>

#include "tensor/capture.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/profiler.h"

namespace conformer {

namespace {

// Softmax / LogSoftmax share the row iteration. `dim` is moved innermost by
// operating on (outer, n, inner) coordinates directly.
struct DimSplit {
  int64_t outer = 1;
  int64_t n = 1;
  int64_t inner = 1;
};

DimSplit SplitAt(const Shape& shape, int64_t dim) {
  DimSplit s;
  const int64_t rank = static_cast<int64_t>(shape.size());
  for (int64_t i = 0; i < dim; ++i) s.outer *= shape[i];
  s.n = shape[dim];
  for (int64_t i = dim + 1; i < rank; ++i) s.inner *= shape[i];
  return s;
}

// Runs `row_fn(base)` for every (outer, inner) row of the split in parallel;
// each row owns the disjoint offsets {base + j * inner}, so the per-row
// reduction order is sequential and the result thread-count independent.
template <typename RowFn>
void ParallelRows(const DimSplit& s, RowFn row_fn) {
  const int64_t rows = s.outer * s.inner;
  const int64_t grain =
      std::max<int64_t>(1, kernels::kGrainStrided / std::max<int64_t>(1, s.n));
  ParallelFor(0, rows, grain, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t o = r / s.inner;
      const int64_t i = r % s.inner;
      row_fn(o * s.n * s.inner + i);
    }
  });
}

}  // namespace

Tensor Softmax(const Tensor& a, int64_t dim) {
  CONFORMER_PROFILE_SCOPE("softmax");
  CONFORMER_CHECK(a.defined());
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  CONFORMER_CHECK(dim >= 0 && dim < rank);
  const DimSplit s = SplitAt(a.shape(), dim);

  std::vector<float> out = internal::AcquireBuffer(a.numel());
  auto forward = [s](const float* ad, float* dst) {
    if (s.inner == 1) {
      // Contiguous rows: the dispatched SIMD row kernel (same max/exp/sum
      // algorithm with the fixed 8-bin fold; see docs/SIMD.md).
      ParallelRows(s, [&](int64_t base) {
        vec::SoftmaxRowN(ad + base, dst + base, s.n);
      });
      return;
    }
    ParallelRows(s, [&](int64_t base) {
      float mx = ad[base];
      for (int64_t j = 1; j < s.n; ++j) {
        mx = std::max(mx, ad[base + j * s.inner]);
      }
      float total = 0.0f;
      for (int64_t j = 0; j < s.n; ++j) {
        const float e = std::exp(ad[base + j * s.inner] - mx);
        dst[base + j * s.inner] = e;
        total += e;
      }
      const float inv = 1.0f / total;
      for (int64_t j = 0; j < s.n; ++j) dst[base + j * s.inner] *= inv;
    });
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  auto backward = [a_in, s](TensorImpl& self) mutable {
    // dx_j = y_j * (g_j - sum_k g_k y_k)
    std::vector<float> delta(a_in.numel());
    const float* gd = self.grad.data();
    const float* yd = self.data.data();
    ParallelRows(s, [&](int64_t base) {
      float dot = 0.0f;
      for (int64_t j = 0; j < s.n; ++j) {
        const int64_t off = base + j * s.inner;
        dot += gd[off] * yd[off];
      }
      for (int64_t j = 0; j < s.n; ++j) {
        const int64_t off = base + j * s.inner;
        delta[off] = yd[off] * (gd[off] - dot);
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(a.shape(), std::move(out), {a},
                                         std::move(backward), "Softmax");
  internal::MaybeCaptureStep(
      result, {a}, {"Softmax", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor LogSoftmax(const Tensor& a, int64_t dim) {
  CONFORMER_PROFILE_SCOPE("log_softmax");
  CONFORMER_CHECK(a.defined());
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank;
  const DimSplit s = SplitAt(a.shape(), dim);

  std::vector<float> out = internal::AcquireBuffer(a.numel());
  auto forward = [s](const float* ad, float* dst) {
    if (s.inner == 1) {
      ParallelRows(s, [&](int64_t base) {
        vec::LogSoftmaxRowN(ad + base, dst + base, s.n);
      });
      return;
    }
    ParallelRows(s, [&](int64_t base) {
      float mx = ad[base];
      for (int64_t j = 1; j < s.n; ++j) {
        mx = std::max(mx, ad[base + j * s.inner]);
      }
      float total = 0.0f;
      for (int64_t j = 0; j < s.n; ++j) {
        total += std::exp(ad[base + j * s.inner] - mx);
      }
      const float lse = mx + std::log(total);
      for (int64_t j = 0; j < s.n; ++j) {
        dst[base + j * s.inner] = ad[base + j * s.inner] - lse;
      }
    });
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  auto backward = [a_in, s](TensorImpl& self) mutable {
    // dx_j = g_j - softmax_j * sum_k g_k
    std::vector<float> delta(a_in.numel());
    const float* gd = self.grad.data();
    const float* yd = self.data.data();
    ParallelRows(s, [&](int64_t base) {
      float gsum = 0.0f;
      for (int64_t j = 0; j < s.n; ++j) gsum += gd[base + j * s.inner];
      for (int64_t j = 0; j < s.n; ++j) {
        const int64_t off = base + j * s.inner;
        delta[off] = gd[off] - std::exp(yd[off]) * gsum;
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(a.shape(), std::move(out), {a},
                                         std::move(backward), "LogSoftmax");
  internal::MaybeCaptureStep(
      result, {a}, {"LogSoftmax", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor DropoutOp(const Tensor& a, float p, bool training, Rng* rng) {
  CONFORMER_PROFILE_SCOPE("dropout");
  CONFORMER_CHECK(a.defined());
  CONFORMER_CHECK(p >= 0.0f && p < 1.0f) << "dropout p must be in [0, 1)";
  if (!training || p == 0.0f) return a;
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> mask(a.numel());
  for (float& m : mask) m = r.Bernoulli(p) ? 0.0f : scale;
  Tensor mask_t = Tensor::FromVector(std::move(mask), a.shape());
  return Mul(a, mask_t);
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  CONFORMER_PROFILE_SCOPE("mse_loss");
  Tensor diff = Sub(pred, target.Detach());
  return Mean(Mul(diff, diff));
}

Tensor MaeLoss(const Tensor& pred, const Tensor& target) {
  CONFORMER_PROFILE_SCOPE("mae_loss");
  return Mean(Abs(Sub(pred, target.Detach())));
}

}  // namespace conformer
