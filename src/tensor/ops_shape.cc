#include <algorithm>

#include "tensor/capture.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace conformer {

Tensor Reshape(const Tensor& a, Shape shape) {
  CONFORMER_CHECK(a.defined());
  int64_t known = 1;
  int64_t infer = -1;
  for (int64_t i = 0; i < static_cast<int64_t>(shape.size()); ++i) {
    if (shape[i] == -1) {
      CONFORMER_CHECK_EQ(infer, -1) << "at most one -1 in reshape";
      infer = i;
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    CONFORMER_CHECK(known > 0 && a.numel() % known == 0)
        << "cannot infer reshape dim";
    shape[infer] = a.numel() / known;
  }
  CONFORMER_CHECK_EQ(NumElements(shape), a.numel())
      << "reshape " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(shape);

  Tensor a_in = a;
  auto backward = [a_in](TensorImpl& self) mutable {
    a_in.impl()->AccumulateGrad(self.grad.data(),
                                static_cast<int64_t>(self.grad.size()));
  };
  Tensor result = internal::MakeOpResult(std::move(shape), a.impl()->data, {a},
                                         std::move(backward), "Reshape");
  // The eager path copies the data; replay elides the copy entirely: the
  // result is the same buffer viewed under a new shape.
  internal::MaybeCaptureAlias(result, a, "Reshape");
  return result;
}

Tensor Unsqueeze(const Tensor& a, int64_t dim) {
  Shape shape = a.shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank + 1;
  CONFORMER_CHECK(dim >= 0 && dim <= rank);
  shape.insert(shape.begin() + dim, 1);
  return Reshape(a, std::move(shape));
}

Tensor Squeeze(const Tensor& a, int64_t dim) {
  Shape shape = a.shape();
  const int64_t rank = static_cast<int64_t>(shape.size());
  if (dim < 0) dim += rank;
  CONFORMER_CHECK(dim >= 0 && dim < rank);
  CONFORMER_CHECK_EQ(shape[dim], 1) << "squeeze of non-singleton dim";
  shape.erase(shape.begin() + dim);
  return Reshape(a, std::move(shape));
}

Tensor Permute(const Tensor& a, std::vector<int64_t> perm) {
  CONFORMER_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  const int64_t rank = static_cast<int64_t>(in_shape.size());
  CONFORMER_CHECK_EQ(static_cast<int64_t>(perm.size()), rank);
  std::vector<bool> seen(rank, false);
  Shape out_shape(rank);
  for (int64_t i = 0; i < rank; ++i) {
    int64_t p = perm[i];
    if (p < 0) p += rank;
    CONFORMER_CHECK(p >= 0 && p < rank && !seen[p]) << "invalid permutation";
    seen[p] = true;
    perm[i] = p;
    out_shape[i] = in_shape[p];
  }

  const std::vector<int64_t> in_strides = ContiguousStrides(in_shape);
  std::vector<int64_t> gather_strides(rank);  // stride in input per out dim
  for (int64_t i = 0; i < rank; ++i) gather_strides[i] = in_strides[perm[i]];

  const int64_t n = a.numel();
  std::vector<float> out = internal::AcquireBuffer(n);
  auto forward = [n, rank, gather_strides, out_shape](const float* ad,
                                                      float* dst) {
    std::vector<int64_t> index(rank, 0);
    int64_t in_off = 0;
    for (int64_t i = 0; i < n; ++i) {
      dst[i] = ad[in_off];
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        in_off += gather_strides[d];
        if (index[d] < out_shape[d]) break;
        index[d] = 0;
        in_off -= gather_strides[d] * out_shape[d];
      }
    }
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  auto backward = [a_in, gather_strides, out_shape, rank](TensorImpl& self) mutable {
    std::vector<float> delta(a_in.numel(), 0.0f);
    const float* gd = self.grad.data();
    std::vector<int64_t> index(rank, 0);
    int64_t in_off = 0;
    const int64_t n = static_cast<int64_t>(self.grad.size());
    for (int64_t i = 0; i < n; ++i) {
      delta[in_off] += gd[i];
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        in_off += gather_strides[d];
        if (index[d] < out_shape[d]) break;
        index[d] = 0;
        in_off -= gather_strides[d] * out_shape[d];
      }
    }
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         {a}, std::move(backward), "Permute");
  internal::MaybeCaptureStep(
      result, {a}, {"Permute", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor Transpose(const Tensor& a, int64_t d0, int64_t d1) {
  const int64_t rank = a.dim();
  if (d0 < 0) d0 += rank;
  if (d1 < 0) d1 += rank;
  std::vector<int64_t> perm(rank);
  for (int64_t i = 0; i < rank; ++i) perm[i] = i;
  std::swap(perm[d0], perm[d1]);
  return Permute(a, std::move(perm));
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end,
             int64_t step) {
  CONFORMER_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  const int64_t rank = static_cast<int64_t>(in_shape.size());
  if (dim < 0) dim += rank;
  CONFORMER_CHECK(dim >= 0 && dim < rank);
  const int64_t size = in_shape[dim];
  if (start < 0) start += size;
  if (end < 0) end += size;
  start = std::clamp<int64_t>(start, 0, size);
  end = std::clamp<int64_t>(end, 0, size);
  CONFORMER_CHECK_GT(step, 0) << "slice step must be positive";
  const int64_t count = end > start ? (end - start + step - 1) / step : 0;
  CONFORMER_CHECK_GT(count, 0) << "empty slice [" << start << ", " << end
                               << ") of dim " << dim;

  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= in_shape[i];
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= in_shape[i];

  Shape out_shape = in_shape;
  out_shape[dim] = count;
  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));
  auto forward = [outer, inner, size, start, step, count](const float* ad,
                                                          float* dst_base) {
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t c = 0; c < count; ++c) {
        const int64_t src = o * size * inner + (start + c * step) * inner;
        const int64_t dst = o * count * inner + c * inner;
        std::copy(ad + src, ad + src + inner, dst_base + dst);
      }
    }
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  auto backward = [a_in, outer, inner, size, start, step,
                   count](TensorImpl& self) mutable {
    std::vector<float> delta(a_in.numel(), 0.0f);
    const float* gd = self.grad.data();
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t c = 0; c < count; ++c) {
        const int64_t dst = o * size * inner + (start + c * step) * inner;
        const int64_t src = o * count * inner + c * inner;
        for (int64_t i = 0; i < inner; ++i) delta[dst + i] += gd[src + i];
      }
    }
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         {a}, std::move(backward), "Slice");
  internal::MaybeCaptureStep(
      result, {a}, {"Slice", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t dim) {
  CONFORMER_CHECK(!parts.empty()) << "Concat of zero tensors";
  const Shape& first = parts[0].shape();
  const int64_t rank = static_cast<int64_t>(first.size());
  if (dim < 0) dim += rank;
  CONFORMER_CHECK(dim >= 0 && dim < rank);

  int64_t total = 0;
  for (const Tensor& t : parts) {
    CONFORMER_CHECK_EQ(t.dim(), rank);
    for (int64_t i = 0; i < rank; ++i) {
      if (i != dim) {
        CONFORMER_CHECK_EQ(t.shape()[i], first[i])
            << "Concat shape mismatch in dim " << i;
      }
    }
    total += t.shape()[dim];
  }

  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= first[i];
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= first[i];

  Shape out_shape = first;
  out_shape[dim] = total;
  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));
  std::vector<int64_t> sizes(parts.size());
  for (size_t p = 0; p < parts.size(); ++p) sizes[p] = parts[p].shape()[dim];
  auto forward = [sizes, outer, inner, total](const float* const* in,
                                              float* dst) {
    int64_t offset = 0;  // running offset along `dim`
    for (size_t p = 0; p < sizes.size(); ++p) {
      const int64_t sz = sizes[p];
      const float* src = in[p];
      for (int64_t o = 0; o < outer; ++o) {
        std::copy(src + o * sz * inner, src + (o + 1) * sz * inner,
                  dst + o * total * inner + offset * inner);
      }
      offset += sz;
    }
  };
  {
    std::vector<const float*> srcs(parts.size());
    for (size_t p = 0; p < parts.size(); ++p) srcs[p] = parts[p].data();
    forward(srcs.data(), out.data());
  }

  std::vector<Tensor> inputs = parts;
  auto backward = [inputs, sizes, outer, inner, total](TensorImpl& self) mutable {
    const float* gd = self.grad.data();
    int64_t offset = 0;
    for (size_t p = 0; p < inputs.size(); ++p) {
      const int64_t sz = sizes[p];
      Tensor& t = inputs[p];
      if (t.requires_grad() || t.impl()->node != nullptr) {
        std::vector<float> delta(t.numel());
        for (int64_t o = 0; o < outer; ++o) {
          const float* src = gd + o * total * inner + offset * inner;
          std::copy(src, src + sz * inner, delta.begin() + o * sz * inner);
        }
        t.impl()->AccumulateGrad(delta.data(), t.numel());
      }
      offset += sz;
    }
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         parts, std::move(backward), "Concat");
  internal::MaybeCaptureStep(
      result, parts, {"Concat", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] { return internal::ReplayFn(forward); });
  return result;
}

Tensor StackTensors(const std::vector<Tensor>& parts, int64_t dim) {
  CONFORMER_CHECK(!parts.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(parts.size());
  for (const Tensor& t : parts) expanded.push_back(Unsqueeze(t, dim));
  return Concat(expanded, dim);
}

Tensor Pad(const Tensor& a, int64_t dim, int64_t before, int64_t after,
           float value) {
  CONFORMER_CHECK(a.defined());
  CONFORMER_CHECK(before >= 0 && after >= 0);
  if (before == 0 && after == 0) return a;
  const Shape& in_shape = a.shape();
  const int64_t rank = static_cast<int64_t>(in_shape.size());
  if (dim < 0) dim += rank;
  Shape pad_shape = in_shape;
  std::vector<Tensor> parts;
  if (before > 0) {
    pad_shape[dim] = before;
    parts.push_back(Tensor::Full(pad_shape, value));
  }
  parts.push_back(a);
  if (after > 0) {
    pad_shape[dim] = after;
    parts.push_back(Tensor::Full(pad_shape, value));
  }
  return Concat(parts, dim);
}

Tensor ReplicatePad(const Tensor& a, int64_t dim, int64_t before, int64_t after) {
  CONFORMER_CHECK(a.defined());
  if (before == 0 && after == 0) return a;
  const int64_t size = a.size(dim);
  std::vector<Tensor> parts;
  if (before > 0) {
    Tensor head = Slice(a, dim, 0, 1);
    std::vector<int64_t> reps(a.dim(), 1);
    reps[dim < 0 ? dim + a.dim() : dim] = before;
    parts.push_back(Tile(head, reps));
  }
  parts.push_back(a);
  if (after > 0) {
    Tensor tail = Slice(a, dim, size - 1, size);
    std::vector<int64_t> reps(a.dim(), 1);
    reps[dim < 0 ? dim + a.dim() : dim] = after;
    parts.push_back(Tile(tail, reps));
  }
  return Concat(parts, dim);
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  CONFORMER_CHECK(a.defined());
  // Multiplying by ones both materializes the broadcast and reuses the
  // broadcast-aware gradient reduction of Mul.
  return Mul(a, Tensor::Ones(shape));
}

Tensor Flip(const Tensor& a, int64_t dim) {
  CONFORMER_CHECK(a.defined());
  const int64_t size = a.size(dim);
  std::vector<int64_t> reversed(size);
  for (int64_t i = 0; i < size; ++i) reversed[i] = size - 1 - i;
  const int64_t rank = a.dim();
  return IndexSelect(a, dim < 0 ? dim + rank : dim, reversed);
}

std::vector<Tensor> Split(const Tensor& a, int64_t dim, int64_t chunk) {
  CONFORMER_CHECK(a.defined());
  CONFORMER_CHECK_GE(chunk, 1);
  const int64_t size = a.size(dim);
  CONFORMER_CHECK_EQ(size % chunk, 0)
      << "Split requires chunk " << chunk << " to divide dim size " << size;
  std::vector<Tensor> parts;
  parts.reserve(size / chunk);
  for (int64_t start = 0; start < size; start += chunk) {
    parts.push_back(Slice(a, dim, start, start + chunk));
  }
  return parts;
}

Tensor Tile(const Tensor& a, const std::vector<int64_t>& repeats) {
  CONFORMER_CHECK(a.defined());
  CONFORMER_CHECK_EQ(static_cast<int64_t>(repeats.size()), a.dim());
  Tensor out = a;
  for (int64_t d = 0; d < a.dim(); ++d) {
    CONFORMER_CHECK_GE(repeats[d], 1);
    if (repeats[d] == 1) continue;
    std::vector<Tensor> copies(repeats[d], out);
    out = Concat(copies, d);
  }
  return out;
}

}  // namespace conformer
