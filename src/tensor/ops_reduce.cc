#include <algorithm>
#include <limits>

#include "tensor/capture.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/profiler.h"

namespace conformer {

namespace {

// Normalizes (possibly negative / empty meaning "all") dims, sorted unique.
std::vector<int64_t> NormalizeDims(std::vector<int64_t> dims, int64_t rank) {
  if (dims.empty()) {
    dims.resize(rank);
    for (int64_t i = 0; i < rank; ++i) dims[i] = i;
    return dims;
  }
  for (int64_t& d : dims) {
    if (d < 0) d += rank;
    CONFORMER_CHECK(d >= 0 && d < rank) << "reduce dim out of range";
  }
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  return dims;
}

Shape ReducedShape(const Shape& shape, const std::vector<int64_t>& dims,
                   bool keepdim) {
  Shape out;
  size_t di = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(shape.size()); ++i) {
    if (di < dims.size() && dims[di] == i) {
      ++di;
      if (keepdim) out.push_back(1);
    } else {
      out.push_back(shape[i]);
    }
  }
  return out;
}

// Shape with reduced dims kept as size-1 (used for broadcasting gradients
// back regardless of `keepdim`).
Shape KeepdimShape(const Shape& shape, const std::vector<int64_t>& dims) {
  Shape out = shape;
  for (int64_t d : dims) out[d] = 1;
  return out;
}

}  // namespace

Tensor Sum(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  CONFORMER_PROFILE_SCOPE("sum");
  CONFORMER_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  const int64_t rank = static_cast<int64_t>(in_shape.size());
  dims = NormalizeDims(std::move(dims), rank);
  const Shape out_shape = ReducedShape(in_shape, dims, keepdim);
  const Shape keep_shape = KeepdimShape(in_shape, dims);

  const int64_t out_numel = NumElements(out_shape);
  std::vector<float> out = internal::AcquireBuffer(out_numel);
  // Reducing exactly a trailing block of dims [sp, rank) makes every output
  // element the sum of one contiguous input row — the layout the SIMD row
  // reduction handles. (Sum order becomes the fixed 8-bin fold instead of
  // sequential; deterministic and identical across SIMD levels.)
  const bool suffix_reduce = !dims.empty() && dims.back() == rank - 1 &&
                             static_cast<int64_t>(dims.size()) ==
                                 rank - dims.front() &&
                             out_numel > 1;
  int64_t suffix_row_len = 1;
  if (suffix_reduce) {
    for (int64_t d = dims.front(); d < rank; ++d) suffix_row_len *= in_shape[d];
  }
  // Accumulate via broadcast-strided iteration over the input. The whole
  // compute is one by-value closure so a captured replay re-runs the exact
  // same code path over raw pointers (`dst` must be pre-zeroed).
  auto forward = [in_shape, rank, out_numel, suffix_reduce, suffix_row_len,
                  out_strides = kernels::BroadcastStrides(keep_shape, in_shape),
                  n = a.numel()](const float* ad, float* dst) {
    if (suffix_reduce && suffix_row_len > 0) {
      const int64_t row_grain = std::max<int64_t>(
          1, kernels::kGrainStrided / suffix_row_len);
      ParallelFor(0, out_numel, row_grain, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          dst[r] += vec::SumN(ad + r * suffix_row_len, suffix_row_len);
        }
      });
      return;
    }
    // Accumulates input flat range [cb, ce) into `acc` (out-sized buffer).
    auto sum_range = [&](int64_t cb, int64_t ce, float* acc) {
      std::vector<int64_t> index(rank, 0);
      int64_t out_off = 0;
      int64_t rem = cb;
      for (int64_t d = rank - 1; d >= 0; --d) {
        index[d] = rem % in_shape[d];
        rem /= in_shape[d];
        out_off += index[d] * out_strides[d];
      }
      for (int64_t i = cb; i < ce; ++i) {
        acc[out_off] += ad[i];
        for (int64_t d = rank - 1; d >= 0; --d) {
          ++index[d];
          out_off += out_strides[d];
          if (index[d] < in_shape[d]) break;
          index[d] = 0;
          out_off -= out_strides[d] * in_shape[d];
        }
      }
    };

    const int64_t lead = rank > 0 ? in_shape[0] : 1;
    const int64_t block = lead > 0 ? n / lead : 0;
    if (rank > 0 && out_strides[0] > 0 && lead > 1) {
      // Leading dim not reduced: each leading index owns a disjoint out
      // slice, so this parallelization keeps the exact sequential
      // accumulation order per output element.
      const int64_t row_grain =
          std::max<int64_t>(1, kernels::kGrainStrided / std::max<int64_t>(1, block));
      ParallelFor(0, lead, row_grain, [&](int64_t r0, int64_t r1) {
        sum_range(r0 * block, r1 * block, dst);
      });
    } else if (n >= 2 * kernels::kGrainStrided && out_numel <= 4096) {
      // Leading dim reduced (e.g. full reduction to a scalar): fixed-order
      // per-chunk partial accumulation. Chunk boundaries depend only on the
      // grain and the partials are folded in chunk order, so the result is
      // bitwise identical at any thread count (never atomics on floats).
      struct Partial {
        std::vector<float> values;
      };
      Partial total = ParallelReduce(
          int64_t{0}, n, kernels::kGrainStrided, Partial{},
          [&](int64_t cb, int64_t ce) {
            Partial p;
            p.values.assign(out_numel, 0.0f);
            sum_range(cb, ce, p.values.data());
            return p;
          },
          [&](Partial acc, Partial p) {
            if (acc.values.empty()) return p;
            for (int64_t i = 0; i < out_numel; ++i) {
              acc.values[i] += p.values[i];
            }
            return acc;
          });
      if (!total.values.empty()) {
        std::copy(total.values.begin(), total.values.end(), dst);
      }
    } else {
      sum_range(0, n, dst);
    }
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  auto backward = [a_in, keep_shape](TensorImpl& self) mutable {
    // Gradient broadcasts the output gradient back over reduced dims.
    const Shape& in_shape = a_in.shape();
    const int64_t rank = static_cast<int64_t>(in_shape.size());
    const std::vector<int64_t> g_strides =
        kernels::BroadcastStrides(keep_shape, in_shape);
    const int64_t n = a_in.numel();
    std::vector<float> delta(n);
    const float* gd = self.grad.data();
    ParallelFor(0, n, kernels::kGrainStrided, [&](int64_t cb, int64_t ce) {
      std::vector<int64_t> index(rank, 0);
      int64_t g_off = 0;
      int64_t rem = cb;
      for (int64_t d = rank - 1; d >= 0; --d) {
        index[d] = rem % in_shape[d];
        rem /= in_shape[d];
        g_off += index[d] * g_strides[d];
      }
      for (int64_t i = cb; i < ce; ++i) {
        delta[i] = gd[g_off];
        for (int64_t d = rank - 1; d >= 0; --d) {
          ++index[d];
          g_off += g_strides[d];
          if (index[d] < in_shape[d]) break;
          index[d] = 0;
          g_off -= g_strides[d] * in_shape[d];
        }
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), n);
  };
  Tensor result = internal::MakeOpResult(out_shape, std::move(out), {a},
                                         std::move(backward), "Sum");
  internal::MaybeCaptureStep(
      result, {a}, {"Sum", /*zero_init=*/true, /*inplace_safe=*/false}, [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor Mean(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  CONFORMER_PROFILE_SCOPE("mean");
  CONFORMER_CHECK(a.defined());
  const int64_t rank = a.dim();
  std::vector<int64_t> norm = NormalizeDims(dims, rank);
  int64_t count = 1;
  for (int64_t d : norm) count *= a.shape()[d];
  Tensor s = Sum(a, std::move(norm), keepdim);
  return MulScalar(s, 1.0f / static_cast<float>(count));
}

Tensor Variance(const Tensor& a, std::vector<int64_t> dims, bool keepdim) {
  CONFORMER_PROFILE_SCOPE("variance");
  Tensor mu = Mean(a, dims, /*keepdim=*/true);
  Tensor centered = Sub(a, mu);
  return Mean(Mul(centered, centered), dims, keepdim);
}

namespace {

// Max/Min over one dim share this implementation. `cmp(candidate, best)`
// returns true when the candidate should replace the current best.
template <typename Cmp>
Tensor ExtremeOverDim(const Tensor& a, int64_t dim, bool keepdim, Cmp cmp,
                      float init, const char* name) {
  CONFORMER_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  const int64_t rank = static_cast<int64_t>(in_shape.size());
  if (dim < 0) dim += rank;
  CONFORMER_CHECK(dim >= 0 && dim < rank) << name << " dim out of range";

  const int64_t reduce_n = in_shape[dim];
  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= in_shape[i];
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= in_shape[i];

  std::vector<float> out(outer * inner, init);
  std::vector<int64_t> argbest(outer * inner, 0);
  // Each outer index owns a disjoint slice of out/argbest. The r == 0 case
  // writes unconditionally, so `dst` needs no init prefill — the eager pass
  // and a captured replay (which passes scratch arg storage) share this.
  auto forward = [outer, inner, reduce_n, cmp](const float* ad, float* dst,
                                               int64_t* arg) {
    const int64_t o_grain = std::max<int64_t>(
        1, kernels::kGrainStrided / std::max<int64_t>(1, reduce_n * inner));
    ParallelFor(0, outer, o_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t r = 0; r < reduce_n; ++r) {
          const float* row = ad + (o * reduce_n + r) * inner;
          for (int64_t i = 0; i < inner; ++i) {
            float& best = dst[o * inner + i];
            if (r == 0 || cmp(row[i], best)) {
              best = row[i];
              arg[o * inner + i] = r;
            }
          }
        }
      }
    });
  };
  forward(a.data(), out.data(), argbest.data());

  Shape out_shape;
  for (int64_t i = 0; i < rank; ++i) {
    if (i == dim) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(in_shape[i]);
    }
  }

  Tensor a_in = a;
  auto backward = [a_in, argbest, dim, reduce_n, outer,
                   inner](TensorImpl& self) mutable {
    std::vector<float> delta(a_in.numel(), 0.0f);
    const float* gd = self.grad.data();
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        const int64_t r = argbest[o * inner + i];
        delta[(o * reduce_n + r) * inner + i] = gd[o * inner + i];
      }
    }
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         {a}, std::move(backward), name);
  internal::MaybeCaptureStep(
      result, {a}, {name, /*zero_init=*/false, /*inplace_safe=*/false}, [&] {
        return [forward, scratch = outer * inner](const float* const* in,
                                                  float* o) {
          std::vector<int64_t> arg(scratch);
          forward(in[0], o, arg.data());
        };
      });
  return result;
}

}  // namespace

Tensor Max(const Tensor& a, int64_t dim, bool keepdim) {
  CONFORMER_PROFILE_SCOPE("max");
  return ExtremeOverDim(
      a, dim, keepdim, [](float c, float b) { return c > b; },
      -std::numeric_limits<float>::infinity(), "Max");
}

Tensor Min(const Tensor& a, int64_t dim, bool keepdim) {
  CONFORMER_PROFILE_SCOPE("min");
  return ExtremeOverDim(
      a, dim, keepdim, [](float c, float b) { return c < b; },
      std::numeric_limits<float>::infinity(), "Min");
}

}  // namespace conformer
