#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/alloc_stats.h"
#include "tensor/capture.h"
#include "util/metrics.h"

namespace conformer {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::vector<int64_t> ContiguousStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

TensorImpl::TensorImpl(Shape shape_in, std::vector<float> values)
    : data(std::move(values)), shape(std::move(shape_in)) {
  CONFORMER_CHECK_EQ(static_cast<int64_t>(data.size()), NumElements(shape))
      << "data size does not match shape " << ShapeToString(shape);
  internal::RecordAlloc(static_cast<int64_t>(data.size()) * sizeof(float));
}

TensorImpl::~TensorImpl() {
  internal::RecordFree(static_cast<int64_t>(data.size()) * sizeof(float));
  internal::MaybeRecycleBuffer(&data);
}

void TensorImpl::AccumulateGrad(const float* delta, int64_t n) {
  CONFORMER_CHECK_EQ(n, static_cast<int64_t>(data.size()));
  if (grad.empty()) grad.assign(data.size(), 0.0f);
  for (int64_t i = 0; i < n; ++i) grad[i] += delta[i];
}

// -- Factories ----------------------------------------------------------

Tensor Tensor::Zeros(const Shape& shape) {
  return Tensor(
      std::make_shared<TensorImpl>(shape, internal::AcquireBuffer(NumElements(shape))));
}

Tensor Tensor::Ones(const Shape& shape) { return Full(shape, 1.0f); }

Tensor Tensor::Full(const Shape& shape, float value) {
  return Tensor(std::make_shared<TensorImpl>(
      shape, std::vector<float>(NumElements(shape), value)));
}

Tensor Tensor::FromVector(std::vector<float> values, const Shape& shape) {
  return Tensor(std::make_shared<TensorImpl>(shape, std::move(values)));
}

Tensor Tensor::Arange(int64_t n, float start, float step) {
  std::vector<float> values(n);
  for (int64_t i = 0; i < n; ++i) values[i] = start + step * static_cast<float>(i);
  return FromVector(std::move(values), {n});
}

Tensor Tensor::Randn(const Shape& shape, Rng* rng) {
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  std::vector<float> values(NumElements(shape));
  r.FillNormal(&values);
  return FromVector(std::move(values), shape);
}

Tensor Tensor::Rand(const Shape& shape, float lo, float hi, Rng* rng) {
  Rng& r = rng != nullptr ? *rng : GlobalRng();
  std::vector<float> values(NumElements(shape));
  for (float& v : values) v = static_cast<float>(r.Uniform(lo, hi));
  return FromVector(std::move(values), shape);
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t = Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) t.data()[i * n + i] = 1.0f;
  return t;
}

// -- Introspection ------------------------------------------------------

const Shape& Tensor::shape() const {
  CONFORMER_CHECK(defined()) << "shape() on an undefined tensor";
  return impl_->shape;
}

int64_t Tensor::size(int64_t d) const {
  const Shape& s = shape();
  int64_t rank = static_cast<int64_t>(s.size());
  if (d < 0) d += rank;
  CONFORMER_CHECK(d >= 0 && d < rank)
      << "dim " << d << " out of range for shape " << ShapeToString(s);
  return s[d];
}

const float* Tensor::data() const {
  CONFORMER_CHECK(defined());
  return impl_->data.data();
}

float* Tensor::data() {
  CONFORMER_CHECK(defined());
  return impl_->data.data();
}

float Tensor::item() const {
  CONFORMER_CHECK_EQ(numel(), 1) << "item() requires a single-element tensor";
  return impl_->data[0];
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  const Shape& s = shape();
  CONFORMER_CHECK_EQ(static_cast<int64_t>(index.size()),
                     static_cast<int64_t>(s.size()));
  std::vector<int64_t> strides = ContiguousStrides(s);
  int64_t offset = 0;
  int64_t d = 0;
  for (int64_t i : index) {
    CONFORMER_CHECK(i >= 0 && i < s[d])
        << "index " << i << " out of range in dim " << d;
    offset += i * strides[d];
    ++d;
  }
  return impl_->data[offset];
}

namespace {
void AppendSlice(std::ostringstream& out, const float* data, const Shape& shape,
                 const std::vector<int64_t>& strides, int64_t dim,
                 int64_t offset, int64_t max_per_dim) {
  if (dim == static_cast<int64_t>(shape.size())) {
    out << data[offset];
    return;
  }
  out << "[";
  int64_t n = shape[dim];
  int64_t shown = std::min(n, max_per_dim);
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    AppendSlice(out, data, shape, strides, dim + 1, offset + i * strides[dim],
                max_per_dim);
  }
  if (shown < n) out << ", ...";
  out << "]";
}
}  // namespace

std::string Tensor::ToString(int64_t max_per_dim) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape()) << " ";
  AppendSlice(out, data(), shape(), ContiguousStrides(shape()), 0, 0,
              max_per_dim);
  return out.str();
}

// -- Autograd -----------------------------------------------------------

bool Tensor::requires_grad() const { return defined() && impl_->requires_grad; }

Tensor& Tensor::set_requires_grad(bool value) {
  CONFORMER_CHECK(defined());
  impl_->requires_grad = value;
  return *this;
}

bool Tensor::has_grad() const { return defined() && !impl_->grad.empty(); }

Tensor Tensor::grad() const {
  CONFORMER_CHECK(defined());
  if (impl_->grad.empty()) return Tensor::Zeros(impl_->shape);
  return Tensor::FromVector(impl_->grad, impl_->shape);
}

float* Tensor::grad_data() {
  CONFORMER_CHECK(defined());
  if (impl_->grad.empty()) impl_->grad.assign(impl_->data.size(), 0.0f);
  return impl_->grad.data();
}

void Tensor::ZeroGrad() {
  CONFORMER_CHECK(defined());
  impl_->grad.clear();
}

Tensor Tensor::Detach() const {
  CONFORMER_CHECK(defined());
  // Fresh impl with copied values: no tape, no leaf status.
  auto impl = std::make_shared<TensorImpl>(impl_->shape, impl_->data);
  Tensor result(std::move(impl));
  internal::MaybeCaptureAlias(result, *this, "Detach");
  return result;
}

Tensor Tensor::Clone() const {
  CONFORMER_CHECK(defined());
  Tensor result = Tensor::FromVector(impl_->data, impl_->shape);
  internal::MaybeCaptureAlias(result, *this, "Clone");
  return result;
}

void Tensor::CopyDataFrom(const Tensor& src) {
  CONFORMER_CHECK(defined() && src.defined());
  CONFORMER_CHECK_EQ(numel(), src.numel());
  impl_->data = src.impl_->data;
}

// -- Recording plumbing --------------------------------------------------

namespace {
thread_local bool g_recording_enabled = true;
thread_local bool g_pooling_enabled = false;

// Recycled activation buffers of the calling thread, sorted ascending by
// capacity. Bounded so a one-off huge batch cannot pin memory forever.
struct BufferPool {
  // Hard caps: total retained bytes and buffer count per thread.
  static constexpr int64_t kMaxBytes = int64_t{256} << 20;
  static constexpr size_t kMaxBuffers = 4096;

  std::vector<std::vector<float>> buffers;  // sorted by capacity()
  int64_t bytes = 0;
};

BufferPool& Pool() {
  thread_local BufferPool pool;
  return pool;
}

bool CapacityLess(const std::vector<float>& buf, size_t capacity) {
  return buf.capacity() < capacity;
}
}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_recording_enabled) {
  g_recording_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_recording_enabled = previous_; }

bool GradRecordingEnabled() { return g_recording_enabled; }

InferenceModeGuard::InferenceModeGuard()
    : previous_recording_(g_recording_enabled),
      previous_pooling_(g_pooling_enabled) {
  g_recording_enabled = false;
  g_pooling_enabled = true;
}

InferenceModeGuard::~InferenceModeGuard() {
  g_recording_enabled = previous_recording_;
  g_pooling_enabled = previous_pooling_;
}

bool BufferPoolEnabled() { return g_pooling_enabled; }

void ClearBufferPool() {
  BufferPool& pool = Pool();
  pool.buffers.clear();
  pool.buffers.shrink_to_fit();
  pool.bytes = 0;
}

namespace internal {

std::vector<float> AcquireBuffer(int64_t n) {
  if (!g_pooling_enabled || n <= 0) {
    return std::vector<float>(static_cast<size_t>(n < 0 ? 0 : n));
  }
  static metrics::Counter& hits =
      metrics::Registry::Global().GetCounter("tensor.pool_hits");
  static metrics::Counter& misses =
      metrics::Registry::Global().GetCounter("tensor.pool_misses");
  BufferPool& pool = Pool();
  const size_t want = static_cast<size_t>(n);
  auto it = std::lower_bound(pool.buffers.begin(), pool.buffers.end(), want,
                             CapacityLess);
  // Refuse grossly oversized buffers (capacity > 4n): handing a huge buffer
  // to a tiny tensor would starve the large requests the buffer was kept for.
  if (it != pool.buffers.end() && it->capacity() <= 4 * want) {
    std::vector<float> buf = std::move(*it);
    pool.bytes -= static_cast<int64_t>(buf.capacity()) * sizeof(float);
    pool.buffers.erase(it);
    buf.assign(want, 0.0f);  // Same zero-fill as std::vector<float>(n).
    hits.Increment();
    return buf;
  }
  misses.Increment();
  return std::vector<float>(want);
}

void MaybeRecycleBuffer(std::vector<float>* data) {
  if (!g_pooling_enabled || data->capacity() == 0) return;
  BufferPool& pool = Pool();
  const int64_t bytes = static_cast<int64_t>(data->capacity()) * sizeof(float);
  if (pool.buffers.size() >= BufferPool::kMaxBuffers ||
      pool.bytes + bytes > BufferPool::kMaxBytes) {
    return;  // Pool full: let the vector free normally.
  }
  auto it = std::lower_bound(pool.buffers.begin(), pool.buffers.end(),
                             data->capacity(), CapacityLess);
  pool.buffers.insert(it, std::move(*data));
  pool.bytes += bytes;
  data->clear();
  data->shrink_to_fit();
}

bool ShouldRecord(const std::vector<Tensor>& inputs) {
  if (!g_recording_enabled) return false;
  for (const Tensor& t : inputs) {
    if (t.defined() && (t.requires_grad() || t.impl()->node != nullptr)) {
      return true;
    }
  }
  return false;
}

Tensor MakeOpResult(Shape shape, std::vector<float> values,
                    std::vector<Tensor> inputs,
                    std::function<void(TensorImpl&)> backward,
                    const char* op_name) {
  auto impl = std::make_shared<TensorImpl>(std::move(shape), std::move(values));
  if (ShouldRecord(inputs)) {
    auto node = std::make_shared<AutogradNode>();
    node->op_name = op_name;
    node->backward = std::move(backward);
    node->inputs.reserve(inputs.size());
    for (const Tensor& t : inputs) node->inputs.push_back(t.impl());
    impl->node = std::move(node);
    impl->requires_grad = true;
  }
  Tensor result(std::move(impl));
  if (CaptureSink* sink = ActiveCaptureSink()) {
    sink->RecordRaw(result, op_name);
  }
  return result;
}

}  // namespace internal
}  // namespace conformer
