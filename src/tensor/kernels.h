// Raw float-array compute kernels shared by op forward and backward passes.
// These know nothing about autograd.
//
// Threading: the hot loops run on ThreadPool::Global() via ParallelFor.
// Every kernel here is deterministic regardless of the thread count: chunk
// boundaries depend only on the range and grain, each output element is
// written by exactly one chunk, and per-element accumulation (e.g. the k-loop
// of Gemm) stays in its sequential order. See docs/THREADING.md.

#ifndef CONFORMER_TENSOR_KERNELS_H_
#define CONFORMER_TENSOR_KERNELS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace conformer::kernels {

/// Minimum elements per chunk for cheap elementwise loops — small enough to
/// engage the pool on mid-sized tensors, large enough that dispatch overhead
/// stays negligible.
inline constexpr int64_t kGrainElementwise = 1 << 14;

/// Minimum elements per chunk for strided/odometer loops, whose per-element
/// cost is a few times higher than contiguous elementwise loops.
inline constexpr int64_t kGrainStrided = 1 << 12;

/// Target multiply-accumulates per Gemm row-block chunk.
inline constexpr int64_t kGrainGemmMacs = 1 << 15;

/// C (m x n) += or = A (m x k) * B (k x n), row-major, with optional
/// transposes interpreted on the logical matrices. Zero-sized problems are
/// explicit no-ops: m == 0 or n == 0 writes nothing; k == 0 zero-fills C
/// (or leaves it untouched when `accumulate`).
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c, bool accumulate);

/// out[i] += alpha * x[i]
void Axpy(int64_t n, float alpha, const float* x, float* out);

/// The shape both operands broadcast to (numpy rules); CHECK-fails if
/// incompatible.
Shape BroadcastShape(const Shape& a, const Shape& b);

/// Strides for reading a tensor of shape `from` as if it had shape `to`
/// (stride 0 on broadcast dimensions). `from` must broadcast to `to`.
std::vector<int64_t> BroadcastStrides(const Shape& from, const Shape& to);

/// Applies `f(a_i, b_i)` elementwise with broadcasting; `out` must have
/// NumElements(out_shape) entries.
template <typename Fn>
void BroadcastBinary(const float* a, const Shape& a_shape, const float* b,
                     const Shape& b_shape, float* out, const Shape& out_shape,
                     Fn f) {
  const int64_t n = NumElements(out_shape);
  if (a_shape == out_shape && b_shape == out_shape) {
    ParallelFor(0, n, kGrainElementwise, [&](int64_t cb, int64_t ce) {
      for (int64_t i = cb; i < ce; ++i) out[i] = f(a[i], b[i]);
    });
    return;
  }
  const std::vector<int64_t> a_strides = BroadcastStrides(a_shape, out_shape);
  const std::vector<int64_t> b_strides = BroadcastStrides(b_shape, out_shape);
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  ParallelFor(0, n, kGrainStrided, [&](int64_t cb, int64_t ce) {
    // Seed the odometer at this chunk's flat start index.
    std::vector<int64_t> index(rank, 0);
    int64_t a_off = 0;
    int64_t b_off = 0;
    int64_t rem = cb;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % out_shape[d];
      rem /= out_shape[d];
      a_off += index[d] * a_strides[d];
      b_off += index[d] * b_strides[d];
    }
    for (int64_t i = cb; i < ce; ++i) {
      out[i] = f(a[a_off], b[b_off]);
      // Odometer increment with incremental offset updates.
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        a_off += a_strides[d];
        b_off += b_strides[d];
        if (index[d] < out_shape[d]) break;
        index[d] = 0;
        a_off -= a_strides[d] * out_shape[d];
        b_off -= b_strides[d] * out_shape[d];
      }
    }
  });
}

/// Like BroadcastBinary, but when both operands already have the output
/// shape, each ParallelFor chunk is handed whole to `span(a+cb, b+cb,
/// out+cb, len)` — the hook the SIMD layer (tensor/vec/vec.h) plugs into.
/// Chunk boundaries are identical to BroadcastBinary's, so the 1-vs-N-thread
/// determinism contract is unchanged. The strided broadcast path still runs
/// the per-element functor `f`.
template <typename Fn, typename SpanFn>
void BroadcastBinarySpan(const float* a, const Shape& a_shape, const float* b,
                         const Shape& b_shape, float* out,
                         const Shape& out_shape, Fn f, SpanFn span) {
  if (a_shape == out_shape && b_shape == out_shape) {
    const int64_t n = NumElements(out_shape);
    ParallelFor(0, n, kGrainElementwise, [&](int64_t cb, int64_t ce) {
      span(a + cb, b + cb, out + cb, ce - cb);
    });
    return;
  }
  BroadcastBinary(a, a_shape, b, b_shape, out, out_shape, f);
}

/// Sums `grad` (of shape `grad_shape`) down to `target_shape` (which must
/// broadcast to `grad_shape`), writing into `out` (pre-zeroed by caller or
/// accumulated; this function ACCUMULATES).
void ReduceGradToShape(const float* grad, const Shape& grad_shape,
                       float* out, const Shape& target_shape);

}  // namespace conformer::kernels

#endif  // CONFORMER_TENSOR_KERNELS_H_
