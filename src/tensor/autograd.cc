// Reverse-mode backpropagation over the tape recorded by the ops.

#include <unordered_set>

#include "tensor/tensor.h"
#include "util/profiler.h"

namespace conformer {

namespace {

// Iterative post-order DFS producing children-before-parents order; the
// reverse of the accumulated list visits each node before its inputs'
// producers, which is the order backward functions must run in.
void TopologicalOrder(TensorImpl* root,
                      std::vector<TensorImpl*>* order) {
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* impl;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (root->node != nullptr) stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    AutogradNode* node = frame.impl->node.get();
    if (frame.next_input < node->inputs.size()) {
      TensorImpl* input = node->inputs[frame.next_input].get();
      ++frame.next_input;
      if (input->node != nullptr && visited.insert(input).second) {
        stack.push_back({input, 0});
      }
    } else {
      order->push_back(frame.impl);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward(bool retain_graph) {
  CONFORMER_PROFILE_SCOPE_CAT("autograd", "backward");
  CONFORMER_CHECK(defined());
  CONFORMER_CHECK_EQ(numel(), 1)
      << "Backward() must start from a scalar; got shape "
      << ShapeToString(shape());
  TensorImpl* root = impl_.get();
  if (root->node == nullptr && !root->requires_grad) return;

  std::vector<TensorImpl*> order;
  TopologicalOrder(root, &order);

  // Non-leaf gradients are scratch space for this pass: clear any residue
  // from an earlier retain_graph backward so repeated passes don't
  // double-count. Leaf gradients keep accumulating across passes.
  for (TensorImpl* impl : order) impl->grad.clear();

  const float kSeed = 1.0f;
  root->AccumulateGrad(&kSeed, 1);

  // `order` is post-order (inputs first); walk it backwards so each node's
  // output gradient is complete before its backward function runs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* impl = *it;
    if (impl->grad.empty()) continue;  // No gradient flowed here.
    // op_name is a string literal owned by the recording op, so the profiler
    // can keep the pointer.
    CONFORMER_PROFILE_SCOPE_CAT("bwd", impl->node->op_name);
    impl->node->backward(*impl);
  }

  if (!retain_graph) {
    for (TensorImpl* impl : order) impl->node.reset();
  }
}

}  // namespace conformer
