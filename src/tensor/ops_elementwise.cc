#include <cmath>

#include "tensor/capture.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/profiler.h"

namespace conformer {

namespace {

// Adapters turning a scalar functor into a span function, for ops without a
// dedicated SIMD kernel in tensor/vec.
template <typename Fn>
auto ScalarBinarySpan(Fn f) {
  return [f](const float* a, const float* b, float* o, int64_t n) {
    for (int64_t i = 0; i < n; ++i) o[i] = f(a[i], b[i]);
  };
}
template <typename Fn>
auto ScalarUnarySpan(Fn f) {
  return [f](const float* a, float* o, int64_t n) {
    for (int64_t i = 0; i < n; ++i) o[i] = f(a[i]);
  };
}

// Shared plumbing for broadcasting binary ops. `f` computes the value and
// serves the strided broadcast path; `span` computes whole contiguous chunks
// when no broadcasting is needed (usually a dispatched vec:: kernel and
// bitwise-equal to looping `f` — except where noted at the call site);
// `dfda` / `dfdb` compute local partials from (a_i, b_i, out_i).
template <typename Fn, typename SpanFn, typename DfA, typename DfB>
Tensor BinaryOpSpan(const Tensor& a, const Tensor& b, Fn f, SpanFn span,
                    DfA dfda, DfB dfdb, const char* name) {
  CONFORMER_PROFILE_SCOPE(name);
  CONFORMER_CHECK(a.defined() && b.defined()) << name << " on undefined tensor";
  const Shape out_shape = kernels::BroadcastShape(a.shape(), b.shape());
  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));
  kernels::BroadcastBinarySpan(a.data(), a.shape(), b.data(), b.shape(),
                               out.data(), out_shape, f, span);
  Tensor a_in = a;
  Tensor b_in = b;
  auto backward = [a_in, b_in, out_shape, dfda, dfdb](TensorImpl& self) mutable {
    const int64_t n = NumElements(out_shape);
    // Local gradient wrt each input, then reduce over broadcast dims.
    std::vector<float> local(n);
    const auto scale_by_grad = [&local, &self, n] {
      ParallelFor(0, n, kernels::kGrainElementwise,
                  [&](int64_t cb, int64_t ce) {
                    for (int64_t i = cb; i < ce; ++i) local[i] *= self.grad[i];
                  });
    };
    if (a_in.requires_grad() || a_in.impl()->node != nullptr) {
      kernels::BroadcastBinary(a_in.data(), a_in.shape(), b_in.data(),
                               b_in.shape(), local.data(), out_shape, dfda);
      scale_by_grad();
      if (a_in.shape() == out_shape) {
        a_in.impl()->AccumulateGrad(local.data(), n);
      } else {
        std::vector<float> reduced(a_in.numel(), 0.0f);
        kernels::ReduceGradToShape(local.data(), out_shape, reduced.data(),
                                   a_in.shape());
        a_in.impl()->AccumulateGrad(reduced.data(), a_in.numel());
      }
    }
    if (b_in.requires_grad() || b_in.impl()->node != nullptr) {
      kernels::BroadcastBinary(a_in.data(), a_in.shape(), b_in.data(),
                               b_in.shape(), local.data(), out_shape, dfdb);
      scale_by_grad();
      if (b_in.shape() == out_shape) {
        b_in.impl()->AccumulateGrad(local.data(), n);
      } else {
        std::vector<float> reduced(b_in.numel(), 0.0f);
        kernels::ReduceGradToShape(local.data(), out_shape, reduced.data(),
                                   b_in.shape());
        b_in.impl()->AccumulateGrad(reduced.data(), b_in.numel());
      }
    }
  };
  Tensor result = internal::MakeOpResult(out_shape, std::move(out), {a, b},
                                         std::move(backward), name);
  // BroadcastBinary fully overwrites and reads operand i of iteration i only
  // within that iteration, so replay with out == in[0] is safe whenever the
  // first operand is not broadcast.
  internal::MaybeCaptureStep(
      result, {a, b},
      {name, /*zero_init=*/false, /*inplace_safe=*/a.shape() == out_shape},
      [&] {
        return [f, span, a_shape = a.shape(), b_shape = b.shape(),
                out_shape](const float* const* in, float* o) {
          kernels::BroadcastBinarySpan(in[0], a_shape, in[1], b_shape, o,
                                       out_shape, f, span);
        };
      });
  return result;
}

template <typename Fn, typename DfA, typename DfB>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fn f, DfA dfda, DfB dfdb,
                const char* name) {
  return BinaryOpSpan(a, b, f, ScalarBinarySpan(f), dfda, dfdb, name);
}

// The forward loop shared by the eager path and the captured replay closure
// of every unary op: `span` computes one contiguous chunk at a time.
template <typename SpanFn>
void UnaryForward(int64_t n, SpanFn span, const float* a, float* out) {
  ParallelFor(0, n, kernels::kGrainElementwise, [&](int64_t cb, int64_t ce) {
    span(a + cb, out + cb, ce - cb);
  });
}

// Shared plumbing for unary ops: `span` computes whole contiguous output
// chunks from input chunks, `df` computes d out_i / d a_i from (a_i, out_i).
template <typename SpanFn, typename Df>
Tensor UnaryOpSpan(const Tensor& a, SpanFn span, Df df, const char* name) {
  CONFORMER_PROFILE_SCOPE(name);
  CONFORMER_CHECK(a.defined()) << name << " on undefined tensor";
  const int64_t n = a.numel();
  std::vector<float> out = internal::AcquireBuffer(n);
  UnaryForward(n, span, a.data(), out.data());
  Tensor a_in = a;
  auto backward = [a_in, df](TensorImpl& self) mutable {
    const int64_t n = static_cast<int64_t>(self.data.size());
    std::vector<float> delta(n);
    const float* ad = a_in.data();
    ParallelFor(0, n, kernels::kGrainElementwise, [&](int64_t cb, int64_t ce) {
      for (int64_t i = cb; i < ce; ++i) {
        delta[i] = self.grad[i] * df(ad[i], self.data[i]);
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), n);
  };
  Tensor result = internal::MakeOpResult(a.shape(), std::move(out), {a},
                                         std::move(backward), name);
  internal::MaybeCaptureStep(
      result, {a}, {name, /*zero_init=*/false, /*inplace_safe=*/true}, [&] {
        return [n, span](const float* const* in, float* o) {
          UnaryForward(n, span, in[0], o);
        };
      });
  return result;
}

// `f` computes out_i from a_i, applied chunk-by-chunk via ScalarUnarySpan.
template <typename Fn, typename Df>
Tensor UnaryOp(const Tensor& a, Fn f, Df df, const char* name) {
  return UnaryOpSpan(a, ScalarUnarySpan(f), df, name);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOpSpan(
      a, b, [](float x, float y) { return x + y; }, vec::AddN,
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; },
      "Add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOpSpan(
      a, b, [](float x, float y) { return x - y; }, vec::SubN,
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; },
      "Sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOpSpan(
      a, b, [](float x, float y) { return x * y; }, vec::MulN,
      [](float, float y) { return y; }, [](float x, float) { return x; },
      "Mul");
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOpSpan(
      a, b, [](float x, float y) { return x / y; }, vec::DivN,
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); }, "Div");
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  // vec::MaxN matches `x >= y ? x : y` for all ordered lanes and ties (first
  // operand wins a tie); lanes with a NaN operand may differ from the ternary
  // (SSE max semantics, identical across SIMD levels).
  return BinaryOpSpan(
      a, b, [](float x, float y) { return x >= y ? x : y; }, vec::MaxN,
      [](float x, float y) { return x >= y ? 1.0f : 0.0f; },
      [](float x, float y) { return x >= y ? 0.0f : 1.0f; }, "Maximum");
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOpSpan(
      a,
      [s](const float* x, float* o, int64_t n) { vec::AddScalarN(x, s, o, n); },
      [](float, float) { return 1.0f; }, "AddScalar");
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOpSpan(
      a,
      [s](const float* x, float* o, int64_t n) { vec::MulScalarN(x, s, o, n); },
      [s](float, float) { return s; }, "MulScalar");
}

Tensor PowScalar(const Tensor& a, float p) {
  return UnaryOp(
      a, [p](float x) { return std::pow(x, p); },
      [p](float x, float) { return p * std::pow(x, p - 1.0f); }, "PowScalar");
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Exp(const Tensor& a) {
  // vec::ExpN is the shared polynomial exp (docs/SIMD.md): ~1 ulp of
  // std::exp, exact at 0, bitwise identical across SIMD levels.
  return UnaryOpSpan(a, vec::ExpN, [](float, float y) { return y; }, "Exp");
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; }, "Log");
}

Tensor Sqrt(const Tensor& a) {
  // Hardware sqrt is IEEE correctly-rounded, so vec::SqrtN == std::sqrt.
  return UnaryOpSpan(a, vec::SqrtN, [](float, float y) { return 0.5f / y; },
                     "Sqrt");
}

Tensor Abs(const Tensor& a) {
  return UnaryOpSpan(a, vec::AbsN,
                     [](float x, float) { return x >= 0.0f ? 1.0f : -1.0f; },
                     "Abs");
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; }, "Tanh");
}

Tensor Sigmoid(const Tensor& a) {
  // vec::SigmoidN uses the same tail-stable formulation (z = exp(-|x|),
  // branch on sign) built on the shared polynomial exp.
  return UnaryOpSpan(a, vec::SigmoidN,
                     [](float, float y) { return y * (1.0f - y); }, "Sigmoid");
}

Tensor Relu(const Tensor& a) {
  return UnaryOpSpan(a, vec::ReluN,
                     [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; },
                     "Relu");
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  constexpr float kB = 0.044715f;
  return UnaryOp(
      a,
      [](float x) {
        const float inner = kC * (x + kB * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float inner = kC * (x + kB * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kC * (1.0f + 3.0f * kB * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      },
      "Gelu");
}

Tensor Softplus(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        // log(1+e^x) = max(x,0) + log1p(e^{-|x|})
        return std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) {
        if (x >= 0.0f) {
          const float z = std::exp(-x);
          return 1.0f / (1.0f + z);
        }
        const float z = std::exp(x);
        return z / (1.0f + z);
      },
      "Softplus");
}

Tensor Sin(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sin(x); },
      [](float x, float) { return std::cos(x); }, "Sin");
}

Tensor Cos(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::cos(x); },
      [](float x, float) { return -std::sin(x); }, "Cos");
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  return UnaryOpSpan(
      a,
      [lo, hi](const float* x, float* o, int64_t n) {
        vec::ClampN(x, lo, hi, o, n);
      },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; },
      "Clamp");
}

Tensor AddDetached(const Tensor& a, const Tensor& b) {
  return Add(a, b.Detach());
}

}  // namespace conformer
