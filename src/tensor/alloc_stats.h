// Process-wide tensor allocation accounting. The Fig. 5 memory-cost bench
// compares peak allocation across attention mechanisms, so every TensorImpl
// reports its buffer size here.

#ifndef CONFORMER_TENSOR_ALLOC_STATS_H_
#define CONFORMER_TENSOR_ALLOC_STATS_H_

#include <cstdint>

namespace conformer {

/// \brief Snapshot of tensor buffer accounting.
struct AllocStats {
  int64_t current_bytes = 0;  ///< Bytes currently alive.
  int64_t peak_bytes = 0;     ///< High-water mark since the last reset.
  int64_t total_allocs = 0;   ///< Number of buffers created since reset.
};

/// Returns the current accounting snapshot.
AllocStats GetAllocStats();

/// Resets `peak_bytes` to the current live size and zeroes `total_allocs`.
void ResetAllocPeak();

namespace internal {
void RecordAlloc(int64_t bytes);
void RecordFree(int64_t bytes);
}  // namespace internal

}  // namespace conformer

#endif  // CONFORMER_TENSOR_ALLOC_STATS_H_
