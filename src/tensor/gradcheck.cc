#include "tensor/gradcheck.h"

#include <cmath>
#include <sstream>

namespace conformer {

GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    std::vector<Tensor> inputs, double eps, double tolerance) {
  GradCheckResult result;

  // Analytic gradients.
  for (Tensor& t : inputs) t.ZeroGrad();
  Tensor out = f(inputs);
  CONFORMER_CHECK_EQ(out.numel(), 1) << "gradcheck needs a scalar function";
  out.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (Tensor& t : inputs) {
    Tensor g = t.grad();
    analytic.emplace_back(g.data(), g.data() + g.numel());
  }

  // Numeric gradients by central differences, one element at a time.
  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    if (!t.requires_grad()) continue;
    for (int64_t i = 0; i < t.numel(); ++i) {
      const float original = t.data()[i];
      t.data()[i] = original + static_cast<float>(eps);
      double plus = 0.0;
      double minus = 0.0;
      {
        NoGradGuard guard;
        plus = f(inputs).item();
        t.data()[i] = original - static_cast<float>(eps);
        minus = f(inputs).item();
      }
      t.data()[i] = original;
      const double numeric = (plus - minus) / (2.0 * eps);
      const double error = std::fabs(numeric - analytic[ti][i]);
      const double scale = std::max({1.0, std::fabs(numeric),
                                     std::fabs(static_cast<double>(analytic[ti][i]))});
      result.max_abs_error = std::max(result.max_abs_error, error / scale);
      if (error / scale > tolerance) {
        std::ostringstream msg;
        msg << "input " << ti << " element " << i << ": analytic "
            << analytic[ti][i] << " vs numeric " << numeric;
        result.passed = false;
        result.message = msg.str();
        return result;
      }
    }
  }
  return result;
}

}  // namespace conformer
