#include "tensor/capture.h"

namespace conformer::internal {

namespace {
thread_local CaptureSink* g_capture_sink = nullptr;
}  // namespace

CaptureSink* ActiveCaptureSink() { return g_capture_sink; }

CaptureSink* SwapCaptureSink(CaptureSink* sink) {
  CaptureSink* previous = g_capture_sink;
  g_capture_sink = sink;
  return previous;
}

Tensor CaptureOpaque(const char* name, std::vector<Tensor> inputs,
                     std::function<Tensor(const std::vector<Tensor>&)> fn) {
  CaptureSink* sink = g_capture_sink;
  if (sink == nullptr) return fn(inputs);
  Tensor out;
  {
    // The composite's internal ops run eagerly but unrecorded; the sink
    // sees the whole call as one step.
    CaptureSuspendGuard suspend;
    out = fn(inputs);
  }
  sink->RecordOpaque(out, inputs, std::move(fn), name);
  return out;
}

}  // namespace conformer::internal
