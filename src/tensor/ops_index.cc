#include <algorithm>

#include "tensor/capture.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/profiler.h"

namespace conformer {

Tensor IndexSelect(const Tensor& a, int64_t dim,
                   const std::vector<int64_t>& indices) {
  CONFORMER_PROFILE_SCOPE("index_select");
  CONFORMER_CHECK(a.defined());
  const Shape& in_shape = a.shape();
  const int64_t rank = static_cast<int64_t>(in_shape.size());
  if (dim < 0) dim += rank;
  CONFORMER_CHECK(dim >= 0 && dim < rank);
  const int64_t size = in_shape[dim];
  for (int64_t idx : indices) {
    CONFORMER_CHECK(idx >= 0 && idx < size)
        << "index " << idx << " out of range [0, " << size << ")";
  }

  int64_t outer = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= in_shape[i];
  int64_t inner = 1;
  for (int64_t i = dim + 1; i < rank; ++i) inner *= in_shape[i];
  const int64_t count = static_cast<int64_t>(indices.size());

  Shape out_shape = in_shape;
  out_shape[dim] = count;
  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));
  const int64_t o_grain = std::max<int64_t>(
      1, kernels::kGrainStrided / std::max<int64_t>(1, count * inner));
  auto forward = [indices, outer, inner, size, count,
                  o_grain](const float* ad, float* dst) {
    ParallelFor(0, outer, o_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t c = 0; c < count; ++c) {
          const float* src = ad + (o * size + indices[c]) * inner;
          std::copy(src, src + inner, dst + (o * count + c) * inner);
        }
      }
    });
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  std::vector<int64_t> idx = indices;
  auto backward = [a_in, idx, outer, inner, size, count,
                   o_grain](TensorImpl& self) mutable {
    // Scatter-add: repeated indices accumulate, but only within an outer
    // slice — chunks over `outer` write disjoint delta ranges.
    std::vector<float> delta(a_in.numel(), 0.0f);
    const float* gd = self.grad.data();
    ParallelFor(0, outer, o_grain, [&](int64_t o0, int64_t o1) {
      for (int64_t o = o0; o < o1; ++o) {
        for (int64_t c = 0; c < count; ++c) {
          float* dst = delta.data() + (o * size + idx[c]) * inner;
          const float* src = gd + (o * count + c) * inner;
          for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
        }
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         {a}, std::move(backward), "IndexSelect");
  internal::MaybeCaptureStep(
      result, {a},
      {"IndexSelect", /*zero_init=*/false, /*inplace_safe=*/false}, [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor BatchedIndexSelect(const Tensor& a, const std::vector<int64_t>& indices,
                          int64_t k) {
  CONFORMER_PROFILE_SCOPE("batched_index_select");
  CONFORMER_CHECK(a.defined());
  CONFORMER_CHECK_EQ(a.dim(), 3) << "BatchedIndexSelect expects [B, L, D]";
  const int64_t batch = a.size(0);
  const int64_t length = a.size(1);
  const int64_t depth = a.size(2);
  CONFORMER_CHECK_EQ(static_cast<int64_t>(indices.size()), batch * k);
  for (int64_t idx : indices) {
    CONFORMER_CHECK(idx >= 0 && idx < length) << "index out of range";
  }

  std::vector<float> out = internal::AcquireBuffer(batch * k * depth);
  const int64_t b_grain = std::max<int64_t>(
      1, kernels::kGrainStrided / std::max<int64_t>(1, k * depth));
  auto forward = [indices, batch, length, depth, k,
                  b_grain](const float* ad, float* dst) {
    ParallelFor(0, batch, b_grain, [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) {
        for (int64_t c = 0; c < k; ++c) {
          const float* src = ad + (b * length + indices[b * k + c]) * depth;
          std::copy(src, src + depth, dst + (b * k + c) * depth);
        }
      }
    });
  };
  forward(a.data(), out.data());

  Tensor a_in = a;
  std::vector<int64_t> idx = indices;
  auto backward = [a_in, idx, batch, length, depth, k,
                   b_grain](TensorImpl& self) mutable {
    // Scatter-add stays within each batch's delta slice, so batches are
    // disjoint chunks.
    std::vector<float> delta(a_in.numel(), 0.0f);
    const float* gd = self.grad.data();
    ParallelFor(0, batch, b_grain, [&](int64_t b0, int64_t b1) {
      for (int64_t b = b0; b < b1; ++b) {
        for (int64_t c = 0; c < k; ++c) {
          float* dst = delta.data() + (b * length + idx[b * k + c]) * depth;
          const float* src = gd + (b * k + c) * depth;
          for (int64_t i = 0; i < depth; ++i) dst[i] += src[i];
        }
      }
    });
    a_in.impl()->AccumulateGrad(delta.data(), a_in.numel());
  };
  Tensor result = internal::MakeOpResult({batch, k, depth}, std::move(out), {a},
                                         std::move(backward),
                                         "BatchedIndexSelect");
  internal::MaybeCaptureStep(
      result, {a},
      {"BatchedIndexSelect", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], o);
        };
      });
  return result;
}

Tensor Roll(const Tensor& a, int64_t dim, int64_t shift) {
  CONFORMER_PROFILE_SCOPE("roll");
  CONFORMER_CHECK(a.defined());
  const int64_t size = a.size(dim);
  shift %= size;
  if (shift < 0) shift += size;
  std::vector<int64_t> indices(size);
  for (int64_t i = 0; i < size; ++i) {
    indices[i] = (i - shift % size + size) % size;
  }
  return IndexSelect(a, dim, indices);
}

}  // namespace conformer
