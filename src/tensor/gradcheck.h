// Numerical gradient checking for tests: compares analytic backward results
// against central finite differences.

#ifndef CONFORMER_TENSOR_GRADCHECK_H_
#define CONFORMER_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace conformer {

/// \brief Outcome of a gradient check.
struct GradCheckResult {
  bool passed = true;
  double max_abs_error = 0.0;
  std::string message;  ///< Set when failed: which input/element diverged.
};

/// Checks d f(inputs) / d inputs for a scalar-valued `f`. Each input is
/// perturbed elementwise by +/- eps (central differences). Inputs must have
/// requires_grad set by the caller.
GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& f,
    std::vector<Tensor> inputs, double eps = 1e-3, double tolerance = 5e-2);

}  // namespace conformer

#endif  // CONFORMER_TENSOR_GRADCHECK_H_
