#include <utility>

#include "tensor/capture.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "util/profiler.h"

namespace conformer {

namespace {

// Splits a rank>=2 shape into (batch dims, m, n).
void SplitMatmulShape(const Shape& shape, Shape* batch, int64_t* rows,
                      int64_t* cols) {
  const int64_t rank = static_cast<int64_t>(shape.size());
  CONFORMER_CHECK_GE(rank, 2) << "matmul operand must have rank >= 2";
  batch->assign(shape.begin(), shape.end() - 2);
  *rows = shape[rank - 2];
  *cols = shape[rank - 1];
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CONFORMER_PROFILE_SCOPE("matmul");
  CONFORMER_CHECK(a.defined() && b.defined());
  Shape a_batch;
  Shape b_batch;
  int64_t m = 0;
  int64_t ka = 0;
  int64_t kb = 0;
  int64_t n = 0;
  SplitMatmulShape(a.shape(), &a_batch, &m, &ka);
  SplitMatmulShape(b.shape(), &b_batch, &kb, &n);
  CONFORMER_CHECK_EQ(ka, kb) << "matmul inner dims differ: "
                             << ShapeToString(a.shape()) << " x "
                             << ShapeToString(b.shape());
  const int64_t k = ka;
  const Shape batch = kernels::BroadcastShape(a_batch, b_batch);
  const int64_t num_batches = NumElements(batch);

  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));

  // Map each output batch index to the (possibly broadcast) input batch.
  const std::vector<int64_t> a_strides = kernels::BroadcastStrides(a_batch, batch);
  const std::vector<int64_t> b_strides = kernels::BroadcastStrides(b_batch, batch);
  const int64_t brank = static_cast<int64_t>(batch.size());

  // Captured by value: these are reused inside the backward closure, which
  // outlives the enclosing scope. Maps a flat batch index to the (possibly
  // broadcast) input offsets.
  auto batch_offsets = [batch, a_strides, b_strides, brank](int64_t i) {
    int64_t a_off = 0;
    int64_t b_off = 0;
    int64_t rem = i;
    for (int64_t d = brank - 1; d >= 0; --d) {
      const int64_t idx = rem % batch[d];
      rem /= batch[d];
      a_off += idx * a_strides[d];
      b_off += idx * b_strides[d];
    }
    return std::pair<int64_t, int64_t>(a_off, b_off);
  };
  // Without broadcast, every batch owns disjoint slices of both inputs, so
  // the backward Gemm accumulations can run batch-parallel.
  const bool batches_disjoint = a_batch == batch && b_batch == batch;

  // Each batch writes its own out slice; the per-batch Gemm runs inline
  // when nested (its own ParallelFor covers the single-batch case). The
  // eager pass and the captured replay closure share this loop.
  auto forward = [batch_offsets, m, n, k, num_batches](const float* ad,
                                                       const float* bd,
                                                       float* od) {
    ParallelFor(0, num_batches, 1, [&](int64_t bb, int64_t be) {
      for (int64_t i = bb; i < be; ++i) {
        const auto [a_off, b_off] = batch_offsets(i);
        kernels::Gemm(false, false, m, n, k, ad + a_off * m * k,
                      bd + b_off * k * n, od + i * m * n, /*accumulate=*/false);
      }
    });
  };
  forward(a.data(), b.data(), out.data());

  Tensor a_in = a;
  Tensor b_in = b;
  auto backward = [a_in, b_in, m, n, k, num_batches, batch_offsets,
                   batches_disjoint](TensorImpl& self) mutable {
    const bool need_a = a_in.requires_grad() || a_in.impl()->node != nullptr;
    const bool need_b = b_in.requires_grad() || b_in.impl()->node != nullptr;
    const float* gd = self.grad.data();
    const float* ad = a_in.data();
    const float* bd = b_in.data();
    // dA = dOut * B^T, dB = A^T * dOut, accumulated per broadcast batch.
    std::vector<float> da;
    std::vector<float> db;
    if (need_a) da.assign(a_in.numel(), 0.0f);
    if (need_b) db.assign(b_in.numel(), 0.0f);
    auto batch_backward = [&](int64_t i) {
      const auto [a_off, b_off] = batch_offsets(i);
      const float* g = gd + i * m * n;
      if (need_a) {
        kernels::Gemm(false, true, m, k, n, g, bd + b_off * k * n,
                      da.data() + a_off * m * k, /*accumulate=*/true);
      }
      if (need_b) {
        kernels::Gemm(true, false, k, n, m, ad + a_off * m * k, g,
                      db.data() + b_off * k * n, /*accumulate=*/true);
      }
    };
    if (batches_disjoint) {
      ParallelFor(0, num_batches, 1, [&](int64_t bb, int64_t be) {
        for (int64_t i = bb; i < be; ++i) batch_backward(i);
      });
    } else {
      // Broadcast batches accumulate into shared input slices; keep the
      // fixed sequential order (deterministic and race-free).
      for (int64_t i = 0; i < num_batches; ++i) batch_backward(i);
    }
    if (need_a) a_in.impl()->AccumulateGrad(da.data(), a_in.numel());
    if (need_b) b_in.impl()->AccumulateGrad(db.data(), b_in.numel());
  };
  Tensor result = internal::MakeOpResult(std::move(out_shape), std::move(out),
                                         {a, b}, std::move(backward), "MatMul");
  internal::MaybeCaptureStep(
      result, {a, b}, {"MatMul", /*zero_init=*/false, /*inplace_safe=*/false},
      [&] {
        return [forward](const float* const* in, float* o) {
          forward(in[0], in[1], o);
        };
      });
  return result;
}

}  // namespace conformer
