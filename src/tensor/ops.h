// Differentiable tensor operations. Every function returns a fresh tensor
// and records an autograd node when recording is enabled (see NoGradGuard).
//
// Implementations are split across ops_*.cc by family:
//   elementwise | matmul | reduce | shape | index | conv | nn

#ifndef CONFORMER_TENSOR_OPS_H_
#define CONFORMER_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/random.h"

namespace conformer {

// -- Elementwise binary (numpy broadcasting) ------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
/// max(a, b) elementwise; gradient flows to the larger input (ties to `a`).
Tensor Maximum(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }

// -- Elementwise with scalar ----------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
/// a^p elementwise (a must be positive unless p is a small integer).
Tensor PowScalar(const Tensor& a, float p);

inline Tensor operator+(const Tensor& a, float s) { return AddScalar(a, s); }
inline Tensor operator-(const Tensor& a, float s) { return AddScalar(a, -s); }
inline Tensor operator*(const Tensor& a, float s) { return MulScalar(a, s); }
inline Tensor operator/(const Tensor& a, float s) { return MulScalar(a, 1.0f / s); }
inline Tensor operator*(float s, const Tensor& a) { return MulScalar(a, s); }

// -- Elementwise unary ------------------------------------------------------

Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
/// Gaussian error linear unit (tanh approximation).
Tensor Gelu(const Tensor& a);
/// log(1 + e^x), numerically stabilized.
Tensor Softplus(const Tensor& a);
Tensor Sin(const Tensor& a);
Tensor Cos(const Tensor& a);
/// Clamps values into [lo, hi]; gradient is zero outside the interval.
Tensor Clamp(const Tensor& a, float lo, float hi);

inline Tensor operator-(const Tensor& a) { return Neg(a); }

// -- Matrix multiplication ---------------------------------------------------

/// Batched matmul: [..., m, k] x [..., k, n] -> [..., m, n]. Leading batch
/// dims broadcast. Rank-2 inputs work as plain matmul.
Tensor MatMul(const Tensor& a, const Tensor& b);

// -- Reductions -------------------------------------------------------------

/// Sum over `dims` (all dims when empty). Negative dims allowed.
Tensor Sum(const Tensor& a, std::vector<int64_t> dims = {}, bool keepdim = false);
Tensor Mean(const Tensor& a, std::vector<int64_t> dims = {}, bool keepdim = false);
/// Max over one dim; gradient routes to the (first) argmax.
Tensor Max(const Tensor& a, int64_t dim, bool keepdim = false);
Tensor Min(const Tensor& a, int64_t dim, bool keepdim = false);
/// Population variance over `dims` (biased, matching LayerNorm's usage).
Tensor Variance(const Tensor& a, std::vector<int64_t> dims, bool keepdim = false);

// -- Shape manipulation -------------------------------------------------------

/// Reshape to `shape`; one entry may be -1 (inferred). Data order preserved.
Tensor Reshape(const Tensor& a, Shape shape);
/// Permutes dimensions; `perm` is the new order of old dims.
Tensor Permute(const Tensor& a, std::vector<int64_t> perm);
/// Swaps two dimensions.
Tensor Transpose(const Tensor& a, int64_t d0, int64_t d1);
/// Slice along `dim`: elements [start, end) with the given step.
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end,
             int64_t step = 1);
/// Concatenates along `dim`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& parts, int64_t dim);
/// Stacks equal-shaped tensors along a new leading `dim`.
Tensor StackTensors(const std::vector<Tensor>& parts, int64_t dim = 0);
Tensor Unsqueeze(const Tensor& a, int64_t dim);
Tensor Squeeze(const Tensor& a, int64_t dim);
/// Pads `dim` with `before`/`after` constant values.
Tensor Pad(const Tensor& a, int64_t dim, int64_t before, int64_t after,
           float value = 0.0f);
/// Pads `dim` by replicating the edge values (Autoformer's moving-average
/// padding convention).
Tensor ReplicatePad(const Tensor& a, int64_t dim, int64_t before, int64_t after);
/// Materializes a broadcast to `shape`.
Tensor BroadcastTo(const Tensor& a, const Shape& shape);
/// Repeats the tensor `repeats[d]` times along each dim.
Tensor Tile(const Tensor& a, const std::vector<int64_t>& repeats);
/// Reverses the order of elements along `dim`.
Tensor Flip(const Tensor& a, int64_t dim);
/// Splits along `dim` into equal chunks of size `chunk` (must divide the
/// dim size evenly).
std::vector<Tensor> Split(const Tensor& a, int64_t dim, int64_t chunk);

// -- Indexing -----------------------------------------------------------------

/// Selects rows along `dim` by `indices` (may repeat / reorder). Gradient
/// scatter-adds back.
Tensor IndexSelect(const Tensor& a, int64_t dim, const std::vector<int64_t>& indices);
/// Circular shift along `dim` by `shift` (positive rolls toward higher
/// indices), like torch.roll.
Tensor Roll(const Tensor& a, int64_t dim, int64_t shift);
/// Per-batch gather along dim 1 of a [B, L, D] tensor: `indices` holds B*K
/// row indices (batch-major); returns [B, K, D]. Gradient scatter-adds.
Tensor BatchedIndexSelect(const Tensor& a, const std::vector<int64_t>& indices,
                          int64_t k);

// -- Convolution / pooling -------------------------------------------------------

enum class PadMode { kZeros, kCircular, kReplicate };

/// 1-D convolution. input [B, Cin, L], weight [Cout, Cin, K], optional bias
/// [Cout]; `padding` added on both sides with `mode`; `dilation` spaces the
/// kernel taps (effective kernel span = (K-1)*dilation + 1); `stride` steps
/// the window, out_len = (padded_len - span) / stride + 1. Circular padding
/// folds whole-tile repeats, so any padding width is legal.
Tensor Conv1d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t padding, PadMode mode = PadMode::kZeros,
              int64_t dilation = 1, int64_t stride = 1);
/// 2-D convolution over [B, Cin, H, W] with weight [Cout, Cin, Kh, Kw] and
/// optional bias [Cout]; symmetric zero padding per axis, unit stride.
/// Composed from differentiable capture-instrumented primitives (im2col
/// slices + MatMul), so autograd, static-plan capture, and the threading /
/// SIMD determinism contracts are inherited rather than re-implemented.
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t padding_h, int64_t padding_w);
/// 1-D average pooling over the last dim: input [..., L], window `kernel`,
/// given stride. No implicit padding (compose with Pad/ReplicatePad).
Tensor AvgPool1d(const Tensor& input, int64_t kernel, int64_t stride);
/// 1-D max pooling over the last dim (gradient routes to the argmax).
Tensor MaxPool1d(const Tensor& input, int64_t kernel, int64_t stride);
/// Cumulative sum along `dim`.
Tensor Cumsum(const Tensor& a, int64_t dim);

// -- NN functionals ---------------------------------------------------------------

/// Softmax over `dim` (numerically stabilized).
Tensor Softmax(const Tensor& a, int64_t dim);
Tensor LogSoftmax(const Tensor& a, int64_t dim);
/// Inverted dropout; identity when `training` is false or p == 0.
Tensor DropoutOp(const Tensor& a, float p, bool training, Rng* rng = nullptr);
/// Mean squared error over all elements.
Tensor MseLoss(const Tensor& pred, const Tensor& target);
/// Mean absolute error over all elements.
Tensor MaeLoss(const Tensor& pred, const Tensor& target);

/// Adds `b` (must broadcast) — convenience for bias terms: a + b.
inline Tensor AddBias(const Tensor& a, const Tensor& b) { return Add(a, b); }

/// Elementwise a + b where the node is detached from `b`'s graph
/// (treats `b` as a constant).
Tensor AddDetached(const Tensor& a, const Tensor& b);

}  // namespace conformer

#endif  // CONFORMER_TENSOR_OPS_H_
