// Fixed logical-width vector types for the SIMD backends.
//
// This header is included by each backend translation unit with
// CONFORMER_SIMD_CAPABILITY_{SCALAR,SSE2,AVX2,NEON} defined; it provides a
// Vec8f (8 float lanes) and Vec4d (4 double lanes) whose operations are
// bitwise-equivalent across every backend:
//   * all arithmetic is per-lane IEEE single/double ops (mul, add, sub,
//     div, sqrt are correctly rounded on every target; never FMA),
//   * Min/Max use the SSE operand-order semantics (`a OP b ? a : b`,
//     second operand on ties/NaN), which the scalar backend reproduces,
//   * horizontal folds are NOT defined here — kernels_impl.h folds the 8
//     bins in one fixed pairwise order via ExtractLane so every backend
//     brackets reductions identically.
// Pow2i builds 2^n from an integer-valued float via exponent-bit
// construction — exact in every backend for n in [-126, 127].

#ifndef CONFORMER_TENSOR_VEC_VEC8F_H_
#define CONFORMER_TENSOR_VEC_VEC8F_H_

#include <cstdint>
#include <cstring>

#if defined(CONFORMER_SIMD_CAPABILITY_AVX2) || \
    defined(CONFORMER_SIMD_CAPABILITY_SSE2)
#include <immintrin.h>
#elif defined(CONFORMER_SIMD_CAPABILITY_NEON)
#include <arm_neon.h>
#endif

namespace conformer::vec {

#if defined(CONFORMER_SIMD_CAPABILITY_AVX2)

struct Vec8f {
  __m256 v;
  static Vec8f Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }
  static Vec8f Broadcast(float s) { return {_mm256_set1_ps(s)}; }
  static Vec8f Zero() { return {_mm256_setzero_ps()}; }
  friend Vec8f operator+(Vec8f a, Vec8f b) {
    return {_mm256_add_ps(a.v, b.v)};
  }
  friend Vec8f operator-(Vec8f a, Vec8f b) {
    return {_mm256_sub_ps(a.v, b.v)};
  }
  friend Vec8f operator*(Vec8f a, Vec8f b) {
    return {_mm256_mul_ps(a.v, b.v)};
  }
  friend Vec8f operator/(Vec8f a, Vec8f b) {
    return {_mm256_div_ps(a.v, b.v)};
  }
  static Vec8f Min(Vec8f a, Vec8f b) { return {_mm256_min_ps(a.v, b.v)}; }
  static Vec8f Max(Vec8f a, Vec8f b) { return {_mm256_max_ps(a.v, b.v)}; }
  static Vec8f Abs(Vec8f a) {
    const __m256 mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    return {_mm256_and_ps(a.v, mask)};
  }
  static Vec8f Sqrt(Vec8f a) { return {_mm256_sqrt_ps(a.v)}; }
  /// Per lane: x >= 0 ? a : b (NaN selects b, matching scalar `x >= 0`).
  static Vec8f SelectGeZero(Vec8f x, Vec8f a, Vec8f b) {
    const __m256 mask = _mm256_cmp_ps(x.v, _mm256_setzero_ps(), _CMP_GE_OQ);
    return {_mm256_blendv_ps(b.v, a.v, mask)};
  }
  /// 2^n for integer-valued n in [-126, 127].
  static Vec8f Pow2i(Vec8f n) {
    __m256i i = _mm256_cvttps_epi32(n.v);
    i = _mm256_slli_epi32(_mm256_add_epi32(i, _mm256_set1_epi32(127)), 23);
    return {_mm256_castsi256_ps(i)};
  }
  float ExtractLane(int lane) const {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v);
    return tmp[lane];
  }
};

struct Vec4d {
  __m256d v;
  static Vec4d Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
  static Vec4d Broadcast(double s) { return {_mm256_set1_pd(s)}; }
  static Vec4d Zero() { return {_mm256_setzero_pd()}; }
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  double ExtractLane(int lane) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[lane];
  }
};

#elif defined(CONFORMER_SIMD_CAPABILITY_SSE2)

struct Vec8f {
  __m128 lo, hi;  // lanes 0-3, 4-7
  static Vec8f Load(const float* p) {
    return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }
  void Store(float* p) const {
    _mm_storeu_ps(p, lo);
    _mm_storeu_ps(p + 4, hi);
  }
  static Vec8f Broadcast(float s) { return {_mm_set1_ps(s), _mm_set1_ps(s)}; }
  static Vec8f Zero() { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
  friend Vec8f operator+(Vec8f a, Vec8f b) {
    return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
  }
  friend Vec8f operator-(Vec8f a, Vec8f b) {
    return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
  }
  friend Vec8f operator*(Vec8f a, Vec8f b) {
    return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
  }
  friend Vec8f operator/(Vec8f a, Vec8f b) {
    return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
  }
  static Vec8f Min(Vec8f a, Vec8f b) {
    return {_mm_min_ps(a.lo, b.lo), _mm_min_ps(a.hi, b.hi)};
  }
  static Vec8f Max(Vec8f a, Vec8f b) {
    return {_mm_max_ps(a.lo, b.lo), _mm_max_ps(a.hi, b.hi)};
  }
  static Vec8f Abs(Vec8f a) {
    const __m128 mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
    return {_mm_and_ps(a.lo, mask), _mm_and_ps(a.hi, mask)};
  }
  static Vec8f Sqrt(Vec8f a) { return {_mm_sqrt_ps(a.lo), _mm_sqrt_ps(a.hi)}; }
  static Vec8f SelectGeZero(Vec8f x, Vec8f a, Vec8f b) {
    const __m128 zero = _mm_setzero_ps();
    const __m128 mlo = _mm_cmpge_ps(x.lo, zero);
    const __m128 mhi = _mm_cmpge_ps(x.hi, zero);
    return {_mm_or_ps(_mm_and_ps(mlo, a.lo), _mm_andnot_ps(mlo, b.lo)),
            _mm_or_ps(_mm_and_ps(mhi, a.hi), _mm_andnot_ps(mhi, b.hi))};
  }
  static Vec8f Pow2i(Vec8f n) {
    const __m128i bias = _mm_set1_epi32(127);
    __m128i ilo = _mm_slli_epi32(
        _mm_add_epi32(_mm_cvttps_epi32(n.lo), bias), 23);
    __m128i ihi = _mm_slli_epi32(
        _mm_add_epi32(_mm_cvttps_epi32(n.hi), bias), 23);
    return {_mm_castsi128_ps(ilo), _mm_castsi128_ps(ihi)};
  }
  float ExtractLane(int lane) const {
    alignas(16) float tmp[8];
    _mm_store_ps(tmp, lo);
    _mm_store_ps(tmp + 4, hi);
    return tmp[lane];
  }
};

struct Vec4d {
  __m128d lo, hi;  // lanes 0-1, 2-3
  static Vec4d Load(const double* p) {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  void Store(double* p) const {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }
  static Vec4d Broadcast(double s) { return {_mm_set1_pd(s), _mm_set1_pd(s)}; }
  static Vec4d Zero() { return {_mm_setzero_pd(), _mm_setzero_pd()}; }
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  double ExtractLane(int lane) const {
    alignas(16) double tmp[4];
    _mm_store_pd(tmp, lo);
    _mm_store_pd(tmp + 2, hi);
    return tmp[lane];
  }
};

#elif defined(CONFORMER_SIMD_CAPABILITY_NEON)

struct Vec8f {
  float32x4_t lo, hi;
  static Vec8f Load(const float* p) { return {vld1q_f32(p), vld1q_f32(p + 4)}; }
  void Store(float* p) const {
    vst1q_f32(p, lo);
    vst1q_f32(p + 4, hi);
  }
  static Vec8f Broadcast(float s) { return {vdupq_n_f32(s), vdupq_n_f32(s)}; }
  static Vec8f Zero() { return Broadcast(0.0f); }
  friend Vec8f operator+(Vec8f a, Vec8f b) {
    return {vaddq_f32(a.lo, b.lo), vaddq_f32(a.hi, b.hi)};
  }
  friend Vec8f operator-(Vec8f a, Vec8f b) {
    return {vsubq_f32(a.lo, b.lo), vsubq_f32(a.hi, b.hi)};
  }
  friend Vec8f operator*(Vec8f a, Vec8f b) {
    return {vmulq_f32(a.lo, b.lo), vmulq_f32(a.hi, b.hi)};
  }
  friend Vec8f operator/(Vec8f a, Vec8f b) {
    return {vdivq_f32(a.lo, b.lo), vdivq_f32(a.hi, b.hi)};
  }
  // NEON vmin/vmax propagate NaN from either operand; route through the
  // SSE-semantics compare-select so all backends tie-break identically.
  static Vec8f Min(Vec8f a, Vec8f b) {
    const uint32x4_t mlo = vcltq_f32(a.lo, b.lo);
    const uint32x4_t mhi = vcltq_f32(a.hi, b.hi);
    return {vbslq_f32(mlo, a.lo, b.lo), vbslq_f32(mhi, a.hi, b.hi)};
  }
  static Vec8f Max(Vec8f a, Vec8f b) {
    const uint32x4_t mlo = vcgtq_f32(a.lo, b.lo);
    const uint32x4_t mhi = vcgtq_f32(a.hi, b.hi);
    return {vbslq_f32(mlo, a.lo, b.lo), vbslq_f32(mhi, a.hi, b.hi)};
  }
  static Vec8f Abs(Vec8f a) { return {vabsq_f32(a.lo), vabsq_f32(a.hi)}; }
  static Vec8f Sqrt(Vec8f a) { return {vsqrtq_f32(a.lo), vsqrtq_f32(a.hi)}; }
  static Vec8f SelectGeZero(Vec8f x, Vec8f a, Vec8f b) {
    const float32x4_t zero = vdupq_n_f32(0.0f);
    const uint32x4_t mlo = vcgeq_f32(x.lo, zero);
    const uint32x4_t mhi = vcgeq_f32(x.hi, zero);
    return {vbslq_f32(mlo, a.lo, b.lo), vbslq_f32(mhi, a.hi, b.hi)};
  }
  static Vec8f Pow2i(Vec8f n) {
    const int32x4_t bias = vdupq_n_s32(127);
    int32x4_t ilo = vshlq_n_s32(vaddq_s32(vcvtq_s32_f32(n.lo), bias), 23);
    int32x4_t ihi = vshlq_n_s32(vaddq_s32(vcvtq_s32_f32(n.hi), bias), 23);
    return {vreinterpretq_f32_s32(ilo), vreinterpretq_f32_s32(ihi)};
  }
  float ExtractLane(int lane) const {
    float tmp[8];
    Store(tmp);
    return tmp[lane];
  }
};

struct Vec4d {
  float64x2_t lo, hi;
  static Vec4d Load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  void Store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
  static Vec4d Broadcast(double s) { return {vdupq_n_f64(s), vdupq_n_f64(s)}; }
  static Vec4d Zero() { return Broadcast(0.0); }
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  double ExtractLane(int lane) const {
    double tmp[4];
    Store(tmp);
    return tmp[lane];
  }
};

#else  // scalar reference backend

struct Vec8f {
  float lane[8];
  static Vec8f Load(const float* p) {
    Vec8f r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  void Store(float* p) const { std::memcpy(p, lane, sizeof(lane)); }
  static Vec8f Broadcast(float s) {
    Vec8f r;
    for (float& l : r.lane) l = s;
    return r;
  }
  static Vec8f Zero() { return Broadcast(0.0f); }
  friend Vec8f operator+(Vec8f a, Vec8f b) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend Vec8f operator-(Vec8f a, Vec8f b) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend Vec8f operator*(Vec8f a, Vec8f b) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  friend Vec8f operator/(Vec8f a, Vec8f b) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }
  static Vec8f Min(Vec8f a, Vec8f b) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) {
      r.lane[i] = a.lane[i] < b.lane[i] ? a.lane[i] : b.lane[i];
    }
    return r;
  }
  static Vec8f Max(Vec8f a, Vec8f b) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) {
      r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    }
    return r;
  }
  static Vec8f Abs(Vec8f a) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) {
      // Clear the sign bit (matches fabsf incl. on NaN).
      uint32_t bits;
      std::memcpy(&bits, &a.lane[i], 4);
      bits &= 0x7fffffffu;
      std::memcpy(&r.lane[i], &bits, 4);
    }
    return r;
  }
  static Vec8f Sqrt(Vec8f a) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) r.lane[i] = __builtin_sqrtf(a.lane[i]);
    return r;
  }
  static Vec8f SelectGeZero(Vec8f x, Vec8f a, Vec8f b) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) {
      r.lane[i] = x.lane[i] >= 0.0f ? a.lane[i] : b.lane[i];
    }
    return r;
  }
  static Vec8f Pow2i(Vec8f n) {
    Vec8f r;
    for (int i = 0; i < 8; ++i) {
      const uint32_t bits =
          static_cast<uint32_t>(static_cast<int32_t>(n.lane[i]) + 127) << 23;
      std::memcpy(&r.lane[i], &bits, 4);
    }
    return r;
  }
  float ExtractLane(int lane_index) const { return lane[lane_index]; }
};

struct Vec4d {
  double lane[4];
  static Vec4d Load(const double* p) {
    Vec4d r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  void Store(double* p) const { std::memcpy(p, lane, sizeof(lane)); }
  static Vec4d Broadcast(double s) {
    Vec4d r;
    for (double& l : r.lane) l = s;
    return r;
  }
  static Vec4d Zero() { return Broadcast(0.0); }
  friend Vec4d operator+(Vec4d a, Vec4d b) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend Vec4d operator*(Vec4d a, Vec4d b) {
    Vec4d r;
    for (int i = 0; i < 4; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  double ExtractLane(int lane_index) const { return lane[lane_index]; }
};

#endif  // backend selection

}  // namespace conformer::vec

#endif  // CONFORMER_TENSOR_VEC_VEC8F_H_
