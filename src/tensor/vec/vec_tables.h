// Internal: per-backend kernel-table accessors. Each backend translation
// unit defines its accessor; backends whose ISA is not compiled in return
// nullptr and the dispatcher (vec.cc) skips them.

#ifndef CONFORMER_TENSOR_VEC_VEC_TABLES_H_
#define CONFORMER_TENSOR_VEC_VEC_TABLES_H_

#include "tensor/vec/vec.h"

namespace conformer::vec::internal {

const KernelTable* GetScalarTable();  // never null
const KernelTable* GetSse2Table();
const KernelTable* GetAvx2Table();
const KernelTable* GetNeonTable();

}  // namespace conformer::vec::internal

#endif  // CONFORMER_TENSOR_VEC_VEC_TABLES_H_
