// Scalar reference backend: the same logical 8-lane algorithms as the SIMD
// backends, executed lane-by-lane in plain C++. This TU is compiled with
// auto-vectorization disabled (see src/CMakeLists.txt) so forcing
// CONFORMER_SIMD_LEVEL=scalar really measures and exercises scalar code.

#include "tensor/vec/vec_tables.h"

#define CONFORMER_SIMD_NAMESPACE scalar_impl
#include "tensor/vec/kernels_impl.h"
#undef CONFORMER_SIMD_NAMESPACE

namespace conformer::vec::internal {

const KernelTable* GetScalarTable() { return &scalar_impl::Table(); }

}  // namespace conformer::vec::internal
