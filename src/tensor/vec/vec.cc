// SIMD level detection, CONFORMER_SIMD_LEVEL resolution and kernel-table
// dispatch. The active table pointer is a relaxed atomic: kernels read it
// once per span, and SetSimdLevel (tests/benches only) must not race with
// running kernels — see vec.h.

#include "tensor/vec/vec.h"

#include <atomic>

#include "tensor/vec/vec_tables.h"
#include "util/env.h"
#include "util/logging.h"

namespace conformer::vec {
namespace {

const internal::KernelTable* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return internal::GetScalarTable();
    case SimdLevel::kSse2:
      return internal::GetSse2Table();
    case SimdLevel::kAvx2:
      return internal::GetAvx2Table();
    case SimdLevel::kNeon:
      return internal::GetNeonTable();
  }
  return nullptr;
}

bool CpuSupports(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case SimdLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool LevelAvailable(SimdLevel level) {
  return TableFor(level) != nullptr && CpuSupports(level);
}

// Resolved once; holds the table pointer and level together so readers see a
// consistent pair.
struct ActiveState {
  std::atomic<const internal::KernelTable*> table{nullptr};
  std::atomic<int> level{0};
};

SimdLevel ResolveInitialLevel() {
  SimdLevel level = DetectedSimdLevel();
  const std::string env = GetEnv("CONFORMER_SIMD_LEVEL");
  if (!env.empty()) {
    std::optional<SimdLevel> requested = ParseSimdLevel(env);
    if (!requested.has_value()) {
      CONFORMER_LOG(Warning)
          << "CONFORMER_SIMD_LEVEL=" << env
          << " is not one of scalar|sse2|avx2|neon|native; using "
          << SimdLevelName(level);
    } else if (!LevelAvailable(*requested)) {
      CONFORMER_LOG(Warning)
          << "CONFORMER_SIMD_LEVEL=" << env
          << " is not available on this CPU/build; using "
          << SimdLevelName(level);
    } else {
      level = *requested;
    }
  }
  return level;
}

ActiveState& State() {
  // Magic-statics make the one-time env resolution thread-safe.
  static ActiveState& state = []() -> ActiveState& {
    static ActiveState s;
    SimdLevel level = ResolveInitialLevel();
    s.table.store(TableFor(level), std::memory_order_relaxed);
    s.level.store(static_cast<int>(level), std::memory_order_relaxed);
    return s;
  }();
  return state;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse2") return SimdLevel::kSse2;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "neon") return SimdLevel::kNeon;
  if (name == "native") return DetectedSimdLevel();
  return std::nullopt;
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = [] {
    // Strongest-first within each architecture family.
    for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kSse2,
                            SimdLevel::kNeon}) {
      if (LevelAvailable(level)) return level;
    }
    return SimdLevel::kScalar;
  }();
  return detected;
}

std::vector<SimdLevel> AvailableSimdLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSse2,
                          SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (LevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

SimdLevel ActiveSimdLevel() {
  return static_cast<SimdLevel>(State().level.load(std::memory_order_relaxed));
}

bool SetSimdLevel(SimdLevel level) {
  if (!LevelAvailable(level)) return false;
  ActiveState& state = State();
  state.table.store(TableFor(level), std::memory_order_relaxed);
  state.level.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

namespace internal {

const KernelTable& ActiveTable() {
  return *State().table.load(std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace conformer::vec
