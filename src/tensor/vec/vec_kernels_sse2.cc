// SSE2 backend: one logical Vec8f = two 4-lane XMM registers, so the bin
// layout and fold order match the AVX2 backend bit-for-bit. SSE2 is the
// x86-64 baseline, so this TU needs no extra compile flags there; on other
// architectures it degrades to a nullptr table the dispatcher skips.

#include "tensor/vec/vec_tables.h"

#if defined(__SSE2__)

#define CONFORMER_SIMD_CAPABILITY_SSE2 1
#define CONFORMER_SIMD_NAMESPACE sse2_impl
#include "tensor/vec/kernels_impl.h"
#undef CONFORMER_SIMD_NAMESPACE

namespace conformer::vec::internal {

const KernelTable* GetSse2Table() { return &sse2_impl::Table(); }

}  // namespace conformer::vec::internal

#else

namespace conformer::vec::internal {

const KernelTable* GetSse2Table() { return nullptr; }

}  // namespace conformer::vec::internal

#endif  // __SSE2__
