// NEON backend (aarch64): one logical Vec8f = two 4-lane Q registers with
// the same bin layout and fold order as the x86 backends. NEON is baseline
// on aarch64, so no extra compile flags; elsewhere this degrades to a
// nullptr table the dispatcher skips.

#include "tensor/vec/vec_tables.h"

#if defined(__aarch64__)

#define CONFORMER_SIMD_CAPABILITY_NEON 1
#define CONFORMER_SIMD_NAMESPACE neon_impl
#include "tensor/vec/kernels_impl.h"
#undef CONFORMER_SIMD_NAMESPACE

namespace conformer::vec::internal {

const KernelTable* GetNeonTable() { return &neon_impl::Table(); }

}  // namespace conformer::vec::internal

#else

namespace conformer::vec::internal {

const KernelTable* GetNeonTable() { return nullptr; }

}  // namespace conformer::vec::internal

#endif  // __aarch64__
