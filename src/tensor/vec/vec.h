// Runtime-dispatched SIMD span kernels behind the tensor kernel layer.
//
// Design (docs/SIMD.md): every kernel is defined in terms of a FIXED logical
// vector width of 8 float lanes (4 double lanes), independent of the
// instruction set that executes it. Each ISA backend (scalar, SSE2, AVX2,
// NEON) implements the same logical algorithm — same lane-to-bin mapping for
// accumulators, same fixed pairwise horizontal-fold order, same polynomial
// for exp, multiply-then-add everywhere (no FMA; the build compiles with
// -ffp-contract=off) — so the dispatched result is BITWISE IDENTICAL across
// every SIMD level for every kernel in this table, not just within a level.
// tests/simd_test.cc memcmp-enforces this; CI's simd-matrix job re-runs the
// kernel suites under each forced level.
//
// Dispatch: the active level is resolved once from CONFORMER_SIMD_LEVEL
// (scalar|sse2|avx2|neon|native) intersected with what the CPU supports and
// what the build compiled in; tests and benches can re-pin it at runtime
// with SetSimdLevel. The per-call cost is one relaxed atomic load plus an
// indirect call, amortized over a span.
//
// Threading: these are SPAN kernels — callers hand them the contiguous
// range a ParallelFor chunk owns (or a whole row). Chunk boundaries are
// unchanged by vectorization, and within a span the vector main loop plus
// the scalar remainder tail is a pure function of the span, so the PR-1
// bitwise 1-vs-N-thread contract (docs/THREADING.md) is preserved.

#ifndef CONFORMER_TENSOR_VEC_VEC_H_
#define CONFORMER_TENSOR_VEC_VEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace conformer::vec {

/// Logical lane counts every backend implements (NOT the hardware width:
/// SSE2 uses two 4-lane registers per logical float vector).
inline constexpr int64_t kFloatLanes = 8;
inline constexpr int64_t kDoubleLanes = 4;

/// Instruction-set levels, ordered from weakest to strongest so levels can
/// be clamped with min(). kNeon sorts above kScalar on aarch64 builds; the
/// x86 levels are never detected there (and vice versa).
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Lower-case name used in env parsing, bench row names and logs.
const char* SimdLevelName(SimdLevel level);

/// Parses "scalar" / "sse2" / "avx2" / "neon" / "native" (case-sensitive).
/// "native" maps to DetectedSimdLevel(). Returns nullopt on anything else.
std::optional<SimdLevel> ParseSimdLevel(const std::string& name);

/// Strongest level this CPU supports among those compiled into the binary.
/// Cached after the first call.
SimdLevel DetectedSimdLevel();

/// All levels usable in this process (compiled in AND supported by the
/// CPU), weakest first. Always contains kScalar.
std::vector<SimdLevel> AvailableSimdLevels();

/// The level the dispatched kernels currently run at. Initialized on first
/// use from CONFORMER_SIMD_LEVEL (falling back to DetectedSimdLevel();
/// unknown names and unsupported requests clamp down with a warning).
SimdLevel ActiveSimdLevel();

/// Re-pins the active level (tests, benches). Returns false — leaving the
/// level unchanged — when `level` is not available in this process. Must
/// not be called concurrently with running kernels.
bool SetSimdLevel(SimdLevel level);

namespace internal {

/// One entry per dispatched kernel; each backend fills a table with its
/// implementations. All implementations of one slot are bitwise-equivalent.
struct KernelTable {
  // Contiguous elementwise spans: o[i] = f(a[i], b[i]) / f(a[i]).
  void (*add)(const float* a, const float* b, float* o, int64_t n);
  void (*sub)(const float* a, const float* b, float* o, int64_t n);
  void (*mul)(const float* a, const float* b, float* o, int64_t n);
  void (*div)(const float* a, const float* b, float* o, int64_t n);
  void (*max)(const float* a, const float* b, float* o, int64_t n);
  void (*add_scalar)(const float* a, float s, float* o, int64_t n);
  void (*mul_scalar)(const float* a, float s, float* o, int64_t n);
  void (*clamp)(const float* a, float lo, float hi, float* o, int64_t n);
  void (*relu)(const float* a, float* o, int64_t n);
  void (*abs)(const float* a, float* o, int64_t n);
  void (*sqrt)(const float* a, float* o, int64_t n);
  void (*exp)(const float* a, float* o, int64_t n);
  void (*sigmoid)(const float* a, float* o, int64_t n);
  // o[i] += alpha * x[i] — the Gemm/axpy inner loop (accumulation order per
  // element unchanged from the scalar kernel).
  void (*mul_add)(const float* x, float alpha, float* o, int64_t n);
  // 8-bin reductions folded in the fixed pairwise order (docs/SIMD.md).
  float (*dot)(const float* a, const float* b, int64_t n);
  float (*sum)(const float* a, int64_t n);
  float (*max_reduce)(const float* a, int64_t n);
  // dst[j] = (sum_{t<kernel} row[j + t]) * inv_k for j in [0, out_len);
  // per-output accumulation over t stays sequential (stride-1 windows).
  void (*moving_avg)(const float* row, int64_t out_len, int64_t kernel,
                     float inv_k, float* dst);
  // Numerically-stable softmax / log-softmax over one contiguous row.
  void (*softmax_row)(const float* in, float* out, int64_t n);
  void (*log_softmax_row)(const float* in, float* out, int64_t n);
  // Double-precision spans for util/linalg.cc (4-bin dot, axpy).
  double (*ddot)(const double* a, const double* b, int64_t n);
  void (*dmul_add)(const double* x, double alpha, double* o, int64_t n);
};

/// Table for the active level; never null.
const KernelTable& ActiveTable();

}  // namespace internal

// ---------------------------------------------------------------------------
// Dispatched entry points. Each forwards to the active backend's span
// kernel; result bits are identical at every SIMD level.

inline void AddN(const float* a, const float* b, float* o, int64_t n) {
  internal::ActiveTable().add(a, b, o, n);
}
inline void SubN(const float* a, const float* b, float* o, int64_t n) {
  internal::ActiveTable().sub(a, b, o, n);
}
inline void MulN(const float* a, const float* b, float* o, int64_t n) {
  internal::ActiveTable().mul(a, b, o, n);
}
inline void DivN(const float* a, const float* b, float* o, int64_t n) {
  internal::ActiveTable().div(a, b, o, n);
}
inline void MaxN(const float* a, const float* b, float* o, int64_t n) {
  internal::ActiveTable().max(a, b, o, n);
}
inline void AddScalarN(const float* a, float s, float* o, int64_t n) {
  internal::ActiveTable().add_scalar(a, s, o, n);
}
inline void MulScalarN(const float* a, float s, float* o, int64_t n) {
  internal::ActiveTable().mul_scalar(a, s, o, n);
}
inline void ClampN(const float* a, float lo, float hi, float* o, int64_t n) {
  internal::ActiveTable().clamp(a, lo, hi, o, n);
}
inline void ReluN(const float* a, float* o, int64_t n) {
  internal::ActiveTable().relu(a, o, n);
}
inline void AbsN(const float* a, float* o, int64_t n) {
  internal::ActiveTable().abs(a, o, n);
}
inline void SqrtN(const float* a, float* o, int64_t n) {
  internal::ActiveTable().sqrt(a, o, n);
}
inline void ExpN(const float* a, float* o, int64_t n) {
  internal::ActiveTable().exp(a, o, n);
}
inline void SigmoidN(const float* a, float* o, int64_t n) {
  internal::ActiveTable().sigmoid(a, o, n);
}
inline void MulAddN(const float* x, float alpha, float* o, int64_t n) {
  internal::ActiveTable().mul_add(x, alpha, o, n);
}
inline float DotN(const float* a, const float* b, int64_t n) {
  return internal::ActiveTable().dot(a, b, n);
}
inline float SumN(const float* a, int64_t n) {
  return internal::ActiveTable().sum(a, n);
}
inline float MaxReduceN(const float* a, int64_t n) {
  return internal::ActiveTable().max_reduce(a, n);
}
inline void MovingAvgN(const float* row, int64_t out_len, int64_t kernel,
                       float inv_k, float* dst) {
  internal::ActiveTable().moving_avg(row, out_len, kernel, inv_k, dst);
}
inline void SoftmaxRowN(const float* in, float* out, int64_t n) {
  internal::ActiveTable().softmax_row(in, out, n);
}
inline void LogSoftmaxRowN(const float* in, float* out, int64_t n) {
  internal::ActiveTable().log_softmax_row(in, out, n);
}
inline double DdotN(const double* a, const double* b, int64_t n) {
  return internal::ActiveTable().ddot(a, b, n);
}
inline void DmulAddN(const double* x, double alpha, double* o, int64_t n) {
  internal::ActiveTable().dmul_add(x, alpha, o, n);
}

}  // namespace conformer::vec

#endif  // CONFORMER_TENSOR_VEC_VEC_H_
