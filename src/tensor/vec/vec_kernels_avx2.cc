// AVX2 backend: one logical Vec8f = one YMM register. This TU is the only
// one compiled with -mavx2 (src/CMakeLists.txt sets the per-file flag when
// the compiler supports it); every other TU stays at the baseline ISA so
// the binary runs on non-AVX2 hardware — the dispatcher only selects this
// table after a cpuid check. Without the flag (or off x86) it degrades to
// a nullptr table.

#include "tensor/vec/vec_tables.h"

#if defined(__AVX2__)

#define CONFORMER_SIMD_CAPABILITY_AVX2 1
#define CONFORMER_SIMD_NAMESPACE avx2_impl
#include "tensor/vec/kernels_impl.h"
#undef CONFORMER_SIMD_NAMESPACE

namespace conformer::vec::internal {

const KernelTable* GetAvx2Table() { return &avx2_impl::Table(); }

}  // namespace conformer::vec::internal

#else

namespace conformer::vec::internal {

const KernelTable* GetAvx2Table() { return nullptr; }

}  // namespace conformer::vec::internal

#endif  // __AVX2__
