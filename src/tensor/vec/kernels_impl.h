// Generic bodies for every dispatched span kernel, compiled once per ISA
// backend. The including translation unit defines
// CONFORMER_SIMD_CAPABILITY_* (selecting the Vec8f/Vec4d implementation in
// vec8f.h) and CONFORMER_SIMD_NAMESPACE (the namespace this TU's kernels
// land in), then includes this header. vec.cc dispatches to the per-TU
// Table().
//
// Bitwise portability rules (docs/SIMD.md) — every construct here must be
// identical-by-construction across backends:
//   * arithmetic only through Vec8f/Vec4d per-lane IEEE ops, never FMA
//     (the build adds -ffp-contract=off so scalar code cannot be contracted
//     either);
//   * reductions accumulate into the 8 logical bins (lane l holds indices
//     i ≡ l mod 8) and fold in ONE fixed pairwise order (FoldAdd/FoldMax);
//   * remainder tails run the scalar replica of the lane op — ScalarExp is
//     the same float-op sequence the vector Exp performs per lane;
//   * transcendentals use our own polynomial (exp: Cephes-style 2^n *
//     poly(r) with a two-term Cody-Waite ln2 split) so no backend depends
//     on libm vector math.

// NOLINT(build/header_guard) — intentionally re-includable per backend TU.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "tensor/vec/vec.h"
#include "tensor/vec/vec8f.h"

namespace conformer::vec {
namespace CONFORMER_SIMD_NAMESPACE {
namespace {

// --- exp polynomial constants (shared by the vector and scalar paths) ---
constexpr float kExpHi = 88.3762626647949f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2e = 1.44269504088896341f;
// 1.5 * 2^23: adding/subtracting rounds to the nearest integer (half-even).
constexpr float kRoundMagic = 12582912.0f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;

// Scalar replicas of the lane min/max semantics (second operand on ties and
// NaN, matching SSE _mm_min_ps/_mm_max_ps and Vec8f::Min/Max).
inline float LaneMin(float a, float b) { return a < b ? a : b; }
inline float LaneMax(float a, float b) { return a > b ? a : b; }

// The exact per-lane float-op sequence of the vector Exp below; used for
// remainder tails so tail elements match what a vector lane would produce.
inline float ScalarExp(float x) {
  x = LaneMin(LaneMax(x, kExpLo), kExpHi);
  const float n = (x * kLog2e + kRoundMagic) - kRoundMagic;
  float r = x - n * kLn2Hi;
  r = r - n * kLn2Lo;
  float p = kExpC0;
  p = p * r + kExpC1;
  p = p * r + kExpC2;
  p = p * r + kExpC3;
  p = p * r + kExpC4;
  p = p * r + kExpC5;
  p = (p * (r * r) + r) + 1.0f;
  uint32_t bits = static_cast<uint32_t>(static_cast<int32_t>(n) + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, 4);
  return p * scale;
}

inline Vec8f VecExp(Vec8f x) {
  x = Vec8f::Min(Vec8f::Max(x, Vec8f::Broadcast(kExpLo)),
                 Vec8f::Broadcast(kExpHi));
  const Vec8f magic = Vec8f::Broadcast(kRoundMagic);
  const Vec8f n = (x * Vec8f::Broadcast(kLog2e) + magic) - magic;
  Vec8f r = x - n * Vec8f::Broadcast(kLn2Hi);
  r = r - n * Vec8f::Broadcast(kLn2Lo);
  Vec8f p = Vec8f::Broadcast(kExpC0);
  p = p * r + Vec8f::Broadcast(kExpC1);
  p = p * r + Vec8f::Broadcast(kExpC2);
  p = p * r + Vec8f::Broadcast(kExpC3);
  p = p * r + Vec8f::Broadcast(kExpC4);
  p = p * r + Vec8f::Broadcast(kExpC5);
  p = (p * (r * r) + r) + Vec8f::Broadcast(1.0f);
  return p * Vec8f::Pow2i(n);
}

inline float ScalarSigmoid(float x) {
  // e = exp(-|x|); x >= 0 -> 1/(1+e), else e/(1+e). Same value as the
  // branch-per-sign formulation but expressible as one lane select.
  const float e = ScalarExp(0.0f - std::fabs(x));
  const float denom = 1.0f + e;
  return x >= 0.0f ? 1.0f / denom : e / denom;
}

inline Vec8f VecSigmoid(Vec8f x) {
  const Vec8f e = VecExp(Vec8f::Zero() - Vec8f::Abs(x));
  const Vec8f one = Vec8f::Broadcast(1.0f);
  const Vec8f denom = one + e;
  return Vec8f::SelectGeZero(x, one / denom, e / denom);
}

// --- fixed horizontal fold orders ------------------------------------------
// FoldAdd brackets the 8 bins exactly the way an AVX2 128-bit
// extract/add/movehl reduction would: ((b0+b4)+(b2+b6)) + ((b1+b5)+(b3+b7)).
// Spelled out lane-by-lane so every backend (including scalar) brackets the
// same way.
inline float FoldAdd(const Vec8f& v) {
  return ((v.ExtractLane(0) + v.ExtractLane(4)) +
          (v.ExtractLane(2) + v.ExtractLane(6))) +
         ((v.ExtractLane(1) + v.ExtractLane(5)) +
          (v.ExtractLane(3) + v.ExtractLane(7)));
}

inline float FoldMax(const Vec8f& v) {
  return LaneMax(LaneMax(LaneMax(v.ExtractLane(0), v.ExtractLane(4)),
                         LaneMax(v.ExtractLane(2), v.ExtractLane(6))),
                 LaneMax(LaneMax(v.ExtractLane(1), v.ExtractLane(5)),
                         LaneMax(v.ExtractLane(3), v.ExtractLane(7))));
}

inline double FoldAdd4(const Vec4d& v) {
  return (v.ExtractLane(0) + v.ExtractLane(2)) +
         (v.ExtractLane(1) + v.ExtractLane(3));
}

// --- elementwise spans ------------------------------------------------------

void AddKernel(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    (Vec8f::Load(a + i) + Vec8f::Load(b + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void SubKernel(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    (Vec8f::Load(a + i) - Vec8f::Load(b + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] - b[i];
}

void MulKernel(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    (Vec8f::Load(a + i) * Vec8f::Load(b + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void DivKernel(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    (Vec8f::Load(a + i) / Vec8f::Load(b + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] / b[i];
}

void MaxKernel(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  // Matches the Maximum op's `x >= y ? x : y`: select the FIRST operand on
  // ties, so use Max(b, a) whose lane semantics return the second operand
  // (a) on ties.
  for (; i + 8 <= n; i += 8) {
    Vec8f::Max(Vec8f::Load(b + i), Vec8f::Load(a + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] >= b[i] ? a[i] : b[i];
}

void AddScalarKernel(const float* a, float s, float* o, int64_t n) {
  const Vec8f vs = Vec8f::Broadcast(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) (Vec8f::Load(a + i) + vs).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] + s;
}

void MulScalarKernel(const float* a, float s, float* o, int64_t n) {
  const Vec8f vs = Vec8f::Broadcast(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) (Vec8f::Load(a + i) * vs).Store(o + i);
  for (; i < n; ++i) o[i] = a[i] * s;
}

void ClampKernel(const float* a, float lo, float hi, float* o, int64_t n) {
  const Vec8f vlo = Vec8f::Broadcast(lo);
  const Vec8f vhi = Vec8f::Broadcast(hi);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Vec8f::Min(Vec8f::Max(Vec8f::Load(a + i), vlo), vhi).Store(o + i);
  }
  for (; i < n; ++i) o[i] = LaneMin(LaneMax(a[i], lo), hi);
}

void ReluKernel(const float* a, float* o, int64_t n) {
  const Vec8f zero = Vec8f::Zero();
  int64_t i = 0;
  // Max(x, zero) has exactly the scalar `x > 0 ? x : 0` semantics: the
  // second operand (+0) wins on ties, -0.0f inputs, and NaN.
  for (; i + 8 <= n; i += 8) {
    Vec8f::Max(Vec8f::Load(a + i), zero).Store(o + i);
  }
  for (; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void AbsKernel(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) Vec8f::Abs(Vec8f::Load(a + i)).Store(o + i);
  for (; i < n; ++i) o[i] = std::fabs(a[i]);
}

void SqrtKernel(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) Vec8f::Sqrt(Vec8f::Load(a + i)).Store(o + i);
  for (; i < n; ++i) o[i] = std::sqrt(a[i]);
}

void ExpKernel(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) VecExp(Vec8f::Load(a + i)).Store(o + i);
  for (; i < n; ++i) o[i] = ScalarExp(a[i]);
}

void SigmoidKernel(const float* a, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) VecSigmoid(Vec8f::Load(a + i)).Store(o + i);
  for (; i < n; ++i) o[i] = ScalarSigmoid(a[i]);
}

void MulAddKernel(const float* x, float alpha, float* o, int64_t n) {
  const Vec8f va = Vec8f::Broadcast(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    (Vec8f::Load(o + i) + va * Vec8f::Load(x + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] += alpha * x[i];
}

// --- reductions -------------------------------------------------------------

float DotKernel(const float* a, const float* b, int64_t n) {
  Vec8f acc = Vec8f::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = acc + Vec8f::Load(a + i) * Vec8f::Load(b + i);
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return FoldAdd(acc) + tail;
}

float SumKernel(const float* a, int64_t n) {
  Vec8f acc = Vec8f::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) acc = acc + Vec8f::Load(a + i);
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i];
  return FoldAdd(acc) + tail;
}

float MaxReduceKernel(const float* a, int64_t n) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  Vec8f acc = Vec8f::Broadcast(kNegInf);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) acc = Vec8f::Max(acc, Vec8f::Load(a + i));
  float m = FoldMax(acc);
  for (; i < n; ++i) m = LaneMax(m, a[i]);
  return m;
}

// --- moving average (stride-1 windows) --------------------------------------

void MovingAvgKernel(const float* row, int64_t out_len, int64_t kernel,
                     float inv_k, float* dst) {
  const Vec8f vinv = Vec8f::Broadcast(inv_k);
  int64_t j = 0;
  for (; j + 8 <= out_len; j += 8) {
    Vec8f acc = Vec8f::Zero();
    // Per-output accumulation over the window stays in ascending t order,
    // exactly like the scalar pooling loop.
    for (int64_t t = 0; t < kernel; ++t) {
      acc = acc + Vec8f::Load(row + j + t);
    }
    (acc * vinv).Store(dst + j);
  }
  for (; j < out_len; ++j) {
    float acc = 0.0f;
    for (int64_t t = 0; t < kernel; ++t) acc += row[j + t];
    dst[j] = acc * inv_k;
  }
}

// --- softmax rows -----------------------------------------------------------

void SoftmaxRowKernel(const float* in, float* out, int64_t n) {
  if (n <= 0) return;
  const float mx = MaxReduceKernel(in, n);
  const Vec8f vmx = Vec8f::Broadcast(mx);
  Vec8f vsum = Vec8f::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const Vec8f e = VecExp(Vec8f::Load(in + i) - vmx);
    e.Store(out + i);
    vsum = vsum + e;
  }
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float e = ScalarExp(in[i] - mx);
    out[i] = e;
    tail += e;
  }
  const float inv = 1.0f / (FoldAdd(vsum) + tail);
  const Vec8f vinv = Vec8f::Broadcast(inv);
  i = 0;
  for (; i + 8 <= n; i += 8) (Vec8f::Load(out + i) * vinv).Store(out + i);
  for (; i < n; ++i) out[i] *= inv;
}

void LogSoftmaxRowKernel(const float* in, float* out, int64_t n) {
  if (n <= 0) return;
  const float mx = MaxReduceKernel(in, n);
  const Vec8f vmx = Vec8f::Broadcast(mx);
  Vec8f vsum = Vec8f::Zero();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vsum = vsum + VecExp(Vec8f::Load(in + i) - vmx);
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += ScalarExp(in[i] - mx);
  // One libm log per row; identical across backends (same call, same libm).
  const float lse = mx + std::log(FoldAdd(vsum) + tail);
  const Vec8f vlse = Vec8f::Broadcast(lse);
  i = 0;
  for (; i + 8 <= n; i += 8) (Vec8f::Load(in + i) - vlse).Store(out + i);
  for (; i < n; ++i) out[i] = in[i] - lse;
}

// --- double-precision spans (util/linalg.cc) --------------------------------

double DdotKernel(const double* a, const double* b, int64_t n) {
  Vec4d acc = Vec4d::Zero();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = acc + Vec4d::Load(a + i) * Vec4d::Load(b + i);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += a[i] * b[i];
  return FoldAdd4(acc) + tail;
}

void DmulAddKernel(const double* x, double alpha, double* o, int64_t n) {
  const Vec4d va = Vec4d::Broadcast(alpha);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    (Vec4d::Load(o + i) + va * Vec4d::Load(x + i)).Store(o + i);
  }
  for (; i < n; ++i) o[i] += alpha * x[i];
}

}  // namespace

const internal::KernelTable& Table() {
  static const internal::KernelTable table = {
      .add = AddKernel,
      .sub = SubKernel,
      .mul = MulKernel,
      .div = DivKernel,
      .max = MaxKernel,
      .add_scalar = AddScalarKernel,
      .mul_scalar = MulScalarKernel,
      .clamp = ClampKernel,
      .relu = ReluKernel,
      .abs = AbsKernel,
      .sqrt = SqrtKernel,
      .exp = ExpKernel,
      .sigmoid = SigmoidKernel,
      .mul_add = MulAddKernel,
      .dot = DotKernel,
      .sum = SumKernel,
      .max_reduce = MaxReduceKernel,
      .moving_avg = MovingAvgKernel,
      .softmax_row = SoftmaxRowKernel,
      .log_softmax_row = LogSoftmaxRowKernel,
      .ddot = DdotKernel,
      .dmul_add = DmulAddKernel,
  };
  return table;
}

}  // namespace CONFORMER_SIMD_NAMESPACE
}  // namespace conformer::vec
