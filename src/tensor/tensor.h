// A small dense float32 tensor with reverse-mode automatic differentiation.
//
// Tensors are contiguous, row-major, and have value semantics over a shared
// implementation (copying a Tensor aliases the same buffer, like
// torch.Tensor). Operations are free functions declared in tensor/ops.h;
// each op records an AutogradNode so that calling Backward() on a scalar
// result accumulates gradients into every `requires_grad` leaf.

#ifndef CONFORMER_TENSOR_TENSOR_H_
#define CONFORMER_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace conformer {

using Shape = std::vector<int64_t>;

/// Number of elements for a shape (product of dims; 1 for rank-0).
int64_t NumElements(const Shape& shape);

/// Row-major strides for a contiguous tensor of `shape`.
std::vector<int64_t> ContiguousStrides(const Shape& shape);

/// Renders e.g. "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

class TensorImpl;

/// \brief One recorded operation in the autograd tape.
///
/// `inputs` keeps the producing subgraph alive; `backward` reads the output
/// gradient (passed as the owning TensorImpl) and accumulates into the
/// inputs' gradients.
struct AutogradNode {
  std::vector<std::shared_ptr<TensorImpl>> inputs;
  std::function<void(TensorImpl&)> backward;
  const char* op_name = "";
};

/// \brief Shared tensor storage: data, shape, gradient, and tape node.
class TensorImpl {
 public:
  TensorImpl(Shape shape, std::vector<float> values);
  ~TensorImpl();

  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  /// Accumulates `delta` (same length as data) into the gradient buffer,
  /// allocating it on first use.
  void AccumulateGrad(const float* delta, int64_t n);

  std::vector<float> data;
  Shape shape;
  std::vector<float> grad;  // Empty until a gradient is accumulated.
  bool requires_grad = false;
  std::shared_ptr<AutogradNode> node;  // Null for leaves.
};

/// \brief Value-semantics handle to a TensorImpl.
class Tensor {
 public:
  /// An empty (null) tensor; most operations on it are invalid.
  Tensor() = default;

  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // -- Factories --------------------------------------------------------

  static Tensor Zeros(const Shape& shape);
  static Tensor Ones(const Shape& shape);
  static Tensor Full(const Shape& shape, float value);
  static Tensor FromVector(std::vector<float> values, const Shape& shape);
  /// 1-D tensor [start, start+step, ...) of `n` values.
  static Tensor Arange(int64_t n, float start = 0.0f, float step = 1.0f);
  /// Standard-normal entries drawn from `rng` (GlobalRng() by default).
  static Tensor Randn(const Shape& shape, Rng* rng = nullptr);
  /// Uniform [lo, hi) entries drawn from `rng` (GlobalRng() by default).
  static Tensor Rand(const Shape& shape, float lo = 0.0f, float hi = 1.0f,
                     Rng* rng = nullptr);
  /// 2-D identity.
  static Tensor Eye(int64_t n);

  // -- Introspection ----------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim() const { return static_cast<int64_t>(shape().size()); }
  int64_t numel() const { return NumElements(shape()); }
  /// Size along dimension `d`; negative d counts from the back.
  int64_t size(int64_t d) const;

  const float* data() const;
  float* data();
  /// Value of a rank-<=1 single-element tensor.
  float item() const;
  /// Element access by multi-index (debug/test convenience; bounds-checked).
  float at(std::initializer_list<int64_t> index) const;

  std::string ToString(int64_t max_per_dim = 8) const;

  // -- Autograd ---------------------------------------------------------

  bool requires_grad() const;
  /// Marks this tensor as a differentiable leaf (or not). Returns *this.
  Tensor& set_requires_grad(bool value);

  bool has_grad() const;
  /// The accumulated gradient as a detached tensor (zeros if none).
  Tensor grad() const;
  float* grad_data();
  /// Clears the accumulated gradient.
  void ZeroGrad();

  /// Runs backpropagation from this scalar (numel()==1) tensor. Frees the
  /// tape afterwards unless `retain_graph`.
  void Backward(bool retain_graph = false);

  /// A tensor sharing this buffer but cut off from the tape.
  Tensor Detach() const;
  /// A deep copy (fresh buffer, no tape).
  Tensor Clone() const;

  /// In-place elementwise copy from `src` (same numel; no autograd).
  void CopyDataFrom(const Tensor& src);

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// \brief Temporarily disables autograd recording (RAII), like
/// torch.no_grad(). Nestable.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True when op recording is currently enabled.
bool GradRecordingEnabled();

/// \brief RAII inference mode for the serving path (docs/SERVING.md):
/// disables autograd recording like NoGradGuard AND activates the calling
/// thread's activation-buffer pool, so repeated forward passes reuse the
/// buffers freed by earlier ones instead of round-tripping the allocator.
///
/// The pool is thread-local and persists across guard instances, which is
/// what makes "preallocate once, reuse every request" work: the first
/// Predict() populates it, later ones mostly hit it. Pooled buffers are
/// zero-filled on reuse, so results are bitwise identical to the unpooled
/// path. Nestable; tensors that escape the guard are recycled (or plainly
/// freed) whenever their last reference dies.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();
  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;

 private:
  bool previous_recording_;
  bool previous_pooling_;
};

/// True when the calling thread's activation-buffer pool is active.
bool BufferPoolEnabled();

/// Frees every buffer held by the calling thread's pool (tests; long-lived
/// servers that change batch geometry can call it to drop stale sizes).
void ClearBufferPool();

namespace internal {

/// True if autograd should record an op over these inputs.
bool ShouldRecord(const std::vector<Tensor>& inputs);

/// A zero-filled buffer of `n` floats for an op output. Under an active
/// InferenceModeGuard this reuses a recycled buffer from the thread's pool
/// when one of a suitable capacity exists (bumping the tensor.pool_hits /
/// tensor.pool_misses counters); otherwise it is a plain allocation,
/// identical to std::vector<float>(n).
std::vector<float> AcquireBuffer(int64_t n);

/// Hands a dying TensorImpl's storage to the thread's pool when pooling is
/// active (and the pool has room); otherwise lets it free normally.
void MaybeRecycleBuffer(std::vector<float>* data);

/// Builds the output tensor for an op: attaches an AutogradNode with the
/// given backward fn when recording is active.
Tensor MakeOpResult(Shape shape, std::vector<float> values,
                    std::vector<Tensor> inputs,
                    std::function<void(TensorImpl&)> backward,
                    const char* op_name);

}  // namespace internal
}  // namespace conformer

#endif  // CONFORMER_TENSOR_TENSOR_H_
