// Reproduces Table VII: ablation of the normalizing flow on the Wind
// dataset — the full flow versus Gaussian heads fed by z_e, z_d, or z_0
// (z_e + z_d), and removing the flow altogether, under multivariate and
// univariate settings.
//
// Paper-observed shape: the full flow wins every cell; every Gaussian-head
// truncation and the no-flow variant are worse.

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  const std::vector<std::pair<flow::FlowVariant, std::string>> kVariants = {
      {flow::FlowVariant::kFull, "Conformer"},
      {flow::FlowVariant::kZeZd, "z_e+z_d"},
      {flow::FlowVariant::kZe, "z_e"},
      {flow::FlowVariant::kZd, "z_d"},
      {flow::FlowVariant::kNone, "-NF"},
  };

  ResultTable table("Table VII: normalizing-flow ablation on Wind (MSE / MAE)");
  data::TimeSeries multivariate =
      data::MakeDataset("wind", scale.dataset_scale, /*seed=*/6).value();
  data::TimeSeries univariate = multivariate.Column(multivariate.target_column());

  for (const bool uni : {false, true}) {
    const data::TimeSeries& series = uni ? univariate : multivariate;
    for (int64_t horizon : scale.horizons) {
      data::WindowConfig window{scale.input_len, scale.label_len, horizon};
      const std::string row = std::string(uni ? "uni" : "multi") + "/" +
                              std::to_string(horizon);
      for (const auto& [variant, label] : kVariants) {
        core::ConformerConfig config;
        config.d_model = scale.d_model;
        config.n_heads = scale.n_heads;
        config.ma_kernel = scale.ma_kernel;
        config.flow_variant = variant;
        if (uni) config.dec_rnn_layers = 1;
        core::ConformerModel model(config, window, series.dims());
        Score score = RunExperiment(&model, series, window, scale);
        table.Add(row, label, score);
      }
      std::printf("[table7] finished %s\n", row.c_str());
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: the full normalizing flow is best in every cell; "
      "Gaussian-head truncations and -NF trail it.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
