// Reproduces Fig. 6: uncertainty-aware forecasting on ETTm1 — ASCII plots
// of the point estimate, ground truth, and quantile bands at several
// horizons, for different lambda weightings of the flow contribution, plus
// empirical coverage statistics.
//
// Paper-observed shape: the bands cover the extreme ground-truth values
// when the flow is weighted more (smaller lambda); the point forecast is
// conservative.

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

void PlotSeries(const Tensor& truth, const flow::UncertaintyBand& band,
                int64_t target, int64_t steps) {
  // One row per step: truth marker 'o', band rendered as [----m----].
  float lo = 1e30f;
  float hi = -1e30f;
  for (int64_t t = 0; t < steps; ++t) {
    lo = std::min({lo, band.lower.at({0, t, target}), truth.at({0, t, target})});
    hi = std::max({hi, band.upper.at({0, t, target}), truth.at({0, t, target})});
  }
  const float span = std::max(hi - lo, 1e-6f);
  const int64_t width = 56;
  auto column = [&](float v) {
    return std::clamp<int64_t>(
        static_cast<int64_t>((v - lo) / span * (width - 1)), 0, width - 1);
  };
  for (int64_t t = 0; t < steps; ++t) {
    std::string line(width, ' ');
    const int64_t a = column(band.lower.at({0, t, target}));
    const int64_t b = column(band.upper.at({0, t, target}));
    for (int64_t c = a; c <= b; ++c) line[c] = '-';
    line[column(band.mean.at({0, t, target}))] = 'm';
    line[column(truth.at({0, t, target}))] = 'o';
    std::printf("  %3lld |%s|\n", static_cast<long long>(t), line.c_str());
  }
}

int Run() {
  const BenchScale scale = GetBenchScale();
  data::TimeSeries series =
      data::MakeDataset("ettm1", scale.dataset_scale, /*seed=*/11).value();

  for (int64_t horizon : scale.horizons) {
    data::WindowConfig window{scale.input_len, scale.label_len, horizon};
    data::DatasetSplits splits = data::MakeSplits(series, window);

    for (float lambda : {0.95f, 0.8f, 0.5f}) {
      core::ConformerConfig config;
      config.d_model = scale.d_model;
      config.n_heads = scale.n_heads;
      config.ma_kernel = scale.ma_kernel;
      config.lambda = lambda;
      core::ConformerModel model(config, window, series.dims());

      train::TrainConfig tc;
      tc.epochs = scale.epochs;
      tc.batch_size = scale.batch_size;
      tc.learning_rate = scale.full ? 1e-4f : 2e-3f;
      tc.max_train_batches = scale.max_train_batches;
      tc.max_eval_batches = scale.max_eval_batches;
      train::Trainer trainer(tc);
      trainer.Fit(&model, splits.train, splits.val);

      data::Batch batch = splits.test.GetRange(splits.test.size() / 2, 1);
      flow::UncertaintyBand band = model.PredictWithUncertainty(batch, 24, 0.9);
      const int64_t total = batch.y.size(1);
      Tensor truth = Slice(batch.y, 1, total - horizon, total);

      int64_t covered = 0;
      double width_sum = 0.0;
      const int64_t target = series.target_column();
      for (int64_t t = 0; t < horizon; ++t) {
        const float y = truth.at({0, t, target});
        if (y >= band.lower.at({0, t, target}) &&
            y <= band.upper.at({0, t, target})) {
          ++covered;
        }
        width_sum +=
            band.upper.at({0, t, target}) - band.lower.at({0, t, target});
      }
      std::printf(
          "\n== Fig. 6: horizon %lld, lambda %.2f — coverage %lld/%lld, "
          "mean band width %.3f ==\n",
          static_cast<long long>(horizon), lambda,
          static_cast<long long>(covered), static_cast<long long>(horizon),
          width_sum / horizon);
      if (horizon <= 24) PlotSeries(truth, band, target, horizon);
    }
  }
  std::printf(
      "\npaper shape: smaller lambda (more flow weight) widens the band and "
      "covers more of the extreme ground-truth values.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
