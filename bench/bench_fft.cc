// FFT subsystem benchmark: the Eq. 1-2 input-representation correlation path
// at the paper's non-power-of-two benchmark lengths (96/192/336/720), the
// arbitrary-length (Bluestein) transform, and the thread scaling of the
// batched auto-correlation. Emits the bench_parallel_kernels JSON schema so
// CI can diff runs against bench/baselines/bench_fft.json:
//
//   {"hardware_concurrency": N,
//    "results": [{"kernel": "input_corr_fft_336", "threads": 1,
//                 "ops_per_sec": ...}]}
//
// The input_corr_direct_* rows time a faithful replica of the pre-PR O(L^2)
// fallback over the same (batch, variable) columns, so the in-run ratio
// input_corr_fft_* / input_corr_direct_* is the rewrite's speedup; CI
// asserts it stays >= 5x at L = 336 and 720 (single thread).

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdio>
#include <thread>
#include <vector>

#include "fft/autocorrelation.h"
#include "fft/fft.h"
#include "fft/plan.h"
#include "util/env.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace conformer::bench {
namespace {

using Clock = std::chrono::steady_clock;

// Per-measurement wall budget; CONFORMER_BENCH_MIN_MILLIS overrides the
// default 100ms (CI uses 300ms to tame runner noise).
double MinSeconds() {
  static const double min_seconds =
      static_cast<double>(GetEnvInt("CONFORMER_BENCH_MIN_MILLIS", 100)) * 1e-3;
  return min_seconds;
}

template <typename Fn>
double MeasureOpsPerSec(Fn fn, double min_seconds = MinSeconds()) {
  fn();  // warm-up (also builds/caches any FFT plan the loop needs)
  int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(iters) / elapsed;
}

struct Result {
  std::string kernel;
  int64_t threads;
  double ops_per_sec;
};

// Faithful replica of the pre-PR non-power-of-two fallback in
// fft::AutoCorrelation (direct O(n^2) circular correlation).
void DirectAutoCorrelation(const double* signal, int64_t n, double* out) {
  for (int64_t lag = 0; lag < n; ++lag) {
    double acc = 0.0;
    for (int64_t t = 0; t < n; ++t) acc += signal[t] * signal[(t + lag) % n];
    out[lag] = acc;
  }
}

// The input-representation correlation workload: every (batch, variable)
// column of a [batch, length, dims] window, as one contiguous row batch.
std::vector<double> MakeColumns(int64_t count, int64_t length, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> columns(count * length);
  for (auto& x : columns) x = rng.Normal();
  return columns;
}

int Main() {
  const int64_t hw = std::max<int64_t>(
      1, static_cast<int64_t>(std::thread::hardware_concurrency()));
  // The paper's window: 4 batch rows x 7 ETT variables = 28 columns per step.
  const int64_t kBatchDims = 28;
  std::vector<Result> results;

  ThreadPool::Global().SetNumThreads(1);

  // Direct-vs-FFT on the two acceptance lengths (single thread), plus the
  // shorter paper lengths FFT-only for coverage.
  for (int64_t length : {336, 720}) {
    std::vector<double> columns = MakeColumns(kBatchDims, length, 7);
    std::vector<double> out(columns.size());
    results.push_back(
        {"input_corr_direct_" + std::to_string(length), 1,
         MeasureOpsPerSec([&] {
           for (int64_t i = 0; i < kBatchDims; ++i) {
             DirectAutoCorrelation(columns.data() + i * length, length,
                                   out.data() + i * length);
           }
         })});
    results.push_back({"input_corr_fft_" + std::to_string(length), 1,
                       MeasureOpsPerSec([&] {
                         out = fft::AutoCorrelationBatch(columns, kBatchDims,
                                                         length);
                       })});
  }
  for (int64_t length : {96, 192}) {
    std::vector<double> columns = MakeColumns(kBatchDims, length, 7);
    std::vector<double> out(columns.size());
    results.push_back({"input_corr_fft_" + std::to_string(length), 1,
                       MeasureOpsPerSec([&] {
                         out = fft::AutoCorrelationBatch(columns, kBatchDims,
                                                         length);
                       })});
  }

  // Arbitrary-length transform (Bluestein) vs the radix-2 core at the
  // nearest power of two, one signal per iteration.
  for (int64_t length : {336, 720, 1024}) {
    Rng rng(11);
    std::vector<std::complex<double>> signal(length);
    for (auto& x : signal) x = {rng.Normal(), rng.Normal()};
    results.push_back({"transform_" + std::to_string(length), 1,
                       MeasureOpsPerSec([&] {
                         std::vector<std::complex<double>> copy = signal;
                         fft::Transform(&copy, false);
                       })});
  }

  // Thread scaling of the batched path (static-stripe ParallelFor; on a
  // single-core host the >1-thread rows measure oversubscription overhead).
  {
    const int64_t length = 336;
    std::vector<double> columns = MakeColumns(kBatchDims, length, 7);
    std::vector<int64_t> counts = {1, 2, 4, hw};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    for (int64_t t : counts) {
      ThreadPool::Global().SetNumThreads(t);
      results.push_back({"autocorr_batch_336", t, MeasureOpsPerSec([&] {
                           std::vector<double> out = fft::AutoCorrelationBatch(
                               columns, kBatchDims, length);
                           (void)out;
                         })});
    }
  }
  ThreadPool::Global().SetNumThreads(hw);

  std::printf("{\"hardware_concurrency\": %lld, \"results\": [",
              static_cast<long long>(hw));
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf(
        "%s\n  {\"kernel\": \"%s\", \"threads\": %lld, \"ops_per_sec\": %.3f}",
        i == 0 ? "" : ",", results[i].kernel.c_str(),
        static_cast<long long>(results[i].threads), results[i].ops_per_sec);
  }
  std::printf("\n]}\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Main(); }
