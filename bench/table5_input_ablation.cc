// Reproduces Table V: ablation of the input representation (Eq. 6) on ECL
// and ETTm1 — removing the multiscale dynamics (−Γ), the multivariate
// correlation (−R), the raw series (−X), and their combinations.
//
// Paper-observed shape: the full representation wins most cells; dropping
// Γ hurts ETTm1 (low-dim) more, dropping R matters more at short horizons;
// −X variants trail the raw-guided ones.

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  const std::vector<std::pair<core::InputVariant, std::string>> kVariants = {
      {core::InputVariant::kFull, "X_in (Eq.6)"},
      {core::InputVariant::kNoMultiscale, "-Gamma"},
      {core::InputVariant::kNoCorrelation, "-R"},
      {core::InputVariant::kNoCorrNoMultiscale, "-R-Gamma"},
      {core::InputVariant::kNoRaw, "-X"},
      {core::InputVariant::kNoRawNoMultiscale, "-X-Gamma"},
  };

  ResultTable table("Table V: input representation ablation (MSE / MAE)");
  for (const std::string dataset : {"ecl", "ettm1"}) {
    data::TimeSeries series =
        data::MakeDataset(dataset, scale.dataset_scale, /*seed=*/4).value();
    for (int64_t horizon : scale.horizons) {
      data::WindowConfig window{scale.input_len, scale.label_len, horizon};
      const std::string row = dataset + "/" + std::to_string(horizon);
      for (const auto& [variant, label] : kVariants) {
        core::ConformerConfig config;
        config.d_model = scale.d_model;
        config.n_heads = scale.n_heads;
        config.ma_kernel = scale.ma_kernel;
        config.input_variant = variant;
        core::ConformerModel model(config, window, series.dims());
        Score score = RunExperiment(&model, series, window, scale);
        table.Add(row, label, score);
      }
      std::printf("[table5] finished %s\n", row.c_str());
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: full Eq.(6) representation wins most cells; the "
      "multiscale term matters more on the low-dimensional ETTm1, the "
      "correlation term more at short horizons.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
