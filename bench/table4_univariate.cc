// Reproduces Table IV: univariate LTTF (target column only) comparing
// Conformer with Autoformer / Informer / Reformer / LogTrans / LSTNet /
// GRU / TS2Vec / TimesNet-lite across all seven datasets.
//
// Paper-observed shape: Conformer best or 2nd best on most rows; RNN
// baselines become competitive on low-entropy datasets (Weather, Wind).

#include "bench/bench_util.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  const std::vector<std::string> kModels = {
      "conformer", "autoformer", "informer", "reformer", "logtrans",
      "lstnet",    "gru",        "ts2vec",   "timesnet"};

  ResultTable table("Table IV: univariate LTTF (MSE / MAE, * = best)");
  for (const std::string& dataset : data::AvailableDatasets()) {
    data::TimeSeries full =
        data::MakeDataset(dataset, scale.dataset_scale, /*seed=*/3).value();
    data::TimeSeries series = full.Column(full.target_column());
    for (int64_t horizon : scale.horizons) {
      data::WindowConfig window{scale.input_len, scale.label_len, horizon};
      const std::string row = dataset + "/" + std::to_string(horizon);
      for (const std::string& model_name : kModels) {
        auto model = MakeBenchModel(model_name, window, /*dims=*/1, scale,
                                    /*univariate=*/true);
        Score score = RunExperiment(model.get(), series, window, scale);
        table.Add(row, model->name(), score);
      }
      std::printf("[table4] finished %s\n", row.c_str());
      std::fflush(stdout);
    }
  }
  table.Print();

  std::printf("\nwins by lowest MSE:\n");
  for (const auto& [model, wins] : table.WinsByModel()) {
    std::printf("  %-12s %d\n", model.c_str(), wins);
  }
  std::printf(
      "\npaper shape: Conformer best or 2nd best on most rows; RNNs are "
      "competitive on regular low-entropy series (Weather, Wind).\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
