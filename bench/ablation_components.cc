// Component-cost ablation — the paper's Discussion defers "computational
// costs of other components" to future work; this bench provides them:
// per-component forward (and forward+backward) time for the input
// representation, one SIRN layer, the normalizing flow, and the assembled
// Conformer, as the sequence length grows.

#include <benchmark/benchmark.h>

#include "core/conformer_model.h"
#include "data/dataset_registry.h"
#include "data/time_features.h"

namespace conformer::bench {
namespace {

constexpr int64_t kDModel = 32;
constexpr int64_t kDims = 7;
constexpr int64_t kBatch = 8;

Tensor MarksFor(int64_t batch, int64_t length) {
  std::vector<int64_t> ts(length);
  for (int64_t i = 0; i < length; ++i) ts[i] = 1577836800 + i * 3600;
  std::vector<float> one = data::ExtractTimeFeatures(ts);
  std::vector<float> all;
  all.reserve(batch * one.size());
  for (int64_t b = 0; b < batch; ++b) {
    all.insert(all.end(), one.begin(), one.end());
  }
  return Tensor::FromVector(std::move(all),
                            {batch, length, data::kNumTimeFeatures});
}

void InputRepresentationForward(benchmark::State& state) {
  const int64_t length = state.range(0);
  core::InputRepresentationConfig config;
  config.dims = kDims;
  config.length = length;
  config.d_model = kDModel;
  core::InputRepresentation repr(config);
  NoGradGuard guard;
  Tensor x = Tensor::Randn({kBatch, length, kDims});
  Tensor marks = MarksFor(kBatch, length);
  for (auto _ : state) {
    Tensor out = repr.Forward(x, marks);
    benchmark::DoNotOptimize(out.data());
  }
}

void SirnForward(benchmark::State& state) {
  const int64_t length = state.range(0);
  core::SirnConfig config;
  config.d_model = kDModel;
  config.n_heads = 4;
  core::Sirn sirn(config);
  NoGradGuard guard;
  Tensor x = Tensor::Randn({kBatch, length, kDModel});
  for (auto _ : state) {
    core::LayerOutput out = sirn.Forward(x);
    benchmark::DoNotOptimize(out.sequence.data());
  }
}

void FlowForward(benchmark::State& state) {
  flow::NormalizingFlow nf(kDModel, state.range(0));
  NoGradGuard guard;
  Tensor h_e = Tensor::Randn({kBatch, kDModel});
  Tensor h_d = Tensor::Randn({kBatch, kDModel});
  Rng rng(1);
  for (auto _ : state) {
    Tensor z = nf.Forward(h_e, h_d, /*sample=*/true, &rng);
    benchmark::DoNotOptimize(z.data());
  }
}

void ConformerTrainStep(benchmark::State& state) {
  const int64_t length = state.range(0);
  data::WindowConfig window{length, length / 2, length / 2};
  core::ConformerConfig config;
  config.d_model = kDModel;
  config.n_heads = 4;
  core::ConformerModel model(config, window, kDims);

  data::TimeSeries series = data::MakeDataset("etth1", 0.05, 1).value();
  data::DatasetSplits splits = data::MakeSplits(series, window);
  data::Batch batch = splits.train.GetRange(0, kBatch);
  for (auto _ : state) {
    model.ZeroGrad();
    Tensor loss = model.Loss(batch);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
}

BENCHMARK(InputRepresentationForward)->Arg(48)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(SirnForward)->Arg(48)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(FlowForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(ConformerTrainStep)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace conformer::bench

BENCHMARK_MAIN();
