// Reproduces Fig. 8: qualitative forecast showcase on ETTm1 under the
// input-96-predict-192 setting (scaled) — ASCII plot of ground truth versus
// the forecasts of Conformer, Autoformer, Informer, and GRU on one window,
// plus each model's MSE on that window.
//
// Paper-observed shape: Conformer's curve follows the ground truth most
// closely.

#include "bench/bench_util.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  const int64_t horizon = scale.full ? 192 : 48;
  data::TimeSeries series =
      data::MakeDataset("ettm1", scale.dataset_scale, /*seed=*/13).value();
  data::WindowConfig window{scale.input_len, scale.label_len, horizon};
  data::DatasetSplits splits = data::MakeSplits(series, window);

  const std::vector<std::string> kModels = {"conformer", "autoformer",
                                            "informer", "gru"};
  data::Batch batch = splits.test.GetRange(splits.test.size() / 3, 1);
  const int64_t total = batch.y.size(1);
  Tensor truth = Slice(batch.y, 1, total - horizon, total);
  const int64_t target = series.target_column();

  std::vector<Tensor> predictions;
  for (const std::string& name : kModels) {
    auto model = MakeBenchModel(name, window, series.dims(), scale);
    train::TrainConfig tc;
    tc.epochs = scale.epochs;
    tc.batch_size = scale.batch_size;
    tc.learning_rate = scale.full ? 1e-4f : 2e-3f;
    tc.max_train_batches = scale.max_train_batches;
    tc.max_eval_batches = scale.max_eval_batches;
    train::Trainer trainer(tc);
    trainer.Fit(model.get(), splits.train, splits.val);

    model->SetTraining(false);
    NoGradGuard guard;
    predictions.push_back(model->Forward(batch));
  }

  // Per-model MSE on this window.
  std::printf("== Fig. 8: ETTm1 input-%lld-predict-%lld showcase ==\n",
              static_cast<long long>(scale.input_len),
              static_cast<long long>(horizon));
  for (size_t m = 0; m < kModels.size(); ++m) {
    double mse = 0.0;
    for (int64_t t = 0; t < horizon; ++t) {
      const double diff = predictions[m].at({0, t, target}) -
                          truth.at({0, t, target});
      mse += diff * diff;
    }
    std::printf("  %-12s window MSE %.4f\n", kModels[m].c_str(), mse / horizon);
  }

  // ASCII chart: one column block per model plus truth.
  float lo = 1e30f;
  float hi = -1e30f;
  for (int64_t t = 0; t < horizon; ++t) {
    lo = std::min(lo, truth.at({0, t, target}));
    hi = std::max(hi, truth.at({0, t, target}));
    for (const Tensor& p : predictions) {
      lo = std::min(lo, p.at({0, t, target}));
      hi = std::max(hi, p.at({0, t, target}));
    }
  }
  const float span = std::max(hi - lo, 1e-6f);
  const int64_t width = 48;
  auto column = [&](float v) {
    return std::clamp<int64_t>(
        static_cast<int64_t>((v - lo) / span * (width - 1)), 0, width - 1);
  };
  std::printf("\n  legend: o=truth  C=Conformer  A=Autoformer  I=Informer  G=GRU\n");
  const char kMarkers[] = {'C', 'A', 'I', 'G'};
  const int64_t step = std::max<int64_t>(1, horizon / 32);
  for (int64_t t = 0; t < horizon; t += step) {
    std::string line(width, ' ');
    for (size_t m = 0; m < predictions.size(); ++m) {
      line[column(predictions[m].at({0, t, target}))] = kMarkers[m];
    }
    line[column(truth.at({0, t, target}))] = 'o';
    std::printf("  %3lld |%s|\n", static_cast<long long>(t), line.c_str());
  }
  std::printf(
      "\npaper shape: Conformer ('C') hugs the ground truth ('o') more "
      "closely than the baselines.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
