// Thread-scaling microbenchmark for the parallel kernel layer: Gemm, Conv1d
// and sliding-window attention at 1, 2, 4 and hardware_concurrency threads
// (deduplicated), plus per-SIMD-level rows (docs/SIMD.md) — the same Gemm /
// elementwise / softmax work pinned to 1 thread under each available
// CONFORMER_SIMD_LEVEL, and a `gemm_dispatch` row at the auto-detected
// level. CI's bench-smoke job asserts gemm_dispatch >= 1.5x gemm_scalar.
// Emits one JSON document on stdout so CI can diff runs:
//
//   {"hardware_concurrency": N,
//    "results": [{"kernel": "gemm_512", "threads": 1, "ops_per_sec": ...}]}
//
// Timing uses steady_clock over enough repetitions to exceed ~100ms per
// measurement. Thread counts are pinned via ThreadPool::SetNumThreads; on a
// single-core machine the >1-thread rows measure oversubscription overhead
// rather than speedup.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "attention/attention.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace conformer::bench {
namespace {

using Clock = std::chrono::steady_clock;

// Per-measurement wall budget: longer windows tighten run-to-run variance on
// noisy machines (CI runners, shared containers). CONFORMER_BENCH_MIN_MILLIS
// overrides the default 100ms.
double MinSeconds() {
  static const double min_seconds =
      static_cast<double>(GetEnvInt("CONFORMER_BENCH_MIN_MILLIS", 100)) * 1e-3;
  return min_seconds;
}

// Runs `fn` repeatedly until at least `min_seconds` have elapsed and returns
// iterations per second.
template <typename Fn>
double MeasureOpsPerSec(Fn fn, double min_seconds = MinSeconds()) {
  fn();  // warm-up (also first-touch of any lazily grown pool state)
  int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(iters) / elapsed;
}

struct Result {
  std::string kernel;
  int64_t threads;
  double ops_per_sec;
};

void BenchAtThreadCount(int64_t threads, std::vector<Result>* results) {
  ThreadPool::Global().SetNumThreads(threads);
  NoGradGuard guard;
  Rng rng(7);

  {
    const int64_t n = 512;
    Tensor a = Tensor::Randn({n, n}, &rng);
    Tensor b = Tensor::Randn({n, n}, &rng);
    std::vector<float> c(n * n);
    results->push_back({"gemm_512", threads, MeasureOpsPerSec([&] {
                          kernels::Gemm(false, false, n, n, n, a.data(),
                                        b.data(), c.data(),
                                        /*accumulate=*/false);
                        })});
  }

  {
    Tensor input = Tensor::Randn({8, 16, 256}, &rng);
    Tensor weight = Tensor::Randn({32, 16, 3}, &rng);
    Tensor bias = Tensor::Randn({32}, &rng);
    results->push_back({"conv1d_8x16x256", threads, MeasureOpsPerSec([&] {
                          Tensor out = Conv1d(input, weight, bias,
                                              /*padding=*/1, PadMode::kZeros,
                                              /*dilation=*/1);
                          (void)out;
                        })});
  }

  {
    // The TimesNet-lite grid shape: [B, M, cycles, period] with a 3x3 kernel.
    Tensor input = Tensor::Randn({4, 32, 8, 24}, &rng);
    Tensor weight = Tensor::Randn({32, 32, 3, 3}, &rng);
    Tensor bias = Tensor::Randn({32}, &rng);
    results->push_back({"conv2d_4x32x8x24", threads, MeasureOpsPerSec([&] {
                          Tensor out = Conv2d(input, weight, bias,
                                              /*padding_h=*/1,
                                              /*padding_w=*/1);
                          (void)out;
                        })});
  }

  {
    attention::AttentionConfig config;
    config.window = 8;
    auto mech = attention::MakeAttention(
        attention::AttentionKind::kSlidingWindow, config);
    Tensor q = Tensor::Randn({8, 256, 32}, &rng);
    Tensor k = Tensor::Randn({8, 256, 32}, &rng);
    Tensor v = Tensor::Randn({8, 256, 32}, &rng);
    results->push_back({"sliding_window_8x256x32", threads,
                        MeasureOpsPerSec([&] {
                          Tensor out = mech->Forward(q, k, v, false);
                          (void)out;
                        })});
  }
}

// Per-SIMD-level rows, all pinned to 1 thread so the ratio between levels
// isolates vectorization (no pool dispatch in the numerator or denominator).
// The raw span kernels are benched directly; Gemm goes through
// kernels::Gemm, whose inner loops dispatch per level.
void BenchSimdLevels(std::vector<Result>* results) {
  ThreadPool::Global().SetNumThreads(1);
  NoGradGuard guard;
  Rng rng(11);
  const vec::SimdLevel ambient = vec::ActiveSimdLevel();

  const int64_t gn = 256;
  Tensor ga = Tensor::Randn({gn, gn}, &rng);
  Tensor gb = Tensor::Randn({gn, gn}, &rng);
  std::vector<float> gc(gn * gn);
  auto gemm = [&] {
    kernels::Gemm(false, false, gn, gn, gn, ga.data(), gb.data(), gc.data(),
                  /*accumulate=*/false);
  };

  const int64_t en = 1 << 20;
  Tensor ea = Tensor::Randn({en}, &rng);
  Tensor eb = Tensor::Randn({en}, &rng);
  std::vector<float> eo(en);
  auto elementwise = [&] { vec::AddN(ea.data(), eb.data(), eo.data(), en); };

  const int64_t rows = 256, cols = 512;
  Tensor sa = Tensor::Randn({rows, cols}, &rng);
  std::vector<float> so(rows * cols);
  auto softmax = [&] {
    for (int64_t r = 0; r < rows; ++r) {
      vec::SoftmaxRowN(sa.data() + r * cols, so.data() + r * cols, cols);
    }
  };

  for (vec::SimdLevel level : vec::AvailableSimdLevels()) {
    vec::SetSimdLevel(level);
    const std::string name = vec::SimdLevelName(level);
    results->push_back({"gemm_" + name, 1, MeasureOpsPerSec(gemm)});
    results->push_back(
        {"elementwise_" + name, 1, MeasureOpsPerSec(elementwise)});
    results->push_back({"softmax_" + name, 1, MeasureOpsPerSec(softmax)});
  }
  vec::SetSimdLevel(vec::DetectedSimdLevel());
  results->push_back({"gemm_dispatch", 1, MeasureOpsPerSec(gemm)});
  vec::SetSimdLevel(ambient);
}

int Main() {
  const int64_t hw = std::max<int64_t>(
      1, static_cast<int64_t>(std::thread::hardware_concurrency()));
  std::vector<int64_t> counts = {1, 2, 4, hw};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  std::vector<Result> results;
  for (int64_t t : counts) BenchAtThreadCount(t, &results);
  BenchSimdLevels(&results);
  ThreadPool::Global().SetNumThreads(hw);

  std::printf("{\"hardware_concurrency\": %lld, \"results\": [",
              static_cast<long long>(hw));
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf(
        "%s\n  {\"kernel\": \"%s\", \"threads\": %lld, \"ops_per_sec\": %.3f}",
        i == 0 ? "" : ",", results[i].kernel.c_str(),
        static_cast<long long>(results[i].threads), results[i].ops_per_sec);
  }
  std::printf("\n]}\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Main(); }
