// Reproduces Table VIII: alternative fusions of the inter-series
// correlation and temporal dependency (Methods 1-4 of Section V-G1) on ECL
// and Exchange.
//
// Paper-observed shape: the default Eq. (6) fusion wins most cells; the
// gap is larger on the low-dimensional Exchange data.

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  const std::vector<std::pair<core::FusionMethod, std::string>> kMethods = {
      {core::FusionMethod::kDefault, "Conformer"},
      {core::FusionMethod::kMethod1, "Method 1"},
      {core::FusionMethod::kMethod2, "Method 2"},
      {core::FusionMethod::kMethod3, "Method 3"},
      {core::FusionMethod::kMethod4, "Method 4"},
  };

  ResultTable table("Table VIII: correlation/temporal fusion methods (MSE / MAE)");
  for (const std::string dataset : {"ecl", "exchange"}) {
    data::TimeSeries series =
        data::MakeDataset(dataset, scale.dataset_scale, /*seed=*/7).value();
    for (int64_t horizon : scale.horizons) {
      data::WindowConfig window{scale.input_len, scale.label_len, horizon};
      const std::string row = dataset + "/" + std::to_string(horizon);
      for (const auto& [method, label] : kMethods) {
        core::ConformerConfig config;
        config.d_model = scale.d_model;
        config.n_heads = scale.n_heads;
        config.ma_kernel = scale.ma_kernel;
        config.fusion = method;
        core::ConformerModel model(config, window, series.dims());
        Score score = RunExperiment(&model, series, window, scale);
        table.Add(row, label, score);
      }
      std::printf("[table8] finished %s\n", row.c_str());
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: the default Eq.(6) fusion wins most cells, with the "
      "largest margins on the low-dimensional Exchange data.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
