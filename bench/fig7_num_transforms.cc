// Reproduces Fig. 7: how far the message should be cascaded in the
// normalizing flow — lambda is set to 0 (flow-only prediction, as in the
// paper) and the number of transformations is varied on ECL and ETTm1.
//
// Paper-observed shape: more transformations help — "the further the
// latent variable is transformed, the better the outcome series performs".

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  const int64_t horizon = scale.horizons.front();

  for (const std::string dataset : {"ecl", "ettm1"}) {
    data::TimeSeries series =
        data::MakeDataset(dataset, scale.dataset_scale, /*seed=*/12).value();
    data::WindowConfig window{scale.input_len, scale.label_len, horizon};
    std::printf("\n== Fig. 7: %s, horizon %lld, lambda = 0 (flow-only) ==\n",
                dataset.c_str(), static_cast<long long>(horizon));
    std::printf("  #transforms   MSE      MAE\n");
    for (int64_t t : {0, 1, 2, 4, 8}) {
      core::ConformerConfig config;
      config.d_model = scale.d_model;
      config.n_heads = scale.n_heads;
      config.ma_kernel = scale.ma_kernel;
      config.lambda = 0.0f;  // isolate the flow (paper sets lambda = 0)
      config.flow_transforms = t;
      core::ConformerModel model(config, window, series.dims());
      Score s = RunExperiment(&model, series, window, scale);
      std::printf("  %-12lld %.4f   %.4f\n", static_cast<long long>(t), s.mse,
                  s.mae);
    }
  }
  std::printf(
      "\npaper shape: deeper flows (more transformations) track the target "
      "series better when the flow alone makes the prediction.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
