// Serving-throughput benchmark (docs/SERVING.md): the same request stream
// served three ways — one request at a time, directly coalesced batches,
// and through the BatchingQueue with concurrent clients — so the value of
// micro-batching is a single JSON diff. Emits the bench_parallel_kernels
// JSON schema so CI can gate it with tools/compare_bench.py:
//
//   {"hardware_concurrency": N,
//    "results": [{"kernel": "serve_seq_b1", "threads": T,
//                 "ops_per_sec": ...}]}
//
// ops_per_sec counts forecast *series* per second in every row, so rows are
// directly comparable: serve_queue_b8 / serve_seq_b1 is the micro-batching
// speedup (>= 3x on the multicore CI runner; ~1x on one core, where wider
// batches only amortize per-call overhead).

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "data/dataset_registry.h"
#include "serve/batching_queue.h"
#include "tensor/tensor.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "util/metrics.h"

namespace conformer::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MinSeconds() {
  static const double min_seconds =
      static_cast<double>(GetEnvInt("CONFORMER_BENCH_MIN_MILLIS", 100)) * 1e-3;
  return min_seconds;
}

/// Runs `fn` (one full pass over `series_per_iter` series) until the wall
/// budget is spent; returns series forecast per second.
///
/// Every row starts from an empty activation-buffer pool (re-warmed by the
/// untimed first pass), so each row measures its own steady state: the pool
/// recycles by buffer size, and a row that ran earlier with a different
/// batch geometry would otherwise leave the pool full of wrong-sized
/// buffers and flip later rows into a different allocation mode.
template <typename Fn>
double MeasureSeriesPerSec(int64_t series_per_iter, Fn fn) {
  ClearBufferPool();
  fn();  // Warm-up: populates the session's activation-buffer pool.
  int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < MinSeconds());
  return static_cast<double>(iters * series_per_iter) / elapsed;
}

struct Row {
  std::string kernel;
  int64_t threads;
  double ops_per_sec;
};

int Main() {
  const int64_t threads = ThreadPool::Global().num_threads();
  const int64_t kRequests = 32;

  serve::SessionConfig config;
  config.model_name = "conformer";
  config.window = {.input_len = 32, .label_len = 16, .pred_len = 16};
  config.dims = 7;
  // Untrained weights: throughput does not depend on parameter values, and
  // skipping training keeps the smoke job fast and deterministic.
  std::unique_ptr<serve::InferenceSession> session =
      serve::InferenceSession::Open(config, "").value();

  data::TimeSeries series = data::MakeDataset("etth1", 0.08).value();
  data::DatasetSplits splits = data::MakeSplits(series, config.window);
  std::vector<data::Batch> singles;
  for (int64_t r = 0; r < kRequests; ++r) {
    singles.push_back(splits.test.GetRange(r % splits.test.size(), 1));
  }

  std::vector<Row> rows;

  // One forward pass per request: the no-batching floor.
  rows.push_back({"serve_seq_b1", threads,
                  MeasureSeriesPerSec(kRequests, [&] {
                    for (const data::Batch& b : singles) session->Predict(b);
                  })});

  // Perfectly coalesced batches, no queueing: the batching ceiling.
  for (const int64_t batch : {8, 16}) {
    std::vector<data::Batch> merged;
    for (int64_t first = 0; first < kRequests; first += batch) {
      merged.push_back(splits.test.GetRange(first % splits.test.size(), batch));
    }
    rows.push_back({"serve_direct_b" + std::to_string(batch), threads,
                    MeasureSeriesPerSec(kRequests, [&] {
                      for (const data::Batch& b : merged) session->Predict(b);
                    })});
  }

  // Static-runtime replay (docs/STATIC_RUNTIME.md) of the same coalesced
  // batches: the first Predict per geometry traces and compiles the plan
  // (outside the timed region via MeasureSeriesPerSec's warm-up pass), the
  // measured iterations replay it with zero per-op dispatch. The row pair
  // serve_plan_bN / serve_direct_bN is the static-runtime speedup.
  {
    serve::SessionConfig plan_config = config;
    plan_config.use_static_plan = true;
    std::unique_ptr<serve::InferenceSession> plan_session =
        serve::InferenceSession::Open(plan_config, "").value();
    for (const int64_t batch : {8, 16}) {
      std::vector<data::Batch> merged;
      for (int64_t first = 0; first < kRequests; first += batch) {
        merged.push_back(
            splits.test.GetRange(first % splits.test.size(), batch));
      }
      rows.push_back({"serve_plan_b" + std::to_string(batch), threads,
                      MeasureSeriesPerSec(kRequests, [&] {
                        for (const data::Batch& b : merged) {
                          plan_session->Predict(b);
                        }
                      })});
    }
  }

  // The real serving path: concurrent clients through the BatchingQueue.
  {
    serve::BatchingQueue queue(session.get(),
                               {.max_batch_size = 8, .max_queue_delay_us = 500});
    const int64_t kClients = 4;
    rows.push_back({"serve_queue_b8", threads,
                    MeasureSeriesPerSec(kRequests, [&] {
                      std::vector<std::thread> clients;
                      for (int64_t c = 0; c < kClients; ++c) {
                        clients.emplace_back([&, c] {
                          std::vector<std::future<Result<serve::Forecast>>>
                              futures;
                          for (int64_t r = c; r < kRequests; r += kClients) {
                            futures.push_back(queue.Submit(singles[r]));
                          }
                          for (auto& f : futures) f.get();
                        });
                      }
                      for (std::thread& t : clients) t.join();
                    })});
  }

  // Overload resilience (docs/SERVING.md, "Overload & failure policy"):
  // open-loop arrivals at 2x the peak measured service rate, against a
  // bounded queue (depth 16) with per-request deadlines sized to one full
  // queue drain. The peak over the direct and queue rows bounds what the
  // queue path can possibly serve (the closed-loop serve_queue_b8 row alone
  // under-reads capacity on one core, where client threads steal dispatcher
  // time), so 2x of it is guaranteed saturation. Over-capacity arrivals are
  // rejected at admission and queued requests whose deadline lapses are
  // shed before the model runs, so the model's time goes to requests
  // somebody still wants:
  //   serve_overload_goodput_b8   delivered series/sec under 2x overload
  //   serve_overload_shed_rate_b8 shed+rejected fraction of offered load
  //                               (a ratio in [0,1], not a rate)
  {
    double capacity = 0.0;
    for (const Row& row : rows) {
      if (row.kernel.rfind("serve_plan_", 0) == 0) continue;  // replay, not
                                                              // the queue path
      capacity = std::max(capacity, row.ops_per_sec);
    }
    serve::BatchingQueue queue(session.get(),
                               {.max_batch_size = 8,
                                .max_queue_delay_us = 500,
                                .max_queue_depth = 16});
    const auto interarrival =
        std::chrono::nanoseconds(static_cast<int64_t>(1e9 / (2.0 * capacity)));
    const int64_t deadline_us = static_cast<int64_t>(16 * 1e6 / capacity);
    ClearBufferPool();
    session->Predict(singles[0]);  // Warm-up: activation-buffer pool.

    int64_t submitted = 0, delivered = 0, shed = 0, rejected = 0;
    std::vector<std::future<Result<serve::Forecast>>> futures;
    const auto start = Clock::now();
    auto next_arrival = start;
    double elapsed = 0.0;
    do {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += interarrival;
      futures.push_back(queue.Submit(singles[submitted % kRequests],
                                     {.deadline_us = deadline_us}));
      ++submitted;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < MinSeconds());
    for (auto& f : futures) {
      const Result<serve::Forecast> result = f.get();
      if (result.ok()) {
        ++delivered;
      } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
        ++shed;
      } else {
        ++rejected;
      }
    }
    queue.Shutdown();
    const double total =
        std::chrono::duration<double>(Clock::now() - start).count();
    rows.push_back({"serve_overload_goodput_b8", threads,
                    static_cast<double>(delivered) / total});
    rows.push_back({"serve_overload_shed_rate_b8", threads,
                    static_cast<double>(shed + rejected) /
                        static_cast<double>(submitted)});
  }

  std::printf("{\"hardware_concurrency\": %lld, \"results\": [",
              static_cast<long long>(std::max<int64_t>(
                  1, std::thread::hardware_concurrency())));
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf(
        "%s\n  {\"kernel\": \"%s\", \"threads\": %lld, \"ops_per_sec\": %.3f}",
        i == 0 ? "" : ",", rows[i].kernel.c_str(),
        static_cast<long long>(rows[i].threads), rows[i].ops_per_sec);
  }
  std::printf("\n]}\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Main(); }
