// Reproduces Table IX: which SIRN hidden states feed the normalizing flow
// (first vs last SIRN layer of the encoder/decoder, versus the paper's
// default first-step-of-last-layer states) on ECL and Exchange.
//
// Paper-observed shape: the impact is marginal overall; low-dimensional
// data (Exchange) is more sensitive than high-dimensional data (ECL).

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  struct Variant {
    std::string label;
    core::HiddenChoice enc;
    core::HiddenChoice dec;
  };
  const std::vector<Variant> kVariants = {
      // Paper default: first-step state of the last SIRN layer.
      {"Conformer", {true, true}, {true, true}},
      {"(h_k^e,h_k^d)", {true, false}, {true, false}},
      {"(h_1^e,h_k^d)", {false, false}, {true, false}},
      {"(h_1^e,h_1^d)", {false, false}, {false, false}},
      {"(h_k^e,h_1^d)", {true, false}, {false, false}},
  };

  ResultTable table("Table IX: hidden states feeding the flow (MSE / MAE)");
  for (const std::string dataset : {"ecl", "exchange"}) {
    data::TimeSeries series =
        data::MakeDataset(dataset, scale.dataset_scale, /*seed=*/8).value();
    for (int64_t horizon : scale.horizons) {
      data::WindowConfig window{scale.input_len, scale.label_len, horizon};
      const std::string row = dataset + "/" + std::to_string(horizon);
      for (const Variant& variant : kVariants) {
        core::ConformerConfig config;
        config.d_model = scale.d_model;
        config.n_heads = scale.n_heads;
        config.ma_kernel = scale.ma_kernel;
        config.enc_hidden = variant.enc;
        config.dec_hidden = variant.dec;
        core::ConformerModel model(config, window, series.dims());
        Score score = RunExperiment(&model, series, window, scale);
        table.Add(row, variant.label, score);
      }
      std::printf("[table9] finished %s\n", row.c_str());
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: differences are marginal; the low-dimensional "
      "Exchange rows move more than the ECL rows.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
