// Reproduces Fig. 4: parameter sensitivity of Conformer on the Wind
// dataset — (a) input length, (b) sliding-window size w, (c) trade-off
// lambda, (d) number of normalizing-flow transformations.
//
// Paper-observed shape: performance is stable across all four knobs, with
// longer inputs helping slightly at longer horizons.

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

Score RunWith(const data::TimeSeries& series, const BenchScale& scale,
              const data::WindowConfig& window,
              const core::ConformerConfig& config) {
  core::ConformerModel model(config, window, series.dims());
  return RunExperiment(&model, series, window, scale);
}

int Run() {
  const BenchScale scale = GetBenchScale();
  data::TimeSeries series =
      data::MakeDataset("wind", scale.dataset_scale, /*seed=*/10).value();

  core::ConformerConfig base;
  base.d_model = scale.d_model;
  base.n_heads = scale.n_heads;
  base.ma_kernel = scale.ma_kernel;
  const int64_t horizon = scale.horizons.front();

  std::printf("== Fig. 4a: input length (horizon %lld) ==\n",
              static_cast<long long>(horizon));
  for (int64_t input : scale.full ? std::vector<int64_t>{48, 96, 192, 336}
                                  : std::vector<int64_t>{16, 32, 48}) {
    data::WindowConfig window{input, input / 2, horizon};
    Score s = RunWith(series, scale, window, base);
    std::printf("  L_x=%-4lld MSE %.4f  MAE %.4f\n",
                static_cast<long long>(input), s.mse, s.mae);
  }

  data::WindowConfig window{scale.input_len, scale.label_len, horizon};

  std::printf("\n== Fig. 4b: sliding-window size w ==\n");
  for (int64_t w : {1, 2, 4, 8}) {
    core::ConformerConfig config = base;
    config.window = w;
    Score s = RunWith(series, scale, window, config);
    std::printf("  w=%-4lld MSE %.4f  MAE %.4f\n", static_cast<long long>(w),
                s.mse, s.mae);
  }

  std::printf("\n== Fig. 4c: trade-off lambda (Eq. 18) ==\n");
  for (float lambda : {0.0f, 0.2f, 0.5f, 0.8f, 1.0f}) {
    core::ConformerConfig config = base;
    config.lambda = lambda;
    Score s = RunWith(series, scale, window, config);
    std::printf("  lambda=%.1f MSE %.4f  MAE %.4f\n", lambda, s.mse, s.mae);
  }

  std::printf("\n== Fig. 4d: number of flow transformations ==\n");
  for (int64_t t : {0, 1, 2, 4, 8}) {
    core::ConformerConfig config = base;
    config.flow_transforms = t;
    Score s = RunWith(series, scale, window, config);
    std::printf("  T=%-4lld MSE %.4f  MAE %.4f\n", static_cast<long long>(t),
                s.mse, s.mae);
  }

  std::printf(
      "\npaper shape: all four sweeps are flat-ish (stable model); longer "
      "inputs help mildly; w has little effect beyond 2.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
