// Reproduces Table II: multivariate LTTF comparison of Conformer against
// Longformer / Autoformer / Informer / Reformer / LSTNet / GRU / N-Beats /
// TimesNet-lite on all seven datasets across the horizon grid.
//
// Paper-observed shape: Conformer has the best (or 2nd best) MSE on nearly
// every (dataset, horizon) cell; Transformer baselines beat RNN baselines;
// errors grow with the horizon.

#include "bench/bench_util.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  const std::vector<std::string> kModels = {
      "conformer", "longformer", "autoformer", "informer", "reformer",
      "lstnet",    "gru",        "nbeats",     "timesnet"};

  ResultTable table("Table II: multivariate LTTF (MSE / MAE, * = best)");
  for (const std::string& dataset : data::AvailableDatasets()) {
    data::TimeSeries series =
        data::MakeDataset(dataset, scale.dataset_scale, /*seed=*/1).value();
    for (int64_t horizon : scale.horizons) {
      data::WindowConfig window{scale.input_len, scale.label_len, horizon};
      const std::string row = dataset + "/" + std::to_string(horizon);
      for (const std::string& model_name : kModels) {
        auto model = MakeBenchModel(model_name, window, series.dims(), scale);
        Score score = RunExperiment(model.get(), series, window, scale);
        table.Add(row, model->name(), score);
      }
      std::printf("[table2] finished %s\n", row.c_str());
      std::fflush(stdout);
    }
  }
  table.Print();

  std::printf("\nwins by lowest MSE:\n");
  for (const auto& [model, wins] : table.WinsByModel()) {
    std::printf("  %-12s %d\n", model.c_str(), wins);
  }
  std::printf(
      "\npaper shape: Conformer best or 2nd-best in nearly every cell; "
      "Transformers > RNNs; MSE grows with horizon.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
