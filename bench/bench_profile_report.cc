// Profiled Conformer train + inference cycle: runs a scaled-down training
// run with the op-level profiler enabled and emits a machine-readable
// where-did-the-time-go report. This is the bench the CI bench-smoke job
// diffs across commits (tools/compare_bench.py).
//
//   bench_profile_report [out.json [trace.json]]
//
// writes `out.json` (default BENCH_profile.json) with step coverage,
// train/infer throughput, and the full profiler summary (op aggregates,
// tensor-allocation high-water mark, metrics registry), plus a
// chrome://tracing event file (default BENCH_profile_trace.json).
//
// Coverage is the fraction of training-step wall time attributed to named
// child scopes (Gemm, attention, sirn, flow, optimizer, ...): 1 minus the
// step scope's self time over its total time. The acceptance bar is >= 0.95.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tensor/alloc_stats.h"
#include "util/metrics.h"
#include "util/profiler.h"

namespace conformer::bench {
namespace {

int Run(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_profile.json";
  const std::string trace_path =
      argc > 2 ? argv[2] : "BENCH_profile_trace.json";

  BenchScale scale = GetBenchScale();
  if (!scale.full) {
    // One short epoch keeps the smoke run in CI budget while still covering
    // forward, backward, clipping, the optimizer, and evaluation.
    scale.epochs = 2;
    scale.max_train_batches = 10;
    scale.max_eval_batches = 4;
  }

  data::TimeSeries series =
      data::MakeDataset("etth1", scale.dataset_scale, /*seed=*/1).value();
  data::WindowConfig window{scale.input_len, scale.label_len,
                            scale.horizons.front()};
  auto model = MakeBenchModel("conformer", window, series.dims(), scale);
  data::DatasetSplits splits = data::MakeSplits(series, window);

  train::TrainConfig config;
  config.epochs = scale.epochs;
  config.batch_size = scale.batch_size;
  config.learning_rate = 2e-3f;
  config.max_train_batches = scale.max_train_batches;
  config.max_eval_batches = scale.max_eval_batches;
  config.seed = 1;
  train::Trainer trainer(config);

  prof::Profiler& profiler = prof::Profiler::Global();
  metrics::Registry& registry = metrics::Registry::Global();
  registry.ResetAll();
  profiler.Reset();
  ResetAllocPeak();
  profiler.Enable();

  const int64_t train_start_ns = prof::internal::NowNs();
  trainer.Fit(model.get(), splits.train, splits.val);
  const int64_t train_end_ns = prof::internal::NowNs();
  train::EvalMetrics eval = trainer.Evaluate(model.get(), splits.test);
  const int64_t infer_end_ns = prof::internal::NowNs();

  profiler.Disable();

  const double train_seconds =
      static_cast<double>(train_end_ns - train_start_ns) * 1e-9;
  const double infer_seconds =
      static_cast<double>(infer_end_ns - train_end_ns) * 1e-9;
  const int64_t steps = registry.GetCounter("train.steps").value();
  // Evaluate caps at max_eval_batches batches of batch_size windows.
  const int64_t eval_windows =
      std::min<int64_t>(splits.test.size(),
                        config.max_eval_batches > 0
                            ? config.max_eval_batches * config.batch_size
                            : splits.test.size());

  double step_total_ns = 0.0;
  double step_self_ns = 0.0;
  for (const prof::OpStats& s : profiler.Aggregate()) {
    if (s.cat == "train" && s.name == "step") {
      step_total_ns = static_cast<double>(s.total_ns);
      step_self_ns = static_cast<double>(s.self_ns);
    }
  }
  const double coverage =
      step_total_ns > 0.0 ? 1.0 - step_self_ns / step_total_ns : 0.0;

  if (!profiler.WriteTrace(trace_path)) {
    std::fprintf(stderr, "failed to write trace %s\n", trace_path.c_str());
    return 1;
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"schema\": \"conformer.bench_profile.v1\",\n"
               "  \"bench\": \"bench_profile_report\",\n"
               "  \"train_seconds\": %.6f,\n"
               "  \"infer_seconds\": %.6f,\n"
               "  \"step_coverage\": %.6f,\n"
               "  \"test_mse\": %.6f,\n"
               "  \"throughput\": {\n"
               "    \"train_steps_per_sec\": %.6f,\n"
               "    \"infer_windows_per_sec\": %.6f\n"
               "  },\n"
               "  \"profile\": ",
               train_seconds, infer_seconds, coverage, eval.mse,
               train_seconds > 0 ? static_cast<double>(steps) / train_seconds
                                 : 0.0,
               infer_seconds > 0
                   ? static_cast<double>(eval_windows) / infer_seconds
                   : 0.0);
  const std::string profile_json = profiler.SummaryJson();
  std::fwrite(profile_json.data(), 1, profile_json.size() - 1, f);  // trim \n
  std::fputs("\n}\n", f);
  std::fclose(f);

  std::printf(
      "bench_profile_report: %lld steps in %.2fs (coverage %.4f), report %s, "
      "trace %s\n",
      static_cast<long long>(steps), train_seconds, coverage, out_path.c_str(),
      trace_path.c_str());
  // The acceptance bar for the observability layer: at least 95%% of step
  // wall time must land in named scopes.
  if (coverage < 0.95) {
    std::fprintf(stderr, "step coverage %.4f below 0.95\n", coverage);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main(int argc, char** argv) { return conformer::bench::Run(argc, argv); }
