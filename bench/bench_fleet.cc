// Multi-tenant fleet benchmark (docs/SERVING.md, "The model fleet"): the
// isolation proof as a JSON diff. Two tenants at different horizons are
// driven open-loop three ways — each alone at half load, then both
// concurrently at the combined load — through one FleetServer with shared
// dispatcher shards. If the fleet isolates tenants, serving them together
// costs (almost) nothing: aggregate goodput stays >= 0.8x the sum of the
// isolated runs (CI's fleet-smoke step asserts exactly that on main).
//
// Emits the bench_parallel_kernels JSON schema for tools/compare_bench.py:
//
//   fleet_tenants                 registered tenants (structural, exact)
//   fleet_iso_goodput_<key>       tenant alone at half load, series/sec
//   fleet_aggregate_goodput       both tenants concurrent, series/sec
//   fleet_goodput_ratio           aggregate / sum-of-isolated (~1.0)
//   fleet_p99_ms_<key>            per-tenant p99 latency under the
//                                 concurrent run, milliseconds (emitted for
//                                 the artifact, not baselined: latency is
//                                 lower-is-better and compare_bench gates
//                                 higher-is-better rows only)
//
// Load points are sized off the measured direct Predict capacity, so the
// benchmark self-scales: each tenant is offered ~30% of the slower
// tenant's capacity, leaving the concurrent run (~60% aggregate) headroom
// on one core — the ratio measures isolation overhead, not saturation.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset_registry.h"
#include "serve/fleet_server.h"
#include "serve/loadgen.h"
#include "tensor/tensor.h"
#include "util/env.h"

namespace conformer::bench {
namespace {

using Clock = std::chrono::steady_clock;

double MinSeconds() {
  static const double min_seconds =
      static_cast<double>(GetEnvInt("CONFORMER_BENCH_MIN_MILLIS", 100)) * 1e-3;
  return min_seconds;
}

struct Row {
  std::string kernel;
  int64_t threads;
  double ops_per_sec;
};

// Direct (queueless) Predict capacity in series/sec — the load points'
// yardstick.
double MeasureCapacity(serve::InferenceSession* session,
                       const data::Batch& batch) {
  ClearBufferPool();
  session->Predict(batch);  // Warm-up: activation-buffer pool.
  int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    session->Predict(batch);
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < MinSeconds());
  return static_cast<double>(iters * batch.size()) / elapsed;
}

int Main() {
  const int64_t threads = std::max<int64_t>(
      1, static_cast<int64_t>(std::thread::hardware_concurrency()));

  // Two linear tenants at different horizons: fast enough for the smoke
  // job, structurally a real mixed-geometry fleet. Untrained weights —
  // throughput does not depend on parameter values.
  data::TimeSeries series = data::MakeDataset("etth1", 0.08).value();
  const std::vector<std::string> keys = {"linear@8", "linear@16"};
  const std::vector<int64_t> horizons = {8, 16};

  serve::FleetServer fleet({.num_dispatchers = 2});
  std::vector<serve::TenantLoad> loads;
  for (size_t k = 0; k < keys.size(); ++k) {
    serve::TenantSpec spec;
    spec.session.model_name = "linear";
    spec.session.window = {
        .input_len = 32, .label_len = 16, .pred_len = horizons[k]};
    spec.session.dims = series.dims();
    spec.queue = {.max_batch_size = 8,
                  .max_queue_delay_us = 500,
                  .max_queue_depth = 64};
    if (!fleet.AddTenant(keys[k], spec).ok()) {
      std::fprintf(stderr, "failed to add tenant %s\n", keys[k].c_str());
      return 1;
    }
    data::DatasetSplits splits =
        data::MakeSplits(series, spec.session.window);
    loads.push_back({keys[k], splits.test.GetRange(0, 1), 1.0});
  }
  if (fleet.tenant_count() < 2) {
    std::fprintf(stderr, "fleet bench needs >= 2 concurrent tenants\n");
    return 1;
  }

  double capacity = 0.0;
  for (size_t k = 0; k < keys.size(); ++k) {
    const double tenant_capacity =
        MeasureCapacity(fleet.session(keys[k]), loads[k].prototype);
    capacity = k == 0 ? tenant_capacity : std::min(capacity, tenant_capacity);
  }
  // Per-tenant offered load: ~30% of the slower tenant's capacity, so the
  // concurrent run (~60% aggregate) stays under one core's capacity and
  // goodput measures isolation, not saturation.
  const double half_load = std::max(8.0, 0.3 * capacity);

  serve::LoadgenOptions options;
  options.duration_seconds = std::max(0.4, 4.0 * MinSeconds());
  options.num_clients = 2;
  options.seed = 1234;

  std::vector<Row> rows;
  rows.push_back(
      {"fleet_tenants", threads, static_cast<double>(fleet.tenant_count())});

  // Each tenant alone at half load: the isolation yardstick.
  double iso_sum = 0.0;
  for (size_t k = 0; k < keys.size(); ++k) {
    options.offered_rps = half_load;
    const serve::LoadReport iso =
        serve::RunOpenLoop(fleet, {loads[k]}, options);
    rows.push_back(
        {"fleet_iso_goodput_" + keys[k], threads, iso.goodput_rps});
    iso_sum += iso.goodput_rps;
  }

  // Both tenants concurrent at the combined load (each still half_load).
  options.offered_rps = half_load * static_cast<double>(keys.size());
  const serve::LoadReport concurrent =
      serve::RunOpenLoop(fleet, loads, options);
  rows.push_back(
      {"fleet_aggregate_goodput", threads, concurrent.goodput_rps});
  rows.push_back({"fleet_goodput_ratio", threads,
                  iso_sum > 0.0 ? concurrent.goodput_rps / iso_sum : 0.0});
  for (const serve::TenantLoadStats& tenant : concurrent.tenants) {
    rows.push_back({"fleet_p99_ms_" + tenant.key, threads, tenant.p99_ms});
  }
  fleet.Shutdown();

  std::printf("{\"hardware_concurrency\": %lld, \"results\": [",
              static_cast<long long>(threads));
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf(
        "%s\n  {\"kernel\": \"%s\", \"threads\": %lld, \"ops_per_sec\": %.3f}",
        i == 0 ? "" : ",", rows[i].kernel.c_str(),
        static_cast<long long>(rows[i].threads), rows[i].ops_per_sec);
  }
  std::printf("\n]}\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Main(); }
