// Reproduces Fig. 5: computation-efficiency comparison of the attention
// mechanisms — (a) running time per forward pass and (b) peak memory, as
// the prediction length grows (input fixed, Wind-shaped inputs,
// multivariate setting). Built on google-benchmark; memory comes from the
// tensor allocation counters.
//
// Paper-observed shape: sliding-window (Conformer) is fastest and smallest
// at long lengths; full attention grows quadratically; ProbSparse / LSH /
// LogSparse sit between.

#include <benchmark/benchmark.h>

#include "attention/attention.h"
#include "tensor/alloc_stats.h"
#include "util/env.h"

namespace conformer::bench {
namespace {

using attention::AttentionKind;

std::unique_ptr<attention::AttentionMechanism> Make(AttentionKind kind) {
  attention::AttentionConfig config;
  config.window = 2;
  config.factor = 1;
  config.lsh_chunk = 24;
  return attention::MakeAttention(kind, config);
}

void AttentionForward(benchmark::State& state, AttentionKind kind) {
  const int64_t length = state.range(0);
  const int64_t d = 32;
  auto mech = Make(kind);
  NoGradGuard guard;
  Rng rng(1);
  Tensor q = Tensor::Randn({1, length, d}, &rng);
  Tensor k = Tensor::Randn({1, length, d}, &rng);
  Tensor v = Tensor::Randn({1, length, d}, &rng);

  ResetAllocPeak();
  const int64_t baseline = GetAllocStats().current_bytes;
  for (auto _ : state) {
    Tensor out = mech->Forward(q, k, v, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["peak_MB"] =
      static_cast<double>(GetAllocStats().peak_bytes - baseline) / (1 << 20);
}

void RegisterAll() {
  const bool full = GetEnv("CONFORMER_BENCH_SCALE") == "full";
  const std::vector<int64_t> lengths =
      full ? std::vector<int64_t>{48, 96, 192, 384, 768}
           : std::vector<int64_t>{48, 96, 192, 384};
  const std::vector<std::pair<AttentionKind, const char*>> kinds = {
      {AttentionKind::kSlidingWindow, "Conformer_window"},
      {AttentionKind::kFull, "Full"},
      {AttentionKind::kProbSparse, "ProbSparse_Informer"},
      {AttentionKind::kLogSparse, "LogSparse_LogTrans"},
      {AttentionKind::kLsh, "LSH_Reformer"},
      {AttentionKind::kAutoCorrelation, "AutoCorr_Autoformer"},
  };
  for (const auto& [kind, name] : kinds) {
    auto* b = benchmark::RegisterBenchmark(
        name, [kind](benchmark::State& state) { AttentionForward(state, kind); });
    for (int64_t length : lengths) b->Arg(length);
    b->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace conformer::bench

int main(int argc, char** argv) {
  conformer::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\npaper shape (Fig. 5): sliding-window attention is the fastest and "
      "leanest as the length grows; full attention scales quadratically in "
      "both time and memory.\n");
  return 0;
}
