// Reproduces Table VI: ablation of SIRN on the Wind dataset — the full
// SIRN encoder/decoder versus plain attention layers built on
// Auto-Correlation / ProbSparse / LSH / LogSparse / full attention, under
// both multivariate and univariate settings.
//
// Paper-observed shape: full SIRN beats every attention-only variant; the
// attention-only variants are close to one another.

#include "bench/bench_util.h"
#include "core/conformer_model.h"

namespace conformer::bench {
namespace {

int Run() {
  const BenchScale scale = GetBenchScale();
  struct Variant {
    std::string label;
    core::SirnMode mode;
    attention::AttentionKind kind;
  };
  const std::vector<Variant> kVariants = {
      {"full SIRN", core::SirnMode::kFull, attention::AttentionKind::kFull},
      {"Auto-Corr", core::SirnMode::kAttentionOnly,
       attention::AttentionKind::kAutoCorrelation},
      {"Prob-Attn", core::SirnMode::kAttentionOnly,
       attention::AttentionKind::kProbSparse},
      {"LSH-Attn", core::SirnMode::kAttentionOnly,
       attention::AttentionKind::kLsh},
      {"Log-Attn", core::SirnMode::kAttentionOnly,
       attention::AttentionKind::kLogSparse},
      {"Full-Attn", core::SirnMode::kAttentionOnly,
       attention::AttentionKind::kFull},
  };

  ResultTable table("Table VI: SIRN ablation on Wind (MSE / MAE)");
  data::TimeSeries multivariate =
      data::MakeDataset("wind", scale.dataset_scale, /*seed=*/5).value();
  data::TimeSeries univariate = multivariate.Column(multivariate.target_column());

  for (const bool uni : {false, true}) {
    const data::TimeSeries& series = uni ? univariate : multivariate;
    for (int64_t horizon : scale.horizons) {
      data::WindowConfig window{scale.input_len, scale.label_len, horizon};
      const std::string row = std::string(uni ? "uni" : "multi") + "/" +
                              std::to_string(horizon);
      for (const Variant& variant : kVariants) {
        core::ConformerConfig config;
        config.d_model = scale.d_model;
        config.n_heads = scale.n_heads;
        config.ma_kernel = scale.ma_kernel;
        config.sirn_mode = variant.mode;
        config.ablation_attention = variant.kind;
        if (uni) config.dec_rnn_layers = 1;
        core::ConformerModel model(config, window, series.dims());
        Score score = RunExperiment(&model, series, window, scale);
        table.Add(row, variant.label, score);
      }
      std::printf("[table6] finished %s\n", row.c_str());
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\npaper shape: full SIRN beats every attention-only replacement "
      "under both settings; the replacements cluster together.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
