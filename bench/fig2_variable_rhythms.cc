// Reproduces Fig. 2: "different variables of time-series data evolve at
// varying rhythms and dynamics" — for each dataset we print an ASCII
// heatmap of the inter-variable correlation matrix and each variable's
// dominant period (from its auto-correlation), which is what the paper's
// heatmaps visualize.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "data/dataset_registry.h"
#include "fft/autocorrelation.h"
#include "util/env.h"

namespace conformer::bench {
namespace {

char Shade(double v) {
  const double a = std::fabs(v);
  if (a > 0.8) return '#';
  if (a > 0.6) return '@';
  if (a > 0.4) return '+';
  if (a > 0.2) return '.';
  return ' ';
}

int Run() {
  const double scale = GetEnv("CONFORMER_BENCH_SCALE") == "full" ? 1.0 : 0.06;
  for (const std::string& name : data::AvailableDatasets()) {
    data::TimeSeries series = data::MakeDataset(name, scale, /*seed=*/9).value();
    const int64_t dims = std::min<int64_t>(series.dims(), 8);
    std::printf("\n== %s: correlation heatmap (first %lld vars) ==\n",
                name.c_str(), static_cast<long long>(dims));
    for (int64_t i = 0; i < dims; ++i) {
      std::printf("  var%lld |", static_cast<long long>(i));
      for (int64_t j = 0; j < dims; ++j) {
        std::printf(" %c", Shade(series.ColumnCorrelation(i, j)));
      }
      std::printf("|\n");
    }

    std::printf("  dominant periods (steps): ");
    const int64_t window = std::min<int64_t>(series.num_points(), 512);
    for (int64_t d = 0; d < dims; ++d) {
      // Demean, then pick the strongest auto-correlation lag beyond the
      // short-range AR noise (lag >= 4) — the variable's rhythm.
      std::vector<double> column(window);
      double mean = 0.0;
      for (int64_t t = 0; t < window; ++t) mean += series.value(t, d);
      mean /= static_cast<double>(window);
      for (int64_t t = 0; t < window; ++t) {
        column[t] = series.value(t, d) - mean;
      }
      auto ac = fft::AutoCorrelation(column);
      // The rhythm is the strongest LOCAL maximum of the auto-correlation:
      // AR noise decays monotonically, while a seasonal component produces
      // a bump at its period.
      int64_t best = 0;
      for (int64_t lag = 4; lag < window / 2; ++lag) {
        if (ac[lag] > ac[lag - 1] && ac[lag] >= ac[lag + 1] &&
            (best == 0 || ac[lag] > ac[best])) {
          best = lag;
        }
      }
      // Report "-" when there is no convincing peak (aperiodic series).
      if (best == 0 || ac[best] < 0.1 * ac[0]) {
        std::printf("- ");
      } else {
        std::printf("%lld ", static_cast<long long>(best));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper shape: periodic datasets (ECL/Weather/ETT) show repeated "
      "rhythm structure across variables; Exchange shows none; variables "
      "within one dataset differ in rhythm.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
