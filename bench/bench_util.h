// Shared harness for the table/figure reproduction benches: scaled-down
// experiment configs, a train-and-evaluate runner, and the table printer
// emitting the same row structure the paper reports.
//
// Scaling: the paper trains input-96 models with d_model 512 on an A100;
// this repo runs on one CPU core, so the default "quick" scale shrinks
// sequence lengths, model width, and epochs while keeping every structural
// knob identical. Set CONFORMER_BENCH_SCALE=full for paper-sized runs.

#ifndef CONFORMER_BENCH_BENCH_UTIL_H_
#define CONFORMER_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "data/dataset_registry.h"
#include "train/trainer.h"
#include "util/env.h"
#include "util/string_util.h"

namespace conformer::bench {

/// \brief Global bench scale resolved from CONFORMER_BENCH_SCALE.
struct BenchScale {
  bool full = false;
  double dataset_scale = 0.06;  ///< Fraction of Table I point counts.
  /// Quick scale: input 48 covers two daily cycles of the hourly datasets,
  /// mirroring input-96's two-cycle coverage in the paper.
  int64_t input_len = 48;       ///< Paper: 96.
  int64_t label_len = 24;
  /// Paper horizons {48, 96, 192, 384, 768} map onto these.
  std::vector<int64_t> horizons = {24, 48};
  int64_t d_model = 16;
  int64_t n_heads = 2;
  /// Decomposition moving-average width, scaled with input_len (paper: 25
  /// on 96-step inputs -> 13 on 48-step inputs).
  int64_t ma_kernel = 13;
  int64_t epochs = 3;
  int64_t batch_size = 16;
  int64_t max_train_batches = 25;
  int64_t max_eval_batches = 6;
};

inline BenchScale GetBenchScale() {
  BenchScale s;
  if (GetEnv("CONFORMER_BENCH_SCALE") == "full") {
    s.full = true;
    s.dataset_scale = 1.0;
    s.input_len = 96;
    s.label_len = 48;
    s.horizons = {48, 96, 192, 384, 768};
    s.d_model = 64;
    s.n_heads = 8;
    s.ma_kernel = 25;
    s.epochs = 10;
    s.batch_size = 32;
    s.max_train_batches = 0;
    s.max_eval_batches = 0;
  }
  return s;
}

/// \brief One (model, dataset, horizon) score.
struct Score {
  double mse = 0.0;
  double mae = 0.0;
};

/// Trains `model` on chronological splits of `series` and returns test
/// MSE/MAE, mirroring Section V-A3's protocol.
inline Score RunExperiment(models::Forecaster* model,
                           const data::TimeSeries& series,
                           const data::WindowConfig& window,
                           const BenchScale& scale, uint64_t seed = 1) {
  data::DatasetSplits splits = data::MakeSplits(series, window);
  train::TrainConfig config;
  config.epochs = scale.epochs;
  config.batch_size = scale.batch_size;
  config.learning_rate = scale.full ? 1e-4f : 2e-3f;
  config.max_train_batches = scale.max_train_batches;
  config.max_eval_batches = scale.max_eval_batches;
  config.seed = seed;
  train::Trainer trainer(config);
  trainer.Fit(model, splits.train, splits.val);
  train::EvalMetrics m = trainer.Evaluate(model, splits.test);
  return Score{m.mse, m.mae};
}

/// Convenience: build the named model with bench-scaled hyper-params.
inline std::unique_ptr<models::Forecaster> MakeBenchModel(
    const std::string& name, const data::WindowConfig& window, int64_t dims,
    const BenchScale& scale, bool univariate = false) {
  models::ModelHyperParams params;
  params.d_model = scale.d_model;
  params.n_heads = scale.n_heads;
  params.hidden = scale.d_model;
  params.ma_kernel = scale.ma_kernel;
  params.univariate = univariate;
  auto result = models::MakeForecaster(name, window, dims, params);
  CONFORMER_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// \brief Accumulates rows and prints a paper-style table:
/// rows = (dataset, horizon), columns = models, cells = MSE / MAE.
class ResultTable {
 public:
  explicit ResultTable(std::string title) : title_(std::move(title)) {}

  void Add(const std::string& row, const std::string& model, Score score) {
    if (std::find(rows_.begin(), rows_.end(), row) == rows_.end()) {
      rows_.push_back(row);
    }
    if (std::find(models_.begin(), models_.end(), model) == models_.end()) {
      models_.push_back(model);
    }
    cells_[{row, model}] = score;
  }

  void Print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    std::printf("%-18s", "");
    for (const std::string& m : models_) std::printf("| %-17s", m.c_str());
    std::printf("\n%-18s", "dataset/horizon");
    for (size_t i = 0; i < models_.size(); ++i) std::printf("| %-8s %-8s", "MSE", "MAE");
    std::printf("\n");
    for (const std::string& row : rows_) {
      std::printf("%-18s", row.c_str());
      // Mark the best MSE in the row.
      double best = 1e30;
      for (const std::string& m : models_) {
        auto it = cells_.find({row, m});
        if (it != cells_.end()) best = std::min(best, it->second.mse);
      }
      for (const std::string& m : models_) {
        auto it = cells_.find({row, m});
        if (it == cells_.end()) {
          std::printf("| %-17s", "-");
          continue;
        }
        const char marker = it->second.mse == best ? '*' : ' ';
        std::printf("|%c%-8s %-8s", marker,
                    FormatFixed(it->second.mse, 4).c_str(),
                    FormatFixed(it->second.mae, 4).c_str());
      }
      std::printf("\n");
    }
    std::fflush(stdout);
  }

  /// Wins by lowest MSE per row, for the summary line.
  std::map<std::string, int> WinsByModel() const {
    std::map<std::string, int> wins;
    for (const std::string& row : rows_) {
      std::string best_model;
      double best = 1e30;
      for (const std::string& m : models_) {
        auto it = cells_.find({row, m});
        if (it != cells_.end() && it->second.mse < best) {
          best = it->second.mse;
          best_model = m;
        }
      }
      if (!best_model.empty()) wins[best_model] += 1;
    }
    return wins;
  }

 private:
  std::string title_;
  std::vector<std::string> rows_;
  std::vector<std::string> models_;
  std::map<std::pair<std::string, std::string>, Score> cells_;
};

}  // namespace conformer::bench

#endif  // CONFORMER_BENCH_BENCH_UTIL_H_
