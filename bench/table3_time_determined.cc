// Reproduces Table III: multivariate LTTF with time-determined input/output
// lengths (input = 1 day; output = 1 day / 1 week / 2 weeks / 1 month) on
// ETTh1 (hourly) and ETTm1 (15-minute).
//
// Quick scale shortens the calendar spans (the CPU cannot train 2880-step
// decoders) but keeps the "horizon measured in days, not steps" structure:
// ETTh1 uses 1-day input with 1-day and 2-day outputs; ETTm1 uses a
// quarter-day input with quarter-day and 1-day outputs.
//
// Paper-observed shape: Conformer best on nearly all rows; degradation as
// the calendar horizon grows is the mildest for Conformer.

#include "bench/bench_util.h"

namespace conformer::bench {
namespace {

struct CalendarRow {
  std::string dataset;
  std::string label;
  int64_t input_len;
  int64_t pred_len;
};

int Run() {
  const BenchScale scale = GetBenchScale();
  std::vector<CalendarRow> rows;
  if (scale.full) {
    rows = {
        {"etth1", "etth1/1D", 24, 24},   {"etth1", "etth1/1W", 24, 168},
        {"etth1", "etth1/2W", 24, 336},  {"etth1", "etth1/1M", 24, 720},
        {"ettm1", "ettm1/1D", 96, 96},   {"ettm1", "ettm1/1W", 96, 672},
        {"ettm1", "ettm1/2W", 96, 1344},
    };
  } else {
    rows = {
        {"etth1", "etth1/1D", 24, 24},
        {"etth1", "etth1/2D", 24, 48},
        {"ettm1", "ettm1/6H", 24, 24},
        {"ettm1", "ettm1/1D", 24, 96},
    };
  }

  const std::vector<std::string> kModels = {
      "conformer", "longformer", "autoformer", "informer",
      "reformer",  "lstnet",     "gru",        "nbeats"};

  ResultTable table(
      "Table III: multivariate LTTF, time-determined lengths (MSE / MAE)");
  for (const CalendarRow& row : rows) {
    data::TimeSeries series =
        data::MakeDataset(row.dataset, scale.dataset_scale, /*seed=*/2).value();
    data::WindowConfig window{row.input_len, row.input_len / 2, row.pred_len};
    for (const std::string& model_name : kModels) {
      auto model = MakeBenchModel(model_name, window, series.dims(), scale);
      Score score = RunExperiment(model.get(), series, window, scale);
      table.Add(row.label, model->name(), score);
    }
    std::printf("[table3] finished %s\n", row.label.c_str());
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\npaper shape: Conformer best (or competitive) on every calendar "
      "horizon; errors grow with the horizon for all models.\n");
  return 0;
}

}  // namespace
}  // namespace conformer::bench

int main() { return conformer::bench::Run(); }
