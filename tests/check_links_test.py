#!/usr/bin/env python3
"""Exit-code contract tests for tools/check_links.py.

Run as: check_links_test.py <path-to-check_links.py>

Builds throwaway Markdown trees and checks: valid relative links and
anchors pass; a missing file, a missing anchor, and a bad cross-file anchor
fail with a diagnostic naming the offender; links inside fenced code
blocks, external URLs, and targets escaping the root are ignored; duplicate
headings get GitHub's -1 suffix.
"""

import os
import subprocess
import sys
import tempfile


def write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        f.write(content)
    return path


def run(checker, root):
    proc = subprocess.run(
        [sys.executable, checker, root],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    return proc.returncode, proc.stdout.decode()


def main():
    if len(sys.argv) != 2:
        print("usage: check_links_test.py <check_links.py>")
        return 1
    checker = sys.argv[1]
    failures = []

    def expect(name, got, want):
        if got != want:
            failures.append("%s: expected %r, got %r" % (name, want, got))

    # A healthy tree: relative links, same-file and cross-file anchors,
    # external URLs, code fences, and an escaping target.
    with tempfile.TemporaryDirectory() as root:
        write(
            root,
            "README.md",
            "# Top\n\n## Build & Test\n\n"
            "[docs](docs/GUIDE.md) [anchor](#build--test)\n"
            "[deep](docs/GUIDE.md#second-part)\n"
            "[ext](https://example.com/missing) [mail](mailto:x@y.z)\n"
            "[badge](../../actions/workflows/ci.yml)\n"
            "```\n[fake](nope.md)\n```\n",
        )
        write(
            root,
            "docs/GUIDE.md",
            "# Guide\n\n## Part\n\n## Part\n\n## Second part\n\n"
            "[back](../README.md#top) [dup](#part-1)\n",
        )
        code, out = run(checker, root)
        expect("healthy tree exit", code, 0)
        expect("healthy tree count", "2 file(s)" in out, True)

    # One broken file link.
    with tempfile.TemporaryDirectory() as root:
        write(root, "a.md", "[gone](missing.md)\n")
        code, out = run(checker, root)
        expect("broken link exit", code, 1)
        expect("broken link named", "missing.md" in out, True)

    # Same-file anchor that matches no heading.
    with tempfile.TemporaryDirectory() as root:
        write(root, "a.md", "# Real Heading\n\n[bad](#not-here)\n")
        code, out = run(checker, root)
        expect("missing anchor exit", code, 1)
        expect("missing anchor named", "#not-here" in out, True)

    # Cross-file anchor that matches no heading in the target.
    with tempfile.TemporaryDirectory() as root:
        write(root, "a.md", "[bad](b.md#absent)\n")
        write(root, "b.md", "# Only This\n")
        code, out = run(checker, root)
        expect("cross-file anchor exit", code, 1)

    # build*/ directories are pruned.
    with tempfile.TemporaryDirectory() as root:
        write(root, "a.md", "# Fine\n")
        write(root, "build/junk.md", "[gone](nowhere.md)\n")
        code, _ = run(checker, root)
        expect("build dir pruned", code, 0)

    # Usage errors exit 2.
    code, _ = run(checker, os.path.join("/", "no", "such", "dir"))
    expect("bad root exit", code, 2)

    if failures:
        print("FAILED:")
        for failure in failures:
            print("  " + failure)
        return 1
    print("check_links_test: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
