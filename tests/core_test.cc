// Conformer core: series decomposition, input representation (incl. Table
// V/VIII variants), SIRN, encoder/decoder, and the assembled model.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/conformer_model.h"
#include "core/input_representation.h"
#include "core/series_decomposition.h"
#include "core/sirn.h"
#include "data/dataset_registry.h"
#include "data/time_features.h"
#include "data/window_dataset.h"

namespace conformer::core {
namespace {

// -- series decomposition ----------------------------------------------------

TEST(DecompTest, TrendPlusSeasonalReconstructs) {
  Tensor x = Tensor::Randn({2, 20, 3});
  Decomposition d = DecomposeSeries(x, 5);
  Tensor sum = Add(d.trend, d.seasonal);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(sum.data()[i], x.data()[i], 1e-5);
  }
}

TEST(DecompTest, ConstantSeriesIsAllTrend) {
  Tensor x = Tensor::Full({1, 10, 2}, 3.0f);
  Decomposition d = DecomposeSeries(x, 5);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(d.trend.data()[i], 3.0f, 1e-6);
    EXPECT_NEAR(d.seasonal.data()[i], 0.0f, 1e-6);
  }
}

TEST(DecompTest, LinearTrendSurvivesInteriorAveraging) {
  // For a linear ramp, a centred moving average is exact away from edges.
  std::vector<float> values(16);
  for (int64_t i = 0; i < 16; ++i) values[i] = static_cast<float>(i);
  Tensor x = Tensor::FromVector(values, {1, 16, 1});
  Decomposition d = DecomposeSeries(x, 5);
  for (int64_t t = 2; t < 14; ++t) {
    EXPECT_NEAR(d.trend.at({0, t, 0}), static_cast<float>(t), 1e-5);
  }
}

TEST(DecompTest, SineIsMostlySeasonal) {
  const int64_t n = 48;
  std::vector<float> values(n);
  for (int64_t i = 0; i < n; ++i) {
    values[i] = std::sin(2.0f * std::numbers::pi_v<float> * i / 8.0f);
  }
  Tensor x = Tensor::FromVector(values, {1, n, 1});
  Decomposition d = DecomposeSeries(x, 9);
  double trend_energy = 0.0;
  double seasonal_energy = 0.0;
  for (int64_t i = 8; i < n - 8; ++i) {
    trend_energy += d.trend.at({0, i, 0}) * d.trend.at({0, i, 0});
    seasonal_energy += d.seasonal.at({0, i, 0}) * d.seasonal.at({0, i, 0});
  }
  EXPECT_LT(trend_energy, 0.1 * seasonal_energy);
}

TEST(DecompTest, KernelWiderThanSequenceIsClamped) {
  Tensor x = Tensor::Randn({1, 4, 1});
  Decomposition d = DecomposeSeries(x, 99);  // clamped to length (odd: 3)
  EXPECT_EQ(d.trend.shape(), x.shape());
}

TEST(DecompTest, GradientFlows) {
  Tensor x = Tensor::Randn({1, 8, 2}).set_requires_grad(true);
  Decomposition d = DecomposeSeries(x, 3);
  Sum(Mul(d.seasonal, d.seasonal)).Backward();
  EXPECT_TRUE(x.has_grad());
}

// -- input representation ------------------------------------------------------

InputRepresentationConfig SmallInputConfig(int64_t length = 12) {
  InputRepresentationConfig c;
  c.dims = 3;
  c.length = length;
  c.d_model = 8;
  return c;
}

Tensor Marks(int64_t batch, int64_t length) {
  // Hourly marks starting at the epoch.
  std::vector<int64_t> ts(length);
  for (int64_t i = 0; i < length; ++i) ts[i] = i * 3600;
  std::vector<float> one = data::ExtractTimeFeatures(ts);
  std::vector<float> all;
  for (int64_t b = 0; b < batch; ++b) all.insert(all.end(), one.begin(), one.end());
  return Tensor::FromVector(std::move(all),
                            {batch, length, data::kNumTimeFeatures});
}

TEST(InputReprTest, OutputShape) {
  InputRepresentation repr(SmallInputConfig());
  Tensor x = Tensor::Randn({2, 12, 3});
  EXPECT_EQ(repr.Forward(x, Marks(2, 12)).shape(), (Shape{2, 12, 8}));
}

TEST(InputReprTest, AllVariantsRun) {
  for (InputVariant v :
       {InputVariant::kFull, InputVariant::kNoMultiscale,
        InputVariant::kNoCorrelation, InputVariant::kNoCorrNoMultiscale,
        InputVariant::kNoRaw, InputVariant::kNoRawNoMultiscale}) {
    InputRepresentationConfig c = SmallInputConfig();
    c.variant = v;
    InputRepresentation repr(c);
    Tensor out = repr.Forward(Tensor::Randn({1, 12, 3}), Marks(1, 12));
    EXPECT_EQ(out.shape(), (Shape{1, 12, 8})) << InputVariantName(v);
  }
}

TEST(InputReprTest, AllFusionMethodsRun) {
  for (FusionMethod m : {FusionMethod::kDefault, FusionMethod::kMethod1,
                         FusionMethod::kMethod2, FusionMethod::kMethod3,
                         FusionMethod::kMethod4}) {
    InputRepresentationConfig c = SmallInputConfig();
    c.fusion = m;
    InputRepresentation repr(c);
    Tensor out = repr.Forward(Tensor::Randn({1, 12, 3}), Marks(1, 12));
    EXPECT_EQ(out.shape(), (Shape{1, 12, 8})) << FusionMethodName(m);
  }
}

TEST(InputReprTest, VariantsChangeTheOutput) {
  GlobalRng() = Rng(42);
  InputRepresentationConfig base = SmallInputConfig();
  InputRepresentation full(base);
  Tensor x = Tensor::Randn({1, 12, 3});
  Tensor marks = Marks(1, 12);
  Tensor with_corr = full.Forward(x, marks);

  // Removing the correlation term shifts the embedding (same weights are
  // not guaranteed, so compare within one instance through its config).
  InputRepresentationConfig no_corr_cfg = base;
  no_corr_cfg.variant = InputVariant::kNoCorrelation;
  InputRepresentation no_corr(no_corr_cfg);
  Tensor without = no_corr.Forward(x, marks);
  // Not a weight-matched comparison; just require both are finite and
  // non-degenerate.
  double a = 0.0;
  double b = 0.0;
  for (int64_t i = 0; i < with_corr.numel(); ++i) {
    a += std::fabs(with_corr.data()[i]);
    b += std::fabs(without.data()[i]);
  }
  EXPECT_GT(a, 0.0);
  EXPECT_GT(b, 0.0);
}

TEST(InputReprTest, MultivariateWeightsMatchDirectCorrelationOracle) {
  // Regression pin for the FFT rewrite of the Eq. 1-2 path: the softmaxed
  // correlation weights must match the pre-rewrite direct O(L^2) circular
  // correlation (what the old non-power-of-two fallback computed) within fp
  // tolerance, at a benchmark length that used to hit that fallback.
  const int64_t batch = 2;
  const int64_t length = 96;
  const int64_t dims = 3;
  InputRepresentationConfig c = SmallInputConfig(length);
  InputRepresentation repr(c);
  GlobalRng() = Rng(21);
  Tensor x = Tensor::Randn({batch, length, dims});
  Tensor weights = repr.MultivariateWeights(x);
  ASSERT_EQ(weights.shape(), (Shape{batch, length, dims}));

  // Old pipeline, replicated: direct circular auto-correlation per (batch,
  // variable) column, lag-0 normalization, softmax over variables.
  std::vector<float> corr(batch * length * dims);
  const float* xd = x.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t d = 0; d < dims; ++d) {
      std::vector<double> column(length);
      for (int64_t t = 0; t < length; ++t) {
        column[t] = xd[(b * length + t) * dims + d];
      }
      std::vector<double> ac(length, 0.0);
      for (int64_t lag = 0; lag < length; ++lag) {
        for (int64_t t = 0; t < length; ++t) {
          ac[lag] += column[t] * column[(t + lag) % length];
        }
      }
      const double denom = std::max(std::fabs(ac[0]), 1e-8);
      for (int64_t t = 0; t < length; ++t) {
        corr[(b * length + t) * dims + d] = static_cast<float>(ac[t] / denom);
      }
    }
  }
  Tensor expected =
      Softmax(Tensor::FromVector(std::move(corr), {batch, length, dims}), -1);
  for (int64_t i = 0; i < weights.numel(); ++i) {
    EXPECT_NEAR(weights.data()[i], expected.data()[i], 1e-5) << "i=" << i;
  }
}

TEST(InputReprTest, GradientReachesParameters) {
  InputRepresentation repr(SmallInputConfig());
  Tensor x = Tensor::Randn({1, 12, 3});
  Sum(repr.Forward(x, Marks(1, 12))).Backward();
  int64_t with_grad = 0;
  for (Tensor& p : repr.Parameters()) with_grad += p.has_grad();
  EXPECT_GT(with_grad, 3);
}

TEST(InputReprTest, RejectsWrongLength) {
  InputRepresentation repr(SmallInputConfig(12));
  EXPECT_DEATH(repr.Forward(Tensor::Randn({1, 10, 3}), Marks(1, 10)),
               "length");
}

// -- SIRN --------------------------------------------------------------------------

TEST(SirnTest, OutputShapes) {
  SirnConfig config;
  config.d_model = 8;
  config.n_heads = 2;
  config.ma_kernel = 5;
  Sirn sirn(config);
  LayerOutput out = sirn.Forward(Tensor::Randn({3, 10, 8}));
  EXPECT_EQ(out.sequence.shape(), (Shape{3, 10, 8}));
  EXPECT_EQ(out.hidden_first.shape(), (Shape{3, 8}));
  EXPECT_EQ(out.hidden_last.shape(), (Shape{3, 8}));
}

TEST(SirnTest, EtaZeroStillWorks) {
  SirnConfig config;
  config.d_model = 8;
  config.n_heads = 2;
  config.eta = 0;
  config.ma_kernel = 3;
  Sirn sirn(config);
  EXPECT_EQ(sirn.Forward(Tensor::Randn({1, 6, 8})).sequence.shape(),
            (Shape{1, 6, 8}));
}

TEST(SirnTest, GradientsReachAllSubmodules) {
  SirnConfig config;
  config.d_model = 8;
  config.n_heads = 2;
  config.ma_kernel = 5;
  Sirn sirn(config);
  Tensor x = Tensor::Randn({2, 10, 8});
  LayerOutput out = sirn.Forward(x);
  Sum(Add(Sum(out.sequence), Sum(out.hidden_first))).Backward();
  int64_t with_grad = 0;
  for (Tensor& p : sirn.Parameters()) with_grad += p.has_grad();
  // The vast majority of parameters participate (the trend GRU's first
  // hidden state is unused, so allow a small remainder).
  EXPECT_GT(with_grad, static_cast<int64_t>(sirn.Parameters().size() * 3 / 4));
}

TEST(AttentionOnlyLayerTest, BehavesLikeSequenceLayer) {
  AttentionOnlyLayer layer(8, 2, attention::AttentionKind::kProbSparse, {},
                           0.0f);
  LayerOutput out = layer.Forward(Tensor::Randn({2, 12, 8}));
  EXPECT_EQ(out.sequence.shape(), (Shape{2, 12, 8}));
  EXPECT_EQ(out.hidden_first.shape(), (Shape{2, 8}));
}

// -- encoder / decoder ----------------------------------------------------------

TEST(EncoderTest, StacksLayersAndExposesHiddens) {
  InputRepresentationConfig input = SmallInputConfig();
  SirnConfig sirn;
  sirn.d_model = 8;
  sirn.n_heads = 2;
  sirn.ma_kernel = 5;
  Encoder encoder(input, 2, [&] { return std::make_shared<Sirn>(sirn); });
  EncoderOutput out = encoder.Forward(Tensor::Randn({2, 12, 3}), Marks(2, 12));
  EXPECT_EQ(out.sequence.shape(), (Shape{2, 12, 8}));
  ASSERT_EQ(out.layers.size(), 2u);

  // Hidden selection picks the right layer and step.
  Tensor h_last_first = out.SelectHidden({.last_layer = true, .first_step = true});
  Tensor expect = out.layers[1].hidden_first;
  for (int64_t i = 0; i < h_last_first.numel(); ++i) {
    EXPECT_EQ(h_last_first.data()[i], expect.data()[i]);
  }
  Tensor h_first_last = out.SelectHidden({.last_layer = false, .first_step = false});
  expect = out.layers[0].hidden_last;
  for (int64_t i = 0; i < h_first_last.numel(); ++i) {
    EXPECT_EQ(h_first_last.data()[i], expect.data()[i]);
  }
}

TEST(DecoderTest, ProjectsBackToVariableSpace) {
  InputRepresentationConfig input = SmallInputConfig(10);
  SirnConfig sirn;
  sirn.d_model = 8;
  sirn.n_heads = 2;
  sirn.ma_kernel = 5;
  Decoder decoder(input, 1, [&] { return std::make_shared<Sirn>(sirn); },
                  /*n_heads=*/2, /*out_dims=*/3, /*dropout=*/0.0f);
  Tensor y_in = Tensor::Randn({2, 10, 3});
  Tensor memory = Tensor::Randn({2, 16, 8});
  DecoderOutput out = decoder.Forward(y_in, Marks(2, 10), memory);
  EXPECT_EQ(out.series.shape(), (Shape{2, 10, 3}));
  ASSERT_EQ(out.layers.size(), 1u);
  EXPECT_EQ(out.SelectHidden({}).shape(), (Shape{2, 8}));
}

TEST(DecoderTest, CrossAttentionUsesMemory) {
  InputRepresentationConfig input = SmallInputConfig(10);
  SirnConfig sirn;
  sirn.d_model = 8;
  sirn.n_heads = 2;
  sirn.ma_kernel = 5;
  Decoder decoder(input, 1, [&] { return std::make_shared<Sirn>(sirn); },
                  2, 3, 0.0f);
  decoder.SetTraining(false);
  NoGradGuard guard;
  Tensor y_in = Tensor::Randn({1, 10, 3});
  Tensor marks = Marks(1, 10);
  Tensor mem_a = Tensor::Randn({1, 16, 8});
  Tensor mem_b = Tensor::Randn({1, 16, 8});
  Tensor out_a = decoder.Forward(y_in, marks, mem_a).series;
  Tensor out_b = decoder.Forward(y_in, marks, mem_b).series;
  bool differs = false;
  for (int64_t i = 0; i < out_a.numel(); ++i) {
    differs = differs || out_a.data()[i] != out_b.data()[i];
  }
  EXPECT_TRUE(differs) << "decoder ignored the encoder memory";
}

// -- Conformer model -----------------------------------------------------------------

data::Batch SmallBatch(int64_t dims = 3) {
  data::TimeSeries ts = data::MakeDataset("etth1", 0.07, 21).value();
  // Keep only `dims` columns by constructing a window dataset on a slice.
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  data::DatasetSplits splits = data::MakeSplits(ts, cfg);
  (void)dims;
  return splits.train.GetRange(0, 4);
}

ConformerConfig SmallConformerConfig() {
  ConformerConfig c;
  c.d_model = 8;
  c.n_heads = 2;
  c.ma_kernel = 5;
  c.enc_layers = 2;
  c.dec_layers = 1;
  return c;
}

TEST(ConformerModelTest, ForwardShape) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  ConformerModel model(SmallConformerConfig(), cfg, batch.x.size(2));
  Tensor pred = model.Forward(batch);
  EXPECT_EQ(pred.shape(), (Shape{4, 8, batch.x.size(2)}));
}

TEST(ConformerModelTest, LossIsFiniteAndBackpropagates) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  ConformerModel model(SmallConformerConfig(), cfg, batch.x.size(2));
  Tensor loss = model.Loss(batch);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
  int64_t with_grad = 0;
  for (Tensor& p : model.Parameters()) with_grad += p.has_grad();
  EXPECT_GT(with_grad, static_cast<int64_t>(model.Parameters().size() / 2));
}

TEST(ConformerModelTest, FlowVariantsAllRun) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  for (flow::FlowVariant v :
       {flow::FlowVariant::kFull, flow::FlowVariant::kZe,
        flow::FlowVariant::kZd, flow::FlowVariant::kZeZd,
        flow::FlowVariant::kNone}) {
    ConformerConfig c = SmallConformerConfig();
    c.flow_variant = v;
    ConformerModel model(c, cfg, batch.x.size(2));
    Tensor loss = model.Loss(batch);
    EXPECT_TRUE(std::isfinite(loss.item())) << FlowVariantName(v);
  }
}

TEST(ConformerModelTest, HiddenChoicesAllRun) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  for (bool enc_last : {false, true}) {
    for (bool dec_last : {false, true}) {
      ConformerConfig c = SmallConformerConfig();
      c.enc_hidden = {.last_layer = enc_last, .first_step = false};
      c.dec_hidden = {.last_layer = dec_last, .first_step = false};
      ConformerModel model(c, cfg, batch.x.size(2));
      EXPECT_TRUE(std::isfinite(model.Loss(batch).item()));
    }
  }
}

TEST(ConformerModelTest, SirnAblationModesRun) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  for (attention::AttentionKind kind :
       {attention::AttentionKind::kFull, attention::AttentionKind::kProbSparse,
        attention::AttentionKind::kAutoCorrelation}) {
    ConformerConfig c = SmallConformerConfig();
    c.sirn_mode = SirnMode::kAttentionOnly;
    c.ablation_attention = kind;
    ConformerModel model(c, cfg, batch.x.size(2));
    EXPECT_TRUE(std::isfinite(model.Loss(batch).item()))
        << attention::AttentionKindName(kind);
  }
}

TEST(ConformerModelTest, UncertaintyBandsBracketMean) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  ConformerModel model(SmallConformerConfig(), cfg, batch.x.size(2));
  flow::UncertaintyBand band = model.PredictWithUncertainty(batch, 8, 0.9);
  EXPECT_EQ(band.mean.shape(), (Shape{4, 8, batch.x.size(2)}));
  for (int64_t i = 0; i < band.mean.numel(); ++i) {
    EXPECT_LE(band.lower.data()[i], band.upper.data()[i] + 1e-6);
  }
}

TEST(ConformerModelTest, LambdaOneIgnoresFlowOutput) {
  // With lambda = 1 the point forecast is the decoder alone, so two models
  // differing only in flow weights agree... verified within one model: the
  // forward equals the decoder-series path.
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  ConformerConfig c = SmallConformerConfig();
  c.lambda = 1.0f;
  ConformerModel model(c, cfg, batch.x.size(2));
  model.SetTraining(false);
  NoGradGuard guard;
  Tensor with_flow = model.Forward(batch);
  // The flow contribution is scaled by (1 - lambda) = 0.
  EXPECT_EQ(with_flow.shape(), (Shape{4, 8, batch.x.size(2)}));
  // Uncertainty bands collapse: all samples identical.
  flow::UncertaintyBand band = model.PredictWithUncertainty(batch, 6, 0.9);
  for (int64_t i = 0; i < band.mean.numel(); ++i) {
    EXPECT_NEAR(band.upper.data()[i] - band.lower.data()[i], 0.0f, 1e-6);
  }
}

TEST(ConformerModelTest, MoreFlowWeightWidensBands) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  ConformerConfig heavy = SmallConformerConfig();
  heavy.lambda = 0.2f;
  ConformerConfig light = SmallConformerConfig();
  light.lambda = 0.9f;
  ConformerModel model_heavy(heavy, cfg, batch.x.size(2));
  ConformerModel model_light(light, cfg, batch.x.size(2));
  auto width = [&](ConformerModel& m) {
    flow::UncertaintyBand band = m.PredictWithUncertainty(batch, 16, 0.9);
    double w = 0.0;
    for (int64_t i = 0; i < band.mean.numel(); ++i) {
      w += band.upper.data()[i] - band.lower.data()[i];
    }
    return w;
  };
  EXPECT_GT(width(model_heavy), width(model_light));
}

TEST(ConformerModelTest, NumParametersGrowsWithDepth) {
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  ConformerConfig shallow = SmallConformerConfig();
  shallow.enc_layers = 1;
  ConformerConfig deep = SmallConformerConfig();
  deep.enc_layers = 3;
  ConformerModel a(shallow, cfg, 3);
  ConformerModel b(deep, cfg, 3);
  EXPECT_GT(b.NumParameters(), a.NumParameters());
}

TEST(ConformerModelTest, EvalForwardIsDeterministic) {
  data::Batch batch = SmallBatch();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  ConformerModel model(SmallConformerConfig(), cfg, batch.x.size(2));
  model.SetTraining(false);
  NoGradGuard guard;
  Tensor a = model.Forward(batch);
  Tensor b = model.Forward(batch);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

}  // namespace
}  // namespace conformer::core
