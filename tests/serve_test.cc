// Serving-layer suite (docs/SERVING.md): inference-mode bitwise parity with
// the recording forward pass, activation-buffer-pool reuse, params-only
// checkpoint loading, checkpoint -> InferenceSession -> Predict round-trips
// for Conformer and three registered baselines, batched-vs-single bitwise
// transparency, BatchingQueue coalescing/drain behaviour, and the latency
// quantile helper behind the CLI's p50/p95/p99 summary.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "data/dataset_registry.h"
#include "serve/batching_queue.h"
#include "serve/inference_session.h"
#include "serve/stats.h"
#include "train/checkpoint.h"
#include "train/trainer.h"
#include "util/metrics.h"

namespace conformer::serve {
namespace {

constexpr const char* kRoundTripModels[] = {"conformer", "gru", "linear",
                                            "informer", "timesnet"};

data::WindowConfig TestWindow() {
  return {.input_len = 24, .label_len = 8, .pred_len = 8};
}

data::DatasetSplits MakeTestSplits() {
  data::TimeSeries series = data::MakeDataset("etth1", 0.05).value();
  return data::MakeSplits(series, TestWindow());
}

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = "/tmp/conformer_serve_" + tag + "_" +
                          std::to_string(static_cast<int64_t>(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b,
                               const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)), 0)
      << what << " differs";
}

// -- Inference mode vs. recording forward ---------------------------------

TEST(InferenceModeTest, BitwiseEqualsRecordingForward) {
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 3);
  for (const char* name : kRoundTripModels) {
    auto model = models::MakeForecaster(name, TestWindow(),
                                        splits.test.dims())
                     .value();
    model->SetTraining(false);
    // Recording path: parameters require grad, so this builds a tape.
    const Tensor recorded = model->Forward(batch);
    EXPECT_TRUE(recorded.requires_grad()) << name;

    ClearBufferPool();
    Tensor inference_cold, inference_warm;
    {
      InferenceModeGuard guard;
      inference_cold = model->Forward(batch);  // Pool empty: all misses.
      inference_warm = model->Forward(batch);  // Recycled buffers.
    }
    EXPECT_FALSE(inference_cold.requires_grad()) << name;
    ASSERT_EQ(inference_cold.impl()->node, nullptr) << name;
    ExpectTensorsBitwiseEqual(recorded, inference_cold,
                              std::string(name) + " cold inference");
    ExpectTensorsBitwiseEqual(recorded, inference_warm,
                              std::string(name) + " warm inference");
    ClearBufferPool();
  }
}

TEST(InferenceModeTest, BufferPoolRecyclesAcrossCalls) {
  data::DatasetSplits splits = MakeTestSplits();
  const data::Batch batch = splits.test.GetRange(0, 2);
  auto model =
      models::MakeForecaster("gru", TestWindow(), splits.test.dims()).value();
  model->SetTraining(false);

  metrics::Counter& hits =
      metrics::Registry::Global().GetCounter("tensor.pool_hits");
  ClearBufferPool();
  {
    InferenceModeGuard guard;
    EXPECT_TRUE(BufferPoolEnabled());
    (void)model->Forward(batch);
    const int64_t hits_after_cold = hits.value();
    (void)model->Forward(batch);
    EXPECT_GT(hits.value(), hits_after_cold)
        << "second forward should reuse recycled activation buffers";
  }
  EXPECT_FALSE(BufferPoolEnabled());
  ClearBufferPool();
}

TEST(InferenceModeTest, GuardRestoresPreviousState) {
  EXPECT_TRUE(GradRecordingEnabled());
  EXPECT_FALSE(BufferPoolEnabled());
  {
    InferenceModeGuard outer;
    EXPECT_FALSE(GradRecordingEnabled());
    EXPECT_TRUE(BufferPoolEnabled());
    {
      InferenceModeGuard inner;
      EXPECT_FALSE(GradRecordingEnabled());
    }
    EXPECT_FALSE(GradRecordingEnabled());
    EXPECT_TRUE(BufferPoolEnabled());
  }
  EXPECT_TRUE(GradRecordingEnabled());
  EXPECT_FALSE(BufferPoolEnabled());
}

// -- Params-only checkpoint loading ---------------------------------------

TEST(LoadCheckpointParamsTest, RestoresModelSectionOnly) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("params_only");

  auto src =
      models::MakeForecaster("gru", TestWindow(), splits.test.dims()).value();
  train::Adam optimizer(src->Parameters());
  train::TrainProgress progress;
  progress.global_step = 7;
  progress.epoch_rng_state = Rng(3).Serialize();
  train::CheckpointManager manager(dir);
  ASSERT_TRUE(manager.Save(*src, optimizer, progress).ok());
  const std::string path = manager.ListCheckpoints().value().back();

  auto dst =
      models::MakeForecaster("gru", TestWindow(), splits.test.dims(),
                             {.seed = 99})
          .value();
  ASSERT_TRUE(train::LoadCheckpointParams(path, dst.get()).ok());
  src->SetTraining(false);
  dst->SetTraining(false);
  const data::Batch batch = splits.test.GetRange(0, 2);
  ExpectTensorsBitwiseEqual(src->Predict(batch), dst->Predict(batch),
                            "params-only restore");
  std::filesystem::remove_all(dir);
}

TEST(LoadCheckpointParamsTest, RejectsCorruptionAnywhereInFile) {
  data::DatasetSplits splits = MakeTestSplits();
  const std::string dir = MakeTempDir("params_corrupt");

  auto model =
      models::MakeForecaster("gru", TestWindow(), splits.test.dims()).value();
  train::Adam optimizer(model->Parameters());
  train::TrainProgress progress;
  progress.global_step = 1;
  progress.epoch_rng_state = Rng(3).Serialize();
  train::CheckpointManager manager(dir);
  ASSERT_TRUE(manager.Save(*model, optimizer, progress).ok());
  const std::string path = manager.ListCheckpoints().value().back();

  // Flip one byte near the end of the file — inside the trainer section,
  // which a params-only load never applies but must still validate.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() - 3] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(train::LoadCheckpointParams(path, model.get()).ok());
  std::filesystem::remove_all(dir);
}

// -- Checkpoint -> InferenceSession -> Predict round-trip ------------------

TEST(InferenceSessionTest, TrainerCheckpointRoundTripAllModels) {
  data::DatasetSplits splits = MakeTestSplits();
  for (const char* name : kRoundTripModels) {
    const std::string dir = MakeTempDir(std::string("roundtrip_") + name);
    auto model =
        models::MakeForecaster(name, TestWindow(), splits.test.dims()).value();

    train::TrainConfig config;
    config.epochs = 1;
    config.max_train_batches = 4;
    config.max_eval_batches = 2;
    config.batch_size = 8;
    config.checkpoint_dir = dir;
    train::Trainer(config).Fit(model.get(), splits.train, splits.val);

    // Re-checkpoint the final (best-validation) weights the way a training
    // job would publish a model for serving.
    train::Adam optimizer(model->Parameters());
    train::TrainProgress progress;
    progress.global_step = 1000;
    progress.epoch_rng_state = Rng(5).Serialize();
    train::CheckpointManager manager(dir);
    ASSERT_TRUE(manager.Save(*model, optimizer, progress).ok());

    SessionConfig session_config;
    session_config.model_name = name;
    session_config.window = TestWindow();
    session_config.dims = splits.test.dims();
    auto session = InferenceSession::Open(session_config, dir);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    model->SetTraining(false);
    const data::Batch batch = splits.test.GetRange(1, 2);
    const Forecast served = session.value()->Predict(batch);
    ExpectTensorsBitwiseEqual(model->Predict(batch), served.point,
                              std::string(name) + " round trip");
    std::filesystem::remove_all(dir);
  }
}

TEST(InferenceSessionTest, OpenRejectsMissingCheckpoint) {
  SessionConfig config;
  config.model_name = "gru";
  config.window = TestWindow();
  config.dims = 7;
  EXPECT_FALSE(InferenceSession::Open(config, "/tmp/does-not-exist-xyz").ok());
}

TEST(InferenceSessionTest, ConformerQuantileBandOrdersAroundPoint) {
  data::DatasetSplits splits = MakeTestSplits();
  SessionConfig config;
  config.model_name = "conformer";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  config.quantile_samples = 4;
  auto session = InferenceSession::Open(config, "");
  ASSERT_TRUE(session.ok());

  const data::Batch batch = splits.test.GetRange(0, 2);
  const Forecast forecast = session.value()->Predict(batch);
  ASSERT_TRUE(forecast.lower.defined());
  ASSERT_TRUE(forecast.upper.defined());
  ASSERT_EQ(forecast.lower.shape(), forecast.point.shape());
  for (int64_t i = 0; i < forecast.lower.numel(); ++i) {
    EXPECT_LE(forecast.lower.data()[i], forecast.upper.data()[i]);
  }
  // Sampling advances the session's RNG between calls; the point path must
  // not notice (eval-mode forward never samples).
  const Forecast again = session.value()->Predict(batch);
  ExpectTensorsBitwiseEqual(again.point, forecast.point,
                            "point forecast across sampling calls");
}

// -- Batching transparency -------------------------------------------------

TEST(InferenceSessionTest, BatchedPredictBitwiseEqualsSingles) {
  data::DatasetSplits splits = MakeTestSplits();
  // "timesnet" exercises the per-series FFT period selection: its data-
  // dependent host logic must still be a pure function of each row.
  for (const char* name : {"conformer", "timesnet"}) {
    SessionConfig config;
    config.model_name = name;
    config.window = TestWindow();
    config.dims = splits.test.dims();
    auto session = InferenceSession::Open(config, "");
    ASSERT_TRUE(session.ok()) << name;

    const int64_t kBatch = 4;
    const data::Batch merged = splits.test.GetRange(0, kBatch);
    const Tensor batched = session.value()->Predict(merged).point;
    for (int64_t r = 0; r < kBatch; ++r) {
      const Tensor single =
          session.value()->Predict(splits.test.GetRange(r, 1)).point;
      const Tensor row = Slice(batched, 0, r, r + 1);
      ExpectTensorsBitwiseEqual(single, row,
                                std::string(name) + " row " +
                                    std::to_string(r) + " of micro-batch");
    }
  }
}

// -- BatchingQueue ---------------------------------------------------------

TEST(BatchingQueueTest, CoalescesAndMatchesDirectPredict) {
  data::DatasetSplits splits = MakeTestSplits();
  SessionConfig config;
  config.model_name = "gru";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  auto session = InferenceSession::Open(config, "");
  ASSERT_TRUE(session.ok());

  metrics::Registry& registry = metrics::Registry::Global();
  const int64_t batches_before = registry.GetCounter("serve.batches").value();

  const int64_t kRequests = 8;
  std::vector<Tensor> direct;
  for (int64_t r = 0; r < kRequests; ++r) {
    direct.push_back(
        session.value()->Predict(splits.test.GetRange(r, 1)).point);
  }

  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = kRequests,
                       .max_queue_delay_us = 50 * 1000});
  std::vector<std::future<Result<Forecast>>> futures;
  for (int64_t r = 0; r < kRequests; ++r) {
    futures.push_back(queue.Submit(splits.test.GetRange(r, 1)));
  }
  for (int64_t r = 0; r < kRequests; ++r) {
    Result<Forecast> result = futures[r].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectTensorsBitwiseEqual(result.value().point, direct[r],
                              "queued request " + std::to_string(r));
  }
  queue.Shutdown();
  EXPECT_EQ(queue.pending(), 0);

  // All eight requests arrived well inside the 50ms window, so the
  // dispatcher must have coalesced them into very few batches.
  const int64_t batches = registry.GetCounter("serve.batches").value() -
                          batches_before;
  EXPECT_GE(batches, 1);
  EXPECT_LE(batches, 3);
  EXPECT_GT(registry.GetHistogram("serve.request_latency_seconds")
                .GetSnapshot()
                .count,
            0);
}

TEST(BatchingQueueTest, ShutdownDrainsPendingRequests) {
  data::DatasetSplits splits = MakeTestSplits();
  SessionConfig config;
  config.model_name = "linear";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  auto session = InferenceSession::Open(config, "");
  ASSERT_TRUE(session.ok());

  std::vector<std::future<Result<Forecast>>> futures;
  {
    // Long delay + immediate destruction: every future must still resolve.
    BatchingQueue queue(session.value().get(),
                        {.max_batch_size = 64,
                         .max_queue_delay_us = 10 * 1000 * 1000});
    for (int64_t r = 0; r < 5; ++r) {
      futures.push_back(queue.Submit(splits.test.GetRange(r, 1)));
    }
  }
  for (auto& f : futures) {
    Result<Forecast> result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const Forecast& forecast = result.value();
    EXPECT_EQ(forecast.point.size(0), 1);
    EXPECT_EQ(forecast.point.size(1), TestWindow().pred_len);
  }
}

TEST(BatchingQueueTest, MultiSeriesRequestsSliceCorrectly) {
  data::DatasetSplits splits = MakeTestSplits();
  SessionConfig config;
  config.model_name = "linear";
  config.window = TestWindow();
  config.dims = splits.test.dims();
  auto session = InferenceSession::Open(config, "");
  ASSERT_TRUE(session.ok());

  BatchingQueue queue(session.value().get(),
                      {.max_batch_size = 8, .max_queue_delay_us = 20 * 1000});
  std::future<Result<Forecast>> two = queue.Submit(splits.test.GetRange(0, 2));
  std::future<Result<Forecast>> three =
      queue.Submit(splits.test.GetRange(2, 3));
  ExpectTensorsBitwiseEqual(
      two.get().value().point,
      session.value()->Predict(splits.test.GetRange(0, 2)).point,
      "two-series request");
  ExpectTensorsBitwiseEqual(
      three.get().value().point,
      session.value()->Predict(splits.test.GetRange(2, 3)).point,
      "three-series request");
  queue.Shutdown();
}

// -- Latency quantiles -----------------------------------------------------

TEST(HistogramQuantileTest, InterpolatesWithinBuckets) {
  metrics::Histogram histogram({1.0, 2.0, 4.0});
  // 10 observations in (1, 2]: the p50 rank (5th of 10) sits mid-bucket.
  for (int i = 0; i < 10; ++i) histogram.Observe(1.5);
  const metrics::Histogram::Snapshot snapshot = histogram.GetSnapshot();
  const double p50 = HistogramQuantile(snapshot, 0.5);
  EXPECT_DOUBLE_EQ(p50, 1.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.0), 2.0);
}

TEST(HistogramQuantileTest, EmptyAndOverflowEdgeCases) {
  metrics::Histogram histogram({1.0, 2.0});
  EXPECT_EQ(HistogramQuantile(histogram.GetSnapshot(), 0.5), 0.0);
  histogram.Observe(100.0);  // Overflow bucket.
  EXPECT_EQ(HistogramQuantile(histogram.GetSnapshot(), 0.99), 2.0);
}

TEST(HistogramQuantileTest, RankOnBucketBoundaryReportsThatBucketsUpperEdge) {
  // 5 samples <= 1 and 5 in (1, 2]: the p50 target is the 5th observation,
  // which lives in the first bucket — exactly its upper edge. The old
  // continuous-rank comparison drifted into the neighbor for q just below
  // the boundary.
  metrics::Histogram histogram({1.0, 2.0});
  for (int i = 0; i < 5; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 5; ++i) histogram.Observe(1.5);
  const metrics::Histogram::Snapshot snapshot = histogram.GetSnapshot();
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.5), 1.0);
  // Just past the boundary the target is the 6th observation: bucket 2.
  EXPECT_GT(HistogramQuantile(snapshot, 0.51), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.0), 2.0);
}

TEST(HistogramQuantileTest, EmptyBucketsAreSkippedNotInterpolated) {
  // Samples only in buckets 1 and 4; the quantile must never land inside an
  // intermediate empty bucket.
  metrics::Histogram histogram({1.0, 2.0, 3.0, 4.0});
  for (int i = 0; i < 4; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 4; ++i) histogram.Observe(3.5);
  const metrics::Histogram::Snapshot snapshot = histogram.GetSnapshot();
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.5), 1.0);
  const double p75 = HistogramQuantile(snapshot, 0.75);
  EXPECT_GT(p75, 3.0);
  EXPECT_LE(p75, 4.0);
}

TEST(HistogramQuantileTest, TrailingEmptyBucketsDoNotInflateTheMax) {
  // All samples in the first bucket: q=1.0 must report that bucket's upper
  // edge, not the histogram's largest bound.
  metrics::Histogram histogram({1.0, 2.0, 8.0});
  for (int i = 0; i < 5; ++i) histogram.Observe(0.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(histogram.GetSnapshot(), 1.0), 1.0);
}

TEST(HistogramQuantileTest, OverflowSamplesPinToLargestFiniteBound) {
  // q=1.0 with overflow samples is deliberately bounds.back(): the histogram
  // cannot measure past its largest finite boundary.
  metrics::Histogram histogram({1.0, 2.0});
  histogram.Observe(0.5);
  for (int i = 0; i < 9; ++i) histogram.Observe(50.0);
  const metrics::Histogram::Snapshot snapshot = histogram.GetSnapshot();
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.5), 2.0);
}

TEST(HistogramQuantileTest, ExtremeQsClampAndStayInNonEmptyBuckets) {
  metrics::Histogram histogram({1.0, 2.0});
  for (int i = 0; i < 4; ++i) histogram.Observe(1.5);
  const metrics::Histogram::Snapshot snapshot = histogram.GetSnapshot();
  // q=0 targets the first observation (rank clamped to 1): inside bucket 2.
  const double p0 = HistogramQuantile(snapshot, 0.0);
  EXPECT_GT(p0, 1.0);
  EXPECT_LE(p0, 2.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, -0.5),
                   HistogramQuantile(snapshot, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.5),
                   HistogramQuantile(snapshot, 1.0));
}

}  // namespace
}  // namespace conformer::serve
