// Optimizers, metrics, and the training loop (convergence on a synthetic
// problem, early stopping, best-weights restore).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gru_forecaster.h"
#include "baselines/nbeats.h"
#include "data/dataset_registry.h"
#include "train/backtest.h"
#include "train/metrics.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace conformer::train {
namespace {

// -- optimizers --------------------------------------------------------------

TEST(SgdTest, MinimizesQuadratic) {
  Tensor x = Tensor::Full({1}, 5.0f);
  x.set_requires_grad(true);
  Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    Sum(Mul(x, x)).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-3);
}

TEST(SgdTest, MomentumAccelerates) {
  Tensor a = Tensor::Full({1}, 5.0f).set_requires_grad(true);
  Tensor b = Tensor::Full({1}, 5.0f).set_requires_grad(true);
  Sgd plain({a}, 0.02f);
  Sgd momentum({b}, 0.02f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.ZeroGrad();
    Sum(Mul(a, a)).Backward();
    plain.Step();
    momentum.ZeroGrad();
    Sum(Mul(b, b)).Backward();
    momentum.Step();
  }
  EXPECT_LT(std::fabs(b.item()), std::fabs(a.item()));
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x = Tensor::Full({4}, 3.0f);
  x.set_requires_grad(true);
  Adam opt({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Sum(Mul(x, x)).Backward();
    opt.Step();
  }
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(x.data()[i], 0.0f, 1e-2);
}

TEST(AdamTest, SolvesLinearRegression) {
  // Fit y = 2x + 1.
  Rng rng(1);
  Tensor w = Tensor::Zeros({1, 1}).set_requires_grad(true);
  Tensor b = Tensor::Zeros({1}).set_requires_grad(true);
  Tensor x = Tensor::Randn({64, 1}, &rng);
  Tensor y = Add(MulScalar(x, 2.0f), Tensor::Full({64, 1}, 1.0f));
  Adam opt({w, b}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.ZeroGrad();
    Tensor pred = Add(MatMul(x, w), b);
    MseLoss(pred, y).Backward();
    opt.Step();
  }
  EXPECT_NEAR(w.item(), 2.0f, 0.05f);
  EXPECT_NEAR(b.item(), 1.0f, 0.05f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Tensor used = Tensor::Full({1}, 1.0f).set_requires_grad(true);
  Tensor unused = Tensor::Full({1}, 7.0f).set_requires_grad(true);
  Adam opt({used, unused}, 0.1f);
  opt.ZeroGrad();
  Sum(Mul(used, used)).Backward();
  opt.Step();
  EXPECT_EQ(unused.item(), 7.0f);
  EXPECT_NE(used.item(), 1.0f);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor x = Tensor::Full({1}, 1.0f).set_requires_grad(true);
  Adam opt({x}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    // Constant zero loss gradient; only decay drives the update.
    Sum(MulScalar(x, 0.0f)).Backward();
    opt.Step();
  }
  EXPECT_LT(x.item(), 1.0f);
}

TEST(ClipTest, ClipsLargeGradients) {
  Tensor x = Tensor::Full({4}, 0.0f).set_requires_grad(true);
  Sum(MulScalar(x, 100.0f)).Backward();  // grad = 100 each, norm = 200
  std::vector<Tensor> params = {x};
  const double norm = ClipGradNorm(params, 1.0);
  EXPECT_NEAR(norm, 200.0, 1e-3);
  double clipped = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    clipped += x.grad_data()[i] * x.grad_data()[i];
  }
  EXPECT_NEAR(std::sqrt(clipped), 1.0, 1e-4);
}

TEST(ClipTest, LeavesSmallGradientsAlone) {
  Tensor x = Tensor::Full({1}, 0.0f).set_requires_grad(true);
  Sum(MulScalar(x, 0.5f)).Backward();
  std::vector<Tensor> params = {x};
  ClipGradNorm(params, 10.0);
  EXPECT_NEAR(x.grad_data()[0], 0.5f, 1e-6);
}

// -- metrics -----------------------------------------------------------------

TEST(MetricsTest, MseMaeAccumulation) {
  MetricAccumulator acc;
  acc.Add(Tensor::FromVector({1, 2}, {2}), Tensor::FromVector({0, 0}, {2}));
  EXPECT_NEAR(acc.mse(), (1.0 + 4.0) / 2.0, 1e-9);
  EXPECT_NEAR(acc.mae(), (1.0 + 2.0) / 2.0, 1e-9);
  acc.Add(Tensor::FromVector({3}, {1}), Tensor::FromVector({0}, {1}));
  EXPECT_NEAR(acc.mse(), (1.0 + 4.0 + 9.0) / 3.0, 1e-9);
  EXPECT_EQ(acc.count(), 3);
}

TEST(MetricsTest, EmptyIsZero) {
  MetricAccumulator acc;
  EXPECT_EQ(acc.mse(), 0.0);
  EXPECT_EQ(acc.mae(), 0.0);
  EXPECT_EQ(acc.mape(), 0.0);
}

TEST(MetricsTest, RmseIsSqrtOfMse) {
  MetricAccumulator acc;
  acc.Add(Tensor::FromVector({3, 0}, {2}), Tensor::FromVector({0, 4}, {2}));
  EXPECT_NEAR(acc.rmse(), std::sqrt(acc.mse()), 1e-12);
}

TEST(MetricsTest, MapeAgainstKnownValues) {
  MetricAccumulator acc;
  acc.Add(Tensor::FromVector({110, 90}, {2}),
          Tensor::FromVector({100, 100}, {2}));
  EXPECT_NEAR(acc.mape(), 0.1, 1e-9);
}

TEST(MetricsTest, BandCoverage) {
  Tensor lower = Tensor::FromVector({0, 0, 0, 0}, {4});
  Tensor upper = Tensor::FromVector({1, 1, 1, 1}, {4});
  Tensor target = Tensor::FromVector({0.5f, 2.0f, -1.0f, 1.0f}, {4});
  EXPECT_NEAR(BandCoverage(lower, upper, target), 0.5, 1e-12);
}

TEST(TrainerTest, LrDecayShrinksStepSize) {
  // With aggressive decay the optimizer's LR after training is tiny; test
  // it indirectly: decayed training moves weights less in later epochs.
  Tensor x = Tensor::Full({1}, 10.0f).set_requires_grad(true);
  Adam opt({x}, 1.0f);
  opt.set_learning_rate(opt.learning_rate() * 0.5f);
  EXPECT_NEAR(opt.learning_rate(), 0.5f, 1e-6);
}

// -- trainer -----------------------------------------------------------------------

data::DatasetSplits SmallSplits() {
  data::TimeSeries ts = data::MakeDataset("etth1", 0.07, 11).value();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  return data::MakeSplits(ts, cfg);
}

TEST(TrainerTest, LossDecreasesOnRealModel) {
  data::DatasetSplits splits = SmallSplits();
  models::GruForecaster model(splits.train.config(), splits.train.dims(), 16, 1);
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 16;
  config.learning_rate = 5e-3f;
  config.max_train_batches = 20;
  config.max_eval_batches = 5;
  Trainer trainer(config);
  FitResult result = trainer.Fit(&model, splits.train, splits.val);
  ASSERT_GE(result.train_losses.size(), 2u);
  EXPECT_LT(result.train_losses.back(), result.train_losses.front());
}

TEST(TrainerTest, EvaluateProducesFiniteMetrics) {
  data::DatasetSplits splits = SmallSplits();
  models::NBeats model(splits.train.config(), splits.train.dims(), 2, 32);
  TrainConfig config;
  config.max_eval_batches = 4;
  Trainer trainer(config);
  EvalMetrics m = trainer.Evaluate(&model, splits.test);
  EXPECT_TRUE(std::isfinite(m.mse));
  EXPECT_TRUE(std::isfinite(m.mae));
  EXPECT_GT(m.mse, 0.0);
}

TEST(TrainerTest, EarlyStoppingTriggersWithZeroPatience) {
  data::DatasetSplits splits = SmallSplits();
  models::GruForecaster model(splits.train.config(), splits.train.dims(), 8, 1);
  TrainConfig config;
  config.epochs = 10;
  config.patience = 1;
  config.learning_rate = 1.0f;  // absurd LR forces val degradation
  config.max_train_batches = 5;
  config.max_eval_batches = 3;
  Trainer trainer(config);
  FitResult result = trainer.Fit(&model, splits.train, splits.val);
  EXPECT_LT(result.epochs_run, 10);
  EXPECT_TRUE(result.early_stopped);
}

// -- backtest -----------------------------------------------------------------

TEST(BacktestTest, ProfileShapeAndAggregates) {
  data::DatasetSplits splits = SmallSplits();
  models::GruForecaster model(splits.train.config(), splits.train.dims(), 8, 1);
  BacktestResult r = Backtest(&model, splits.test, /*stride=*/4,
                              /*max_windows=*/10, /*batch_size=*/4);
  EXPECT_EQ(static_cast<int64_t>(r.per_step_mse.size()),
            splits.test.config().pred_len);
  EXPECT_LE(r.windows, 10);
  EXPECT_GT(r.windows, 0);
  // Aggregate equals the mean of the per-step values (uniform counts).
  double mean_of_steps = 0.0;
  for (double v : r.per_step_mse) mean_of_steps += v;
  mean_of_steps /= static_cast<double>(r.per_step_mse.size());
  EXPECT_NEAR(r.mse, mean_of_steps, 1e-9);
}

TEST(BacktestTest, StrideReducesWindows) {
  data::DatasetSplits splits = SmallSplits();
  models::GruForecaster model(splits.train.config(), splits.train.dims(), 8, 1);
  BacktestResult dense = Backtest(&model, splits.test, 1, 0, 8);
  BacktestResult sparse = Backtest(&model, splits.test, 5, 0, 8);
  EXPECT_GT(dense.windows, sparse.windows);
  EXPECT_EQ(dense.windows, splits.test.size());
}

TEST(BacktestTest, PerStepErrorGrowsForUntrainedModelOnTrendingData) {
  // On standardized trending data, later steps are further from the input
  // context, so an untrained model's error profile generally rises.
  data::DatasetSplits splits = SmallSplits();
  models::GruForecaster model(splits.train.config(), splits.train.dims(), 8, 1);
  BacktestResult r = Backtest(&model, splits.test, 2, 20, 8);
  double early = 0.0;
  double late = 0.0;
  const int64_t half = static_cast<int64_t>(r.per_step_mse.size()) / 2;
  for (int64_t t = 0; t < half; ++t) early += r.per_step_mse[t];
  for (int64_t t = half; t < static_cast<int64_t>(r.per_step_mse.size()); ++t) {
    late += r.per_step_mse[t];
  }
  // Not a strict law; allow equality with slack.
  EXPECT_GT(late, early * 0.5);
}

TEST(TrainerTest, BestWeightsRestored) {
  data::DatasetSplits splits = SmallSplits();
  models::GruForecaster model(splits.train.config(), splits.train.dims(), 8, 1);
  TrainConfig config;
  config.epochs = 4;
  config.patience = 10;
  config.learning_rate = 0.3f;  // noisy training: best epoch is rarely last
  config.max_train_batches = 10;
  config.max_eval_batches = 4;
  Trainer trainer(config);
  FitResult result = trainer.Fit(&model, splits.train, splits.val);
  // Post-restore evaluation must match the best recorded val MSE.
  EvalMetrics after = trainer.Evaluate(&model, splits.val);
  EXPECT_NEAR(after.mse, result.best_val_mse, 1e-6);
}

}  // namespace
}  // namespace conformer::train
