// Forward-value tests for the tensor library (gradients are covered in
// autograd_test.cc).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "tensor/alloc_stats.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace conformer {
namespace {

TEST(ShapeTest, NumElements) {
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(NumElements({3}), 3);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
}

TEST(ShapeTest, ContiguousStrides) {
  EXPECT_EQ(ContiguousStrides({2, 3, 4}), (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(ContiguousStrides({5}), (std::vector<int64_t>{1}));
}

TEST(TensorTest, Factories) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.data()[i], 0.0f);

  Tensor o = Tensor::Ones({4});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.data()[i], 1.0f);

  Tensor f = Tensor::Full({2}, 3.5f);
  EXPECT_EQ(f.data()[0], 3.5f);

  Tensor a = Tensor::Arange(4, 1.0f, 0.5f);
  EXPECT_EQ(a.at({2}), 2.0f);

  Tensor e = Tensor::Eye(3);
  EXPECT_EQ(e.at({1, 1}), 1.0f);
  EXPECT_EQ(e.at({0, 1}), 0.0f);
}

TEST(TensorTest, RandnDeterministicWithSeed) {
  Rng r1(5);
  Rng r2(5);
  Tensor a = Tensor::Randn({10}, &r1);
  Tensor b = Tensor::Randn({10}, &r2);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(TensorTest, ItemAndAt) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
  EXPECT_EQ(Tensor::Full({1}, 7.0f).item(), 7.0f);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Ones({3});
  Tensor b = a.Clone();
  b.data()[0] = 5.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, HandleSharesBuffer) {
  Tensor a = Tensor::Ones({3});
  Tensor b = a;  // same impl
  b.data()[0] = 5.0f;
  EXPECT_EQ(a.data()[0], 5.0f);
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_NE(t.ToString().find("[2, 2]"), std::string::npos);
}

// -- broadcasting ----------------------------------------------------------

TEST(BroadcastTest, Shapes) {
  EXPECT_EQ(kernels::BroadcastShape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(kernels::BroadcastShape({4, 1}, {1, 5}), (Shape{4, 5}));
  EXPECT_EQ(kernels::BroadcastShape({1}, {2, 2}), (Shape{2, 2}));
}

TEST(BroadcastTest, Strides) {
  EXPECT_EQ(kernels::BroadcastStrides({3}, {2, 3}),
            (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(kernels::BroadcastStrides({4, 1}, {4, 5}),
            (std::vector<int64_t>{1, 0}));
}

// -- elementwise -----------------------------------------------------------

TEST(ElementwiseTest, AddSameShape) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3});
  Tensor b = Tensor::FromVector({10, 20, 30}, {3});
  Tensor c = a + b;
  EXPECT_EQ(c.at({0}), 11.0f);
  EXPECT_EQ(c.at({2}), 33.0f);
}

TEST(ElementwiseTest, AddBroadcastRow) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor row = Tensor::FromVector({10, 20, 30}, {3});
  Tensor c = Add(a, row);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(ElementwiseTest, MulBroadcastColumn) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor col = Tensor::FromVector({10, 100}, {2, 1});
  Tensor c = Mul(a, col);
  EXPECT_EQ(c.at({0, 1}), 20.0f);
  EXPECT_EQ(c.at({1, 0}), 300.0f);
}

TEST(ElementwiseTest, SubDivNeg) {
  Tensor a = Tensor::FromVector({4, 9}, {2});
  Tensor b = Tensor::FromVector({2, 3}, {2});
  EXPECT_EQ((a - b).at({1}), 6.0f);
  EXPECT_EQ((a / b).at({0}), 2.0f);
  EXPECT_EQ((-a).at({0}), -4.0f);
}

TEST(ElementwiseTest, ScalarOps) {
  Tensor a = Tensor::FromVector({1, 2}, {2});
  EXPECT_EQ((a + 1.0f).at({0}), 2.0f);
  EXPECT_EQ((a * 3.0f).at({1}), 6.0f);
  EXPECT_EQ((a - 1.0f).at({0}), 0.0f);
  EXPECT_EQ((2.0f * a).at({1}), 4.0f);
  EXPECT_NEAR(PowScalar(a, 2.0f).at({1}), 4.0f, 1e-6);
}

TEST(ElementwiseTest, UnaryValues) {
  Tensor x = Tensor::FromVector({-1.0f, 0.0f, 2.0f}, {3});
  EXPECT_NEAR(Exp(x).at({2}), std::exp(2.0f), 1e-5);
  EXPECT_NEAR(Tanh(x).at({0}), std::tanh(-1.0f), 1e-6);
  EXPECT_EQ(Relu(x).at({0}), 0.0f);
  EXPECT_EQ(Relu(x).at({2}), 2.0f);
  EXPECT_EQ(Abs(x).at({0}), 1.0f);
  EXPECT_NEAR(Sigmoid(Tensor::Zeros({1})).item(), 0.5f, 1e-6);
  EXPECT_NEAR(Sin(x).at({2}), std::sin(2.0f), 1e-6);
  EXPECT_NEAR(Cos(x).at({0}), std::cos(-1.0f), 1e-6);
}

TEST(ElementwiseTest, SigmoidExtremesStable) {
  Tensor x = Tensor::FromVector({-100.0f, 100.0f}, {2});
  Tensor y = Sigmoid(x);
  EXPECT_NEAR(y.at({0}), 0.0f, 1e-6);
  EXPECT_NEAR(y.at({1}), 1.0f, 1e-6);
  EXPECT_FALSE(std::isnan(y.at({0})));
}

TEST(ElementwiseTest, SoftplusStable) {
  Tensor x = Tensor::FromVector({-80.0f, 0.0f, 80.0f}, {3});
  Tensor y = Softplus(x);
  EXPECT_NEAR(y.at({0}), 0.0f, 1e-4);
  EXPECT_NEAR(y.at({1}), std::log(2.0f), 1e-5);
  EXPECT_NEAR(y.at({2}), 80.0f, 1e-4);
}

TEST(ElementwiseTest, Clamp) {
  Tensor x = Tensor::FromVector({-2, 0.5f, 3}, {3});
  Tensor y = Clamp(x, 0.0f, 1.0f);
  EXPECT_EQ(y.at({0}), 0.0f);
  EXPECT_EQ(y.at({1}), 0.5f);
  EXPECT_EQ(y.at({2}), 1.0f);
}

TEST(ElementwiseTest, Maximum) {
  Tensor a = Tensor::FromVector({1, 5}, {2});
  Tensor b = Tensor::FromVector({3, 2}, {2});
  Tensor m = Maximum(a, b);
  EXPECT_EQ(m.at({0}), 3.0f);
  EXPECT_EQ(m.at({1}), 5.0f);
}

// -- matmul ------------------------------------------------------------------

TEST(MatMulTest, Rank2) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromVector({7, 8, 9, 10, 11, 12}, {3, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(MatMulTest, Batched) {
  // Two 2x2 identity-scaled matrices.
  Tensor a = Tensor::FromVector({1, 0, 0, 1, 2, 0, 0, 2}, {2, 2, 2});
  Tensor b = Tensor::FromVector({1, 2, 3, 4, 1, 2, 3, 4}, {2, 2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at({0, 0, 1}), 2.0f);
  EXPECT_EQ(c.at({1, 1, 0}), 6.0f);
}

TEST(MatMulTest, BroadcastBatch) {
  // [2, 2] x [3, 2, 2]: left matrix broadcast across the batch.
  Tensor a = Tensor::Eye(2);
  Tensor b = Tensor::Randn({3, 2, 2});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 2}));
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c.data()[i], b.data()[i], 1e-6);
  }
}

TEST(MatMulTest, AgreesWithManual) {
  Tensor a = Tensor::Randn({4, 5});
  Tensor b = Tensor::Randn({5, 3});
  Tensor c = MatMul(a, b);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      float acc = 0.0f;
      for (int64_t k = 0; k < 5; ++k) acc += a.at({i, k}) * b.at({k, j});
      EXPECT_NEAR(c.at({i, j}), acc, 1e-4);
    }
  }
}

// -- reductions ---------------------------------------------------------------

TEST(ReduceTest, SumAll) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  EXPECT_EQ(Sum(a).item(), 10.0f);
}

TEST(ReduceTest, SumOverDim) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor rows = Sum(a, {1});
  EXPECT_EQ(rows.shape(), (Shape{2}));
  EXPECT_EQ(rows.at({0}), 6.0f);
  EXPECT_EQ(rows.at({1}), 15.0f);
  Tensor cols = Sum(a, {0}, /*keepdim=*/true);
  EXPECT_EQ(cols.shape(), (Shape{1, 3}));
  EXPECT_EQ(cols.at({0, 2}), 9.0f);
}

TEST(ReduceTest, NegativeDim) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor s = Sum(a, {-1});
  EXPECT_EQ(s.at({0}), 3.0f);
}

TEST(ReduceTest, Mean) {
  Tensor a = Tensor::FromVector({2, 4, 6, 8}, {4});
  EXPECT_EQ(Mean(a).item(), 5.0f);
}

TEST(ReduceTest, Variance) {
  Tensor a = Tensor::FromVector({1, 3}, {2});
  EXPECT_NEAR(Variance(a, {0}).item(), 1.0f, 1e-6);  // population variance
}

TEST(ReduceTest, MaxMin) {
  Tensor a = Tensor::FromVector({3, 1, 2, 6, 5, 4}, {2, 3});
  Tensor mx = Max(a, 1);
  EXPECT_EQ(mx.at({0}), 3.0f);
  EXPECT_EQ(mx.at({1}), 6.0f);
  Tensor mn = Min(a, 0, /*keepdim=*/true);
  EXPECT_EQ(mn.shape(), (Shape{1, 3}));
  EXPECT_EQ(mn.at({0, 0}), 3.0f);
  EXPECT_EQ(mn.at({0, 1}), 1.0f);
}

// -- shape ops -----------------------------------------------------------------

TEST(ShapeOpsTest, ReshapeWithInference) {
  Tensor a = Tensor::Arange(12);
  Tensor b = Reshape(a, {3, -1});
  EXPECT_EQ(b.shape(), (Shape{3, 4}));
  EXPECT_EQ(b.at({2, 3}), 11.0f);
}

TEST(ShapeOpsTest, PermuteTranspose) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor t = Transpose(a, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({2, 0}), 3.0f);
  EXPECT_EQ(t.at({0, 1}), 4.0f);

  Tensor p = Permute(Tensor::Arange(24), {0});
  EXPECT_EQ(p.at({5}), 5.0f);
}

TEST(ShapeOpsTest, Permute3d) {
  Tensor a = Tensor::FromVector({0, 1, 2, 3, 4, 5, 6, 7}, {2, 2, 2});
  Tensor p = Permute(a, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(p.at({0, 1, 0}), a.at({1, 0, 0}));
  EXPECT_EQ(p.at({1, 0, 1}), a.at({0, 1, 1}));
}

TEST(ShapeOpsTest, Slice) {
  Tensor a = Tensor::Arange(10);
  Tensor s = Slice(a, 0, 2, 8, 2);
  EXPECT_EQ(s.shape(), (Shape{3}));
  EXPECT_EQ(s.at({0}), 2.0f);
  EXPECT_EQ(s.at({2}), 6.0f);
}

TEST(ShapeOpsTest, SliceNegativeIndices) {
  Tensor a = Tensor::Arange(10);
  Tensor s = Slice(a, 0, -3, -1);
  EXPECT_EQ(s.shape(), (Shape{2}));
  EXPECT_EQ(s.at({0}), 7.0f);
}

TEST(ShapeOpsTest, ConcatAndStack) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({3, 4}, {1, 2});
  Tensor c = Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_EQ(c.at({1, 0}), 3.0f);

  Tensor d = Concat({a, b}, 1);
  EXPECT_EQ(d.shape(), (Shape{1, 4}));
  EXPECT_EQ(d.at({0, 3}), 4.0f);

  Tensor s = StackTensors({Tensor::Ones({2}), Tensor::Zeros({2})}, 0);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 1.0f);
  EXPECT_EQ(s.at({1, 1}), 0.0f);
}

TEST(ShapeOpsTest, SqueezeUnsqueeze) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor u = Unsqueeze(a, 1);
  EXPECT_EQ(u.shape(), (Shape{2, 1, 3}));
  EXPECT_EQ(Squeeze(u, 1).shape(), (Shape{2, 3}));
}

TEST(ShapeOpsTest, PadConstant) {
  Tensor a = Tensor::FromVector({1, 2}, {2});
  Tensor p = Pad(a, 0, 1, 2, -1.0f);
  EXPECT_EQ(p.shape(), (Shape{5}));
  EXPECT_EQ(p.at({0}), -1.0f);
  EXPECT_EQ(p.at({1}), 1.0f);
  EXPECT_EQ(p.at({4}), -1.0f);
}

TEST(ShapeOpsTest, ReplicatePad) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {1, 3});
  Tensor p = ReplicatePad(a, 1, 2, 1);
  EXPECT_EQ(p.shape(), (Shape{1, 6}));
  EXPECT_EQ(p.at({0, 0}), 1.0f);
  EXPECT_EQ(p.at({0, 1}), 1.0f);
  EXPECT_EQ(p.at({0, 5}), 3.0f);
}

TEST(ShapeOpsTest, BroadcastToAndTile) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = BroadcastTo(a, {3, 2});
  EXPECT_EQ(b.shape(), (Shape{3, 2}));
  EXPECT_EQ(b.at({2, 1}), 2.0f);

  Tensor t = Tile(a, {2, 2});
  EXPECT_EQ(t.shape(), (Shape{2, 4}));
  EXPECT_EQ(t.at({1, 3}), 2.0f);
}

TEST(ShapeOpsTest, Flip) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor f = Flip(a, 1);
  EXPECT_EQ(f.at({0, 0}), 3.0f);
  EXPECT_EQ(f.at({0, 2}), 1.0f);
  EXPECT_EQ(f.at({1, 0}), 6.0f);
  Tensor rows = Flip(a, 0);
  EXPECT_EQ(rows.at({0, 0}), 4.0f);
}

TEST(ShapeOpsTest, FlipIsInvolution) {
  Tensor a = Tensor::Randn({3, 4});
  Tensor round = Flip(Flip(a, -1), -1);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(round.data()[i], a.data()[i]);
  }
}

TEST(ShapeOpsTest, SplitAndConcatRoundTrip) {
  Tensor a = Tensor::Randn({2, 6});
  std::vector<Tensor> parts = Split(a, 1, 2);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].shape(), (Shape{2, 2}));
  Tensor round = Concat(parts, 1);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(round.data()[i], a.data()[i]);
  }
}

TEST(ShapeOpsTest, SplitRejectsUnevenChunk) {
  Tensor a = Tensor::Randn({2, 5});
  EXPECT_DEATH(Split(a, 1, 2), "divide");
}

// -- indexing ----------------------------------------------------------------

TEST(IndexTest, IndexSelect) {
  Tensor a = Tensor::FromVector({10, 11, 20, 21, 30, 31}, {3, 2});
  Tensor s = IndexSelect(a, 0, {2, 0, 2});
  EXPECT_EQ(s.shape(), (Shape{3, 2}));
  EXPECT_EQ(s.at({0, 0}), 30.0f);
  EXPECT_EQ(s.at({1, 1}), 11.0f);
  EXPECT_EQ(s.at({2, 0}), 30.0f);
}

TEST(IndexTest, IndexSelectInnerDim) {
  Tensor a = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor s = IndexSelect(a, 1, {2, 2});
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 3.0f);
  EXPECT_EQ(s.at({1, 1}), 6.0f);
}

TEST(IndexTest, Roll) {
  Tensor a = Tensor::Arange(5);
  Tensor r = Roll(a, 0, 2);
  EXPECT_EQ(r.at({0}), 3.0f);
  EXPECT_EQ(r.at({2}), 0.0f);
  Tensor l = Roll(a, 0, -1);
  EXPECT_EQ(l.at({0}), 1.0f);
  EXPECT_EQ(l.at({4}), 0.0f);
}

TEST(IndexTest, RollComposition) {
  Tensor a = Tensor::Arange(7);
  Tensor once = Roll(Roll(a, 0, 2), 0, 3);
  Tensor direct = Roll(a, 0, 5);
  for (int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(once.at({i}), direct.at({i}));
  }
}

TEST(IndexTest, RollFullCycleIsIdentity) {
  Tensor a = Tensor::Arange(6);
  Tensor cycled = Roll(a, 0, 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(cycled.at({i}), a.at({i}));
}

TEST(IndexTest, IndexSelectIdentityPermutation) {
  Tensor a = Tensor::Randn({4, 3});
  Tensor same = IndexSelect(a, 0, {0, 1, 2, 3});
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(same.data()[i], a.data()[i]);
  }
}

TEST(IndexTest, BatchedIndexSelect) {
  Tensor a = Tensor::FromVector({0, 1, 2, 3, 4, 5, 6, 7}, {2, 2, 2});
  // batch 0 picks rows {1, 0}; batch 1 picks rows {1, 1}.
  Tensor s = BatchedIndexSelect(a, {1, 0, 1, 1}, 2);
  EXPECT_EQ(s.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(s.at({0, 0, 0}), 2.0f);
  EXPECT_EQ(s.at({0, 1, 1}), 1.0f);
  EXPECT_EQ(s.at({1, 0, 0}), 6.0f);
}

// -- conv / pool -----------------------------------------------------------------

TEST(ConvTest, IdentityKernel) {
  // Kernel [0, 1, 0] with zero padding reproduces the input.
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 4});
  Tensor w = Tensor::FromVector({0, 1, 0}, {1, 1, 3});
  Tensor y = Conv1d(x, w, Tensor(), 1);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(y.at({0, 0, i}), x.at({0, 0, i}), 1e-6);
}

TEST(ConvTest, MovingSumKernel) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 4});
  Tensor w = Tensor::Ones({1, 1, 2});
  Tensor y = Conv1d(x, w, Tensor(), 0);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.at({0, 0, 0}), 3.0f);
  EXPECT_EQ(y.at({0, 0, 2}), 7.0f);
}

TEST(ConvTest, MultiChannel) {
  // 2-in 1-out kernel of width 1 summing channels.
  Tensor x = Tensor::FromVector({1, 2, 3, 10, 20, 30}, {1, 2, 3});
  Tensor w = Tensor::Ones({1, 2, 1});
  Tensor y = Conv1d(x, w, Tensor(), 0);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.at({0, 0, 0}), 11.0f);
  EXPECT_EQ(y.at({0, 0, 2}), 33.0f);
}

TEST(ConvTest, CircularPadding) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, {1, 1, 4});
  Tensor w = Tensor::FromVector({1, 0, 0}, {1, 1, 3});  // picks left neighbour
  Tensor y = Conv1d(x, w, Tensor(), 1, PadMode::kCircular);
  EXPECT_EQ(y.at({0, 0, 0}), 4.0f);  // wraps around
  EXPECT_EQ(y.at({0, 0, 1}), 1.0f);
}

TEST(ConvTest, BiasBroadcast) {
  Tensor x = Tensor::Zeros({1, 1, 3});
  Tensor w = Tensor::Ones({2, 1, 1});
  Tensor b = Tensor::FromVector({5, -5}, {2});
  Tensor y = Conv1d(x, w, b, 0);
  EXPECT_EQ(y.at({0, 0, 1}), 5.0f);
  EXPECT_EQ(y.at({0, 1, 2}), -5.0f);
}

TEST(PoolTest, AvgPool) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {1, 6});
  Tensor y = AvgPool1d(x, 2, 2);
  EXPECT_EQ(y.shape(), (Shape{1, 3}));
  EXPECT_EQ(y.at({0, 0}), 1.5f);
  EXPECT_EQ(y.at({0, 2}), 5.5f);
}

TEST(PoolTest, AvgPoolStride1) {
  Tensor x = Tensor::FromVector({1, 2, 3}, {3});
  Tensor y = AvgPool1d(x, 3, 1);
  EXPECT_EQ(y.shape(), (Shape{1}));
  EXPECT_EQ(y.at({0}), 2.0f);
}

TEST(PoolTest, MaxPoolValues) {
  Tensor x = Tensor::FromVector({1, 5, 2, 7, 3, 0}, {1, 6});
  Tensor y = MaxPool1d(x, 2, 2);
  EXPECT_EQ(y.shape(), (Shape{1, 3}));
  EXPECT_EQ(y.at({0, 0}), 5.0f);
  EXPECT_EQ(y.at({0, 1}), 7.0f);
  EXPECT_EQ(y.at({0, 2}), 3.0f);
}

TEST(PoolTest, MaxPoolOverlappingWindows) {
  Tensor x = Tensor::FromVector({1, 3, 2, 4}, {4});
  Tensor y = MaxPool1d(x, 3, 1);
  EXPECT_EQ(y.shape(), (Shape{2}));
  EXPECT_EQ(y.at({0}), 3.0f);
  EXPECT_EQ(y.at({1}), 4.0f);
}

TEST(ConvTest, DilatedTapsSkipPositions) {
  // Kernel [1, 1] with dilation 2 sums positions t and t+2.
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5}, {1, 1, 5});
  Tensor w = Tensor::Ones({1, 1, 2});
  Tensor y = Conv1d(x, w, Tensor(), 0, PadMode::kZeros, /*dilation=*/2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.at({0, 0, 0}), 1.0f + 3.0f);
  EXPECT_EQ(y.at({0, 0, 2}), 3.0f + 5.0f);
}

TEST(ConvTest, StrideStepsWindows) {
  // Pre-fix Conv1d had no stride parameter at all: out_len must follow
  // (padded_len - span) / stride + 1 and windows must start stride apart.
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6, 7}, {1, 1, 7});
  Tensor w = Tensor::Ones({1, 1, 2});
  Tensor y = Conv1d(x, w, Tensor(), 0, PadMode::kZeros, /*dilation=*/1,
                    /*stride=*/2);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 3}));
  EXPECT_EQ(y.at({0, 0, 0}), 1.0f + 2.0f);
  EXPECT_EQ(y.at({0, 0, 1}), 3.0f + 4.0f);
  EXPECT_EQ(y.at({0, 0, 2}), 5.0f + 6.0f);
}

TEST(ConvTest, StrideComposesWithPaddingAndDilation) {
  // span = (2-1)*2 + 1 = 3; padded_len = 6 + 2 = 8; out = (8-3)/3 + 1 = 2.
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {1, 1, 6});
  Tensor w = Tensor::Ones({1, 1, 2});
  Tensor y = Conv1d(x, w, Tensor(), 1, PadMode::kZeros, /*dilation=*/2,
                    /*stride=*/3);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(y.at({0, 0, 0}), 0.0f + 2.0f);  // taps at padded 0 and 2
  EXPECT_EQ(y.at({0, 0, 1}), 3.0f + 5.0f);  // taps at padded 3 and 5
}

TEST(ConvTest, StrideOneBitwiseMatchesDefault) {
  Rng rng(97);
  Tensor x = Tensor::Randn({2, 3, 16}, &rng);
  Tensor w = Tensor::Randn({4, 3, 3}, &rng);
  Tensor b = Tensor::Randn({4}, &rng);
  Tensor def = Conv1d(x, w, b, 1, PadMode::kReplicate, /*dilation=*/2);
  Tensor strided = Conv1d(x, w, b, 1, PadMode::kReplicate, /*dilation=*/2,
                          /*stride=*/1);
  ASSERT_EQ(def.shape(), strided.shape());
  EXPECT_EQ(0, std::memcmp(def.data(), strided.data(),
                           sizeof(float) * def.numel()));
}

TEST(ConvTest, CircularPadWiderThanInputFoldsTiles) {
  // padding > length used to CHECK-abort; the periodic extension makes any
  // width legal: with kernel = ones(7) over a length-3 circular series,
  // every output sums 7 consecutive periodic values.
  Tensor x = Tensor::FromVector({1, 2, 3}, {1, 1, 3});
  Tensor w = Tensor::Ones({1, 1, 7});
  Tensor y = Conv1d(x, w, Tensor(), 5, PadMode::kCircular);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 7}));
  // Padded sequence: [2 3 1 2 3 | 1 2 3 | 1 2 3 1 2]; a 7-wide window sums
  // two full periods (12) plus its first value, so sums cycle 14, 15, 13.
  EXPECT_EQ(y.at({0, 0, 0}), 14.0f);
  EXPECT_EQ(y.at({0, 0, 1}), 15.0f);
  EXPECT_EQ(y.at({0, 0, 2}), 13.0f);
  EXPECT_EQ(y.at({0, 0, 3}), 14.0f);
}

// -- Conv2d ----------------------------------------------------------------------

// Naive 2-D convolution oracle over [B, Cin, H, W].
Tensor NaiveConv2d(const Tensor& x, const Tensor& w, const Tensor& b,
                   int64_t ph, int64_t pw) {
  const int64_t batch = x.size(0), cin = x.size(1), h = x.size(2),
                width = x.size(3);
  const int64_t cout = w.size(0), kh = w.size(2), kw = w.size(3);
  const int64_t oh = h + 2 * ph - kh + 1, ow = width + 2 * pw - kw + 1;
  std::vector<float> out(batch * cout * oh * ow, 0.0f);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t co = 0; co < cout; ++co) {
      for (int64_t i = 0; i < oh; ++i) {
        for (int64_t j = 0; j < ow; ++j) {
          double acc = b.defined() ? b.at({co}) : 0.0;
          for (int64_t ci = 0; ci < cin; ++ci) {
            for (int64_t u = 0; u < kh; ++u) {
              for (int64_t v = 0; v < kw; ++v) {
                const int64_t r = i + u - ph, c = j + v - pw;
                if (r < 0 || r >= h || c < 0 || c >= width) continue;
                acc += static_cast<double>(x.at({n, ci, r, c})) *
                       w.at({co, ci, u, v});
              }
            }
          }
          out[((n * cout + co) * oh + i) * ow + j] = static_cast<float>(acc);
        }
      }
    }
  }
  return Tensor::FromVector(std::move(out), {batch, cout, oh, ow});
}

TEST(Conv2dTest, MatchesNaiveOracle) {
  Rng rng(123);
  Tensor x = Tensor::Randn({2, 3, 5, 4}, &rng);
  Tensor w = Tensor::Randn({4, 3, 3, 3}, &rng);
  Tensor b = Tensor::Randn({4}, &rng);
  for (int64_t pad : {0, 1}) {
    Tensor got = Conv2d(x, w, b, pad, pad);
    Tensor want = NaiveConv2d(x, w, b, pad, pad);
    ASSERT_EQ(got.shape(), want.shape()) << "pad " << pad;
    for (int64_t i = 0; i < got.numel(); ++i) {
      EXPECT_NEAR(got.data()[i], want.data()[i], 1e-4) << "pad " << pad;
    }
  }
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {1, 1, 2, 3});
  std::vector<float> kernel(9, 0.0f);
  kernel[4] = 1.0f;  // centre of a 3x3 kernel
  Tensor w = Tensor::FromVector(std::move(kernel), {1, 1, 3, 3});
  Tensor y = Conv2d(x, w, Tensor(), 1, 1);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_EQ(0,
            std::memcmp(y.data(), x.data(), sizeof(float) * x.numel()));
}

TEST(Conv2dTest, AsymmetricPaddingShapes) {
  Tensor x = Tensor::Zeros({1, 2, 4, 6});
  Tensor w = Tensor::Zeros({3, 2, 3, 1});
  Tensor y = Conv2d(x, w, Tensor(), 1, 0);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 4, 6}));
}

TEST(CumsumTest, LastDim) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor y = Cumsum(x, 1);
  EXPECT_EQ(y.at({0, 0}), 1.0f);
  EXPECT_EQ(y.at({0, 1}), 3.0f);
  EXPECT_EQ(y.at({1, 1}), 7.0f);
}

TEST(CumsumTest, FirstDim) {
  Tensor x = Tensor::FromVector({1, 2, 3, 4}, {2, 2});
  Tensor y = Cumsum(x, 0);
  EXPECT_EQ(y.at({1, 0}), 4.0f);
  EXPECT_EQ(y.at({1, 1}), 6.0f);
}

// -- nn functionals ----------------------------------------------------------------

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor x = Tensor::Randn({3, 5});
  Tensor y = Softmax(x, -1);
  for (int64_t i = 0; i < 3; ++i) {
    float total = 0.0f;
    for (int64_t j = 0; j < 5; ++j) total += y.at({i, j});
    EXPECT_NEAR(total, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, LargeValuesStable) {
  Tensor x = Tensor::FromVector({1000.0f, 1000.0f}, {2});
  Tensor y = Softmax(x, 0);
  EXPECT_NEAR(y.at({0}), 0.5f, 1e-6);
}

TEST(SoftmaxTest, MiddleDim) {
  Tensor x = Tensor::Randn({2, 4, 3});
  Tensor y = Softmax(x, 1);
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t k = 0; k < 3; ++k) {
      float total = 0.0f;
      for (int64_t j = 0; j < 4; ++j) total += y.at({b, j, k});
      EXPECT_NEAR(total, 1.0f, 1e-5);
    }
  }
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor x = Tensor::Randn({4, 6});
  Tensor a = LogSoftmax(x, -1);
  Tensor b = Log(Softmax(x, -1));
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-4);
  }
}

TEST(DropoutTest, EvalIsIdentity) {
  Tensor x = Tensor::Randn({10});
  Tensor y = DropoutOp(x, 0.5f, /*training=*/false);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(x.data()[i], y.data()[i]);
}

TEST(DropoutTest, TrainingScalesSurvivors) {
  Rng rng(3);
  Tensor x = Tensor::Ones({1000});
  Tensor y = DropoutOp(x, 0.5f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 2.0f, 1e-6);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.07);
}

TEST(LossTest, MseMae) {
  Tensor pred = Tensor::FromVector({1, 2}, {2});
  Tensor target = Tensor::FromVector({0, 4}, {2});
  EXPECT_NEAR(MseLoss(pred, target).item(), (1.0f + 4.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(MaeLoss(pred, target).item(), (1.0f + 2.0f) / 2.0f, 1e-6);
}

// -- contract violations (CHECK deaths) -------------------------------------------

TEST(DeathTest, ConcatShapeMismatch) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({2, 4});
  EXPECT_DEATH(Concat({a, b}, 0), "mismatch");
}

TEST(DeathTest, MatMulInnerDimMismatch) {
  EXPECT_DEATH(MatMul(Tensor::Ones({2, 3}), Tensor::Ones({4, 2})),
               "inner dims");
}

TEST(DeathTest, IndexSelectOutOfRange) {
  Tensor a = Tensor::Ones({3, 2});
  EXPECT_DEATH(IndexSelect(a, 0, {3}), "out of range");
}

TEST(DeathTest, PoolWindowLongerThanInput) {
  Tensor a = Tensor::Ones({1, 3});
  EXPECT_DEATH(AvgPool1d(a, 5, 1), "longer");
  EXPECT_DEATH(MaxPool1d(a, 5, 1), "longer");
}

TEST(DeathTest, ReshapeWrongElementCount) {
  EXPECT_DEATH(Reshape(Tensor::Ones({6}), {4}), "reshape");
}

TEST(DeathTest, SqueezeNonSingleton) {
  EXPECT_DEATH(Squeeze(Tensor::Ones({2, 3}), 0), "singleton");
}

TEST(EdgeCaseTest, SingleElementTensorsWork) {
  Tensor a = Tensor::Full({1}, 2.0f);
  Tensor b = Tensor::Full({1}, 3.0f);
  EXPECT_EQ(Add(a, b).item(), 5.0f);
  EXPECT_EQ(MatMul(Reshape(a, {1, 1}), Reshape(b, {1, 1})).item(), 6.0f);
  EXPECT_EQ(Softmax(a, 0).item(), 1.0f);
  EXPECT_EQ(Sum(a).item(), 2.0f);
}

TEST(EdgeCaseTest, LengthOneSequencePools) {
  Tensor a = Tensor::Full({1, 1}, 4.0f);
  EXPECT_EQ(AvgPool1d(a, 1, 1).item(), 4.0f);
  EXPECT_EQ(MaxPool1d(a, 1, 1).item(), 4.0f);
}

// -- allocation stats -----------------------------------------------------------

TEST(AllocStatsTest, TracksPeak) {
  ResetAllocPeak();
  const AllocStats before = GetAllocStats();
  {
    Tensor big = Tensor::Zeros({1024});
    const AllocStats during = GetAllocStats();
    EXPECT_GE(during.current_bytes, before.current_bytes + 4096);
    EXPECT_GE(during.peak_bytes, before.current_bytes + 4096);
  }
  const AllocStats after = GetAllocStats();
  EXPECT_EQ(after.current_bytes, before.current_bytes);
  EXPECT_GE(after.peak_bytes, before.current_bytes + 4096);
}

}  // namespace
}  // namespace conformer
