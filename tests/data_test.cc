// Data substrate: containers, scaling, time features, windowing, splits,
// CSV parsing, and the statistical character of the synthetic datasets.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "data/csv_loader.h"
#include "data/dataset_registry.h"
#include "data/scaler.h"
#include "data/synthetic.h"
#include "data/time_features.h"
#include "data/time_series.h"
#include "data/window_dataset.h"
#include "fft/autocorrelation.h"
#include "util/civil_time.h"

namespace conformer::data {
namespace {

TimeSeries TinySeries(int64_t n = 10, int64_t dims = 2) {
  std::vector<int64_t> ts(n);
  std::vector<float> vals(n * dims);
  for (int64_t i = 0; i < n; ++i) {
    ts[i] = i * 3600;
    for (int64_t d = 0; d < dims; ++d) {
      vals[i * dims + d] = static_cast<float>(i * 10 + d);
    }
  }
  return TimeSeries("tiny", std::move(ts), std::move(vals), dims);
}

// -- TimeSeries -------------------------------------------------------------

TEST(TimeSeriesTest, BasicAccess) {
  TimeSeries ts = TinySeries();
  EXPECT_EQ(ts.num_points(), 10);
  EXPECT_EQ(ts.dims(), 2);
  EXPECT_EQ(ts.value(3, 1), 31.0f);
  EXPECT_EQ(ts.target_column(), 1);  // defaults to last
}

TEST(TimeSeriesTest, SliceRows) {
  TimeSeries ts = TinySeries();
  TimeSeries s = ts.Slice(2, 5);
  EXPECT_EQ(s.num_points(), 3);
  EXPECT_EQ(s.value(0, 0), 20.0f);
  EXPECT_EQ(s.timestamps()[0], 2 * 3600);
}

TEST(TimeSeriesTest, ColumnExtraction) {
  TimeSeries ts = TinySeries();
  TimeSeries col = ts.Column(1);
  EXPECT_EQ(col.dims(), 1);
  EXPECT_EQ(col.value(4, 0), 41.0f);
}

TEST(TimeSeriesTest, CorrelationOfIdenticalColumnsIsOne) {
  TimeSeries ts = TinySeries();
  EXPECT_NEAR(ts.ColumnCorrelation(0, 0), 1.0, 1e-9);
  // Both columns are linear in i: perfectly correlated.
  EXPECT_NEAR(ts.ColumnCorrelation(0, 1), 1.0, 1e-9);
}

TEST(TimeSeriesTest, AntiCorrelatedColumns) {
  std::vector<int64_t> ts = {0, 1, 2, 3};
  std::vector<float> vals = {1, -1, 2, -2, 3, -3, 4, -4};
  TimeSeries series("anti", std::move(ts), std::move(vals), 2);
  EXPECT_NEAR(series.ColumnCorrelation(0, 1), -1.0, 1e-9);
}

TEST(TimeSeriesTest, DownsamplePointSampling) {
  TimeSeries ts = TinySeries(12);
  TimeSeries down = ts.Downsample(3, /*average=*/false);
  EXPECT_EQ(down.num_points(), 4);
  EXPECT_EQ(down.value(1, 0), 30.0f);           // row 3 of the original
  EXPECT_EQ(down.timestamps()[1], 3 * 3600);
  EXPECT_EQ(down.dims(), ts.dims());
}

TEST(TimeSeriesTest, DownsampleAveraging) {
  TimeSeries ts = TinySeries(12);
  TimeSeries down = ts.Downsample(4, /*average=*/true);
  EXPECT_EQ(down.num_points(), 3);
  // Mean of rows 0..3 in column 0: (0 + 10 + 20 + 30) / 4.
  EXPECT_NEAR(down.value(0, 0), 15.0f, 1e-5);
}

TEST(TimeSeriesTest, DownsampleKeepsTargetColumn) {
  TimeSeries ts = TinySeries(12);
  ts.set_target_column(0);
  EXPECT_EQ(ts.Downsample(2).target_column(), 0);
}

TEST(TimeSeriesTest, DownsampleFactorOneIsIdentityValues) {
  TimeSeries ts = TinySeries(6);
  TimeSeries same = ts.Downsample(1);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(same.value(i, 0), ts.value(i, 0));
  }
}

// -- StandardScaler -----------------------------------------------------------

TEST(ScalerTest, TransformsToZeroMeanUnitVar) {
  TimeSeries ts = TinySeries(100);
  StandardScaler scaler;
  scaler.Fit(ts);
  TimeSeries scaled = scaler.Transform(ts);
  for (int64_t d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (int64_t i = 0; i < 100; ++i) mean += scaled.value(i, d);
    mean /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    double var = 0.0;
    for (int64_t i = 0; i < 100; ++i) {
      var += scaled.value(i, d) * scaled.value(i, d);
    }
    EXPECT_NEAR(var / 100.0, 1.0, 1e-4);
  }
}

TEST(ScalerTest, InverseRoundTrip) {
  TimeSeries ts = TinySeries(50);
  StandardScaler scaler;
  scaler.Fit(ts);
  TimeSeries scaled = scaler.Transform(ts);
  EXPECT_NEAR(scaler.InverseValue(scaled.value(7, 0), 0), ts.value(7, 0), 1e-3);

  std::vector<float> row = {scaled.value(3, 0), scaled.value(3, 1)};
  scaler.InverseInPlace(&row);
  EXPECT_NEAR(row[0], ts.value(3, 0), 1e-3);
  EXPECT_NEAR(row[1], ts.value(3, 1), 1e-3);
}

TEST(ScalerTest, ConstantColumnDoesNotBlowUp) {
  std::vector<int64_t> t = {0, 1, 2};
  std::vector<float> vals = {5, 5, 5};
  TimeSeries ts("const", std::move(t), std::move(vals), 1);
  StandardScaler scaler;
  scaler.Fit(ts);
  TimeSeries scaled = scaler.Transform(ts);
  EXPECT_TRUE(std::isfinite(scaled.value(0, 0)));
}

// -- time features ---------------------------------------------------------------

TEST(TimeFeaturesTest, RangeAndValues) {
  // 2020-06-15 14:30:00 UTC.
  const int64_t ts = UnixSecondsFromCivil({2020, 6, 15, 14, 30, 0});
  float f[kNumTimeFeatures];
  TimeFeaturesOf(ts, f);
  EXPECT_NEAR(f[0], 30.0f / 59.0f - 0.5f, 1e-6);  // minute
  EXPECT_NEAR(f[1], 14.0f / 23.0f - 0.5f, 1e-6);  // hour
  EXPECT_NEAR(f[2], 0.0f / 6.0f - 0.5f, 1e-6);    // Monday
  EXPECT_NEAR(f[3], 14.0f / 30.0f - 0.5f, 1e-6);  // day 15
  for (int i = 0; i < kNumTimeFeatures; ++i) {
    EXPECT_GE(f[i], -0.5f);
    EXPECT_LE(f[i], 0.5f);
  }
}

TEST(TimeFeaturesTest, LeapYearStaysInRange) {
  // Regression: day 366 of a leap year used to evaluate past +0.5 because
  // the day-of-year feature was normalized by a fixed 365 regardless of the
  // actual year length.
  float f[kNumTimeFeatures];

  // 2020-12-31 (day 366 of a leap year) must sit exactly at the top of the
  // documented [-0.5, 0.5] range.
  TimeFeaturesOf(UnixSecondsFromCivil({2020, 12, 31, 12, 0, 0}), f);
  EXPECT_NEAR(f[4], 0.5f, 1e-6);

  // 2020-02-29 is day 60 of 366.
  TimeFeaturesOf(UnixSecondsFromCivil({2020, 2, 29, 0, 0, 0}), f);
  EXPECT_NEAR(f[4], 59.0f / 365.0f - 0.5f, 1e-6);
  EXPECT_GE(f[4], -0.5f);
  EXPECT_LE(f[4], 0.5f);

  // Non-leap Dec 31 (day 365 of 365) also lands exactly on +0.5, and Jan 1
  // on -0.5, in both year kinds.
  TimeFeaturesOf(UnixSecondsFromCivil({2021, 12, 31, 0, 0, 0}), f);
  EXPECT_NEAR(f[4], 0.5f, 1e-6);
  TimeFeaturesOf(UnixSecondsFromCivil({2020, 1, 1, 0, 0, 0}), f);
  EXPECT_NEAR(f[4], -0.5f, 1e-6);
  TimeFeaturesOf(UnixSecondsFromCivil({2021, 1, 1, 0, 0, 0}), f);
  EXPECT_NEAR(f[4], -0.5f, 1e-6);

  // Every feature stays in range across a leap-year boundary sweep.
  for (int64_t ts = UnixSecondsFromCivil({2020, 2, 28, 0, 0, 0});
       ts <= UnixSecondsFromCivil({2020, 3, 1, 0, 0, 0}); ts += 3600) {
    TimeFeaturesOf(ts, f);
    for (int i = 0; i < kNumTimeFeatures; ++i) {
      EXPECT_GE(f[i], -0.5f) << "ts=" << ts << " i=" << i;
      EXPECT_LE(f[i], 0.5f) << "ts=" << ts << " i=" << i;
    }
  }
}

TEST(TimeFeaturesTest, MatrixLayout) {
  std::vector<int64_t> ts = {0, 3600, 7200};
  std::vector<float> m = ExtractTimeFeatures(ts);
  EXPECT_EQ(m.size(), 3u * kNumTimeFeatures);
  // Hour feature increases across the three stamps.
  EXPECT_LT(m[1], m[kNumTimeFeatures + 1]);
  EXPECT_LT(m[kNumTimeFeatures + 1], m[2 * kNumTimeFeatures + 1]);
}

// -- WindowDataset ------------------------------------------------------------------

TEST(WindowDatasetTest, SizeFormula) {
  WindowDataset ds(TinySeries(20), {.input_len = 6, .label_len = 2, .pred_len = 4});
  EXPECT_EQ(ds.size(), 20 - 6 - 4 + 1);
}

TEST(WindowDatasetTest, BatchShapesAndAlignment) {
  WindowConfig cfg{.input_len = 6, .label_len = 2, .pred_len = 4};
  WindowDataset ds(TinySeries(20), cfg);
  Batch b = ds.GetBatch({0, 3});
  EXPECT_EQ(b.x.shape(), (Shape{2, 6, 2}));
  EXPECT_EQ(b.y.shape(), (Shape{2, 6, 2}));  // label + pred
  EXPECT_EQ(b.x_mark.shape(), (Shape{2, 6, kNumTimeFeatures}));

  // Window 0: x rows 0..5; y rows 4..9 (label overlaps x's suffix).
  EXPECT_EQ(b.x.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(b.x.at({0, 5, 0}), 50.0f);
  EXPECT_EQ(b.y.at({0, 0, 0}), 40.0f);
  EXPECT_EQ(b.y.at({0, 5, 0}), 90.0f);
  // Window 3 shifted by 3 rows.
  EXPECT_EQ(b.x.at({1, 0, 0}), 30.0f);
  EXPECT_EQ(b.y.at({1, 5, 0}), 120.0f);
}

TEST(WindowDatasetTest, LabelSectionIsSuffixOfInput) {
  WindowConfig cfg{.input_len = 6, .label_len = 3, .pred_len = 2};
  WindowDataset ds(TinySeries(20), cfg);
  Batch b = ds.GetBatch({5});
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(b.y.at({0, i, 0}), b.x.at({0, 3 + i, 0}));
  }
}

TEST(WindowDatasetTest, GetRange) {
  WindowDataset ds(TinySeries(20), {.input_len = 4, .label_len = 2, .pred_len = 2});
  Batch b = ds.GetRange(2, 3);
  EXPECT_EQ(b.size(), 3);
  EXPECT_EQ(b.x.at({0, 0, 0}), 20.0f);
}

TEST(WindowDatasetTest, RejectsTooShortSeries) {
  EXPECT_DEATH(
      WindowDataset(TinySeries(5), {.input_len = 8, .label_len = 2, .pred_len = 4}),
      "window");
}

TEST(SplitsTest, ChronologicalWithContext) {
  WindowConfig cfg{.input_len = 8, .label_len = 4, .pred_len = 4};
  TimeSeries ts = TinySeries(200);
  DatasetSplits splits = MakeSplits(ts, cfg, 0.7, 0.1);
  // Train covers rows [0, 140); val [132, 160); test [152, 200).
  EXPECT_EQ(splits.train.series().num_points(), 140);
  EXPECT_EQ(splits.val.series().num_points(), 160 - 132);
  EXPECT_EQ(splits.test.series().num_points(), 200 - 152);
  // Standardization uses train statistics: train mean is ~0.
  double mean = 0.0;
  for (int64_t i = 0; i < 140; ++i) mean += splits.train.series().value(i, 0);
  EXPECT_NEAR(mean / 140.0, 0.0, 1e-4);
  // Test rows sit above the train mean (the raw series increases).
  EXPECT_GT(splits.test.series().value(40, 0), 0.5f);
}

TEST(SplitsByDateTest, BoundariesRespectTimestamps) {
  TimeSeries ts = TinySeries(200);  // hourly from the epoch
  WindowConfig cfg{.input_len = 8, .label_len = 4, .pred_len = 4};
  // Train: first 120 hours; val: next 40; test: the rest.
  Result<DatasetSplits> r =
      MakeSplitsByDate(ts, cfg, 120 * 3600, 160 * 3600);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().train.series().num_points(), 120);
  // Val keeps input_len rows of context before its boundary.
  EXPECT_EQ(r.value().val.series().timestamps().front(), (120 - 8) * 3600);
  EXPECT_EQ(r.value().val.series().timestamps().back(), 159 * 3600);
  EXPECT_EQ(r.value().test.series().timestamps().back(), 199 * 3600);
}

TEST(SplitsByDateTest, RejectsBadBoundaries) {
  TimeSeries ts = TinySeries(50);
  WindowConfig cfg{.input_len = 8, .label_len = 4, .pred_len = 4};
  EXPECT_FALSE(MakeSplitsByDate(ts, cfg, 40 * 3600, 20 * 3600).ok());
  // Train window too small.
  EXPECT_FALSE(MakeSplitsByDate(ts, cfg, 4 * 3600, 30 * 3600).ok());
  // Test split empty.
  EXPECT_FALSE(MakeSplitsByDate(ts, cfg, 30 * 3600, 49 * 3600).ok());
}

TEST(SplitsByDateTest, ScalerUsesTrainOnly) {
  TimeSeries ts = TinySeries(100);  // values grow with time
  WindowConfig cfg{.input_len = 8, .label_len = 4, .pred_len = 4};
  Result<DatasetSplits> r = MakeSplitsByDate(ts, cfg, 60 * 3600, 80 * 3600);
  ASSERT_TRUE(r.ok());
  // Later (test) rows must be standardized above the train mean.
  const data::TimeSeries& test = r.value().test.series();
  EXPECT_GT(test.value(test.num_points() - 1, 0), 1.0f);
}

TEST(BatchIteratorTest, CoversEverySampleOnce) {
  WindowDataset ds(TinySeries(30), {.input_len = 4, .label_len = 2, .pred_len = 2});
  Rng rng(5);
  BatchIterator it(ds, 7, /*shuffle=*/true, &rng);
  EXPECT_EQ(it.num_batches(), (ds.size() + 6) / 7);
  int64_t total = 0;
  Batch b;
  while (it.Next(&b)) total += b.size();
  EXPECT_EQ(total, ds.size());
  // Second epoch works after Reset.
  it.Reset();
  EXPECT_TRUE(it.Next(&b));
}

TEST(BatchIteratorTest, UnshuffledIsSequential) {
  WindowDataset ds(TinySeries(20), {.input_len = 4, .label_len = 1, .pred_len = 2});
  BatchIterator it(ds, 4, /*shuffle=*/false);
  Batch b;
  ASSERT_TRUE(it.Next(&b));
  EXPECT_EQ(b.x.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(b.x.at({1, 0, 0}), 10.0f);
}

// -- CSV loader -------------------------------------------------------------------------

TEST(CsvTest, ParsesDateAndValues) {
  const std::string csv =
      "date,HUFL,OT\n"
      "2016-07-01 00:00:00,5.827,30.531\n"
      "2016-07-01 01:00:00,5.693,27.787\n";
  Result<TimeSeries> r = ParseCsv(csv, "etth1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const TimeSeries& ts = r.value();
  EXPECT_EQ(ts.num_points(), 2);
  EXPECT_EQ(ts.dims(), 2);
  EXPECT_EQ(ts.column_names()[1], "OT");
  EXPECT_NEAR(ts.value(0, 0), 5.827f, 1e-4);
  EXPECT_EQ(ts.timestamps()[1] - ts.timestamps()[0], 3600);
}

TEST(CsvTest, NoDateColumnUsesInterval) {
  const std::string csv = "a,b\n1,2\n3,4\n";
  CsvOptions options;
  options.interval_seconds = 60;
  Result<TimeSeries> r = ParseCsv(csv, "plain", options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().timestamps()[1] - r.value().timestamps()[0], 60);
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n", "bad").ok());
}

TEST(CsvTest, RejectsNonNumeric) {
  EXPECT_FALSE(ParseCsv("a,b\n1,x\n", "bad").ok());
}

TEST(CsvTest, RejectsEmpty) {
  EXPECT_FALSE(ParseCsv("", "bad").ok());
  EXPECT_FALSE(ParseCsv("a,b\n", "headers only").ok());
}

// Malformed input must produce a compiler-style file:line[:column]
// diagnostic that pinpoints the offending field, not a bare failure.

TEST(CsvTest, RaggedRowDiagnosticNamesFileAndLine) {
  const Status s = ParseCsv("a,b\n1,2\n3\n", "bad.csv").status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad.csv:3"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("ragged row: 1 fields, expected 2"),
            std::string::npos)
      << s.message();
}

TEST(CsvTest, NonNumericDiagnosticNamesColumn) {
  const Status s = ParseCsv("a,b\n1,x\n", "bad.csv").status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad.csv:2:2"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("column 'b'"), std::string::npos) << s.message();
}

TEST(CsvTest, BadTimestampDiagnosticNamesDateColumn) {
  const Status s =
      ParseCsv("date,a\nnot-a-date,1\n", "bad.csv").status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad.csv:2:1"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("bad timestamp"), std::string::npos)
      << s.message();
}

TEST(CsvTest, EmptyAndHeaderOnlyDiagnosticsAreSpecific) {
  const Status empty = ParseCsv("", "bad.csv").status();
  EXPECT_NE(empty.message().find("empty CSV"), std::string::npos)
      << empty.message();
  const Status no_rows = ParseCsv("a,b\n", "bad.csv").status();
  EXPECT_NE(no_rows.message().find("no data rows"), std::string::npos)
      << no_rows.message();
  const Status no_values = ParseCsv("date\n", "bad.csv").status();
  EXPECT_NE(no_values.message().find("no value columns"), std::string::npos)
      << no_values.message();
}

TEST(CsvTest, BlankLinesDoNotShiftLineNumbers) {
  // The blank line 3 is skipped but still counted, so the bad row reports
  // its real file position.
  const Status s = ParseCsv("a,b\n1,2\n\n3,x\n", "bad.csv").status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bad.csv:4:2"), std::string::npos) << s.message();
}

TEST(CsvTest, SaveLoadRoundTrip) {
  TimeSeries ts = TinySeries(8);
  const std::string path = "/tmp/conformer_csv_roundtrip.csv";
  ASSERT_TRUE(SaveCsv(ts, path).ok());
  Result<TimeSeries> loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_points(), ts.num_points());
  EXPECT_EQ(loaded.value().dims(), ts.dims());
  EXPECT_EQ(loaded.value().column_names(), ts.column_names());
  for (int64_t i = 0; i < ts.num_points(); ++i) {
    EXPECT_EQ(loaded.value().timestamps()[i], ts.timestamps()[i]);
    for (int64_t d = 0; d < ts.dims(); ++d) {
      EXPECT_NEAR(loaded.value().value(i, d), ts.value(i, d), 1e-4);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, SaveToUnwritablePathFails) {
  TimeSeries ts = TinySeries(3);
  EXPECT_FALSE(SaveCsv(ts, "/nonexistent_dir/x.csv").ok());
}

TEST(CsvTest, MissingFileIsIOError) {
  Result<TimeSeries> r = LoadCsv("/tmp/definitely_missing.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

// -- synthetic datasets -------------------------------------------------------------------

TEST(SyntheticTest, RegistryKnowsAllSeven) {
  EXPECT_EQ(AvailableDatasets().size(), 7u);
  for (const std::string& name : AvailableDatasets()) {
    Result<TimeSeries> r = MakeDataset(name, 0.05, 1);
    ASSERT_TRUE(r.ok()) << name;
    EXPECT_GT(r.value().num_points(), 500) << name;
  }
}

TEST(SyntheticTest, UnknownNameFails) {
  EXPECT_FALSE(MakeDataset("nope").ok());
  EXPECT_FALSE(MakeDataset("ecl", 0.0).ok());
  EXPECT_FALSE(MakeDataset("ecl", 2.0).ok());
}

TEST(SyntheticTest, DimsMatchTableI) {
  EXPECT_EQ(MakeDataset("weather", 0.05).value().dims(), 21);
  EXPECT_EQ(MakeDataset("exchange", 0.05).value().dims(), 8);
  EXPECT_EQ(MakeDataset("etth1", 0.05).value().dims(), 7);
  EXPECT_EQ(MakeDataset("wind", 0.05).value().dims(), 7);
  EXPECT_EQ(MakeDataset("airdelay", 0.05).value().dims(), 6);
}

TEST(SyntheticTest, FullScaleEclMatchesTableI) {
  SyntheticConfig c = EclConfig(1.0, 1);
  EXPECT_EQ(c.dims, 321);
  EXPECT_EQ(c.points, 26304);
}

TEST(SyntheticTest, DeterministicInSeed) {
  TimeSeries a = MakeDataset("etth1", 0.05, 9).value();
  TimeSeries b = MakeDataset("etth1", 0.05, 9).value();
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(a.value(i, 0), b.value(i, 0));
  TimeSeries c = MakeDataset("etth1", 0.05, 10).value();
  bool differs = false;
  for (int64_t i = 0; i < 100; ++i) differs = differs || a.value(i, 0) != c.value(i, 0);
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, EtthHasDailyPeriodicity) {
  TimeSeries ts = MakeDataset("etth1", 0.1, 3).value();
  std::vector<double> col(512);
  for (int64_t i = 0; i < 512; ++i) col[i] = ts.value(i, 0);
  auto ac = fft::AutoCorrelation(col);
  // Correlation at the daily lag (24 steps) beats a mid-cycle lag (12).
  EXPECT_GT(ac[24], ac[12]);
}

TEST(SyntheticTest, ExchangeHasNoStrongPeriodicity) {
  TimeSeries ts = MakeDataset("exchange", 0.2, 3).value();
  std::vector<double> col(1024);
  for (int64_t i = 0; i < 1024; ++i) col[i] = ts.value(i, 0);
  auto ac = fft::AutoCorrelation(col);
  // Normalized correlation decays smoothly: no lag beyond 2 steps should
  // exceed 99.9% of the lag-1 value (random-walk signature: monotone-ish
  // decay, no resonant peaks).
  for (int64_t lag = 10; lag < 100; ++lag) {
    EXPECT_LT(ac[lag], ac[1] * 1.001) << "periodic peak at lag " << lag;
  }
}

TEST(SyntheticTest, WindIsNonNegative) {
  TimeSeries ts = MakeDataset("wind", 0.05, 4).value();
  for (int64_t i = 0; i < ts.num_points(); ++i) {
    EXPECT_GE(ts.value(i, ts.dims() - 1), 0.0f);
  }
}

TEST(SyntheticTest, AirDelayHasIrregularIntervals) {
  TimeSeries ts = MakeDataset("airdelay", 0.05, 5).value();
  std::set<int64_t> gaps;
  for (int64_t i = 1; i < 200; ++i) {
    gaps.insert(ts.timestamps()[i] - ts.timestamps()[i - 1]);
  }
  EXPECT_GT(gaps.size(), 20u);  // many distinct inter-arrival times
}

TEST(SyntheticTest, RegularDatasetsHaveFixedInterval) {
  TimeSeries ts = MakeDataset("etth1", 0.05, 6).value();
  for (int64_t i = 1; i < 100; ++i) {
    EXPECT_EQ(ts.timestamps()[i] - ts.timestamps()[i - 1], 3600);
  }
}

TEST(SyntheticTest, CrossCouplingCorrelatesVariables) {
  TimeSeries ts = MakeDataset("ecl", 0.05, 7).value();
  // Shared latent + shared rhythms: average |corr| should be visible.
  double corr = std::fabs(ts.ColumnCorrelation(0, 1));
  EXPECT_GT(corr, 0.1);
}

}  // namespace
}  // namespace conformer::data
