// Baseline models: forward contracts, gradient flow, registry coverage.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/deepar.h"
#include "baselines/gru_forecaster.h"
#include "baselines/linear_forecaster.h"
#include "baselines/lstnet.h"
#include "baselines/naive.h"
#include "baselines/nbeats.h"
#include "baselines/registry.h"
#include "baselines/timesnet_lite.h"
#include "baselines/transformer_forecaster.h"
#include "baselines/ts2vec.h"
#include "data/dataset_registry.h"

namespace conformer::models {
namespace {

data::WindowConfig SmallWindow() {
  return {.input_len = 16, .label_len = 8, .pred_len = 8};
}

data::Batch SmallBatch() {
  data::TimeSeries ts = data::MakeDataset("etth1", 0.07, 31).value();
  data::DatasetSplits splits = data::MakeSplits(ts, SmallWindow());
  return splits.train.GetRange(0, 4);
}

// Parameterized over all registry names: every model obeys the Forecaster
// contract.
class RegistryModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryModelTest, ForwardShapeContract) {
  data::Batch batch = SmallBatch();
  auto model = MakeForecaster(GetParam(), SmallWindow(), batch.x.size(2));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Tensor pred = model.value()->Forward(batch);
  EXPECT_EQ(pred.shape(), (Shape{4, 8, batch.x.size(2)}));
}

TEST_P(RegistryModelTest, LossIsFiniteAndTrainsParameters) {
  data::Batch batch = SmallBatch();
  auto model = MakeForecaster(GetParam(), SmallWindow(), batch.x.size(2));
  ASSERT_TRUE(model.ok());
  Tensor loss = model.value()->Loss(batch);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
  int64_t with_grad = 0;
  for (Tensor& p : model.value()->Parameters()) with_grad += p.has_grad();
  if (model.value()->NumParameters() > 0) {
    EXPECT_GT(with_grad, 0);
  } else {
    SUCCEED() << "parameter-free reference model";
  }
}

TEST_P(RegistryModelTest, EvalIsDeterministic) {
  data::Batch batch = SmallBatch();
  auto model = MakeForecaster(GetParam(), SmallWindow(), batch.x.size(2));
  ASSERT_TRUE(model.ok());
  model.value()->SetTraining(false);
  NoGradGuard guard;
  Tensor a = model.value()->Forward(batch);
  Tensor b = model.value()->Forward(batch);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(AllModels, RegistryModelTest,
                         ::testing::ValuesIn(AvailableModels()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(RegistryTest, UnknownNameFails) {
  auto r = MakeForecaster("not_a_model", SmallWindow(), 3);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NamesRoundTrip) {
  data::Batch batch = SmallBatch();
  auto informer = MakeForecaster("informer", SmallWindow(), batch.x.size(2));
  ASSERT_TRUE(informer.ok());
  EXPECT_EQ(informer.value()->name(), "Informer");
  auto conformer = MakeForecaster("conformer", SmallWindow(), batch.x.size(2));
  ASSERT_TRUE(conformer.ok());
  EXPECT_EQ(conformer.value()->name(), "Conformer");
}

// -- model-specific behaviour ------------------------------------------------

TEST(GruForecasterTest, LearnsConstantSeries) {
  // A constant (standardized to zero) series: a few steps of training should
  // push predictions toward zero.
  data::WindowConfig cfg = SmallWindow();
  GruForecaster model(cfg, 2, 8, 1);

  std::vector<int64_t> ts(64);
  std::vector<float> vals(64 * 2, 0.0f);
  for (int64_t i = 0; i < 64; ++i) ts[i] = i * 3600;
  data::TimeSeries series("zeros", std::move(ts), std::move(vals), 2);
  data::WindowDataset ds(series, cfg);
  data::Batch batch = ds.GetRange(0, 8);

  // Initial predictions are nonzero; train a few steps with plain SGD.
  std::vector<Tensor> params = model.Parameters();
  for (int step = 0; step < 30; ++step) {
    for (Tensor& p : params) p.ZeroGrad();
    Tensor loss = model.Loss(batch);
    loss.Backward();
    for (Tensor& p : params) {
      if (!p.has_grad()) continue;
      for (int64_t j = 0; j < p.numel(); ++j) {
        p.data()[j] -= 0.1f * p.grad_data()[j];
      }
    }
  }
  EXPECT_LT(model.Loss(batch).item(), 0.01f);
}

TEST(LstNetTest, RequiresInputLongerThanKernel) {
  EXPECT_DEATH(LstNet({.input_len = 4, .label_len = 2, .pred_len = 2}, 3,
                      8, /*kernel=*/6, 8),
               "");
}

TEST(NBeatsTest, BlocksRefineResidually) {
  data::Batch batch = SmallBatch();
  NBeats one_block(SmallWindow(), batch.x.size(2), 1, 16);
  NBeats three_blocks(SmallWindow(), batch.x.size(2), 3, 16);
  EXPECT_GT(three_blocks.NumParameters(), one_block.NumParameters() * 2);
}

TEST(Ts2VecTest, ContrastiveLossDecreasesUnderTraining) {
  data::Batch batch = SmallBatch();
  Ts2Vec model(SmallWindow(), batch.x.size(2), 8);
  std::vector<Tensor> params = model.Parameters();
  const float initial = model.Loss(batch).item();
  for (int step = 0; step < 20; ++step) {
    for (Tensor& p : params) p.ZeroGrad();
    model.Loss(batch).Backward();
    for (Tensor& p : params) {
      if (!p.has_grad()) continue;
      for (int64_t j = 0; j < p.numel(); ++j) {
        p.data()[j] -= 0.05f * p.grad_data()[j];
      }
    }
  }
  EXPECT_LT(model.Loss(batch).item(), initial);
}

TEST(NaiveTest, RepeatsLastValue) {
  data::Batch batch = SmallBatch();
  NaiveForecaster model(SmallWindow(), batch.x.size(2));
  Tensor pred = model.Forward(batch);
  const int64_t lx = batch.x.size(1);
  for (int64_t t = 0; t < 8; ++t) {
    EXPECT_EQ(pred.at({0, t, 0}), batch.x.at({0, lx - 1, 0}));
  }
}

TEST(NaiveTest, SeasonalRepeatsOnePeriodBack) {
  data::Batch batch = SmallBatch();
  SeasonalNaiveForecaster model(SmallWindow(), batch.x.size(2), /*period=*/4);
  Tensor pred = model.Forward(batch);
  const int64_t lx = batch.x.size(1);
  // Step 0 copies x[lx-4]; step 5 copies x[lx-4+1].
  EXPECT_EQ(pred.at({0, 0, 0}), batch.x.at({0, lx - 4, 0}));
  EXPECT_EQ(pred.at({0, 5, 1}), batch.x.at({0, lx - 3, 1}));
}

TEST(NaiveTest, SeasonalPeriodClampedToWindow) {
  SeasonalNaiveForecaster model(SmallWindow(), 2, /*period=*/9999);
  EXPECT_EQ(model.period(), SmallWindow().input_len);
}

TEST(NaiveTest, PerfectOnExactlyPeriodicData) {
  // A period-4 series is forecast exactly by seasonal-naive with period 4.
  const data::WindowConfig cfg{.input_len = 8, .label_len = 4, .pred_len = 4};
  std::vector<int64_t> stamps(40);
  std::vector<float> vals(40);
  for (int64_t i = 0; i < 40; ++i) {
    stamps[i] = i * 3600;
    vals[i] = static_cast<float>(i % 4);
  }
  data::TimeSeries ts("periodic", std::move(stamps), std::move(vals), 1);
  data::WindowDataset ds(ts, cfg);
  SeasonalNaiveForecaster model(cfg, 1, 4);
  data::Batch batch = ds.GetRange(0, 4);
  const int64_t total = batch.y.size(1);
  Tensor target = Slice(batch.y, 1, total - 4, total);
  Tensor diff = Sub(model.Forward(batch), target);
  EXPECT_NEAR(Mean(Mul(diff, diff)).item(), 0.0f, 1e-10);
}

TEST(LinearForecasterTest, ClosedFormFitBeatsRandomInit) {
  data::TimeSeries ts = data::MakeDataset("etth1", 0.07, 33).value();
  data::DatasetSplits splits = data::MakeSplits(ts, SmallWindow());
  LinearForecaster model(SmallWindow(), ts.dims());

  auto mse_on = [&](const data::WindowDataset& ds) {
    NoGradGuard guard;
    data::Batch batch = ds.GetRange(0, std::min<int64_t>(ds.size(), 32));
    const int64_t total = batch.y.size(1);
    Tensor target = Slice(batch.y, 1, total - 8, total);
    Tensor diff = Sub(model.Forward(batch), target);
    return Mean(Mul(diff, diff)).item();
  };

  const float before = mse_on(splits.test);
  ASSERT_TRUE(model.FitLeastSquares(splits.train).ok());
  const float after = mse_on(splits.test);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 1.5f);  // sane error on standardized data
}

TEST(LinearForecasterTest, ClosedFormInterpolatesNoiselessLinearData) {
  // Target = previous value (identity dynamics): the least-squares fit
  // should achieve near-zero training error.
  const data::WindowConfig cfg{.input_len = 8, .label_len = 4, .pred_len = 2};
  std::vector<int64_t> stamps(80);
  std::vector<float> vals(80);
  for (int64_t i = 0; i < 80; ++i) {
    stamps[i] = i * 3600;
    vals[i] = std::sin(0.3f * static_cast<float>(i));
  }
  data::TimeSeries ts("sine", std::move(stamps), std::move(vals), 1);
  data::WindowDataset ds(ts, cfg);
  LinearForecaster model(cfg, 1);
  ASSERT_TRUE(model.FitLeastSquares(ds, 1e-8).ok());
  NoGradGuard guard;
  data::Batch batch = ds.GetRange(0, ds.size());
  const int64_t total = batch.y.size(1);
  Tensor target = Slice(batch.y, 1, total - cfg.pred_len, total);
  Tensor diff = Sub(model.Forward(batch), target);
  EXPECT_LT(Mean(Mul(diff, diff)).item(), 1e-4f);
}

TEST(LinearForecasterTest, FitFailsOnTinyDataset) {
  const data::WindowConfig cfg{.input_len = 4, .label_len = 2, .pred_len = 2};
  std::vector<int64_t> stamps(7);
  std::vector<float> vals(7, 1.0f);
  for (int64_t i = 0; i < 7; ++i) stamps[i] = i;
  data::TimeSeries ts("tiny", std::move(stamps), std::move(vals), 1);
  data::WindowDataset ds(ts, cfg);  // 2 windows
  LinearForecaster model(cfg, 1);
  // 2 windows >= 2 passes the row check but the fit itself must at least
  // not crash; with ridge it succeeds.
  EXPECT_TRUE(model.FitLeastSquares(ds, 1.0).ok());
}

TEST(DeepArTest, NllDecreasesWithBetterFit) {
  data::Batch batch = SmallBatch();
  DeepAr model(SmallWindow(), batch.x.size(2), 8, 1);
  std::vector<Tensor> params = model.Parameters();
  const float initial = model.Loss(batch).item();
  for (int step = 0; step < 25; ++step) {
    for (Tensor& p : params) p.ZeroGrad();
    model.Loss(batch).Backward();
    for (Tensor& p : params) {
      if (!p.has_grad()) continue;
      for (int64_t j = 0; j < p.numel(); ++j) {
        p.data()[j] -= 0.02f * p.grad_data()[j];
      }
    }
  }
  EXPECT_LT(model.Loss(batch).item(), initial);
}

TEST(DeepArTest, BandsWidenWithCoverage) {
  data::Batch batch = SmallBatch();
  DeepAr model(SmallWindow(), batch.x.size(2), 8, 1);
  flow::UncertaintyBand narrow = model.PredictWithUncertainty(batch, 64, 0.5);
  flow::UncertaintyBand wide = model.PredictWithUncertainty(batch, 64, 0.95);
  double narrow_width = 0.0;
  double wide_width = 0.0;
  for (int64_t i = 0; i < narrow.mean.numel(); ++i) {
    narrow_width += narrow.upper.data()[i] - narrow.lower.data()[i];
    wide_width += wide.upper.data()[i] - wide.lower.data()[i];
  }
  EXPECT_GT(wide_width, narrow_width);
}

TEST(DeepArTest, SigmaIsPositive) {
  data::Batch batch = SmallBatch();
  DeepAr model(SmallWindow(), batch.x.size(2), 8, 1);
  // Indirectly: NLL must be finite even for extreme inputs.
  EXPECT_TRUE(std::isfinite(model.Loss(batch).item()));
}

TEST(TransformerForecasterTest, NamedConfigsMatchPaperSettings) {
  EXPECT_EQ(LongformerConfig().kind, attention::AttentionKind::kSlidingWindow);
  EXPECT_TRUE(InformerConfig().distill);
  EXPECT_TRUE(AutoformerConfig().decomposition);
  EXPECT_FALSE(AutoformerConfig().positional);
  EXPECT_EQ(ReformerConfig().attn.lsh_chunk, 24);
  EXPECT_EQ(LogTransConfig().kind, attention::AttentionKind::kLogSparse);
}

TEST(TransformerForecasterTest, DistillingHalvesMemoryLength) {
  // Informer-style encoder with 3 layers pools twice: the model must still
  // produce the full-length forecast.
  TransformerConfig config = InformerConfig();
  config.d_model = 8;
  config.n_heads = 2;
  config.enc_layers = 3;
  data::Batch batch = SmallBatch();
  TransformerForecaster model(config, SmallWindow(), batch.x.size(2));
  EXPECT_EQ(model.Forward(batch).shape(), (Shape{4, 8, batch.x.size(2)}));
}

TEST(ForecasterTest, ZeroLabelLengthWorks) {
  // DecoderInput degenerates to all zeros when label_len == 0; the models
  // must still produce the full horizon.
  data::TimeSeries ts = data::MakeDataset("etth1", 0.07, 32).value();
  data::WindowConfig cfg{.input_len = 16, .label_len = 0, .pred_len = 8};
  data::DatasetSplits splits = data::MakeSplits(ts, cfg);
  data::Batch batch = splits.train.GetRange(0, 2);
  for (const std::string name : {"informer", "conformer"}) {
    models::ModelHyperParams params;
    params.d_model = 8;
    params.n_heads = 2;
    params.ma_kernel = 5;
    auto model = models::MakeForecaster(name, cfg, ts.dims(), params);
    ASSERT_TRUE(model.ok()) << name;
    Tensor pred = model.value()->Forward(batch);
    EXPECT_EQ(pred.shape(), (Shape{2, 8, ts.dims()})) << name;
    EXPECT_TRUE(std::isfinite(model.value()->Loss(batch).item())) << name;
  }
}

TEST(TimesNetLiteTest, SelectsDominantPeriodFromCleanSinusoid) {
  // A pure 3-cycles-per-window sinusoid: bin 3 dominates, period = 24/3 = 8.
  data::WindowConfig cfg{.input_len = 24, .label_len = 8, .pred_len = 8};
  TimesNetLite model(cfg, /*dims=*/1, /*d_model=*/8, /*top_k=*/2);
  std::vector<float> vals(24);
  for (int64_t t = 0; t < 24; ++t) {
    vals[t] = std::sin(2.0 * M_PI * 3.0 * t / 24.0);
  }
  Tensor row = Tensor::FromVector(std::move(vals), {1, 24, 1});
  const std::vector<fft::PeriodCandidate> periods = model.SelectPeriods(row);
  ASSERT_FALSE(periods.empty());
  EXPECT_EQ(periods[0].frequency, 3);
  EXPECT_EQ(periods[0].period, 8);
}

TEST(TimesNetLiteTest, RaggedPeriodStillMatchesShapeContract) {
  // input_len = 16 with a 3-cycle sinusoid selects period 16/3 = 5, which
  // does not divide the window: the ragged-tail zero-pad path must still
  // produce the contract shape.
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  TimesNetLite model(cfg, /*dims=*/2, /*d_model=*/8, /*top_k=*/1);
  std::vector<float> vals(16 * 2);
  for (int64_t t = 0; t < 16; ++t) {
    const float v = static_cast<float>(std::sin(2.0 * M_PI * 3.0 * t / 16.0));
    vals[t * 2] = v;
    vals[t * 2 + 1] = v;
  }
  Tensor x = Tensor::FromVector(std::move(vals), {1, 16, 2});
  const std::vector<fft::PeriodCandidate> periods = model.SelectPeriods(x);
  ASSERT_FALSE(periods.empty());
  EXPECT_EQ(periods[0].period, 5);  // 16 / 3, the ragged case.
  data::Batch batch;
  batch.x = x;
  EXPECT_EQ(model.Forward(batch).shape(), (Shape{1, 8, 2}));
}

TEST(ForecasterTest, TargetBlockIsSuffix) {
  data::Batch batch = SmallBatch();
  GruForecaster model(SmallWindow(), batch.x.size(2), 8, 1);
  Tensor loss_direct = MseLoss(model.Forward(batch),
                               Slice(batch.y, 1, batch.y.size(1) - 8,
                                     batch.y.size(1)));
  Tensor loss_api = model.Loss(batch);
  EXPECT_NEAR(loss_direct.item(), loss_api.item(), 1e-5);
}

}  // namespace
}  // namespace conformer::models
