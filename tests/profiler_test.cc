// Tests for the observability layer (util/profiler.h, util/metrics.h,
// util/trace_writer.h): nested-scope aggregation with self-time, the
// zero-allocation disabled fast path, recording + counter aggregation from
// ThreadPool workers (this suite carries the `tsan` label), and that the
// JSON summary / chrome-trace exports are syntactically valid JSON.

#include "util/profiler.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/kernels.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace_writer.h"

// Global operator new/delete instrumentation for the zero-allocation test.
// Counting is process-wide but the assertion only spans code this test
// controls on one thread while other threads are quiescent.
namespace {
std::atomic<int64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

// The nothrow pair must be replaced too: the default nothrow new does not
// forward to the replaced throwing new, so (e.g.) std::stable_sort's
// get_temporary_buffer would otherwise allocate from the system allocator
// and land in the free() below — an alloc/dealloc mismatch under asan.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace conformer {
namespace {

using prof::OpStats;
using prof::Profiler;
using prof::ScopedTimer;

const OpStats* FindStats(const std::vector<OpStats>& stats,
                         const std::string& cat, const std::string& name) {
  for (const OpStats& s : stats) {
    if (s.cat == cat && s.name == name) return &s;
  }
  return nullptr;
}

// Minimal JSON syntax validator (objects, arrays, strings, numbers, bools,
// null). Returns true iff the whole input is one well-formed value.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String() {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          SkipSpace();
          if (!String()) return false;
          SkipSpace();
          if (pos_ >= text_.size() || text_[pos_] != ':') return false;
          ++pos_;
          if (!Value()) return false;
          SkipSpace();
          if (pos_ >= text_.size()) return false;
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          if (!Value()) return false;
          SkipSpace();
          if (pos_ >= text_.size()) return false;
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return false;
        }
      }
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

// Spin long enough that the scope's duration is reliably nonzero.
void BusyWork() {
  volatile double x = 1.0;
  for (int i = 0; i < 2000; ++i) x = x * 1.0000001 + 1e-9;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Global().Reset();
    Profiler::Global().Enable();
  }
  void TearDown() override {
    Profiler::Global().Disable();
    Profiler::Global().Reset();
  }
};

TEST_F(ProfilerTest, NestedScopesAggregateWithSelfTime) {
  {
    ScopedTimer outer("outer", "test");
    for (int i = 0; i < 3; ++i) {
      ScopedTimer inner("inner", "test");
      BusyWork();
    }
    BusyWork();
  }
  Profiler::Global().Disable();

  const std::vector<OpStats> stats = Profiler::Global().Aggregate();
  const OpStats* outer = FindStats(stats, "test", "outer");
  const OpStats* inner = FindStats(stats, "test", "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_EQ(inner->count, 3);
  EXPECT_GE(inner->min_ns, 0);
  EXPECT_GE(inner->max_ns, inner->min_ns);
  EXPECT_GE(inner->total_ns, inner->max_ns);
  // The inner scopes nest inside the outer one, so outer self time excludes
  // them while outer total includes them.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_LE(outer->self_ns, outer->total_ns - inner->total_ns);
  // Inner scopes have no children: self == total.
  EXPECT_EQ(inner->self_ns, inner->total_ns);
}

TEST_F(ProfilerTest, SiblingScopesDoNotNest) {
  {
    ScopedTimer a("sib_a", "test");
    BusyWork();
  }
  {
    ScopedTimer b("sib_b", "test");
    BusyWork();
  }
  const std::vector<OpStats> stats = Profiler::Global().Aggregate();
  const OpStats* a = FindStats(stats, "test", "sib_a");
  const OpStats* b = FindStats(stats, "test", "sib_b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->self_ns, a->total_ns);
  EXPECT_EQ(b->self_ns, b->total_ns);
}

TEST_F(ProfilerTest, DisabledFastPathAllocatesNothing) {
  Profiler::Global().Disable();
  // Warm the thread-local log registration outside the measured region (an
  // enabled scope may allocate on first use per thread).
  Profiler::Global().Enable();
  { ScopedTimer warm("warm", "test"); }
  Profiler::Global().Disable();

  const int64_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedTimer t("disabled_scope", "test");
    CONFORMER_PROFILE_SCOPE("disabled_macro_scope");
  }
  const int64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(before, after) << "disabled ScopedTimer must not allocate";
  EXPECT_EQ(Profiler::Global().event_count(), 1)
      << "disabled scopes must not record events";
}

TEST_F(ProfilerTest, RecordingFromParallelForWorkersIsComplete) {
  ThreadPool::Global().SetNumThreads(8);
  constexpr int64_t kIters = 4000;
  metrics::Counter& counter =
      metrics::Registry::Global().GetCounter("test.parallel_scopes");
  counter.Reset();
  ParallelFor(0, kIters, /*grain=*/1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      CONFORMER_PROFILE_SCOPE_CAT("test", "worker_scope");
      counter.Increment();
    }
  });
  ThreadPool::Global().SetNumThreads(1);
  Profiler::Global().Disable();

  EXPECT_EQ(counter.value(), kIters);
  const std::vector<OpStats> stats = Profiler::Global().Aggregate();
  const OpStats* s = FindStats(stats, "test", "worker_scope");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, kIters) << "every worker-recorded scope must survive";
  EXPECT_GE(s->total_ns, 0);
}

TEST_F(ProfilerTest, GemmKernelReportsBytes) {
  constexpr int64_t kN = 8;
  std::vector<float> a(kN * kN, 1.0f);
  std::vector<float> b(kN * kN, 2.0f);
  std::vector<float> c(kN * kN, 0.0f);
  kernels::Gemm(false, false, kN, kN, kN, a.data(), b.data(), c.data(),
                /*accumulate=*/false);
  const std::vector<OpStats> stats = Profiler::Global().Aggregate();
  const OpStats* gemm = FindStats(stats, "kernel", "Gemm");
  ASSERT_NE(gemm, nullptr);
  EXPECT_EQ(gemm->count, 1);
  EXPECT_EQ(gemm->bytes, static_cast<int64_t>(sizeof(float)) * 3 * kN * kN);
}

TEST_F(ProfilerTest, SummaryJsonAndTraceAreValidJson) {
  {
    ScopedTimer outer("json_outer", "test");
    ScopedTimer inner("json \"quoted\"\n", "test");  // exercises escaping
    BusyWork();
  }
  Profiler::Global().Disable();

  const std::string summary = Profiler::Global().SummaryJson();
  EXPECT_TRUE(JsonValidator(summary).Valid()) << summary.substr(0, 400);
  EXPECT_NE(summary.find("\"schema\": \"conformer.profile.v1\""),
            std::string::npos);
  EXPECT_NE(summary.find("\"alloc\""), std::string::npos);
  EXPECT_NE(summary.find("\"metrics\""), std::string::npos);

  const std::string summary_path = TempPath("conformer_profiler_summary.json");
  const std::string trace_path = TempPath("conformer_profiler_trace.json");
  ASSERT_TRUE(Profiler::Global().WriteSummaryJson(summary_path));
  ASSERT_TRUE(Profiler::Global().WriteTrace(trace_path));
  EXPECT_TRUE(JsonValidator(ReadFile(summary_path)).Valid());
  const std::string trace = ReadFile(trace_path);
  EXPECT_TRUE(JsonValidator(trace).Valid()) << trace.substr(0, 400);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  std::remove(summary_path.c_str());
  std::remove(trace_path.c_str());
}

TEST_F(ProfilerTest, WriteTraceHonorsMaxEvents) {
  for (int i = 0; i < 50; ++i) {
    ScopedTimer t("capped", "test");
  }
  Profiler::Global().Disable();
  const std::string path = TempPath("conformer_profiler_capped.json");
  ASSERT_TRUE(Profiler::Global().WriteTrace(path, /*max_events=*/10));
  const std::string trace = ReadFile(path);
  EXPECT_TRUE(JsonValidator(trace).Valid());
  size_t events = 0;
  for (size_t pos = 0; (pos = trace.find("\"ph\"", pos)) != std::string::npos;
       ++pos) {
    ++events;
  }
  EXPECT_LE(events, 10u);
  EXPECT_GE(events, 1u);
  std::remove(path.c_str());
}

TEST_F(ProfilerTest, ResetDropsEvents) {
  { ScopedTimer t("dropped", "test"); }
  EXPECT_GT(Profiler::Global().event_count(), 0);
  Profiler::Global().Reset();
  EXPECT_EQ(Profiler::Global().event_count(), 0);
}

TEST(MetricsTest, CounterGaugeHistogram) {
  metrics::Registry& registry = metrics::Registry::Global();
  metrics::Counter& counter = registry.GetCounter("test.counter");
  counter.Reset();
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.GetCounter("test.counter"), &counter);

  metrics::Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);

  metrics::Histogram& hist =
      registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  hist.Reset();
  hist.Observe(0.5);    // bucket 0
  hist.Observe(5.0);    // bucket 1
  hist.Observe(1000.0); // overflow
  const metrics::Histogram::Snapshot snap = hist.GetSnapshot();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[3], 1);
  EXPECT_EQ(snap.count, 3);
  EXPECT_DOUBLE_EQ(snap.sum, 1005.5);

  EXPECT_TRUE(JsonValidator(registry.ToJson()).Valid());
}

TEST(MetricsTest, CounterIsExactUnderParallelFor) {
  ThreadPool::Global().SetNumThreads(8);
  metrics::Counter& counter =
      metrics::Registry::Global().GetCounter("test.parallel_counter");
  counter.Reset();
  constexpr int64_t kIters = 100000;
  ParallelFor(0, kIters, /*grain=*/64, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) counter.Increment();
  });
  ThreadPool::Global().SetNumThreads(1);
  EXPECT_EQ(counter.value(), kIters);
}

TEST(TraceWriterTest, EmptyTraceIsValid) {
  const std::string path = TempPath("conformer_empty_trace.json");
  prof::TraceWriter writer;
  ASSERT_TRUE(writer.Open(path));
  ASSERT_TRUE(writer.Close());
  EXPECT_TRUE(JsonValidator(ReadFile(path)).Valid());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace conformer
