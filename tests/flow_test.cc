// Normalizing flow: variant semantics, determinism of the mean path,
// stochasticity of sampling, gradient flow, and uncertainty summaries.

#include <gtest/gtest.h>

#include <cmath>

#include "flow/gaussian_head.h"
#include "flow/normalizing_flow.h"
#include "tensor/gradcheck.h"

namespace conformer::flow {
namespace {

Tensor Hidden(uint64_t seed, int64_t batch = 3, int64_t dim = 8) {
  Rng rng(seed);
  return Tensor::Randn({batch, dim}, &rng);
}

TEST(FlowTest, VariantNames) {
  EXPECT_STREQ(FlowVariantName(FlowVariant::kFull), "full");
  EXPECT_STREQ(FlowVariantName(FlowVariant::kZe), "z_e");
  EXPECT_STREQ(FlowVariantName(FlowVariant::kZd), "z_d");
  EXPECT_STREQ(FlowVariantName(FlowVariant::kZeZd), "z_e+z_d");
  EXPECT_STREQ(FlowVariantName(FlowVariant::kNone), "none");
}

TEST(FlowTest, OutputShape) {
  NormalizingFlow flow(8, 2);
  Tensor z = flow.Forward(Hidden(1), Hidden(2), /*sample=*/false);
  EXPECT_EQ(z.shape(), (Shape{3, 8}));
}

TEST(FlowTest, MeanPathIsDeterministic) {
  NormalizingFlow flow(8, 2);
  Tensor a = flow.Forward(Hidden(1), Hidden(2), false);
  Tensor b = flow.Forward(Hidden(1), Hidden(2), false);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(FlowTest, SamplingIsStochastic) {
  NormalizingFlow flow(8, 2);
  Rng rng(3);
  Tensor a = flow.Forward(Hidden(1), Hidden(2), true, &rng);
  Tensor b = flow.Forward(Hidden(1), Hidden(2), true, &rng);
  bool differs = false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    differs = differs || a.data()[i] != b.data()[i];
  }
  EXPECT_TRUE(differs);
}

TEST(FlowTest, VariantsProduceDistinctOutputs) {
  // With shared weights, each variant truncates the chain differently.
  NormalizingFlow full(8, 2, FlowVariant::kFull);
  Tensor h_e = Hidden(1);
  Tensor h_d = Hidden(2);
  // Run all variants through the same module weights by constructing each
  // variant fresh with the same seed (GlobalRng is advanced by init, so we
  // compare structural behaviour instead: kZe ignores h_d).
  NormalizingFlow ze_flow(8, 2, FlowVariant::kZe);
  Tensor out1 = ze_flow.Forward(h_e, h_d, false);
  Tensor out2 = ze_flow.Forward(h_e, Hidden(99), false);  // different h_d
  for (int64_t i = 0; i < out1.numel(); ++i) {
    EXPECT_EQ(out1.data()[i], out2.data()[i]) << "kZe must ignore h_d";
  }
}

TEST(FlowTest, ZdVariantIgnoresEncoderHidden) {
  NormalizingFlow flow(8, 2, FlowVariant::kZd);
  Tensor h_d = Hidden(2);
  Tensor a = flow.Forward(Hidden(1), h_d, false);
  Tensor b = flow.Forward(Hidden(50), h_d, false);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(FlowTest, FullUsesTransformsButZeZdDoesNot) {
  // Zero transforms: kFull == kZeZd by construction.
  NormalizingFlow flow0(8, 0, FlowVariant::kFull);
  Tensor h_e = Hidden(1);
  Tensor h_d = Hidden(2);
  Tensor a = flow0.Forward(h_e, h_d, false);
  NormalizingFlow flow2(8, 2, FlowVariant::kFull);
  Tensor b = flow2.Forward(h_e, h_d, false);
  EXPECT_EQ(a.shape(), b.shape());
}

TEST(FlowTest, DisabledVariantDies) {
  NormalizingFlow flow(4, 1, FlowVariant::kNone);
  EXPECT_DEATH(flow.Forward(Hidden(1, 1, 4), Hidden(2, 1, 4), false),
               "disabled");
}

TEST(FlowTest, GradFlowsToBothHiddens) {
  NormalizingFlow flow(6, 2);
  Tensor h_e = Hidden(1, 2, 6).set_requires_grad(true);
  Tensor h_d = Hidden(2, 2, 6).set_requires_grad(true);
  Sum(flow.Forward(h_e, h_d, false)).Backward();
  EXPECT_TRUE(h_e.has_grad());
  EXPECT_TRUE(h_d.has_grad());
  for (Tensor& p : flow.Parameters()) {
    // Every FCN participates in the full variant.
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(FlowTest, ParameterCountScalesWithTransforms) {
  NormalizingFlow f1(8, 1);
  NormalizingFlow f3(8, 3);
  EXPECT_GT(f3.NumParameters(), f1.NumParameters());
}

TEST(FlowTest, GradCheckThroughChain) {
  NormalizingFlow flow(3, 2);
  Tensor h_e = Hidden(30, 1, 3).set_requires_grad(true);
  Tensor h_d = Hidden(31, 1, 3).set_requires_grad(true);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        Tensor z = flow.Forward(in[0], in[1], /*sample=*/false);
        return Sum(Mul(z, z));
      },
      {h_e, h_d});
  EXPECT_TRUE(r.passed) << r.message;
}

// -- output head ------------------------------------------------------------

TEST(FlowHeadTest, ProjectsToSeriesBlock) {
  FlowOutputHead head(8, 5, 3);
  Tensor z = Hidden(4, 2, 8);
  EXPECT_EQ(head.Forward(z).shape(), (Shape{2, 5, 3}));
}

// -- uncertainty summaries -----------------------------------------------------

TEST(UncertaintyTest, MeanOfSamples) {
  std::vector<Tensor> samples = {Tensor::Full({2, 2}, 1.0f),
                                 Tensor::Full({2, 2}, 3.0f)};
  UncertaintyBand band = SummarizeSamples(samples, 0.9);
  EXPECT_EQ(band.mean.at({0, 0}), 2.0f);
}

TEST(UncertaintyTest, BandsAreOrdered) {
  Rng rng(7);
  std::vector<Tensor> samples;
  for (int i = 0; i < 32; ++i) samples.push_back(Tensor::Randn({4, 3}, &rng));
  UncertaintyBand band = SummarizeSamples(samples, 0.8);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_LE(band.lower.data()[i], band.mean.data()[i] + 1e-6);
    EXPECT_GE(band.upper.data()[i], band.mean.data()[i] - 1e-6);
  }
}

TEST(UncertaintyTest, WiderCoverageGivesWiderBand) {
  Rng rng(8);
  std::vector<Tensor> samples;
  for (int i = 0; i < 64; ++i) samples.push_back(Tensor::Randn({10}, &rng));
  UncertaintyBand narrow = SummarizeSamples(samples, 0.5);
  UncertaintyBand wide = SummarizeSamples(samples, 0.95);
  double narrow_width = 0.0;
  double wide_width = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    narrow_width += narrow.upper.data()[i] - narrow.lower.data()[i];
    wide_width += wide.upper.data()[i] - wide.lower.data()[i];
  }
  EXPECT_GT(wide_width, narrow_width);
}

TEST(UncertaintyTest, CoverageApproximatelyHolds) {
  // For standard normal samples, a 0.8 band should cover ~80% of fresh
  // draws.
  Rng rng(9);
  std::vector<Tensor> samples;
  for (int i = 0; i < 256; ++i) samples.push_back(Tensor::Randn({50}, &rng));
  UncertaintyBand band = SummarizeSamples(samples, 0.8);
  int64_t covered = 0;
  const int64_t trials = 2000;
  Rng fresh(10);
  for (int64_t t = 0; t < trials; ++t) {
    const double v = fresh.Normal();
    const int64_t slot = t % 50;
    if (v >= band.lower.data()[slot] && v <= band.upper.data()[slot]) {
      ++covered;
    }
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), 0.8, 0.08);
}

}  // namespace
}  // namespace conformer::flow
