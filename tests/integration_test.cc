// End-to-end integration: full pipeline (synthetic dataset -> splits ->
// training -> evaluation) for Conformer and a baseline, checkpointing, and
// the key qualitative claims the benches rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "baselines/registry.h"
#include "core/conformer_model.h"
#include "data/dataset_registry.h"
#include "nn/serialize.h"
#include "train/trainer.h"

namespace conformer {
namespace {

data::DatasetSplits Splits(const std::string& dataset, uint64_t seed) {
  data::TimeSeries ts = data::MakeDataset(dataset, 0.07, seed).value();
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  return data::MakeSplits(ts, cfg);
}

train::TrainConfig FastTrainConfig() {
  train::TrainConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.learning_rate = 2e-3f;
  config.max_train_batches = 15;
  config.max_eval_batches = 4;
  return config;
}

TEST(IntegrationTest, ConformerTrainsEndToEnd) {
  data::DatasetSplits splits = Splits("etth1", 41);
  core::ConformerConfig config;
  config.d_model = 8;
  config.n_heads = 2;
  config.ma_kernel = 5;
  core::ConformerModel model(config, splits.train.config(),
                             splits.train.dims());

  train::Trainer trainer(FastTrainConfig());
  train::FitResult fit = trainer.Fit(&model, splits.train, splits.val);
  EXPECT_GE(fit.epochs_run, 1);
  for (double loss : fit.train_losses) EXPECT_TRUE(std::isfinite(loss));

  train::EvalMetrics test = trainer.Evaluate(&model, splits.test);
  EXPECT_TRUE(std::isfinite(test.mse));
  EXPECT_GT(test.mse, 0.0);
  EXPECT_GT(test.mae, 0.0);
  // Standardized data: anything wildly above the variance means divergence.
  EXPECT_LT(test.mse, 25.0);
}

TEST(IntegrationTest, TrainingImprovesOverUntrainedModel) {
  data::DatasetSplits splits = Splits("ettm1", 42);
  auto untrained =
      models::MakeForecaster("conformer", splits.train.config(),
                             splits.train.dims());
  auto trained =
      models::MakeForecaster("conformer", splits.train.config(),
                             splits.train.dims());
  ASSERT_TRUE(untrained.ok() && trained.ok());

  train::TrainConfig config = FastTrainConfig();
  config.epochs = 3;
  config.max_train_batches = 25;
  train::Trainer trainer(config);
  trainer.Fit(trained.value().get(), splits.train, splits.val);

  const double before =
      trainer.Evaluate(untrained.value().get(), splits.test).mse;
  const double after = trainer.Evaluate(trained.value().get(), splits.test).mse;
  EXPECT_LT(after, before);
}

TEST(IntegrationTest, CheckpointRoundTripPreservesPredictions) {
  data::DatasetSplits splits = Splits("etth1", 43);
  core::ConformerConfig config;
  config.d_model = 8;
  config.n_heads = 2;
  config.ma_kernel = 5;
  core::ConformerModel model(config, splits.train.config(),
                             splits.train.dims());

  const std::string path = "/tmp/conformer_integration_ckpt.bin";
  ASSERT_TRUE(nn::SaveModule(model, path).ok());

  core::ConformerModel restored(config, splits.train.config(),
                                splits.train.dims());
  ASSERT_TRUE(nn::LoadModule(&restored, path).ok());

  model.SetTraining(false);
  restored.SetTraining(false);
  NoGradGuard guard;
  data::Batch batch = splits.test.GetRange(0, 3);
  Tensor a = model.Forward(batch);
  Tensor b = restored.Forward(batch);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, MultipleDatasetsTrainWithoutDivergence) {
  for (const std::string name : {"exchange", "wind", "airdelay"}) {
    data::DatasetSplits splits = Splits(name, 44);
    auto model = models::MakeForecaster("gru", splits.train.config(),
                                        splits.train.dims());
    ASSERT_TRUE(model.ok());
    train::Trainer trainer(FastTrainConfig());
    train::FitResult fit =
        trainer.Fit(model.value().get(), splits.train, splits.val);
    EXPECT_TRUE(std::isfinite(fit.best_val_mse)) << name;
  }
}

TEST(IntegrationTest, UnivariatePipeline) {
  data::TimeSeries full = data::MakeDataset("etth1", 0.07, 45).value();
  data::TimeSeries uni = full.Column(full.target_column());
  data::WindowConfig cfg{.input_len = 16, .label_len = 8, .pred_len = 8};
  data::DatasetSplits splits = data::MakeSplits(uni, cfg);

  models::ModelHyperParams params;
  params.d_model = 8;
  params.n_heads = 2;
  params.univariate = true;
  auto model = models::MakeForecaster("conformer", cfg, 1, params);
  ASSERT_TRUE(model.ok());
  train::Trainer trainer(FastTrainConfig());
  train::FitResult fit =
      trainer.Fit(model.value().get(), splits.train, splits.val);
  EXPECT_TRUE(std::isfinite(fit.best_val_mse));
}

TEST(IntegrationTest, UncertaintyBandsCoverSomeTruth) {
  data::DatasetSplits splits = Splits("ettm1", 46);
  core::ConformerConfig config;
  config.d_model = 8;
  config.n_heads = 2;
  config.ma_kernel = 5;
  config.lambda = 0.5f;  // weight the flow so bands have width
  core::ConformerModel model(config, splits.train.config(),
                             splits.train.dims());
  train::Trainer trainer(FastTrainConfig());
  trainer.Fit(&model, splits.train, splits.val);

  data::Batch batch = splits.test.GetRange(0, 2);
  flow::UncertaintyBand band = model.PredictWithUncertainty(batch, 16, 0.9);
  const int64_t total = batch.y.size(1);
  Tensor target = Slice(batch.y, 1, total - 8, total);
  int64_t covered = 0;
  for (int64_t i = 0; i < target.numel(); ++i) {
    if (target.data()[i] >= band.lower.data()[i] - 1.0f &&
        target.data()[i] <= band.upper.data()[i] + 1.0f) {
      ++covered;
    }
  }
  // Loose sanity bound: a trained model's +-1 widened 90% band should cover
  // a majority of points.
  EXPECT_GT(covered, target.numel() / 2);
}

}  // namespace
}  // namespace conformer
