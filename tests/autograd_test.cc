// Gradient correctness: numerical gradient checks for every differentiable
// op, plus tape-mechanics tests (accumulation, detach, no-grad, reuse).

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace conformer {
namespace {

using Inputs = std::vector<Tensor>;

Tensor Leaf(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(shape, &rng);
  t.set_requires_grad(true);
  return t;
}

// Positive-valued leaf for Log/Sqrt.
Tensor PositiveLeaf(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Rand(shape, 0.5f, 2.0f, &rng);
  t.set_requires_grad(true);
  return t;
}

void ExpectGradOk(const std::function<Tensor(const Inputs&)>& f,
                  Inputs inputs) {
  GradCheckResult r = CheckGradients(f, std::move(inputs));
  EXPECT_TRUE(r.passed) << r.message << " (max err " << r.max_abs_error << ")";
}

// -- basic mechanics --------------------------------------------------------

TEST(AutogradTest, ScalarChain) {
  Tensor x = Tensor::Full({1}, 3.0f);
  x.set_requires_grad(true);
  Tensor y = MulScalar(x, 2.0f) + 1.0f;  // y = 2x + 1
  Tensor loss = Mul(y, y);               // (2x+1)^2, d/dx = 4(2x+1) = 28
  Sum(loss).Backward();
  EXPECT_NEAR(x.grad().item(), 28.0f, 1e-4);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::Full({1}, 1.0f);
  x.set_requires_grad(true);
  Sum(MulScalar(x, 3.0f)).Backward();
  EXPECT_NEAR(x.grad().item(), 3.0f, 1e-6);
  Sum(MulScalar(x, 3.0f)).Backward();
  EXPECT_NEAR(x.grad().item(), 6.0f, 1e-6);  // accumulated
  x.ZeroGrad();
  EXPECT_FALSE(x.has_grad());
}

TEST(AutogradTest, ReusedTensorGetsBothPaths) {
  Tensor x = Tensor::Full({1}, 2.0f);
  x.set_requires_grad(true);
  Tensor y = Add(Mul(x, x), x);  // x^2 + x, d/dx = 2x + 1 = 5
  Sum(y).Backward();
  EXPECT_NEAR(x.grad().item(), 5.0f, 1e-4);
}

TEST(AutogradTest, DetachBlocksGradient) {
  Tensor x = Tensor::Full({1}, 2.0f);
  x.set_requires_grad(true);
  Tensor y = Mul(x.Detach(), x);  // treated as c * x
  Sum(y).Backward();
  EXPECT_NEAR(x.grad().item(), 2.0f, 1e-6);
}

TEST(AutogradTest, NoGradGuardDisablesTape) {
  Tensor x = Leaf({3}, 1);
  {
    NoGradGuard guard;
    Tensor y = Mul(x, x);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_EQ(y.impl()->node, nullptr);
  }
  Tensor z = Mul(x, x);
  EXPECT_TRUE(z.requires_grad());
}

TEST(AutogradTest, ConstantsProduceNoTape) {
  Tensor a = Tensor::Ones({2});
  Tensor b = Tensor::Ones({2});
  Tensor c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, BackwardRequiresScalar) {
  Tensor x = Leaf({2}, 2);
  Tensor y = Mul(x, x);
  EXPECT_DEATH(y.Backward(), "scalar");
}

TEST(AutogradTest, DiamondGraph) {
  // z = (x*2) + (x*3); dz/dx = 5 per element.
  Tensor x = Leaf({4}, 3);
  Tensor z = Add(MulScalar(x, 2.0f), MulScalar(x, 3.0f));
  Sum(z).Backward();
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(x.grad().data()[i], 5.0f, 1e-5);
}

// -- elementwise gradchecks ---------------------------------------------------

TEST(GradCheckTest, AddBroadcast) {
  ExpectGradOk([](const Inputs& in) { return Sum(Mul(Add(in[0], in[1]), in[2])); },
               {Leaf({2, 3}, 1), Leaf({3}, 2), Leaf({2, 3}, 3)});
}

TEST(GradCheckTest, SubBroadcastColumn) {
  ExpectGradOk(
      [](const Inputs& in) { return Sum(Mul(Sub(in[0], in[1]), in[0])); },
      {Leaf({3, 2}, 4), Leaf({3, 1}, 5)});
}

TEST(GradCheckTest, MulDiv) {
  ExpectGradOk(
      [](const Inputs& in) { return Sum(Div(Mul(in[0], in[1]), in[2])); },
      {Leaf({2, 2}, 6), Leaf({2, 2}, 7), PositiveLeaf({2, 2}, 8)});
}

TEST(GradCheckTest, Maximum) {
  ExpectGradOk([](const Inputs& in) { return Sum(Maximum(in[0], in[1])); },
               {Leaf({8}, 9), Leaf({8}, 10)});
}

TEST(GradCheckTest, Unaries) {
  ExpectGradOk([](const Inputs& in) { return Sum(Tanh(in[0])); }, {Leaf({6}, 11)});
  ExpectGradOk([](const Inputs& in) { return Sum(Sigmoid(in[0])); }, {Leaf({6}, 12)});
  ExpectGradOk([](const Inputs& in) { return Sum(Exp(in[0])); }, {Leaf({6}, 13)});
  ExpectGradOk([](const Inputs& in) { return Sum(Log(in[0])); },
               {PositiveLeaf({6}, 14)});
  ExpectGradOk([](const Inputs& in) { return Sum(Sqrt(in[0])); },
               {PositiveLeaf({6}, 15)});
  ExpectGradOk([](const Inputs& in) { return Sum(Gelu(in[0])); }, {Leaf({6}, 16)});
  ExpectGradOk([](const Inputs& in) { return Sum(Softplus(in[0])); },
               {Leaf({6}, 17)});
  ExpectGradOk([](const Inputs& in) { return Sum(Sin(in[0])); }, {Leaf({6}, 18)});
  ExpectGradOk([](const Inputs& in) { return Sum(Cos(in[0])); }, {Leaf({6}, 19)});
}

TEST(GradCheckTest, PowScalar) {
  ExpectGradOk([](const Inputs& in) { return Sum(PowScalar(in[0], 3.0f)); },
               {PositiveLeaf({5}, 20)});
}

// -- matmul -------------------------------------------------------------------

TEST(GradCheckTest, MatMulRank2) {
  ExpectGradOk([](const Inputs& in) { return Sum(MatMul(in[0], in[1])); },
               {Leaf({3, 4}, 21), Leaf({4, 2}, 22)});
}

TEST(GradCheckTest, MatMulBatched) {
  ExpectGradOk([](const Inputs& in) { return Sum(MatMul(in[0], in[1])); },
               {Leaf({2, 3, 4}, 23), Leaf({2, 4, 2}, 24)});
}

TEST(GradCheckTest, MatMulBroadcastBatch) {
  ExpectGradOk([](const Inputs& in) { return Sum(MatMul(in[0], in[1])); },
               {Leaf({3, 4}, 25), Leaf({2, 4, 2}, 26)});
}

TEST(GradCheckTest, MatMulWeightedOutput) {
  // Non-uniform output gradient exercises dOut routing.
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor out = MatMul(in[0], in[1]);
        return Sum(Mul(out, out));
      },
      {Leaf({2, 3}, 27), Leaf({3, 2}, 28)});
}

// -- reductions -----------------------------------------------------------------

TEST(GradCheckTest, SumOverDims) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor s = Sum(in[0], {1});            // [2, 4] -> [2]
        return Sum(Mul(s, s));
      },
      {Leaf({2, 4}, 29)});
}

TEST(GradCheckTest, MeanKeepdim) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor m = Mean(in[0], {0}, true);
        return Sum(Mul(m, m));
      },
      {Leaf({3, 2}, 30)});
}

TEST(GradCheckTest, VarianceComposite) {
  ExpectGradOk([](const Inputs& in) { return Sum(Variance(in[0], {1})); },
               {Leaf({2, 5}, 31)});
}

TEST(GradCheckTest, MaxRoutesToArgmax) {
  ExpectGradOk([](const Inputs& in) { return Sum(Max(in[0], 1)); },
               {Leaf({3, 4}, 32)});
}

// -- shape ops ---------------------------------------------------------------------

TEST(GradCheckTest, ReshapePermute) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor r = Permute(Reshape(in[0], {2, 3, 2}), {2, 0, 1});
        return Sum(Mul(r, r));
      },
      {Leaf({12}, 33)});
}

TEST(GradCheckTest, SliceAndConcat) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor head = Slice(in[0], 0, 0, 2);
        Tensor tail = Slice(in[0], 0, 2, 4);
        Tensor swapped = Concat({tail, head}, 0);
        return Sum(Mul(swapped, swapped));
      },
      {Leaf({4, 3}, 34)});
}

TEST(GradCheckTest, StridedSlice) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor s = Slice(in[0], 1, 0, 6, 2);
        return Sum(Mul(s, s));
      },
      {Leaf({2, 6}, 35)});
}

TEST(GradCheckTest, PadAndTile) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor p = Pad(in[0], 0, 1, 1, 0.5f);
        Tensor t = Tile(in[0], {2, 1});
        return Add(Sum(Mul(p, p)), Sum(t));
      },
      {Leaf({2, 2}, 36)});
}

TEST(GradCheckTest, ReplicatePad) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor p = ReplicatePad(in[0], 1, 2, 2);
        return Sum(Mul(p, p));
      },
      {Leaf({1, 4}, 37)});
}

TEST(GradCheckTest, BroadcastTo) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor b = BroadcastTo(in[0], {4, 3});
        return Sum(Mul(b, b));
      },
      {Leaf({1, 3}, 38)});
}

// -- indexing -----------------------------------------------------------------------

TEST(GradCheckTest, IndexSelectWithRepeats) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor s = IndexSelect(in[0], 0, {0, 2, 2, 1});
        return Sum(Mul(s, s));
      },
      {Leaf({3, 2}, 39)});
}

TEST(GradCheckTest, Roll) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor r = Roll(in[0], 1, 2);
        return Sum(Mul(r, in[0]));
      },
      {Leaf({2, 5}, 40)});
}

TEST(GradCheckTest, BatchedIndexSelect) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor s = BatchedIndexSelect(in[0], {1, 1, 0, 2}, 2);
        return Sum(Mul(s, s));
      },
      {Leaf({2, 3, 2}, 41)});
}

// -- conv / pool -------------------------------------------------------------------

TEST(GradCheckTest, Conv1dZeroPad) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv1d(in[0], in[1], in[2], 1);
        return Sum(Mul(y, y));
      },
      {Leaf({2, 2, 5}, 42), Leaf({3, 2, 3}, 43), Leaf({3}, 44)});
}

TEST(GradCheckTest, Conv1dCircular) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv1d(in[0], in[1], Tensor(), 1, PadMode::kCircular);
        return Sum(Mul(y, y));
      },
      {Leaf({1, 2, 6}, 45), Leaf({2, 2, 3}, 46)});
}

TEST(GradCheckTest, MaxPool) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = MaxPool1d(in[0], 2, 2);
        return Sum(Mul(y, y));
      },
      {Leaf({2, 8}, 70)});
}

TEST(GradCheckTest, Cumsum) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Cumsum(in[0], 1);
        return Sum(Mul(y, y));
      },
      {Leaf({2, 5}, 71)});
}

TEST(GradCheckTest, DilatedConv) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv1d(in[0], in[1], Tensor(), 2, PadMode::kZeros,
                          /*dilation=*/2);
        return Sum(Mul(y, y));
      },
      {Leaf({1, 2, 7}, 72), Leaf({2, 2, 3}, 73)});
}

TEST(GradCheckTest, StridedConv) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv1d(in[0], in[1], in[2], 1, PadMode::kZeros,
                          /*dilation=*/1, /*stride=*/2);
        return Sum(Mul(y, y));
      },
      {Leaf({2, 2, 9}, 80), Leaf({3, 2, 3}, 81), Leaf({3}, 82)});
}

TEST(GradCheckTest, StridedDilatedConv) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv1d(in[0], in[1], Tensor(), 2, PadMode::kReplicate,
                          /*dilation=*/2, /*stride=*/3);
        return Sum(Mul(y, y));
      },
      {Leaf({1, 2, 10}, 83), Leaf({2, 2, 3}, 84)});
}

TEST(GradCheckTest, CircularPadWiderThanInput) {
  // padding (4) > length (3): the folded tile path must stay differentiable
  // (it used to CHECK-abort before the fold).
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv1d(in[0], in[1], Tensor(), 4, PadMode::kCircular);
        return Sum(Mul(y, y));
      },
      {Leaf({1, 2, 3}, 85), Leaf({2, 2, 3}, 86)});
}

TEST(GradCheckTest, Conv2dZeroPad) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv2d(in[0], in[1], in[2], 1, 1);
        return Sum(Mul(y, y));
      },
      {Leaf({1, 2, 3, 3}, 87), Leaf({2, 2, 3, 3}, 88), Leaf({2}, 89)});
}

TEST(GradCheckTest, Conv2dValid) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Conv2d(in[0], in[1], Tensor(), 0, 0);
        return Sum(Mul(y, y));
      },
      {Leaf({1, 3, 5, 4}, 90), Leaf({2, 3, 2, 3}, 91)});
}

TEST(GradCheckTest, AvgPool) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = AvgPool1d(in[0], 3, 2);
        return Sum(Mul(y, y));
      },
      {Leaf({2, 9}, 47)});
}

// -- nn functionals -----------------------------------------------------------------

TEST(GradCheckTest, Softmax) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Softmax(in[0], -1);
        return Sum(Mul(y, in[1]));
      },
      {Leaf({3, 4}, 48), Leaf({3, 4}, 49)});
}

TEST(GradCheckTest, SoftmaxMiddleDim) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = Softmax(in[0], 1);
        return Sum(Mul(y, in[1]));
      },
      {Leaf({2, 3, 2}, 50), Leaf({2, 3, 2}, 51)});
}

TEST(GradCheckTest, LogSoftmax) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor y = LogSoftmax(in[0], -1);
        return Sum(Mul(y, in[1]));
      },
      {Leaf({2, 5}, 52), Leaf({2, 5}, 53)});
}

TEST(GradCheckTest, MseMae) {
  ExpectGradOk(
      [](const Inputs& in) { return MseLoss(in[0], Tensor::Zeros({2, 3})); },
      {Leaf({2, 3}, 54)});
  // MAE is non-differentiable at 0; random leaves avoid exact zeros.
  ExpectGradOk(
      [](const Inputs& in) { return MaeLoss(in[0], Tensor::Zeros({2, 3})); },
      {Leaf({2, 3}, 55)});
}

// -- composites mirroring model structure --------------------------------------------

TEST(GradCheckTest, TwoLayerMlp) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor h = Tanh(Add(MatMul(in[0], in[1]), in[2]));
        Tensor out = MatMul(h, in[3]);
        return Sum(Mul(out, out));
      },
      {Leaf({4, 3}, 56), Leaf({3, 5}, 57), Leaf({5}, 58), Leaf({5, 2}, 59)});
}

TEST(GradCheckTest, AttentionShaped) {
  // softmax(QK^T) V with small sizes.
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor scores = MatMul(in[0], Transpose(in[1], -1, -2));
        Tensor w = Softmax(MulScalar(scores, 0.5f), -1);
        return Sum(Mul(MatMul(w, in[2]), in[3]));
      },
      {Leaf({1, 3, 2}, 60), Leaf({1, 3, 2}, 61), Leaf({1, 3, 2}, 62),
       Leaf({1, 3, 2}, 63)});
}

TEST(AutogradTest, AddDetachedTreatsSecondArgAsConstant) {
  Tensor x = Tensor::Full({2}, 2.0f).set_requires_grad(true);
  Tensor y = AddDetached(MulScalar(x, 3.0f), Mul(x, x));
  Sum(y).Backward();
  // Gradient only flows through the 3x path: d/dx = 3 (not 3 + 2x).
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(x.grad().data()[i], 3.0f, 1e-5);
  }
}

TEST(AutogradTest, CumsumChainsWithOtherOps) {
  Tensor x = Tensor::Full({3}, 1.0f).set_requires_grad(true);
  // sum(cumsum(x)) = 3*x0 + 2*x1 + 1*x2.
  Sum(Cumsum(x, 0)).Backward();
  EXPECT_NEAR(x.grad().data()[0], 3.0f, 1e-6);
  EXPECT_NEAR(x.grad().data()[1], 2.0f, 1e-6);
  EXPECT_NEAR(x.grad().data()[2], 1.0f, 1e-6);
}

TEST(GradCheckTest, FlipAndSplit) {
  ExpectGradOk(
      [](const Inputs& in) {
        Tensor f = Flip(in[0], 1);
        std::vector<Tensor> parts = Split(in[0], 1, 2);
        return Add(Sum(Mul(f, f)), Sum(Mul(parts[0], parts[1])));
      },
      {Leaf({2, 4}, 80)});
}

TEST(AutogradTest, RetainGraphAllowsSecondBackward) {
  Tensor x = Leaf({1}, 64);
  Tensor y = Mul(x, x);
  Tensor s = Sum(y);
  s.Backward(/*retain_graph=*/true);
  const float g1 = x.grad().item();
  s.Backward();
  EXPECT_NEAR(x.grad().item(), 2.0f * g1, 1e-5);
}

}  // namespace
}  // namespace conformer
