// Layer-level tests: shapes, parameter registration, gradient flow,
// train/eval behaviour, serialization round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "nn/conv1d.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/layer_norm.h"
#include "nn/lstm.h"
#include "nn/mlp.h"
#include "nn/linear.h"
#include "nn/serialize.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"
#include "util/binary_io.h"

namespace conformer::nn {
namespace {

TEST(ModuleTest, ParameterRegistrationIsRecursive) {
  Linear inner(4, 3);
  EXPECT_EQ(inner.Parameters().size(), 2u);  // weight + bias
  EXPECT_EQ(inner.NumParameters(), 4 * 3 + 3);
}

TEST(ModuleTest, NamedParametersHaveDottedPaths) {
  Gru gru(4, 8, 2);
  bool found = false;
  for (const auto& [name, t] : gru.NamedParameters()) {
    if (name == "layer1.w_hh") {
      found = true;
      EXPECT_EQ(t.shape(), (Shape{8, 24}));
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModuleTest, SetTrainingPropagates) {
  DataEmbedding emb(3, 5, 8);
  emb.SetTraining(false);
  EXPECT_FALSE(emb.training());
  emb.SetTraining(true);
  EXPECT_TRUE(emb.training());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Linear lin(3, 2);
  Tensor x = Tensor::Randn({4, 3});
  Sum(lin.Forward(x)).Backward();
  bool any = false;
  for (Tensor& p : lin.Parameters()) any = any || p.has_grad();
  EXPECT_TRUE(any);
  lin.ZeroGrad();
  for (Tensor& p : lin.Parameters()) EXPECT_FALSE(p.has_grad());
}

// -- Linear ---------------------------------------------------------------

TEST(LinearTest, ShapesAndLeadingDims) {
  Linear lin(5, 3);
  EXPECT_EQ(lin.Forward(Tensor::Randn({7, 5})).shape(), (Shape{7, 3}));
  EXPECT_EQ(lin.Forward(Tensor::Randn({2, 4, 5})).shape(), (Shape{2, 4, 3}));
}

TEST(LinearTest, NoBiasOption) {
  Linear lin(4, 2, /*bias=*/false);
  EXPECT_EQ(lin.Parameters().size(), 1u);
  Tensor zero_out = lin.Forward(Tensor::Zeros({1, 4}));
  EXPECT_EQ(zero_out.at({0, 0}), 0.0f);
}

TEST(LinearTest, GradFlowsToParams) {
  Linear lin(3, 2);
  Tensor x = Tensor::Randn({4, 3});
  Sum(lin.Forward(x)).Backward();
  for (Tensor& p : lin.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(LinearTest, GradCheck) {
  Linear lin(3, 2);
  std::vector<Tensor> params = lin.Parameters();
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>&) {
        Tensor x = Tensor::Arange(6, -1.0f, 0.4f);
        Tensor out = lin.Forward(Reshape(x, {2, 3}));
        return Sum(Mul(out, out));
      },
      params);
  EXPECT_TRUE(r.passed) << r.message;
}

// -- Conv1dLayer ------------------------------------------------------------

TEST(Conv1dLayerTest, SamePaddingKeepsLength) {
  Conv1dLayer conv(2, 4, 3, 1, PadMode::kCircular);
  EXPECT_EQ(conv.Forward(Tensor::Randn({3, 2, 10})).shape(), (Shape{3, 4, 10}));
}

TEST(Conv1dLayerTest, ValidPaddingShrinks) {
  Conv1dLayer conv(1, 1, 4, 0);
  EXPECT_EQ(conv.Forward(Tensor::Randn({1, 1, 10})).shape(), (Shape{1, 1, 7}));
}

TEST(Conv1dLayerTest, StrideDownsamples) {
  // out_len = (10 + 2*1 - 3) / 2 + 1 = 5.
  Conv1dLayer conv(2, 4, 3, 1, PadMode::kZeros, true, /*dilation=*/1,
                   /*stride=*/2);
  EXPECT_EQ(conv.Forward(Tensor::Randn({3, 2, 10})).shape(), (Shape{3, 4, 5}));
}

// -- Conv2dLayer ------------------------------------------------------------

TEST(Conv2dLayerTest, SamePaddingKeepsGridShape) {
  Conv2dLayer conv(2, 5, 3, 3, /*padding=*/1);
  EXPECT_EQ(conv.Forward(Tensor::Randn({2, 2, 6, 4})).shape(),
            (Shape{2, 5, 6, 4}));
}

TEST(Conv2dLayerTest, ValidPaddingShrinksBothAxes) {
  Conv2dLayer conv(3, 1, 3, 2, /*padding=*/0, /*bias=*/false);
  EXPECT_EQ(conv.Forward(Tensor::Randn({1, 3, 7, 5})).shape(),
            (Shape{1, 1, 5, 4}));
  EXPECT_EQ(conv.Parameters().size(), 1u);  // No bias parameter.
}

TEST(Conv2dLayerTest, GradCheck) {
  Conv2dLayer conv(2, 2, 3, 3, /*padding=*/1);
  std::vector<Tensor> params = conv.Parameters();
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>&) {
        Tensor x = Tensor::Arange(24, -1.0f, 0.25f);
        Tensor out = conv.Forward(Reshape(x, {1, 2, 4, 3}));
        return Sum(Mul(out, out));
      },
      params);
  EXPECT_TRUE(r.passed) << r.message;
}

// -- LayerNorm -----------------------------------------------------------------

TEST(LayerNormTest, NormalizesLastDim) {
  LayerNorm norm(8);
  Tensor x = MulScalar(Tensor::Randn({4, 8}), 10.0f) + 5.0f;
  Tensor y = norm.Forward(x);
  for (int64_t i = 0; i < 4; ++i) {
    double mean = 0.0;
    for (int64_t j = 0; j < 8; ++j) mean += y.at({i, j});
    mean /= 8.0;
    double var = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      var += (y.at({i, j}) - mean) * (y.at({i, j}) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / 8.0, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradCheckThroughStats) {
  LayerNorm norm(4);
  Tensor x = Tensor::Randn({2, 4});
  x.set_requires_grad(true);
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>& in) {
        return Sum(Mul(norm.Forward(in[0]), norm.Forward(in[0])));
      },
      {x});
  EXPECT_TRUE(r.passed) << r.message;
}

// -- Dropout ----------------------------------------------------------------------

TEST(DropoutTest, RespectsTrainingMode) {
  Dropout drop(0.9f);
  Tensor x = Tensor::Ones({100});
  drop.SetTraining(false);
  Tensor eval_out = drop.Forward(x);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(eval_out.data()[i], 1.0f);
  drop.SetTraining(true);
  Tensor train_out = drop.Forward(x);
  int64_t zeros = 0;
  for (int64_t i = 0; i < 100; ++i) zeros += train_out.data()[i] == 0.0f;
  EXPECT_GT(zeros, 50);
}

// -- GRU ------------------------------------------------------------------------------

TEST(GruTest, OutputShapes) {
  Gru gru(3, 6, 2);
  GruOutput out = gru.Forward(Tensor::Randn({4, 5, 3}));
  EXPECT_EQ(out.output.shape(), (Shape{4, 5, 6}));
  EXPECT_EQ(out.last_hidden.shape(), (Shape{2, 4, 6}));
  EXPECT_EQ(out.first_hidden.shape(), (Shape{2, 4, 6}));
}

TEST(GruTest, LastOutputMatchesLastHiddenTopLayer) {
  Gru gru(2, 4, 2);
  GruOutput out = gru.Forward(Tensor::Randn({1, 7, 2}));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.output.at({0, 6, j}), out.last_hidden.at({1, 0, j}), 1e-6);
  }
}

TEST(GruTest, FirstHiddenMatchesFirstOutput) {
  Gru gru(2, 4, 1);
  GruOutput out = gru.Forward(Tensor::Randn({1, 5, 2}));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.output.at({0, 0, j}), out.first_hidden.at({0, 0, j}), 1e-6);
  }
}

TEST(GruTest, HiddenStaysBounded) {
  // GRU states are convex combinations of tanh outputs: |h| <= 1.
  Gru gru(1, 3, 1);
  GruOutput out = gru.Forward(MulScalar(Tensor::Randn({2, 50, 1}), 100.0f));
  for (int64_t i = 0; i < out.output.numel(); ++i) {
    EXPECT_LE(std::fabs(out.output.data()[i]), 1.0f + 1e-5);
  }
}

TEST(GruTest, GradFlowsThroughTime) {
  Gru gru(2, 3, 1);
  Tensor x = Tensor::Randn({1, 4, 2});
  x.set_requires_grad(true);
  GruOutput out = gru.Forward(x);
  Sum(out.output).Backward();
  // The earliest timestep must receive gradient through the recurrence.
  Tensor g = x.grad();
  float first_step_norm = 0.0f;
  for (int64_t j = 0; j < 2; ++j) first_step_norm += std::fabs(g.at({0, 0, j}));
  EXPECT_GT(first_step_norm, 0.0f);
}

TEST(GruTest, GradCheckSmall) {
  Gru gru(2, 2, 1);
  std::vector<Tensor> params = gru.Parameters();
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>&) {
        Rng rng(11);
        NoGradGuard* no = nullptr;  // (params vary; input fixed per call)
        (void)no;
        Tensor x = Tensor::FromVector({0.1f, -0.2f, 0.3f, 0.4f, -0.5f, 0.6f},
                                      {1, 3, 2});
        GruOutput out = gru.Forward(x);
        return Sum(Mul(out.output, out.output));
      },
      params, /*eps=*/1e-2, /*tolerance=*/8e-2);
  EXPECT_TRUE(r.passed) << r.message;
}

// -- LSTM -----------------------------------------------------------------------

TEST(LstmTest, OutputShapes) {
  Lstm lstm(3, 6, 2);
  LstmOutput out = lstm.Forward(Tensor::Randn({4, 5, 3}));
  EXPECT_EQ(out.output.shape(), (Shape{4, 5, 6}));
  EXPECT_EQ(out.last_hidden.shape(), (Shape{2, 4, 6}));
  EXPECT_EQ(out.last_cell.shape(), (Shape{2, 4, 6}));
}

TEST(LstmTest, LastOutputMatchesTopHidden) {
  Lstm lstm(2, 4, 1);
  LstmOutput out = lstm.Forward(Tensor::Randn({1, 6, 2}));
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.output.at({0, 5, j}), out.last_hidden.at({0, 0, j}), 1e-6);
  }
}

TEST(LstmTest, HiddenStaysBounded) {
  Lstm lstm(1, 3, 1);
  LstmOutput out = lstm.Forward(MulScalar(Tensor::Randn({2, 40, 1}), 50.0f));
  for (int64_t i = 0; i < out.output.numel(); ++i) {
    EXPECT_LE(std::fabs(out.output.data()[i]), 1.0f + 1e-5);
  }
}

TEST(LstmTest, GradFlowsThroughTime) {
  Lstm lstm(2, 3, 1);
  Tensor x = Tensor::Randn({1, 5, 2});
  x.set_requires_grad(true);
  Sum(lstm.Forward(x).output).Backward();
  Tensor g = x.grad();
  float first = 0.0f;
  for (int64_t j = 0; j < 2; ++j) first += std::fabs(g.at({0, 0, j}));
  EXPECT_GT(first, 0.0f);
}

TEST(LstmTest, GradCheckSmall) {
  Lstm lstm(2, 2, 1);
  std::vector<Tensor> params = lstm.Parameters();
  GradCheckResult r = CheckGradients(
      [&](const std::vector<Tensor>&) {
        Tensor x = Tensor::FromVector({0.2f, -0.1f, 0.4f, 0.3f, -0.6f, 0.5f},
                                      {1, 3, 2});
        LstmOutput out = lstm.Forward(x);
        return Sum(Mul(out.output, out.output));
      },
      params, /*eps=*/1e-2, /*tolerance=*/8e-2);
  EXPECT_TRUE(r.passed) << r.message;
}

// -- Embeddings -------------------------------------------------------------------------

TEST(EmbeddingTest, LookupShape) {
  Embedding emb(10, 4);
  Tensor out = emb.Forward({1, 5, 5, 9});
  EXPECT_EQ(out.shape(), (Shape{4, 4}));
  // Repeated index returns identical rows.
  for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(out.at({1, j}), out.at({2, j}));
}

TEST(EmbeddingTest, GradAccumulatesOnRepeats) {
  Embedding emb(5, 2);
  Tensor out = emb.Forward({3, 3, 3});
  Sum(out).Backward();
  Tensor g = emb.Parameters()[0].grad();
  EXPECT_NEAR(g.at({3, 0}), 3.0f, 1e-6);
  EXPECT_NEAR(g.at({0, 0}), 0.0f, 1e-6);
}

TEST(PositionalEncodingTest, ValuesMatchFormula) {
  PositionalEncoding pe(4);
  Tensor enc = pe.Forward(3);
  EXPECT_EQ(enc.shape(), (Shape{1, 3, 4}));
  EXPECT_NEAR(enc.at({0, 0, 0}), 0.0f, 1e-6);       // sin(0)
  EXPECT_NEAR(enc.at({0, 0, 1}), 1.0f, 1e-6);       // cos(0)
  EXPECT_NEAR(enc.at({0, 1, 0}), std::sin(1.0), 1e-5);
  EXPECT_NEAR(enc.at({0, 2, 1}), std::cos(2.0), 1e-5);
}

TEST(DataEmbeddingTest, ShapeAndPositionalToggle) {
  DataEmbedding with_pos(3, 5, 8, 0.0f, /*use_positional=*/true);
  DataEmbedding without_pos(3, 5, 8, 0.0f, /*use_positional=*/false);
  Tensor x = Tensor::Randn({2, 6, 3});
  Tensor marks = Tensor::Randn({2, 6, 5});
  EXPECT_EQ(with_pos.Forward(x, marks).shape(), (Shape{2, 6, 8}));
  EXPECT_EQ(without_pos.Forward(x, marks).shape(), (Shape{2, 6, 8}));
}

// -- Mlp --------------------------------------------------------------------------------

TEST(MlpTest, ShapesAndLayerCount) {
  Mlp mlp({5, 8, 8, 2});
  EXPECT_EQ(mlp.num_layers(), 3);
  EXPECT_EQ(mlp.Forward(Tensor::Randn({4, 5})).shape(), (Shape{4, 2}));
}

TEST(MlpTest, NoneActivationIsAffine) {
  // A 2-layer MLP with no activation composes to one affine map: doubling
  // the input (minus bias effects) must behave linearly. Check additivity
  // on the linear part: f(x) - f(0) is linear.
  Mlp mlp({3, 4, 2}, Activation::kNone);
  NoGradGuard guard;
  Tensor zero = Tensor::Zeros({1, 3});
  Tensor x = Tensor::Randn({1, 3});
  Tensor fx = Sub(mlp.Forward(x), mlp.Forward(zero));
  Tensor f2x = Sub(mlp.Forward(MulScalar(x, 2.0f)), mlp.Forward(zero));
  for (int64_t i = 0; i < fx.numel(); ++i) {
    EXPECT_NEAR(f2x.data()[i], 2.0f * fx.data()[i], 1e-4);
  }
}

TEST(MlpTest, GradientsFlowThroughAllLayers) {
  Mlp mlp({3, 4, 4, 1}, Activation::kGelu);
  Sum(mlp.Forward(Tensor::Randn({2, 3}))).Backward();
  for (Tensor& p : mlp.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(MlpTest, ActivationsDiffer) {
  Tensor x = Tensor::FromVector({-1.0f, 2.0f}, {2});
  EXPECT_EQ(ApplyActivation(x, Activation::kRelu).at({0}), 0.0f);
  EXPECT_NEAR(ApplyActivation(x, Activation::kTanh).at({1}), std::tanh(2.0f),
              1e-6);
  EXPECT_EQ(ApplyActivation(x, Activation::kNone).at({0}), -1.0f);
}

// -- serialization -------------------------------------------------------------------------

TEST(SerializeTest, RoundTrip) {
  const std::string path = "/tmp/conformer_serialize_test.bin";
  Linear src(4, 3);
  ASSERT_TRUE(SaveModule(src, path).ok());

  Linear dst(4, 3);
  // Make sure dst differs first.
  dst.Parameters()[0].data()[0] = 1234.0f;
  ASSERT_TRUE(LoadModule(&dst, path).ok());
  std::vector<Tensor> src_params = src.Parameters();
  std::vector<Tensor> dst_params = dst.Parameters();
  for (size_t i = 0; i < src_params.size(); ++i) {
    for (int64_t j = 0; j < src_params[i].numel(); ++j) {
      EXPECT_EQ(src_params[i].data()[j], dst_params[i].data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  const std::string path = "/tmp/conformer_serialize_mismatch.bin";
  Linear src(4, 3);
  ASSERT_TRUE(SaveModule(src, path).ok());
  Linear wrong(4, 5);
  Status s = LoadModule(&wrong, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Linear m(2, 2);
  EXPECT_FALSE(LoadModule(&m, "/tmp/does_not_exist_conformer.bin").ok());
}

TEST(SerializeTest, TruncatedFileFails) {
  // Failure injection: cut a valid checkpoint mid-tensor.
  const std::string path = "/tmp/conformer_truncated.bin";
  Linear src(6, 5);
  ASSERT_TRUE(SaveModule(src, path).ok());
  // Read it back, truncate to 60% of its size, rewrite.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() * 3 / 5);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  Linear dst(6, 5);
  Status s = LoadModule(&dst, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileFails) {
  const std::string path = "/tmp/conformer_garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  Linear m(2, 2);
  EXPECT_FALSE(LoadModule(&m, path).ok());
  std::remove(path.c_str());
}

// -- handcrafted corrupt streams (the LoadModule hardening contract) ----------

constexpr uint32_t kModuleMagic = 0xC04F04E8;

// Header for a stream claiming `count` parameters, followed by one entry up
// to (not including) its data bytes.
std::ostringstream CorruptHeader(uint64_t count, const std::string& name,
                                 const std::vector<int64_t>& shape) {
  std::ostringstream out(std::ios::binary);
  io::WriteU32(out, kModuleMagic);
  io::WriteU64(out, count);
  io::WriteString(out, name);
  io::WriteU64(out, shape.size());
  for (int64_t d : shape) io::WriteI64(out, d);
  return out;
}

Status DeserializeInto(Linear* model, const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return DeserializeModule(model, in, "test", bytes.size());
}

TEST(SerializeTest, NegativeDimFails) {
  Linear m(4, 3);
  const Status s = DeserializeInto(&m, CorruptHeader(1, "weight", {-3, 4}).str());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("negative dim"), std::string::npos);
}

TEST(SerializeTest, NumelOverflowFails) {
  Linear m(4, 3);
  const Status s = DeserializeInto(
      &m, CorruptHeader(1, "weight", {int64_t{1} << 62, 16}).str());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("overflow"), std::string::npos);
}

TEST(SerializeTest, ImplausibleTensorSizeFailsBeforeAllocation) {
  // A 4 TiB tensor claim against a few-dozen-byte stream must be rejected
  // up front, not attempted.
  Linear m(4, 3);
  const Status s = DeserializeInto(
      &m, CorruptHeader(1, "weight", {int64_t{1} << 40, 1}).str());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("beyond the stream"), std::string::npos);
}

TEST(SerializeTest, DuplicateParameterNameFails) {
  Linear m(4, 3);
  const auto named = m.NamedParameters();
  std::ostringstream out(std::ios::binary);
  io::WriteU32(out, kModuleMagic);
  io::WriteU64(out, 2);
  for (int i = 0; i < 2; ++i) {  // "weight" twice.
    const auto& [name, tensor] = named[0];
    io::WriteString(out, name);
    io::WriteU64(out, tensor.shape().size());
    for (int64_t d : tensor.shape()) io::WriteI64(out, d);
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  }
  const Status s = DeserializeInto(&m, out.str());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate parameter"), std::string::npos);
}

TEST(SerializeTest, MissingParameterFails) {
  // A file holding only "weight" must not silently leave "bias" at its
  // in-memory value.
  Linear src(4, 3);
  const auto named = src.NamedParameters();
  std::ostringstream out(std::ios::binary);
  io::WriteU32(out, kModuleMagic);
  io::WriteU64(out, 1);
  const auto& [name, tensor] = named[0];
  io::WriteString(out, name);
  io::WriteU64(out, tensor.shape().size());
  for (int64_t d : tensor.shape()) io::WriteI64(out, d);
  out.write(reinterpret_cast<const char*>(tensor.data()),
            static_cast<std::streamsize>(tensor.numel() * sizeof(float)));
  Linear dst(4, 3);
  const Status s = DeserializeInto(&dst, out.str());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unset"), std::string::npos);
}

TEST(SerializeTest, CountBeyondModuleFails) {
  Linear m(4, 3);
  std::ostringstream out(std::ios::binary);
  io::WriteU32(out, kModuleMagic);
  io::WriteU64(out, 5);  // The module has only 2 parameters.
  const Status s = DeserializeInto(&m, out.str());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("file claims"), std::string::npos);
}

}  // namespace
}  // namespace conformer::nn
