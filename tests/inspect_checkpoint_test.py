#!/usr/bin/env python3
"""Exit-code contract tests for tools/inspect_checkpoint.py.

Run as: inspect_checkpoint_test.py <inspect_checkpoint.py> <checkpoint_demo>

Drives the demo binary to produce real checkpoints, then checks that the
inspector validates them (exit 0, sensible report), flags a bit-flipped
checkpoint (exit 1), flags a directory without a MANIFEST (exit 1), and
exits 2 on a missing path.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile


def run(*argv):
    proc = subprocess.run(
        list(argv), stdout=subprocess.PIPE, stderr=subprocess.STDOUT
    )
    return proc.returncode, proc.stdout.decode()


def main():
    if len(sys.argv) != 3:
        print("usage: inspect_checkpoint_test.py <inspector> <demo-binary>")
        return 1
    inspector, demo = sys.argv[1], sys.argv[2]
    failures = []

    def check(cond, label, detail=""):
        if not cond:
            failures.append(label + (": " + detail if detail else ""))
        print("%s %s" % ("ok  " if cond else "FAIL", label))

    tmpdir = tempfile.mkdtemp(prefix="conformer_inspect_")
    try:
        ckpt_dir = os.path.join(tmpdir, "ckpts")
        code, out = run(demo, ckpt_dir)
        check(code == 0, "demo trains and resumes bitwise-identically", out)

        code, out = run(sys.executable, inspector, ckpt_dir)
        check(code == 0, "inspector validates fresh checkpoints", out)
        check("all CRCs ok" in out, "report mentions CRC validation", out)
        check("optimizer: adam" in out, "report decodes optimizer state", out)

        code, out = run(sys.executable, inspector, ckpt_dir, "--json")
        check(code == 0, "inspector --json exits 0", out)
        doc = json.loads(out)
        check(doc["ok"] and doc["checkpoints"], "--json emits a report", out)
        tensors = doc["checkpoints"][-1]["model"]
        check(
            sum(t["numel"] for t in tensors) > 0,
            "--json lists model tensors",
            out,
        )

        # Flip one byte mid-file: the inspector must catch it (CRC or
        # structure) and exit nonzero.
        manifest = os.path.join(ckpt_dir, "MANIFEST")
        with open(manifest) as f:
            newest = f.read().splitlines()[-1].strip()
        victim = os.path.join(ckpt_dir, newest)
        with open(victim, "rb") as f:
            blob = bytearray(f.read())
        blob[len(blob) // 2] ^= 0xFF
        with open(victim, "wb") as f:
            f.write(blob)
        code, out = run(sys.executable, inspector, ckpt_dir)
        check(code == 1, "inspector flags a bit-flipped checkpoint", out)
        check("error:" in out, "corruption produces a diagnostic", out)

        empty = os.path.join(tmpdir, "empty")
        os.makedirs(empty)
        code, out = run(sys.executable, inspector, empty)
        check(code == 1, "directory without MANIFEST fails", out)

        code, out = run(
            sys.executable, inspector, os.path.join(tmpdir, "missing.ckpt")
        )
        check(code == 2, "missing path exits 2", out)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    if failures:
        print("\n%d check(s) failed:" % len(failures))
        for f in failures:
            print("  - " + f)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
